"""Host<->host framing for fleet transport, on the EOFL codec.

The link codec frames everything that crosses the *target* debug port;
this module reuses it for traffic between campaign hosts (coordinator
<-> socket workers, ``repro.farm``), so one codec serves both target
and fleet traffic.  A fleet message is one EOFL command batch whose
single :class:`~repro.link.codec.Command` carries

* a **host opcode** (``OP_EPOCH_RESULT`` / ``OP_SEED_PUSH`` /
  ``OP_FRONTIER_DELTA`` / ``OP_HOST_CTRL``),
* the message kind in ``label`` (the farm protocol's verb), and
* a canonical-JSON payload in ``data`` (UTF-8, sorted keys, tight
  separators — the same canonical form the campaign journal uses).

Since EOFL frames are not self-delimiting on a byte stream, each batch
travels behind a little-endian ``u32`` length prefix; a short read at
any point raises :class:`HostLinkClosed` so the coordinator can treat
the peer as a lost worker rather than block forever.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, List, Sequence, Tuple

from repro.errors import ProtocolError
from repro.link.codec import (
    OP_EPOCH_RESULT,
    OP_FRONTIER_DELTA,
    OP_HOST_CTRL,
    OP_SEED_PUSH,
    Command,
    decode_batch,
    decode_u32,
    encode_batch,
    encode_u32,
)

__all__ = ["HostFrameStream", "HostLinkClosed", "host_command",
           "host_payload", "loopback_pair", "HOST_KIND_OPS"]

#: Farm protocol verbs that get a dedicated host opcode; every other
#: verb (start/finish/exit handshakes) rides under ``OP_HOST_CTRL``.
HOST_KIND_OPS: Dict[str, int] = {
    "epoch_result": OP_EPOCH_RESULT,
    "deliver": OP_SEED_PUSH,
    "delivered": OP_SEED_PUSH,
    "frontier": OP_FRONTIER_DELTA,
    "frontier_ok": OP_FRONTIER_DELTA,
}

#: Host opcodes a fleet stream accepts; a target opcode arriving here
#: is a protocol violation, not a command to execute.
_HOST_OPS = frozenset(
    {OP_EPOCH_RESULT, OP_SEED_PUSH, OP_FRONTIER_DELTA, OP_HOST_CTRL})

#: One payload bound (matches the journal's MAX_PAYLOAD): a length
#: prefix beyond this is framing corruption, not a huge message.
MAX_HOST_FRAME = 64 * 1024 * 1024


class HostLinkClosed(ProtocolError):
    """The peer's byte stream ended mid-conversation."""


def host_command(kind: str, payload: Dict[str, object]) -> Command:
    """Wrap one farm protocol message as an EOFL command."""
    data = json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    return Command(op=HOST_KIND_OPS.get(kind, OP_HOST_CTRL),
                   length=len(data), label=kind, data=data)


def host_payload(cmd: Command) -> Tuple[str, Dict[str, object]]:
    """Inverse of :func:`host_command`: ``(kind, payload)``."""
    if cmd.op not in _HOST_OPS:
        raise ProtocolError(
            f"target opcode {cmd.op} on a host link")
    try:
        payload = json.loads(cmd.data.decode("utf-8")) if cmd.data \
            else {}
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable host payload: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("host payload must be a JSON object")
    return cmd.label, payload


class HostFrameStream:
    """Length-prefixed EOFL batches over one connected socket.

    Owns the socket; :meth:`close` is idempotent.  Keeps send/receive
    byte tallies so the farm's sync-delta-bytes histogram reports what
    actually crossed the wire, frame overhead included.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self.bytes_sent = 0
        self.bytes_received = 0
        self.frames_sent = 0
        self.frames_received = 0
        self._closed = False

    def send(self, commands: Sequence[Command]) -> int:
        """Ship one batch; returns the bytes put on the wire."""
        raw = encode_batch(commands)
        frame = encode_u32(len(raw)) + raw
        try:
            self._sock.sendall(frame)
        except OSError as exc:
            raise HostLinkClosed(f"host link send failed: {exc}") \
                from exc
        self.bytes_sent += len(frame)
        self.frames_sent += 1
        return len(frame)

    def recv(self) -> List[Command]:
        """Read exactly one batch (blocking)."""
        head = self._read_exact(4)
        length = decode_u32(head)
        if length > MAX_HOST_FRAME:
            raise ProtocolError(
                f"host frame length {length} exceeds bound")
        raw = self._read_exact(length)
        commands = decode_batch(raw)
        self.bytes_received += 4 + length
        self.frames_received += 1
        return commands

    def _read_exact(self, count: int) -> bytes:
        chunks = bytearray()
        while len(chunks) < count:
            try:
                chunk = self._sock.recv(count - len(chunks))
            except OSError as exc:
                raise HostLinkClosed(
                    f"host link read failed: {exc}") from exc
            if not chunk:
                raise HostLinkClosed("host link closed by peer")
            chunks += chunk
        return bytes(chunks)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass


def loopback_pair() -> Tuple[HostFrameStream, HostFrameStream]:
    """Two connected streams on one host (tests, loopback transport)."""
    left, right = socket.socketpair()
    return HostFrameStream(left), HostFrameStream(right)
