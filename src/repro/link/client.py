"""The batched, cached debug-link client.

:class:`DebugLink` is what the DDI layer actually talks to.  It adds the
three things the raw transport cannot express:

* **batching** — ``with link.batch():`` collects commands and flushes
  them as ONE transaction at scope exit; reads return
  :class:`PendingReply` handles resolved at the flush,
* **delta coverage drain** — :meth:`cov_drain` remembers the tracer's
  generation word per buffer, so an unchanged buffer costs one word,
* **a read-through memory cache** keyed on ``(addr, len)``, invalidated
  precisely on overlapping writes and wholesale on anything that lets
  the target run (resume, reset, flash, reattach).

The cache is sound on this substrate because target memory only mutates
while the core runs — and every way of making it run goes through this
object.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.errors import DebugLinkError
from repro.link.codec import (
    OP_BACKTRACE,
    OP_CLEAR_ALL_BP,
    OP_CLEAR_BP,
    OP_COV_DRAIN,
    OP_FLASH_WRITE,
    OP_READ_MEM,
    OP_READ_PC,
    OP_READ_U32,
    OP_RESET,
    OP_RESUME,
    OP_SET_BP,
    OP_UART_READ,
    OP_WRITE_MEM,
    OP_WRITE_U32,
    Command,
    Reply,
    decode_u32,
    encode_u32,
)
from repro.link.transport import LinkTransport
from repro.obs import NULL_OBS

#: Granularity of the host-side dirty log (bytes).  Small enough that a
#: typical post-boot restore moves a few tens of KB, large enough that
#: the page set stays a handful of ints per executed program.
DIRTY_PAGE_SIZE = 1024


def pages_for_range(addr: int, length: int) -> range:
    """Page indices overlapping ``[addr, addr + length)``."""
    if length <= 0:
        return range(0)
    return range(addr // DIRTY_PAGE_SIZE,
                 (addr + length - 1) // DIRTY_PAGE_SIZE + 1)


class PendingReply:
    """A batched command's result, readable after the batch flushed."""

    __slots__ = ("_decode", "_value", "_resolved")

    def __init__(self, decode):
        self._decode = decode
        self._value = None
        self._resolved = False

    def _resolve(self, reply: Reply) -> None:
        self._value = self._decode(reply)
        self._resolved = True

    @property
    def resolved(self) -> bool:
        return self._resolved

    def result(self):
        """The decoded reply; raises if the batch has not flushed."""
        if not self._resolved:
            raise DebugLinkError(
                "batched link reply read before the batch flushed")
        return self._value


class _Batch:
    """Commands collected inside one ``with link.batch():`` scope."""

    def __init__(self):
        self.items: List[Tuple[Command, PendingReply]] = []

    def add(self, cmd: Command, decode) -> PendingReply:
        pending = PendingReply(decode)
        self.items.append((cmd, pending))
        return pending

    def __len__(self) -> int:
        return len(self.items)


class DebugLink:
    """High-level client over one :class:`LinkTransport`."""

    def __init__(self, transport: LinkTransport, obs=NULL_OBS,
                 cache_enabled: bool = True):
        self.transport = transport
        self.obs = obs
        self.cache_enabled = cache_enabled
        self._batch: Optional[_Batch] = None
        self._cache: Dict[Tuple[int, int], bytes] = {}
        self._drain_gen: Dict[int, int] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        # Page-granular write log (repro.fuzz.snapshot): every way target
        # RAM can change after a snapshot capture lands here — host
        # writes page-precisely, execution windows via the declared
        # exec-dirty ranges, resets wholesale.
        self._dirty_pages: Set[int] = set()
        self._dirty_all = False
        self._exec_dirty_pages: FrozenSet[int] = frozenset()
        # Bumped on every flash write: a snapshot captured against an
        # older flash image must not be restored over a newer one.
        self.flash_epoch = 0

    # -- accounting ----------------------------------------------------------

    @property
    def transactions(self) -> int:
        return self.transport.transactions

    @property
    def bytes_moved(self) -> int:
        return self.transport.bytes_moved

    # -- batching ------------------------------------------------------------

    @contextmanager
    def batch(self):
        """Collect commands and flush them as one link transaction.

        Nested scopes join the outermost batch.  If the body raises, the
        collected commands are discarded (nothing was sent); an error
        *during* the flush propagates with earlier commands applied,
        matching sequential single-command semantics.
        """
        if self._batch is not None:
            yield self._batch
            return
        self._batch = _Batch()
        ok = False
        try:
            yield self._batch
            ok = True
        finally:
            state, self._batch = self._batch, None
            if ok and state.items:
                self._flush(state)

    def _flush(self, state: _Batch) -> None:
        commands = [cmd for cmd, _ in state.items]
        replies = self.transport.transact(commands)
        for (cmd, pending), reply in zip(state.items, replies):
            self._after(cmd, reply)
            pending._resolve(reply)

    def _submit(self, cmd: Command, decode):
        """One command: queue it (in a batch) or transact immediately."""
        if self._batch is not None:
            return self._batch.add(cmd, decode)
        [reply] = self.transport.transact([cmd])
        self._after(cmd, reply)
        return decode(reply)

    # -- cache ---------------------------------------------------------------

    def invalidate_cache(self) -> None:
        """Drop every cached read (the target may have run)."""
        self._cache.clear()

    def _invalidate_range(self, addr: int, length: int) -> None:
        if not self._cache:
            return
        end = addr + length
        dead = [key for key in self._cache
                if key[0] < end and addr < key[0] + key[1]]
        for key in dead:
            del self._cache[key]

    def _cache_lookup(self, addr: int, length: int) -> Optional[bytes]:
        if not self.cache_enabled or self._batch is not None:
            return None
        data = self._cache.get((addr, length))
        if data is not None:
            self.cache_hits += 1
            if self.obs.enabled:
                self.obs.counter("link.cache.hits").inc()
        else:
            self.cache_misses += 1
        return data

    def _after(self, cmd: Command, reply: Reply) -> None:
        """Post-transaction cache bookkeeping, in execution order."""
        op = cmd.op
        if op == OP_READ_MEM:
            if self.cache_enabled:
                self._cache[(cmd.addr, cmd.length)] = reply.data
        elif op == OP_READ_U32:
            if self.cache_enabled:
                self._cache[(cmd.addr, 4)] = encode_u32(reply.value)
        elif op == OP_WRITE_MEM:
            self._invalidate_range(cmd.addr, len(cmd.data))
            self._dirty_pages.update(pages_for_range(cmd.addr,
                                                     len(cmd.data)))
        elif op == OP_WRITE_U32:
            self._invalidate_range(cmd.addr, 4)
            self._dirty_pages.update(pages_for_range(cmd.addr, 4))
        elif op == OP_RESUME:
            self.invalidate_cache()
            # The core ran: everything in the declared execution-dirty
            # ranges (heap, status, crash, coverage) may have changed.
            self._dirty_pages.update(self._exec_dirty_pages)
        elif op == OP_RESET:
            self.invalidate_cache()
            self._dirty_all = True
            # A reset rewinds the tracer's generation word; forgetting
            # the last drained generation forces the next cov_drain to
            # be a full one — an ABA-matching generation after reboot
            # must never read as "nothing changed".
            self._drain_gen.clear()
        elif op == OP_FLASH_WRITE:
            # Flash/sector state moved under us: nothing cached can be
            # trusted, and any RAM snapshot predates the new image.
            self.invalidate_cache()
            self.flash_epoch += 1
        elif op == OP_COV_DRAIN:
            self._invalidate_range(cmd.addr, 4 + cmd.length * 4)
            self._dirty_pages.update(
                pages_for_range(cmd.addr, 4 + cmd.length * 4))
            if cmd.gen_addr:
                self._invalidate_range(cmd.gen_addr, 4)
                self._dirty_pages.update(pages_for_range(cmd.gen_addr, 4))
                self._drain_gen[cmd.gen_addr] = reply.value

    # -- dirty-page log (repro.fuzz.snapshot) --------------------------------

    def set_exec_dirty_ranges(self,
                              ranges: Iterable[Tuple[int, int]]) -> None:
        """Declare the address ranges execution itself can mutate.

        The host cannot watch the core write RAM, but on this target the
        writable surface is known statically (kernel heap, agent status,
        crash block, coverage buffer + generation word): every
        ``OP_RESUME`` marks these pages dirty.  Page indices are
        precomputed once so the per-resume cost is one set update.
        """
        pages: Set[int] = set()
        for addr, length in ranges:
            pages.update(pages_for_range(addr, length))
        self._exec_dirty_pages = frozenset(pages)

    @property
    def dirty_all(self) -> bool:
        """True when a reset made the whole image stale."""
        return self._dirty_all

    def dirty_pages(self) -> Set[int]:
        """Copy of the pages written since the last :meth:`clear_dirty`."""
        return set(self._dirty_pages)

    def clear_dirty(self) -> None:
        """Start a fresh dirty window (called at capture/after restore)."""
        self._dirty_pages.clear()
        self._dirty_all = False

    def forget_drain_state(self) -> None:
        """Drop per-buffer drain generations so the next coverage drain
        is a full one (a restore rewound the generation word)."""
        self._drain_gen.clear()

    # -- memory --------------------------------------------------------------

    def read_mem(self, addr: int, length: int):
        cached = self._cache_lookup(addr, length)
        if cached is not None:
            return cached
        return self._submit(Command(op=OP_READ_MEM, addr=addr,
                                    length=length),
                            lambda reply: reply.data)

    def write_mem(self, addr: int, data: bytes):
        return self._submit(Command(op=OP_WRITE_MEM, addr=addr,
                                    data=bytes(data)),
                            lambda reply: None)

    def read_u32(self, addr: int):
        cached = self._cache_lookup(addr, 4)
        if cached is not None:
            return decode_u32(cached)
        return self._submit(Command(op=OP_READ_U32, addr=addr),
                            lambda reply: reply.value)

    def write_u32(self, addr: int, value: int):
        return self._submit(Command(op=OP_WRITE_U32, addr=addr,
                                    value=value),
                            lambda reply: None)

    # -- run control ---------------------------------------------------------

    def resume(self):
        return self._submit(Command(op=OP_RESUME),
                            lambda reply: reply.halt)

    def read_pc(self):
        return self._submit(Command(op=OP_READ_PC),
                            lambda reply: reply.value)

    def set_breakpoint(self, addr: int, label: str = ""):
        return self._submit(Command(op=OP_SET_BP, addr=addr, label=label),
                            lambda reply: reply.value)

    def clear_breakpoint(self, addr: int):
        return self._submit(Command(op=OP_CLEAR_BP, addr=addr),
                            lambda reply: None)

    def clear_all_breakpoints(self):
        return self._submit(Command(op=OP_CLEAR_ALL_BP),
                            lambda reply: None)

    def backtrace(self):
        return self._submit(Command(op=OP_BACKTRACE),
                            lambda reply: list(reply.frames))

    # -- flash / reset / UART ------------------------------------------------

    def flash_write(self, addr: int, data: bytes, verify: bool = True):
        return self._submit(Command(op=OP_FLASH_WRITE, addr=addr,
                                    data=bytes(data), verify=verify),
                            lambda reply: None)

    def reset(self):
        return self._submit(Command(op=OP_RESET),
                            lambda reply: bool(reply.value))

    def uart_read(self, cursor: int):
        return self._submit(Command(op=OP_UART_READ, value=cursor),
                            lambda reply: (list(reply.lines), reply.cursor))

    # -- coverage ------------------------------------------------------------

    def cov_drain(self, addr: int, capacity: int, gen_addr: int = 0):
        """Drain the coverage buffer in one transaction.

        Returns the raw ``[count u32][records...]`` bytes, or ``None``
        when the generation word says nothing changed since the last
        drain of this buffer.  The generation bookkeeping lives here, so
        a fresh boot (generation reset) forces a full drain and can
        never serve stale coverage.
        """
        last_gen = self._drain_gen.get(gen_addr) if gen_addr else None
        cmd = Command(op=OP_COV_DRAIN, addr=addr, length=capacity,
                      gen_addr=gen_addr, last_gen=last_gen)
        return self._submit(cmd, lambda reply: reply.data)
