"""repro.link — the unified debug-link transport layer.

Everything that crosses the hardware debug port goes through one stack:

    DebugLink (batching, delta drain, read-through cache)
        -> LinkTransport (framing, obs choke point, chaos boundary)
            -> DebugPort (raw probe primitives)

See DESIGN.md ("The link layer") for the batching and invalidation
semantics and the byte-identical-results invariant.
"""

from repro.link.client import DebugLink, PendingReply
from repro.link.codec import (
    Command,
    Reply,
    command_wire_bytes,
    decode_batch,
    decode_command,
    decode_u16,
    decode_u32,
    encode_batch,
    encode_command,
    encode_u16,
    encode_u32,
    reply_wire_bytes,
)
from repro.link.transport import DebugPortTransport, LinkTransport

__all__ = [
    "Command",
    "DebugLink",
    "DebugPortTransport",
    "LinkTransport",
    "PendingReply",
    "Reply",
    "command_wire_bytes",
    "decode_batch",
    "decode_command",
    "decode_u16",
    "decode_u32",
    "encode_batch",
    "encode_command",
    "encode_u16",
    "encode_u32",
    "reply_wire_bytes",
]
