"""The link transport: one choke point for every debug-port exchange.

A :class:`LinkTransport` executes framed command batches as single link
*transactions*.  Everything above it (GDB client, OpenOCD shim, the
engine's drain paths) speaks :class:`~repro.link.codec.Command`; all
latency/byte instrumentation and all chaos fault hooks live here, so
every backend gets them for free and none re-implements them.

:class:`DebugPortTransport` is the production implementation: it drives a
:class:`repro.hw.debug_port.DebugPort` one primitive at a time (a real
smart probe would do the same on the far side of USB), which keeps
virtual-cycle accounting and fault-injection opportunities *identical*
between a batch of N commands and N single-command transactions — only
the transaction count differs.  That invariant is what makes batched and
unbatched fuzzing runs produce byte-identical coverage and crash results.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import DebugLinkError, ProtocolError
from repro.link.codec import (
    OP_BACKTRACE,
    OP_CLEAR_ALL_BP,
    OP_CLEAR_BP,
    OP_COV_DRAIN,
    OP_FLASH_WRITE,
    OP_NAMES,
    OP_READ_MEM,
    OP_READ_PC,
    OP_READ_U32,
    OP_RESET,
    OP_RESUME,
    OP_SET_BP,
    OP_UART_READ,
    OP_WRITE_MEM,
    OP_WRITE_U32,
    Command,
    Reply,
    command_wire_bytes,
    reply_wire_bytes,
)
from repro.obs import NULL_OBS

#: Commands that give an installed fault plan one injection opportunity,
#: exactly the set the debug port historically consulted chaos for.
_CHAOS_CORE_OPS = {
    OP_READ_MEM: "read_mem",
    OP_WRITE_MEM: "write_mem",
    OP_READ_U32: "read_u32",
    OP_WRITE_U32: "write_u32",
    OP_RESUME: "resume",
    OP_READ_PC: "read_pc",
}

#: Commands whose per-command obs record the DDI layer has always emitted.
_RECORDED_OPS = frozenset({
    OP_READ_MEM, OP_WRITE_MEM, OP_READ_U32, OP_WRITE_U32,
    OP_RESUME, OP_READ_PC, OP_SET_BP, OP_FLASH_WRITE, OP_RESET,
    OP_COV_DRAIN,
})


class LinkTransport:
    """Protocol: execute command batches as single link transactions.

    Implementations must keep ``transactions`` / ``bytes_out`` /
    ``bytes_in`` running totals and may expose a ``chaos`` attribute for
    fault-plan hooks (see :mod:`repro.chaos.link`).
    """

    def __init__(self):
        self.transactions = 0
        self.bytes_out = 0
        self.bytes_in = 0
        self.chaos = None

    @property
    def bytes_moved(self) -> int:
        """Total frame bytes across the link, both directions."""
        return self.bytes_out + self.bytes_in

    def transact(self, commands: Sequence[Command]) -> List[Reply]:
        raise NotImplementedError


class DebugPortTransport(LinkTransport):
    """Execute link transactions against one raw debug port."""

    def __init__(self, port, obs=NULL_OBS):
        super().__init__()
        self.port = port
        self.obs = obs

    # -- instrumentation -----------------------------------------------------

    def _record(self, command: str, started_at: int, nbytes: int = 0,
                **fields) -> None:
        """One finished command (caller checked ``obs.enabled``)."""
        spent = self.port.board.machine.cycles - started_at
        self.obs.histogram(f"ddi.cmd.{command}").record(spent)
        if nbytes:
            self.obs.counter(f"ddi.bytes.{command}").inc(nbytes)
        self.obs.emit("ddi.command", command=command, cycles_spent=spent,
                      bytes=nbytes, **fields)

    # -- chaos hooks ---------------------------------------------------------

    def _chaos_op(self, cmd: Command) -> None:
        """Give the installed fault plan one injection opportunity."""
        op = _CHAOS_CORE_OPS.get(cmd.op)
        if op is not None and self.chaos is not None:
            self.chaos.on_core_op(op)

    def _chaos_core(self, op: str) -> None:
        """Per-primitive-step consult inside composite commands, so a
        batched drain sees the same fault opportunities its unbatched
        equivalent would."""
        if self.chaos is not None:
            self.chaos.on_core_op(op)

    # -- the transaction boundary --------------------------------------------

    def transact(self, commands: Sequence[Command]) -> List[Reply]:
        """Run one transaction; replies are positionally ordered.

        Commands execute strictly in order; an error raised mid-batch
        (timeout, verify failure) leaves the earlier commands applied —
        the same state a sequence of single-command transactions would
        have reached, which is what the recovery ladder expects.
        """
        self.transactions += 1
        self.bytes_out += command_wire_bytes(commands)
        board = self.port.board
        started_at = board.machine.cycles
        try:
            replies = [self._execute(cmd) for cmd in commands]
        finally:
            if self.obs.enabled:
                self.obs.counter("link.transactions").inc()
                self.obs.histogram("link.txn.cycles").record(
                    board.machine.cycles - started_at)
        self.bytes_in += reply_wire_bytes(replies)
        if self.obs.enabled:
            nbytes = (command_wire_bytes(commands)
                      + reply_wire_bytes(replies))
            self.obs.counter("link.bytes").inc(nbytes)
            self.obs.emit(
                "link.transaction", commands=len(commands),
                ops=",".join(OP_NAMES[cmd.op] for cmd in commands),
                bytes=nbytes,
                cycles_spent=board.machine.cycles - started_at)
        return replies

    # -- command execution ----------------------------------------------------

    def _execute(self, cmd: Command) -> Reply:
        port = self.port
        board = port.board
        observed = self.obs.enabled and cmd.op in _RECORDED_OPS
        started_at = board.machine.cycles if observed else 0
        self._chaos_op(cmd)

        if cmd.op == OP_READ_MEM:
            data = port.read_mem(cmd.addr, cmd.length)
            if self.chaos is not None:
                data = self.chaos.filter_read(cmd.addr, data)
            if observed:
                self._record("read_memory", started_at, nbytes=cmd.length)
            return Reply(op=cmd.op, data=data)

        if cmd.op == OP_WRITE_MEM:
            port.write_mem(cmd.addr, cmd.data)
            if observed:
                self._record("write_memory", started_at,
                             nbytes=len(cmd.data))
            return Reply(op=cmd.op)

        if cmd.op == OP_READ_U32:
            value = port.read_u32(cmd.addr)
            if self.chaos is not None:
                value = self.chaos.filter_read_u32(cmd.addr, value)
            if observed:
                self._record("read_u32", started_at, nbytes=4)
            return Reply(op=cmd.op, value=value)

        if cmd.op == OP_WRITE_U32:
            port.write_u32(cmd.addr, cmd.value)
            if observed:
                self._record("write_u32", started_at, nbytes=4)
            return Reply(op=cmd.op)

        if cmd.op == OP_RESUME:
            event = port.resume()
            if observed:
                self._record("exec_continue", started_at,
                             halt=event.reason.value, symbol=event.symbol)
            return Reply(op=cmd.op, halt=event)

        if cmd.op == OP_READ_PC:
            pc = port.read_pc()
            if observed:
                self._record("read_pc", started_at)
            return Reply(op=cmd.op, value=pc)

        if cmd.op == OP_SET_BP:
            port.set_breakpoint(cmd.addr, cmd.label)
            if observed:
                self._record("break_insert", started_at, location=cmd.label)
            return Reply(op=cmd.op, value=cmd.addr)

        if cmd.op == OP_CLEAR_BP:
            port.clear_breakpoint(cmd.addr)
            return Reply(op=cmd.op)

        if cmd.op == OP_CLEAR_ALL_BP:
            port.clear_all_breakpoints()
            return Reply(op=cmd.op)

        if cmd.op == OP_BACKTRACE:
            return Reply(op=cmd.op, frames=tuple(port.backtrace()))

        if cmd.op == OP_FLASH_WRITE:
            return self._flash_write(cmd, started_at if observed else None)

        if cmd.op == OP_RESET:
            port.reset()
            if observed:
                self._record("reset_run", started_at,
                             booted=not board.boot_failed)
            return Reply(op=cmd.op, value=int(not board.boot_failed))

        if cmd.op == OP_UART_READ:
            lines, cursor = port.uart_read(cmd.value)
            if self.chaos is not None:
                lines = self.chaos.filter_uart(lines)
            if lines and self.obs.enabled:
                self.obs.counter("uart.lines").inc(len(lines))
            return Reply(op=cmd.op, lines=tuple(lines), cursor=cursor)

        if cmd.op == OP_COV_DRAIN:
            return self._cov_drain(cmd, started_at if observed else None)

        raise ProtocolError(f"unknown link opcode {cmd.op}")

    def _flash_write(self, cmd: Command, started_at) -> Reply:
        """``flash write_image``: erase + program + verify, one exchange.

        Chaos flash corruption is applied on the way into the array and
        must be caught by the verify readback — silent damage is exactly
        what the reflash rung's bounded retries exist for.
        """
        port = self.port
        port.flash_erase(cmd.addr, len(cmd.data))
        data = cmd.data
        if self.chaos is not None:
            data = self.chaos.filter_flash(cmd.addr, data)
        port.flash_program(cmd.addr, data)
        if cmd.verify and port.flash_read(cmd.addr,
                                          len(cmd.data)) != cmd.data:
            raise DebugLinkError(
                f"flash verify failed at 0x{cmd.addr:08x}")
        if started_at is not None:
            self._record("flash_write", started_at, nbytes=len(cmd.data),
                         address=cmd.addr)
        return Reply(op=cmd.op, value=len(cmd.data))

    def _cov_drain(self, cmd: Command, started_at) -> Reply:
        """Delta coverage drain: the whole §4.5.1 sequence, one exchange.

        ``cmd.gen_addr`` points at the tracer's generation word and
        ``cmd.last_gen`` is what the host saw last drain: when they still
        match, the buffer content has not changed and the reply is a
        single word instead of ``4 + count*4`` bytes.  Each primitive
        step consults chaos exactly as its unbatched counterpart did.
        """
        port = self.port
        gen = 0
        if cmd.gen_addr:
            self._chaos_core("read_u32")
            gen = port.read_u32(cmd.gen_addr)
            if self.chaos is not None:
                gen = self.chaos.filter_read_u32(cmd.gen_addr, gen)
            if cmd.last_gen is not None and gen == cmd.last_gen:
                if started_at is not None:
                    self._record("cov_drain", started_at, nbytes=4,
                                 skipped=True)
                return Reply(op=cmd.op, value=gen, data=None)
        self._chaos_core("read_u32")
        count = port.read_u32(cmd.addr)
        if self.chaos is not None:
            count = self.chaos.filter_read_u32(cmd.addr, count)
        count = min(count, cmd.length)
        self._chaos_core("read_mem")
        raw = port.read_mem(cmd.addr, 4 + count * 4)
        if self.chaos is not None:
            raw = self.chaos.filter_read(cmd.addr, raw)
        self._chaos_core("write_u32")
        port.write_u32(cmd.addr, 0)
        if started_at is not None:
            self._record("cov_drain", started_at, nbytes=len(raw),
                         skipped=False)
        return Reply(op=cmd.op, value=gen, data=raw)
