"""Wire framing for the unified debug-link transport.

One link *transaction* carries a batch of commands to the probe and a
batch of replies back.  The frame layout models what a smart probe (or
an OpenOCD TCL script) would actually move across USB::

    frame  := magic "EOFL" | u8 version | u16 count | command*
    command:= u8 op | u32 addr | u32 value | u32 length | u32 gen_addr
              | u32 last_gen+1 (0 = none) | u8 flags | u16 label_len
              | label utf-8 | u32 data_len | data

Replies stay host-side dataclasses (the virtual probe hands back Python
objects), but every reply knows its wire size so byte accounting matches
what a real link would move.

This module is also the single home of the word-size/endianness helpers
that used to be re-implemented ad hoc around the DDI layer; they are
re-exported from :mod:`repro.ddi` for backward compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ProtocolError

# -- word-size / endianness helpers (the shared canonical copies) -----------

U32_MASK = 0xFFFFFFFF


def encode_u16(value: int) -> bytes:
    """One little-endian halfword."""
    return int(value & 0xFFFF).to_bytes(2, "little")


def decode_u16(raw: bytes, offset: int = 0) -> int:
    """Inverse of :func:`encode_u16`."""
    return int.from_bytes(raw[offset:offset + 2], "little")


def encode_u32(value: int) -> bytes:
    """One little-endian word."""
    return int(value & U32_MASK).to_bytes(4, "little")


def decode_u32(raw: bytes, offset: int = 0) -> int:
    """Inverse of :func:`encode_u32`."""
    return int.from_bytes(raw[offset:offset + 4], "little")


# -- command vocabulary ------------------------------------------------------

OP_READ_MEM = 1
OP_WRITE_MEM = 2
OP_READ_U32 = 3
OP_WRITE_U32 = 4
OP_RESUME = 5
OP_READ_PC = 6
OP_SET_BP = 7
OP_CLEAR_BP = 8
OP_CLEAR_ALL_BP = 9
OP_BACKTRACE = 10
OP_FLASH_WRITE = 11
OP_RESET = 12
OP_UART_READ = 13
OP_COV_DRAIN = 14
# Host<->host fleet traffic (repro.link.host / repro.farm): the same
# codec that frames target transactions also frames campaign sync, so
# framing, byte accounting and corruption behaviour are shared.  These
# opcodes never reach a DebugPort — the transport dispatch tables do
# not (and must not) know them.
OP_EPOCH_RESULT = 15
OP_SEED_PUSH = 16
OP_FRONTIER_DELTA = 17
OP_HOST_CTRL = 18

#: opcode -> the DDI command name the obs layer has always used.
OP_NAMES = {
    OP_READ_MEM: "read_memory",
    OP_WRITE_MEM: "write_memory",
    OP_READ_U32: "read_u32",
    OP_WRITE_U32: "write_u32",
    OP_RESUME: "exec_continue",
    OP_READ_PC: "read_pc",
    OP_SET_BP: "break_insert",
    OP_CLEAR_BP: "break_delete",
    OP_CLEAR_ALL_BP: "break_delete_all",
    OP_BACKTRACE: "backtrace",
    OP_FLASH_WRITE: "flash_write",
    OP_RESET: "reset_run",
    OP_UART_READ: "uart_read",
    OP_COV_DRAIN: "cov_drain",
    OP_EPOCH_RESULT: "epoch_result",
    OP_SEED_PUSH: "seed_push",
    OP_FRONTIER_DELTA: "frontier_delta",
    OP_HOST_CTRL: "host_ctrl",
}

LINK_MAGIC = b"EOFL"
LINK_VERSION = 1
FRAME_HEADER_BYTES = len(LINK_MAGIC) + 1 + 2  # magic | version | count
_FLAG_VERIFY = 0x01
_FLAG_HAS_GEN = 0x02


@dataclass(frozen=True)
class Command:
    """One operation inside a link transaction."""

    op: int
    addr: int = 0
    value: int = 0
    length: int = 0
    gen_addr: int = 0
    last_gen: Optional[int] = None
    verify: bool = True
    label: str = ""
    data: bytes = b""

    def wire_bytes(self) -> int:
        """Encoded size, computed without serializing (hot path)."""
        return 28 + len(self.label.encode("utf-8")) + len(self.data)


@dataclass(frozen=True)
class Reply:
    """One command's result inside a link transaction."""

    op: int
    value: int = 0
    data: Optional[bytes] = None
    lines: Tuple[str, ...] = ()
    cursor: int = 0
    halt: object = None  # HaltEvent for OP_RESUME
    frames: Tuple = ()   # StackFrames for OP_BACKTRACE

    def wire_bytes(self) -> int:
        """What a real probe would ship back for this reply."""
        size = 8  # op + status/value word
        if self.data is not None:
            size += 4 + len(self.data)
        if self.halt is not None:
            size += 16  # reason, pc, detail handle, bp summary
        if self.lines:
            size += 4 + sum(len(line.encode("utf-8")) + 1
                            for line in self.lines)
        if self.frames:
            size += 8 * len(self.frames)
        return size


def command_wire_bytes(commands: Sequence[Command]) -> int:
    """Frame size of a command batch, without serializing it."""
    return FRAME_HEADER_BYTES + sum(cmd.wire_bytes() for cmd in commands)


def reply_wire_bytes(replies: Sequence[Reply]) -> int:
    """Frame size of a reply batch."""
    return FRAME_HEADER_BYTES + sum(reply.wire_bytes() for reply in replies)


# -- serialization (property-tested round trip) ------------------------------

def encode_command(cmd: Command) -> bytes:
    """Serialize one command into its wire form."""
    if cmd.op not in OP_NAMES:
        raise ProtocolError(f"unknown link opcode {cmd.op}")
    label = cmd.label.encode("utf-8")
    if len(label) > 0xFFFF:
        raise ProtocolError("link command label too long")
    flags = _FLAG_VERIFY if cmd.verify else 0
    if cmd.last_gen is not None:
        flags |= _FLAG_HAS_GEN
    out = bytearray()
    out.append(cmd.op)
    out += encode_u32(cmd.addr)
    out += encode_u32(cmd.value)
    out += encode_u32(cmd.length)
    out += encode_u32(cmd.gen_addr)
    out += encode_u32(cmd.last_gen or 0)
    out.append(flags)
    out += encode_u16(len(label))
    out += label
    out += encode_u32(len(cmd.data))
    out += cmd.data
    return bytes(out)


def decode_command(raw: bytes, offset: int = 0) -> Tuple[Command, int]:
    """Inverse of :func:`encode_command`; returns (command, next offset)."""
    if offset >= len(raw):
        raise ProtocolError("truncated link command")
    op = raw[offset]
    if op not in OP_NAMES:
        raise ProtocolError(f"unknown link opcode {op}")
    addr = decode_u32(raw, offset + 1)
    value = decode_u32(raw, offset + 5)
    length = decode_u32(raw, offset + 9)
    gen_addr = decode_u32(raw, offset + 13)
    last_gen_raw = decode_u32(raw, offset + 17)
    flags = raw[offset + 21]
    label_len = decode_u16(raw, offset + 22)
    cursor = offset + 24
    label = raw[cursor:cursor + label_len].decode("utf-8")
    cursor += label_len
    data_len = decode_u32(raw, cursor)
    cursor += 4
    data = bytes(raw[cursor:cursor + data_len])
    if len(data) != data_len:
        raise ProtocolError("truncated link command payload")
    cursor += data_len
    return Command(
        op=op, addr=addr, value=value, length=length, gen_addr=gen_addr,
        last_gen=last_gen_raw if flags & _FLAG_HAS_GEN else None,
        verify=bool(flags & _FLAG_VERIFY), label=label, data=data), cursor


def encode_batch(commands: Sequence[Command]) -> bytes:
    """Serialize a whole transaction frame."""
    if len(commands) > 0xFFFF:
        raise ProtocolError("link batch too large")
    out = bytearray(LINK_MAGIC)
    out.append(LINK_VERSION)
    out += encode_u16(len(commands))
    for cmd in commands:
        out += encode_command(cmd)
    return bytes(out)


def decode_batch(raw: bytes) -> List[Command]:
    """Inverse of :func:`encode_batch`."""
    if raw[:4] != LINK_MAGIC:
        raise ProtocolError("bad link frame magic")
    if raw[4] != LINK_VERSION:
        raise ProtocolError(f"unsupported link frame version {raw[4]}")
    count = decode_u16(raw, 5)
    commands = []
    offset = FRAME_HEADER_BYTES
    for _ in range(count):
        cmd, offset = decode_command(raw, offset)
        commands.append(cmd)
    if offset != len(raw):
        raise ProtocolError("trailing bytes after link frame")
    return commands

