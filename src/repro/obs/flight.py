"""Flight recorder: a bounded ring of recent events, dumped on failure.

Postmortems of a crash, a quarantine, or a ``RecoveryExhausted`` abort
should not require re-running the whole campaign with full tracing.  The
flight recorder rides along as one more event sink, keeping only the
most recent ``capacity`` events plus metric deltas since the previous
dump; when something goes wrong the stack calls :meth:`dump` and gets a
self-contained ``flight_<signature>.json`` — the last seconds of the
black box, not the whole tape.

Dumps carry wall-clock timestamps (they are postmortem artifacts, not
part of the deterministic telemetry set) but are triggered only by
deterministic run events, so *which* dumps exist is reproducible.
"""

from __future__ import annotations

import json
import os
import re
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.obs.events import Event, Sink

#: Major schema version stamped into every dump as ``"v"``.
FLIGHT_SCHEMA_MAJOR = 1

#: Default ring capacity: enough to cover a full recovery-ladder climb
#: plus the events of the programs leading into it.
FLIGHT_CAPACITY = 256

_SIGNATURE_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


def flight_file_name(signature: str) -> str:
    """Artifact name for one dump (filesystem-safe, bounded length)."""
    safe = _SIGNATURE_SAFE.sub("-", signature).strip("-") or "unknown"
    return f"flight_{safe[:80]}.json"


class FlightRecorder(Sink):
    """Ring-buffer sink + failure-triggered JSON dumps."""

    def __init__(self, directory: str,
                 capacity: int = FLIGHT_CAPACITY):
        self.directory = str(directory)
        self.capacity = capacity
        self.events: Deque[Event] = deque(maxlen=capacity)
        self.total_events = 0
        self.dumps = 0
        self.dumped_paths: List[str] = []
        self._last_counters: Dict[str, int] = {}

    # -- sink protocol -------------------------------------------------------

    def emit(self, event: Event) -> None:
        self.events.append(event)
        self.total_events += 1

    # -- the black-box dump --------------------------------------------------

    def dump(self, reason: str, signature: str,
             obs=None) -> Optional[str]:
        """Write ``flight_<signature>.json``; returns its path.

        ``obs`` (the owning :class:`repro.obs.Observability`) supplies
        the metrics snapshot and the virtual-cycle timestamp; without it
        the dump still records the event ring.  Re-dumping an already
        written signature is a no-op (the *first* occurrence is the
        interesting one), so crash storms do not thrash the disk.
        """
        path = os.path.join(self.directory, flight_file_name(signature))
        if path in self.dumped_paths:
            return None
        os.makedirs(self.directory, exist_ok=True)
        counters: Dict[str, int] = {}
        payload: Dict[str, object] = {
            "v": FLIGHT_SCHEMA_MAJOR,
            "reason": reason,
            "signature": signature,
            "events_total": self.total_events,
            "events": [event.to_dict() for event in self.events],
        }
        if obs is not None:
            payload["run_id"] = obs.run_id
            payload["cycles"] = obs.now()
            snapshot = obs.metrics.snapshot()
            payload["metrics"] = snapshot
            counters = {name: int(value) for name, value
                        in snapshot.get("counters", {}).items()}
            payload["counter_deltas"] = {
                name: value - self._last_counters.get(name, 0)
                for name, value in sorted(counters.items())}
        from repro.db.io import atomic_write_json
        atomic_write_json(path, payload)
        self._last_counters = counters
        self.dumps += 1
        self.dumped_paths.append(path)
        if obs is not None and obs.enabled:
            obs.counter("flight.dumps").inc()
            obs.emit("flight.dump", reason=reason, signature=signature,
                     events=len(self.events))
        return path


def load_flight(path: str) -> Dict[str, object]:
    """Read one flight dump; rejects unknown majors."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    major = int(payload.get("v", FLIGHT_SCHEMA_MAJOR))
    if major != FLIGHT_SCHEMA_MAJOR:
        raise ValueError(
            f"{path}: unsupported flight schema major {major} "
            f"(this build reads {FLIGHT_SCHEMA_MAJOR})")
    return payload
