"""Renderers for recorded telemetry: HTML timeline, Prometheus textfile,
and the live ANSI campaign dashboard.

Everything here is dependency-free string assembly over the JSON
artifacts (``metrics.json`` + ``timeseries.jsonl`` + ``profile.json``):

* :func:`render_html` — a single self-contained HTML page with inline
  SVG: the coverage-growth curve, a stacked per-phase cycle area, and
  one coverage lane per farm worker.
* :func:`render_prom` — a Prometheus text-exposition snapshot
  (``metrics.prom``) for external scrapers / textfile collectors.
* :func:`render_dashboard` — the periodic ANSI status table
  ``eof-fuzz campaign --dashboard`` prints at every epoch barrier.
"""

from __future__ import annotations

import html
import json
import re
from typing import Dict, List, Optional, Sequence

from repro.bench.report import render_table

#: File name of the Prometheus textfile artifact.
PROM_FILE = "metrics.prom"

#: File name of the HTML report artifact.
HTML_FILE = "report.html"

_PROM_NAME = re.compile(r"[^a-zA-Z0-9_]")

# Muted categorical palette (ok on white and dark terminals' browsers).
_PALETTE = ("#4878a8", "#e1a13c", "#589a64", "#b55c5c", "#8a6fb0",
            "#5ba3b0", "#a8824f", "#7a7a7a")


def _prom_name(name: str) -> str:
    return "eof_" + _PROM_NAME.sub("_", name)


def render_prom(data: Dict[str, object]) -> str:
    """Prometheus text exposition of one run's metrics + stats."""
    lines: List[str] = []
    run_id = str(data.get("run_id", ""))
    lines.append(f'eof_run_info{{run_id="{run_id}"}} 1')
    metrics = data.get("metrics", {}) or {}
    for name, value in sorted((metrics.get("counters") or {}).items()):
        prom = _prom_name(name) + "_total"
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {value}")
    for name, value in sorted((metrics.get("gauges") or {}).items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {value}")
    for name, snap in sorted((metrics.get("histograms") or {}).items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        buckets = snap.get("buckets", [])
        counts = snap.get("counts", [])
        for bound, count in zip(buckets, counts):
            cumulative += count
            lines.append(f'{prom}_bucket{{le="{bound}"}} {cumulative}')
        lines.append(f'{prom}_bucket{{le="+Inf"}} '
                     f'{snap.get("count", 0)}')
        lines.append(f'{prom}_sum {snap.get("sum", 0)}')
        lines.append(f'{prom}_count {snap.get("count", 0)}')
    stats = data.get("stats") or {}
    for name, value in sorted(stats.items()):
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            prom = _prom_name(f"stats.{name}")
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {value}")
    profile = data.get("profile") or {}
    for phase in profile.get("phases", []):
        prom = _prom_name(f"profile.cycles.{phase['name']}")
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {phase['cycles']}")
    return "\n".join(lines) + "\n"


# -- SVG building blocks -----------------------------------------------------

_W, _H, _PAD = 640, 180, 30


def _scale(points: Sequence[tuple], width=_W, height=_H,
           pad=_PAD) -> List[tuple]:
    """Scale (x, y) data points into SVG coordinates."""
    if not points:
        return []
    max_x = max(x for x, _ in points) or 1
    max_y = max(y for _, y in points) or 1
    return [(pad + (width - 2 * pad) * x / max_x,
             height - pad - (height - 2 * pad) * y / max_y)
            for x, y in points]


def _polyline(points: Sequence[tuple], color: str,
              width: float = 1.5) -> str:
    coords = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
    return (f'<polyline fill="none" stroke="{color}" '
            f'stroke-width="{width}" points="{coords}"/>')


def _svg(body: str, width=_W, height=_H) -> str:
    return (f'<svg viewBox="0 0 {width} {height}" width="{width}" '
            f'height="{height}" xmlns="http://www.w3.org/2000/svg">'
            f'<rect width="{width}" height="{height}" fill="#fdfdfb" '
            f'stroke="#ddd"/>{body}</svg>')


def _coverage_svg(series: Sequence[Sequence[int]]) -> str:
    points = [(int(cycles), int(edges)) for cycles, edges in series]
    if not points:
        return "<p>(no coverage series recorded)</p>"
    peak = max(edges for _, edges in points)
    scaled = _scale(points)
    label = (f'<text x="{_PAD}" y="{_PAD - 8}" font-size="11" '
             f'fill="#555">edges over virtual cycles '
             f'(peak {peak})</text>')
    return _svg(_polyline(scaled, _PALETTE[0]) + label)


def _phase_area_svg(rows: Sequence[Dict[str, object]]) -> str:
    """Stacked per-phase cycle areas from cumulative timeseries rows."""
    rows = [row for row in rows if row.get("phases")]
    if len(rows) < 2:
        return "<p>(no per-epoch phase samples recorded)</p>"
    names = sorted({name for row in rows for name in row["phases"]})
    xs = [int(row["cycles"]) for row in rows]
    # Per-epoch deltas per phase, stacked bottom-up.
    deltas = {name: [] for name in names}
    previous = {name: 0 for name in names}
    for row in rows:
        for name in names:
            value = int(row["phases"].get(name, previous[name]))
            deltas[name].append(max(value - previous[name], 0))
            previous[name] = max(value, previous[name])
    totals = [sum(deltas[name][i] for name in names)
              for i in range(len(rows))]
    peak = max(totals) or 1
    max_x = max(xs) or 1
    body = []
    base = [0.0] * len(rows)
    for index, name in enumerate(names):
        top = [base[i] + deltas[name][i] for i in range(len(rows))]
        path = []
        for i, x in enumerate(xs):
            sx = _PAD + (_W - 2 * _PAD) * x / max_x
            sy = _H - _PAD - (_H - 2 * _PAD) * top[i] / peak
            path.append(f"{'M' if not path else 'L'}{sx:.1f},{sy:.1f}")
        for i in range(len(rows) - 1, -1, -1):
            sx = _PAD + (_W - 2 * _PAD) * xs[i] / max_x
            sy = _H - _PAD - (_H - 2 * _PAD) * base[i] / peak
            path.append(f"L{sx:.1f},{sy:.1f}")
        color = _PALETTE[index % len(_PALETTE)]
        body.append(f'<path d="{" ".join(path)} Z" fill="{color}" '
                    f'fill-opacity="0.75" stroke="none">'
                    f'<title>{html.escape(name)}</title></path>')
        base = top
    legend = []
    for index, name in enumerate(names):
        color = _PALETTE[index % len(_PALETTE)]
        x = _PAD + index * 90
        legend.append(f'<rect x="{x}" y="6" width="8" height="8" '
                      f'fill="{color}"/>'
                      f'<text x="{x + 11}" y="14" font-size="10" '
                      f'fill="#444">{html.escape(name)}</text>')
    return _svg("".join(body) + "".join(legend))


def _lanes_svg(worker_series: Sequence[Sequence[Dict[str, object]]]) -> str:
    """One coverage lane per farm worker, shared x-axis."""
    lane_h = 46
    height = _PAD + lane_h * len(worker_series) + 10
    max_x = max((int(row["cycles"]) for rows in worker_series
                 for row in rows), default=1) or 1
    peak = max((int(row.get("edges", 0)) for rows in worker_series
                for row in rows), default=1) or 1
    body = []
    for index, rows in enumerate(worker_series):
        top = _PAD + index * lane_h
        color = _PALETTE[index % len(_PALETTE)]
        points = []
        for row in rows:
            x = _PAD + (_W - 2 * _PAD) * int(row["cycles"]) / max_x
            y = top + (lane_h - 10) * \
                (1 - int(row.get("edges", 0)) / peak)
            points.append((x, y))
        if points:
            body.append(_polyline(points, color))
        final = int(rows[-1].get("edges", 0)) if rows else 0
        body.append(f'<text x="4" y="{top + 12}" font-size="10" '
                    f'fill="#444">w{index} ({final})</text>')
        body.append(f'<line x1="{_PAD}" y1="{top + lane_h - 8}" '
                    f'x2="{_W - _PAD}" y2="{top + lane_h - 8}" '
                    f'stroke="#eee"/>')
    return _svg("".join(body), height=height)


def _html_table(title: str, columns: Sequence[str],
                rows: Sequence[Sequence[object]]) -> str:
    head = "".join(f"<th>{html.escape(str(c))}</th>" for c in columns)
    body = "".join(
        "<tr>" + "".join(f"<td>{html.escape(str(cell))}</td>"
                         for cell in row) + "</tr>"
        for row in rows)
    return (f"<h2>{html.escape(title)}</h2>"
            f"<table><thead><tr>{head}</tr></thead>"
            f"<tbody>{body}</tbody></table>")


def render_html(data: Dict[str, object],
                timeseries: Optional[List[Dict[str, object]]] = None,
                worker_series: Optional[
                    List[List[Dict[str, object]]]] = None) -> str:
    """Self-contained HTML timeline of one run or campaign."""
    from repro.obs.profile import build_profile, profile_table_rows

    run_id = str(data.get("run_id", "") or "(unnamed run)")
    meta = data.get("meta", {}) or {}
    parts: List[str] = []
    parts.append(
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>eof-fuzz · {html.escape(run_id)}</title><style>"
        "body{font:14px/1.5 system-ui,sans-serif;margin:24px;"
        "color:#222;max-width:720px}"
        "h1{font-size:20px}h2{font-size:15px;margin-top:28px}"
        "table{border-collapse:collapse;font-size:12.5px}"
        "td,th{border:1px solid #ddd;padding:3px 8px;text-align:left}"
        "th{background:#f4f4f0}code{background:#f4f4f0;padding:0 3px}"
        ".meta{color:#666;font-size:12.5px}"
        "</style></head><body>")
    parts.append(f"<h1>eof-fuzz run · {html.escape(run_id)}</h1>")
    meta_bits = [f"{html.escape(str(k))}=<code>{html.escape(str(v))}"
                 f"</code>" for k, v in sorted(meta.items())]
    if meta_bits:
        parts.append(f"<p class='meta'>{' · '.join(meta_bits)}</p>")

    stats = data.get("stats") or {}
    series = stats.get("series") or []
    if not series and timeseries:
        series = [[row["cycles"], row.get("edges", 0)]
                  for row in timeseries]
    parts.append("<h2>Coverage growth</h2>")
    parts.append(_coverage_svg(series))

    if timeseries:
        parts.append("<h2>Cycle budget over time (stacked phases)</h2>")
        parts.append(_phase_area_svg(timeseries))

    if worker_series:
        parts.append("<h2>Per-worker coverage lanes</h2>")
        parts.append(_lanes_svg(worker_series))

    profile = data.get("profile") or build_profile(data)
    if profile.get("total_cycles"):
        rows = profile_table_rows(profile)
        parts.append(_html_table(
            f"Cycle-budget profile "
            f"({100.0 * profile['attribution']:.1f}% attributed)",
            ["phase", "spans", "cycles", "share"], rows))

    phases = data.get("phases", {}) or {}
    if phases:
        total = sum(entry["cycles"] for entry in phases.values()) or 1
        rows = [[name, entry["count"], entry["cycles"],
                 f"{100.0 * entry['cycles'] / total:.1f}%"]
                for name, entry in sorted(phases.items())]
        parts.append(_html_table("Phase-time breakdown (spans)",
                                 ["phase", "spans", "cycles", "share"],
                                 rows))

    counters = (data.get("metrics", {}) or {}).get("counters", {})
    if counters:
        parts.append(_html_table(
            "Counters", ["counter", "value"],
            [[name, value] for name, value in sorted(counters.items())]))
    parts.append("</body></html>")
    return "".join(parts)


# -- the live campaign dashboard ---------------------------------------------

_BOLD, _DIM, _CYAN, _RESET = "\x1b[1m", "\x1b[2m", "\x1b[36m", "\x1b[0m"


def render_dashboard(summary: Dict[str, object],
                     ansi: bool = True) -> str:
    """One epoch-barrier status frame for ``campaign --dashboard``.

    ``summary`` is the orchestrator's epoch-hook payload; this renders
    it as a compact ANSI table (plain text when ``ansi`` is off).
    """
    bold, dim, cyan, reset = ((_BOLD, _DIM, _CYAN, _RESET) if ansi
                              else ("", "", "", ""))
    head = (f"{bold}{cyan}epoch {summary['epoch']:>3}{reset} "
            f"merged_edges={summary['merged_edges']} "
            f"shared={summary['shared_corpus']} "
            f"imported={summary['imported']} "
            f"crashes={summary['crashes']} "
            f"live={summary['live_workers']}/{summary['workers_total']}")
    rows = []
    for index, worker in enumerate(summary.get("workers", [])):
        status = worker.get("status", "live")
        rows.append([f"w{index}", worker.get("edges", 0),
                     worker.get("execs", 0),
                     worker.get("crashes", 0),
                     worker.get("restores", 0), status])
    table = render_table("workers",
                         ["board", "edges", "execs", "crashes",
                          "restores", "status"], rows)
    if ansi:
        table = dim + table + reset
    return head + "\n" + table


def dump_json(payload: Dict[str, object]) -> str:
    """Canonical ``--format json`` rendering of a run payload."""
    return json.dumps(payload, indent=2, sort_keys=True, default=str)
