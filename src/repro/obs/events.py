"""Structured run events: a tiny zero-dependency event bus.

Every event carries the target's virtual-cycle timestamp (the same clock
Figure 7's x-axis uses), the host wall-clock time, and a run id, plus a
free-form field dict.  Sinks are pluggable: a JSON-lines file sink for
run artifacts and an in-memory ring buffer for tests and the bench
harness.

The bus is *off* unless a sink is attached.  Hot paths guard on
``bus.enabled`` (or the owning :class:`repro.obs.Observability`'s
``enabled`` flag) so a disabled run never even constructs an event —
the §5.5 overhead numbers must not be perturbed by observability.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional


@dataclass
class Event:
    """One structured occurrence in a fuzzing run."""

    name: str
    cycles: int
    wall_time: float
    run_id: str
    fields: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """Schema-stable dict: always exactly these six keys."""
        return {"v": EVENT_SCHEMA_MAJOR, "name": self.name,
                "cycles": self.cycles, "wall_time": self.wall_time,
                "run_id": self.run_id, "fields": self.fields}


#: Major schema version stamped into every serialized event as ``"v"``.
EVENT_SCHEMA_MAJOR = 1

# The exact top-level key set every serialized event carries, in order.
EVENT_SCHEMA_KEYS = ("v", "name", "cycles", "wall_time", "run_id",
                     "fields")

#: Every event name the stack may emit.  Run-artifact consumers parse by
#: name, so the vocabulary is closed: a new emit site declares its name
#: here first, and the determinism linter (``EOF303``) rejects literal
#: ``emit("...")`` calls whose name is missing from this registry.
EVENT_REGISTRY = frozenset({
    # -- engine / run lifecycle --------------------------------------------
    "run.start", "run.end", "run.abort",
    "exec.program", "corpus.add",
    # -- coverage -----------------------------------------------------------
    "coverage.growth", "cov.truncated",
    # -- crash triage -------------------------------------------------------
    "crash.report", "monitor.detect",
    # -- debug link / liveness / recovery -----------------------------------
    "ddi.command", "link.transaction", "liveness.trip",
    "restore.reboot", "restore.reflash",
    "restore.snapshot.capture", "restore.snapshot.restore",
    "restore.snapshot.fallback", "restore.snapshot.invalidate",
    "recovery.escalate", "recovery.complete", "recovery.exhausted",
    # -- fault injection ----------------------------------------------------
    "chaos.inject",
    # -- multi-board campaigns (repro.farm) ---------------------------------
    "farm.campaign.start", "farm.campaign.end", "farm.epoch",
    "farm.crash.new", "farm.worker.done", "farm.worker.lost",
    # -- telemetry pipeline (timeseries / flight recorder) ------------------
    "ts.sample", "flight.dump",
    # -- campaign store (repro.db) ------------------------------------------
    "db.open", "db.checkpoint", "db.quarantined", "db.resume",
    "db.interrupted",
})


class Sink:
    """Where events go.  Subclasses override :meth:`emit`."""

    def emit(self, event: Event) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (idempotent)."""


class JsonlSink(Sink):
    """Append events to a JSON-lines file, one object per line.

    A campaign-wide sink sees events from every worker thread, so the
    write + line tally is serialized: interleaved ``fh.write`` calls
    would tear JSON lines mid-record, and ``lines += 1`` is a
    read-modify-write.  The payload is serialized outside the lock.
    """

    GUARDED_BY = {"lines": "_lock"}

    def __init__(self, path):
        self.path = str(path)
        self._fh = open(self.path, "w", encoding="utf-8")
        self._lock = threading.Lock()
        self.lines = 0

    def emit(self, event: Event) -> None:
        payload = json.dumps(event.to_dict(), separators=(",", ":"),
                             default=str)
        with self._lock:
            self._fh.write(payload + "\n")
            self.lines += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


class RingBufferSink(Sink):
    """Keep the most recent ``capacity`` events in memory.

    Locked for the same reason as :class:`JsonlSink`: one ring may be
    attached to a campaign-wide bus that workers emit into
    concurrently, and ``total += 1`` plus the deque append must stay
    consistent with each other.
    """

    GUARDED_BY = {"events": "_lock", "total": "_lock"}

    def __init__(self, capacity: int = 4096):
        self._lock = threading.Lock()
        self.events: Deque[Event] = deque(maxlen=capacity)
        self.total = 0

    def emit(self, event: Event) -> None:
        with self._lock:
            self.events.append(event)
            self.total += 1

    def named(self, name: str) -> List[Event]:
        """All buffered events with a given name, oldest first."""
        with self._lock:
            return [event for event in self.events if event.name == name]


class EventBus:
    """Fan events out to the attached sinks.

    ``clock`` supplies the virtual-cycle timestamp; it defaults to a
    constant 0 until the owning session binds the board's cycle counter.
    ``enabled`` flips to True on the first :meth:`attach` — emit sites
    check it before building an event, so the disabled path costs one
    attribute read.
    """

    def __init__(self, run_id: str = "",
                 clock: Optional[Callable[[], int]] = None):
        self.run_id = run_id
        self.clock: Callable[[], int] = clock or (lambda: 0)
        self.sinks: List[Sink] = []
        self.enabled = False
        self.emitted = 0

    def attach(self, sink: Sink) -> Sink:
        """Register a sink and enable the bus."""
        self.sinks.append(sink)
        self.enabled = True
        return sink

    def emit(self, name: str, **fields) -> None:
        """Stamp and deliver one event (no-op while disabled)."""
        if not self.enabled:
            return
        event = Event(name=name, cycles=self.clock(),
                      wall_time=time.time(), run_id=self.run_id,
                      fields=fields)
        self.emitted += 1
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        """Close every sink (idempotent)."""
        for sink in self.sinks:
            sink.close()
