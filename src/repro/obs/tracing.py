"""Span-style phase tracing over the virtual cycle clock.

``with tracer.span("restore"):`` attributes the enclosed virtual cycles
and wall time to a named phase.  Aggregates (count / cycles / wall
seconds / max cycles per phase) answer the paper's §5.5-style question
"where did the campaign's time go": generate / mutate / flash-program /
continue / drain-coverage / triage / restore.

Re-entrant spans of the *same* phase are ignored (the inner span is a
no-op) so nested recovery paths — the engine's ``restore`` span around
a ladder climb whose reflash rung opens its own — never double-count.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional


class SpanAggregate:
    """Accumulated totals for one phase."""

    __slots__ = ("count", "cycles", "wall_seconds", "max_cycles")

    def __init__(self):
        self.count = 0
        self.cycles = 0
        self.wall_seconds = 0.0
        self.max_cycles = 0

    def add(self, cycles: int, wall_seconds: float) -> None:
        self.count += 1
        self.cycles += cycles
        self.wall_seconds += wall_seconds
        if cycles > self.max_cycles:
            self.max_cycles = cycles

    def to_dict(self) -> Dict[str, object]:
        return {"count": self.count, "cycles": self.cycles,
                "wall_seconds": self.wall_seconds,
                "max_cycles": self.max_cycles}


class _NullSpan:
    """Shared no-op context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


NULL_SPAN = _NullSpan()


class _Span:
    """One live measurement; created only when the tracer is enabled."""

    __slots__ = ("tracer", "phase", "_start_cycles", "_start_wall")

    def __init__(self, tracer: "Tracer", phase: str):
        self.tracer = tracer
        self.phase = phase

    def __enter__(self):
        self._start_cycles = self.tracer.clock()
        self._start_wall = time.perf_counter()
        return self

    def __exit__(self, *exc_info):
        tracer = self.tracer
        tracer._active.discard(self.phase)
        aggregate = tracer.aggregates.get(self.phase)
        if aggregate is None:
            aggregate = tracer.aggregates[self.phase] = SpanAggregate()
        aggregate.add(tracer.clock() - self._start_cycles,
                      time.perf_counter() - self._start_wall)
        return False


class Tracer:
    """Phase attribution bound to one run's cycle clock."""

    def __init__(self, clock: Optional[Callable[[], int]] = None):
        self.clock: Callable[[], int] = clock or (lambda: 0)
        self.enabled = False
        self.aggregates: Dict[str, SpanAggregate] = {}
        self._active = set()

    def span(self, phase: str):
        """Context manager attributing its duration to ``phase``."""
        if not self.enabled or phase in self._active:
            return NULL_SPAN
        self._active.add(phase)
        return _Span(self, phase)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-friendly per-phase totals."""
        return {phase: aggregate.to_dict()
                for phase, aggregate in sorted(self.aggregates.items())}
