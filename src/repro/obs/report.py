"""End-of-run reporting: assemble run artifacts and render them.

A run directory (``runs/<id>/`` or whatever ``--trace-dir`` named) holds

* ``events.jsonl`` — streamed live by the run's :class:`JsonlSink`,
* ``metrics.json`` — metrics + phase aggregates + the ``FuzzStats``
  series, written here at the end of the run,
* ``report.txt`` — the human rendering: phase-time breakdown and
  per-DDI-command latency histogram summaries.

``repro report <run-dir>`` re-renders ``metrics.json`` at any later
time, so artifacts are the interchange format, not the console text.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

from repro.bench.report import render_table
from repro.fuzz.stats import FuzzStats

METRICS_FILE = "metrics.json"
EVENTS_FILE = "events.jsonl"
REPORT_FILE = "report.txt"

# Loop phases in pipeline order (the report keeps this order).
PHASE_ORDER = ("generate", "mutate", "flash-program", "continue",
               "drain-coverage", "triage", "restore")


def collect_run_data(obs, stats: Optional[FuzzStats] = None,
                     meta: Optional[Dict[str, object]] = None) -> dict:
    """Bundle one run's observability state into a JSON-friendly dict."""
    data = obs.snapshot()
    data["meta"] = dict(meta or {})
    if stats is not None:
        data["stats"] = stats.to_dict()
    return data


def collect_campaign_data(obs, campaign_stats,
                          meta: Optional[Dict[str, object]] = None) -> dict:
    """Bundle a multi-board campaign into a JSON-friendly dict.

    ``campaign_stats`` is a :class:`repro.fuzz.stats.CampaignStats`;
    its per-worker stats nest under ``campaign.workers`` so
    ``render_report`` can draw the per-board table next to the merged
    headline numbers.
    """
    data = obs.snapshot()
    data["meta"] = dict(meta or {})
    data["campaign"] = campaign_stats.to_dict()
    return data


def write_run_artifacts(run_dir: str, data: dict) -> str:
    """Write ``metrics.json`` + ``report.txt`` into ``run_dir``."""
    os.makedirs(run_dir, exist_ok=True)
    with open(os.path.join(run_dir, METRICS_FILE), "w",
              encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, default=str)
        fh.write("\n")
    text = render_report(data)
    with open(os.path.join(run_dir, REPORT_FILE), "w",
              encoding="utf-8") as fh:
        fh.write(text)
        if not text.endswith("\n"):
            fh.write("\n")
    return run_dir


def load_run_data(run_dir: str) -> dict:
    """Read a run directory's ``metrics.json``."""
    with open(os.path.join(run_dir, METRICS_FILE), encoding="utf-8") as fh:
        return json.load(fh)


def count_events(run_dir: str) -> int:
    """Number of lines in the run's ``events.jsonl`` (0 if absent)."""
    path = os.path.join(run_dir, EVENTS_FILE)
    if not os.path.exists(path):
        return 0
    with open(path, encoding="utf-8") as fh:
        return sum(1 for _ in fh)


def _ordered_phases(phases: Dict[str, dict]):
    known = [name for name in PHASE_ORDER if name in phases]
    extra = sorted(name for name in phases if name not in PHASE_ORDER)
    return known + extra


def render_report(data: dict) -> str:
    """Human rendering of one run's ``metrics.json`` payload."""
    sections = []
    meta = data.get("meta", {})
    run_id = data.get("run_id", "") or "(unnamed run)"
    header = [f"run       : {run_id}"]
    for key in sorted(meta):
        header.append(f"{key:10}: {meta[key]}")
    header.append(f"events    : {data.get('events_emitted', 0)}")
    sections.append("\n".join(header))

    stats_data = data.get("stats")
    if stats_data:
        stats = FuzzStats.from_dict(stats_data)
        sections.append("summary   : " + stats.summary())
        if stats.reachable_edges > 0:
            sections.append(
                f"saturation: {stats.final_edges()} of "
                f"{stats.reachable_edges} statically-reachable edges "
                f"({stats.coverage_saturation():.1%})")
        if stats.recoveries or stats.recovery_failures:
            sections.append(
                f"recovery  : {stats.recoveries} ladder climbs, "
                f"{stats.reattaches} reattaches, "
                f"{stats.recovery_failures} exhausted")

    campaign_data = data.get("campaign")
    if campaign_data:
        from repro.fuzz.stats import CampaignStats
        campaign = CampaignStats.from_dict(campaign_data)
        sections.append("campaign  : " + campaign.summary())
        rows = []
        for index, worker in enumerate(campaign.workers):
            rows.append([f"worker-{index}", worker.programs_executed,
                         worker.final_edges(), worker.unique_crashes,
                         worker.imported_seeds, worker.restorations])
        rows.append(["merged", campaign.total_programs(),
                     campaign.merged_edges,
                     campaign.merged_unique_crashes,
                     campaign.seeds_imported, "-"])
        sections.append(render_table(
            "Campaign workers (merged frontier across boards)",
            ["board", "execs", "edges", "crashes", "imports",
             "restores"], rows))

    phases = data.get("phases", {})
    if phases:
        total = sum(entry["cycles"] for entry in phases.values()) or 1
        rows = []
        for name in _ordered_phases(phases):
            entry = phases[name]
            rows.append([name, entry["count"], entry["cycles"],
                         f"{100.0 * entry['cycles'] / total:.1f}%",
                         f"{1000.0 * entry['wall_seconds']:.1f}"])
        sections.append(render_table(
            "Phase-time breakdown (virtual cycles)",
            ["phase", "spans", "cycles", "share", "wall ms"], rows))

    histograms = data.get("metrics", {}).get("histograms", {})
    ddi = {name: snap for name, snap in histograms.items()
           if name.startswith("ddi.cmd.")}
    if ddi:
        rows = []
        for name in sorted(ddi):
            snap = ddi[name]
            count = snap.get("count", 0)
            mean = snap.get("mean", 0.0)
            peak = snap.get("max") or 0
            rows.append([name[len("ddi.cmd."):], count,
                         f"{mean:.0f}", int(peak)])
        sections.append(render_table(
            "DDI command latency (cycles per command)",
            ["command", "count", "mean", "max"], rows))
    other = {name: snap for name, snap in histograms.items()
             if name not in ddi}
    if other:
        rows = [[name, snap.get("count", 0),
                 f"{snap.get('mean', 0.0):.0f}",
                 int(snap.get("max") or 0)]
                for name, snap in sorted(other.items())]
        sections.append(render_table(
            "Other histograms", ["name", "count", "mean", "max"], rows))

    counters = data.get("metrics", {}).get("counters", {})
    chaos = {name: value for name, value in counters.items()
             if name.startswith(("recovery.", "chaos."))}
    if chaos:
        rows = [[name, value] for name, value in sorted(chaos.items())]
        sections.append(render_table(
            "Recovery ladder & fault injection",
            ["counter", "value"], rows))
    rest = {name: value for name, value in counters.items()
            if name not in chaos}
    if rest:
        rows = [[name, value] for name, value in sorted(rest.items())]
        sections.append(render_table("Counters", ["counter", "value"], rows))

    return "\n\n".join(sections)
