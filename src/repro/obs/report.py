"""End-of-run reporting: assemble run artifacts and render them.

A run directory (``runs/<id>/`` or whatever ``--trace-dir`` named) holds

* ``events.jsonl`` — streamed live by the run's :class:`JsonlSink`,
* ``metrics.json`` — metrics + phase aggregates + the ``FuzzStats``
  series, written here at the end of the run,
* ``report.txt`` — the human rendering: phase-time breakdown and
  per-DDI-command latency histogram summaries,
* ``profile.json`` — the cycle-budget phase tree
  (:mod:`repro.obs.profile`),
* ``timeseries.jsonl`` — the deterministic epoch series, streamed live
  by an attached :class:`repro.obs.timeseries.TimeSeriesSampler`,
* ``metrics.prom`` + ``report.html`` — the rendered exports
  (:mod:`repro.obs.render`).

``repro report <run-dir>`` re-renders ``metrics.json`` at any later
time, so artifacts are the interchange format, not the console text.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

from repro.bench.report import render_table
from repro.db.io import atomic_write_json, atomic_write_text
from repro.fuzz.stats import FuzzStats
from repro.obs.profile import (build_profile, profile_table_rows,
                               run_total_cycles, write_profile)
from repro.obs.render import HTML_FILE, PROM_FILE, render_html, render_prom
from repro.obs.timeseries import TIMESERIES_FILE, load_timeseries

METRICS_FILE = "metrics.json"
EVENTS_FILE = "events.jsonl"
REPORT_FILE = "report.txt"

#: Schema version stamped into ``metrics.json`` as ``schema_version``
#: (``"<major>.<minor>"``).  Bump the major on any change an existing
#: consumer would mis-parse; :func:`load_run_data` rejects majors this
#: build does not read.
SCHEMA_VERSION = "1.0"
SCHEMA_MAJOR = 1

# Loop phases in pipeline order (the report keeps this order).
PHASE_ORDER = ("generate", "mutate", "flash-program", "continue",
               "drain-coverage", "triage", "restore", "sync")


class SchemaVersionError(ValueError):
    """A run artifact's major schema version is not readable here."""


def collect_run_data(obs, stats: Optional[FuzzStats] = None,
                     meta: Optional[Dict[str, object]] = None) -> dict:
    """Bundle one run's observability state into a JSON-friendly dict."""
    if stats is not None and obs.enabled:
        # Stamp the cycle-budget attribution ratio into the metrics
        # themselves before snapshotting, so it travels with the run.
        stats_data = stats.to_dict()
        total = run_total_cycles(stats_data)
        attributed = sum(int(entry.get("cycles", 0)) for entry
                         in obs.tracer.snapshot().values())
        if total > 0:
            obs.gauge("profile.attribution").set(
                round(min(attributed, total) / total, 6))
    data = obs.snapshot()
    data["schema_version"] = SCHEMA_VERSION
    data["meta"] = dict(meta or {})
    if stats is not None:
        data["stats"] = stats.to_dict()
    return data


def collect_campaign_data(obs, campaign_stats,
                          meta: Optional[Dict[str, object]] = None) -> dict:
    """Bundle a multi-board campaign into a JSON-friendly dict.

    ``campaign_stats`` is a :class:`repro.fuzz.stats.CampaignStats`;
    its per-worker stats nest under ``campaign.workers`` so
    ``render_report`` can draw the per-board table next to the merged
    headline numbers.
    """
    data = obs.snapshot()
    data["schema_version"] = SCHEMA_VERSION
    data["meta"] = dict(meta or {})
    data["campaign"] = campaign_stats.to_dict()
    return data


def write_run_artifacts(run_dir: str, data: dict) -> str:
    """Write the full artifact set into ``run_dir``.

    ``metrics.json`` + ``report.txt`` as always, plus ``profile.json``
    (built from the payload unless the caller injected an aggregated
    one under ``data["profile"]``), ``metrics.prom`` for textfile
    scrapers, and the self-contained ``report.html`` timeline (which
    picks up ``timeseries.jsonl`` from the run directory if a sampler
    streamed one there).
    """
    os.makedirs(run_dir, exist_ok=True)
    profile = data.get("profile") or build_profile(data)
    data = dict(data)
    data.pop("profile", None)
    # Every artifact goes through the atomic write helpers: a reader
    # (or a crash) can never observe a half-written report set.
    atomic_write_json(os.path.join(run_dir, METRICS_FILE), data)
    write_profile(run_dir, profile)
    atomic_write_text(os.path.join(run_dir, REPORT_FILE),
                      render_report(data, profile=profile),
                      ensure_newline=True)
    atomic_write_text(os.path.join(run_dir, PROM_FILE),
                      render_prom({**data, "profile": profile}))
    ts_path = os.path.join(run_dir, TIMESERIES_FILE)
    timeseries = load_timeseries(ts_path) if os.path.exists(ts_path) \
        else None
    atomic_write_text(os.path.join(run_dir, HTML_FILE),
                      render_html({**data, "profile": profile},
                                  timeseries=timeseries))
    return run_dir


def schema_major(data: dict) -> int:
    """Major component of a payload's ``schema_version`` (pre-schema
    artifacts read as major 1)."""
    version = str(data.get("schema_version", SCHEMA_VERSION))
    try:
        return int(version.split(".", 1)[0])
    except ValueError:
        raise SchemaVersionError(
            f"malformed schema_version {version!r}") from None


def load_run_data(run_dir: str) -> dict:
    """Read a run directory's ``metrics.json``; rejects majors this
    build cannot parse with a clear :class:`SchemaVersionError`."""
    with open(os.path.join(run_dir, METRICS_FILE), encoding="utf-8") as fh:
        data = json.load(fh)
    major = schema_major(data)
    if major != SCHEMA_MAJOR:
        raise SchemaVersionError(
            f"{run_dir}: metrics.json has schema major {major}; this "
            f"build reads major {SCHEMA_MAJOR} — re-render with the "
            f"toolchain that produced the run")
    return data


def count_events(run_dir: str) -> int:
    """Number of lines in the run's ``events.jsonl`` (0 if absent)."""
    path = os.path.join(run_dir, EVENTS_FILE)
    if not os.path.exists(path):
        return 0
    with open(path, encoding="utf-8") as fh:
        return sum(1 for _ in fh)


def _ordered_phases(phases: Dict[str, dict]):
    known = [name for name in PHASE_ORDER if name in phases]
    extra = sorted(name for name in phases if name not in PHASE_ORDER)
    return known + extra


def render_report(data: dict, profile: Optional[dict] = None) -> str:
    """Human rendering of one run's ``metrics.json`` payload."""
    sections = []
    meta = data.get("meta", {})
    run_id = data.get("run_id", "") or "(unnamed run)"
    header = [f"run       : {run_id}"]
    for key in sorted(meta):
        header.append(f"{key:10}: {meta[key]}")
    header.append(f"events    : {data.get('events_emitted', 0)}")
    sections.append("\n".join(header))

    stats_data = data.get("stats")
    if stats_data:
        stats = FuzzStats.from_dict(stats_data)
        sections.append("summary   : " + stats.summary())
        if stats.reachable_edges > 0:
            sections.append(
                f"saturation: {stats.final_edges()} of "
                f"{stats.reachable_edges} statically-reachable edges "
                f"({stats.coverage_saturation():.1%})")
        if stats.recoveries or stats.recovery_failures:
            sections.append(
                f"recovery  : {stats.recoveries} ladder climbs, "
                f"{stats.reattaches} reattaches, "
                f"{stats.recovery_failures} exhausted")

    campaign_data = data.get("campaign")
    if campaign_data:
        from repro.fuzz.stats import CampaignStats
        campaign = CampaignStats.from_dict(campaign_data)
        sections.append("campaign  : " + campaign.summary())
        rows = []
        for index, worker in enumerate(campaign.workers):
            rows.append([f"worker-{index}", worker.programs_executed,
                         worker.final_edges(), worker.unique_crashes,
                         worker.imported_seeds, worker.restorations])
        rows.append(["merged", campaign.total_programs(),
                     campaign.merged_edges,
                     campaign.merged_unique_crashes,
                     campaign.seeds_imported, "-"])
        sections.append(render_table(
            "Campaign workers (merged frontier across boards)",
            ["board", "execs", "edges", "crashes", "imports",
             "restores"], rows))

    analysis = data.get("analysis")
    if analysis:
        lines = ["Static analysis"]
        codes = analysis.get("codes", {})
        count = analysis.get("diagnostics", 0)
        if codes:
            rendered = ", ".join(f"{code} x{codes[code]}"
                                 for code in sorted(codes))
            lines.append(f"  diagnostics: {count} ({rendered})")
        else:
            lines.append("  diagnostics: none")
        summary = analysis.get("summary", {})
        for key in ("reach.edge_universe", "conc.classes_guarded",
                    "conc.worker_functions", "conc.signal_handlers",
                    "conc.lock_edges"):
            if key in summary:
                lines.append(f"  {key:22}: {summary[key]}")
        sections.append("\n".join(lines))

    phases = data.get("phases", {})
    if phases:
        total = sum(entry["cycles"] for entry in phases.values()) or 1
        rows = []
        for name in _ordered_phases(phases):
            entry = phases[name]
            rows.append([name, entry["count"], entry["cycles"],
                         f"{100.0 * entry['cycles'] / total:.1f}%",
                         f"{1000.0 * entry['wall_seconds']:.1f}"])
        sections.append(render_table(
            "Phase-time breakdown (virtual cycles)",
            ["phase", "spans", "cycles", "share", "wall ms"], rows))

    if profile is None and (data.get("phases") or data.get("stats")):
        profile = build_profile(data)
    if profile and profile.get("total_cycles"):
        rows = profile_table_rows(profile)
        sections.append(render_table(
            "Cycle budget (phase tree, % of spent cycles)",
            ["phase", "spans", "cycles", "share"], rows))
        sections.append(
            f"attributed: {profile['attributed_cycles']} of "
            f"{profile['total_cycles']} spent cycles "
            f"({100.0 * profile['attribution']:.1f}%)")

    histograms = data.get("metrics", {}).get("histograms", {})
    ddi = {name: snap for name, snap in histograms.items()
           if name.startswith("ddi.cmd.")}
    if ddi:
        rows = []
        for name in sorted(ddi):
            snap = ddi[name]
            count = snap.get("count", 0)
            mean = snap.get("mean", 0.0)
            peak = snap.get("max") or 0
            rows.append([name[len("ddi.cmd."):], count,
                         f"{mean:.0f}", int(peak)])
        sections.append(render_table(
            "DDI command latency (cycles per command)",
            ["command", "count", "mean", "max"], rows))
    other = {name: snap for name, snap in histograms.items()
             if name not in ddi}
    if other:
        rows = [[name, snap.get("count", 0),
                 f"{snap.get('mean', 0.0):.0f}",
                 int(snap.get("max") or 0)]
                for name, snap in sorted(other.items())]
        sections.append(render_table(
            "Other histograms", ["name", "count", "mean", "max"], rows))

    counters = data.get("metrics", {}).get("counters", {})
    chaos = {name: value for name, value in counters.items()
             if name.startswith(("recovery.", "chaos."))}
    if chaos:
        rows = [[name, value] for name, value in sorted(chaos.items())]
        sections.append(render_table(
            "Recovery ladder & fault injection",
            ["counter", "value"], rows))
    rest = {name: value for name, value in counters.items()
            if name not in chaos}
    if rest:
        rows = [[name, value] for name, value in sorted(rest.items())]
        sections.append(render_table("Counters", ["counter", "value"], rows))

    return "\n\n".join(sections)
