"""``repro.obs``: structured tracing, metrics and run artifacts.

One :class:`Observability` object travels with a fuzzing run and bundles
the three instruments the stack emits into:

* an :class:`~repro.obs.events.EventBus` of structured events
  (virtual-cycle timestamp + wall clock + run id) with pluggable sinks,
* a :class:`~repro.obs.metrics.MetricsRegistry` of counters / gauges /
  fixed-bucket histograms (per-DDI-command latency, bytes moved, ...),
* a :class:`~repro.obs.tracing.Tracer` attributing cycles and wall time
  to loop phases (generate / flash-program / continue / drain-coverage /
  triage / restore).

Everything is off by default: the module-level :data:`NULL_OBS` is the
shared disabled instance every component falls back to, its ``enabled``
flag short-circuits all emit sites, and its spans are a shared no-op —
so §5.5-style overhead measurements are not perturbed.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.obs.events import (  # noqa: F401 (re-exported surface)
    EVENT_SCHEMA_KEYS,
    EVENT_SCHEMA_MAJOR,
    Event,
    EventBus,
    JsonlSink,
    RingBufferSink,
    Sink,
)
from repro.obs.flight import (  # noqa: F401
    FLIGHT_CAPACITY,
    FlightRecorder,
    load_flight,
)
from repro.obs.metrics import (  # noqa: F401
    DDI_LATENCY_BUCKETS,
    METRIC_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import (  # noqa: F401
    PROFILE_FILE,
    aggregate_profiles,
    build_profile,
    load_profile,
    write_profile,
)
from repro.obs.timeseries import (  # noqa: F401
    TIMESERIES_FILE,
    TimeSeriesSampler,
    load_timeseries,
    merge_worker_series,
    write_timeseries,
)
from repro.obs.tracing import NULL_SPAN, Tracer  # noqa: F401


class Observability:
    """Bus + metrics + tracer for one run.

    Constructed disabled; attaching any sink enables the whole bundle.
    The virtual clock is bound once a debug session exists (the board's
    cycle counter); until then timestamps read 0.
    """

    def __init__(self, run_id: str = ""):
        self._clock: Callable[[], int] = lambda: 0
        self.bus = EventBus(run_id=run_id, clock=self._read_clock)
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(clock=self._read_clock)
        self.enabled = False
        # Optional telemetry riders; ``None`` keeps the hot-loop guards
        # at a single attribute read, so the disabled path stays free.
        self.sampler: Optional[TimeSeriesSampler] = None
        self.flight: Optional[FlightRecorder] = None

    # -- wiring ---------------------------------------------------------------

    def _read_clock(self) -> int:
        return self._clock()

    def bind_clock(self, clock: Callable[[], int]) -> None:
        """Point virtual-time stamps at a cycle counter."""
        self._clock = clock

    def now(self) -> int:
        """Current virtual-cycle timestamp."""
        return self._clock()

    @property
    def run_id(self) -> str:
        return self.bus.run_id

    def set_run_id(self, run_id: str) -> None:
        """Name the run (stamped into every subsequent event)."""
        self.bus.run_id = run_id

    def attach(self, sink: Sink) -> Sink:
        """Add a sink and enable events, metrics and tracing."""
        self.bus.attach(sink)
        self.enabled = True
        self.tracer.enabled = True
        return sink

    def attach_flight(self, recorder: FlightRecorder) -> FlightRecorder:
        """Add a flight recorder: a sink that also serves black-box
        dumps via :attr:`flight` at crash / quarantine sites."""
        self.attach(recorder)
        self.flight = recorder
        return recorder

    def close(self) -> None:
        """Flush and close every sink."""
        self.bus.close()
        if self.sampler is not None:
            self.sampler.close()

    # -- emit surface (delegates; call sites guard on ``enabled``) -----------

    def emit(self, name: str, **fields) -> None:
        """Emit one structured event (no-op while disabled)."""
        self.bus.emit(name, **fields)

    def span(self, phase: str):
        """Phase-attribution context manager (shared no-op if disabled)."""
        return self.tracer.span(phase)

    def counter(self, name: str) -> Counter:
        return self.metrics.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.metrics.gauge(name)

    def histogram(self, name: str,
                  buckets=DDI_LATENCY_BUCKETS) -> Histogram:
        return self.metrics.histogram(name, buckets)

    # -- export ---------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Everything but the raw events, JSON-friendly."""
        return {"run_id": self.run_id,
                "events_emitted": self.bus.emitted,
                "metrics": self.metrics.snapshot(),
                "phases": self.tracer.snapshot()}


#: Shared always-disabled instance; the default everywhere.
NULL_OBS = Observability()


def for_run(run_id: str, sink: Optional[Sink] = None) -> Observability:
    """Fresh enabled observability bundle for one run."""
    obs = Observability(run_id=run_id)
    obs.attach(sink if sink is not None else RingBufferSink())
    return obs
