"""Deterministic time-series sampling keyed to virtual cycle epochs.

The sampler turns one run's live state (FuzzStats counters, coverage,
corpus size, link accounting, per-phase cycle totals) into a sequence of
JSONL rows, one per crossed **cycle epoch** — never per wall-clock tick.
Epoch ``k`` is the instant the board's cycle clock crosses ``k *
interval``, so two runs of the same seed produce *byte-identical*
``timeseries.jsonl`` files: every value in a row is an integer derived
from virtual time, and the EOF301 determinism lint keeps wall-clock
reads out of this module.

The farm writes one series per worker (``worker-<i>/timeseries.jsonl``)
plus a campaign-level series recorded at sync barriers; the two are
joined by :func:`merge_worker_series`, which aligns worker rows at epoch
boundaries into the merged coverage / corpus / crash / link-cost curves
the HTML timeline and the dashboard render.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, Iterable, List, Optional

#: File name of the per-run (and per-worker) series artifact.
TIMESERIES_FILE = "timeseries.jsonl"

#: Major schema version stamped into every row as ``"v"``.  Bump on any
#: change a consumer of recorded rows could mis-parse.
TS_SCHEMA_MAJOR = 1


def _row_bytes(row: Dict[str, object]) -> str:
    """Canonical one-line rendering (stable separators, given key order)."""
    return json.dumps(row, separators=(",", ":"))


class TimeSeriesSampler:
    """Record one row per crossed virtual-cycle epoch.

    ``interval`` is the epoch width in cycles.  Call
    :meth:`maybe_sample` from the hot loop — it costs one integer
    comparison until a boundary is crossed, at which point ``values_fn``
    is invoked once and a row is recorded for every epoch the clock
    passed (a long recovery can cross several; each gets the same
    values, which renders as the flat stretch it was).

    Rows go to ``path`` as JSONL when given, and are always kept in
    :attr:`rows` for in-memory consumers (bench, tests, the merge).
    """

    def __init__(self, interval: int, path: Optional[str] = None):
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.interval = int(interval)
        self.path = str(path) if path is not None else None
        self.rows: List[Dict[str, object]] = []
        self.last_epoch = 0
        self._fh = (open(self.path, "w", encoding="utf-8")
                    if self.path is not None else None)

    @property
    def next_cycles(self) -> int:
        """First cycle timestamp that will trigger the next sample."""
        return (self.last_epoch + 1) * self.interval

    def maybe_sample(self, cycles: int,
                     values_fn: Callable[[], Dict[str, object]]) -> int:
        """Record rows for every epoch boundary at or before ``cycles``.

        Returns how many rows were recorded (0 on the fast path).
        """
        if cycles < self.next_cycles:
            return 0
        values = values_fn()
        recorded = 0
        while cycles >= self.next_cycles:
            epoch = self.last_epoch + 1
            self.record(epoch, epoch * self.interval, values)
            recorded += 1
        return recorded

    def record(self, epoch: int, cycles: int,
               values: Dict[str, object]) -> Dict[str, object]:
        """Append one row (low-level; barrier-driven callers use this)."""
        row: Dict[str, object] = {"v": TS_SCHEMA_MAJOR, "epoch": epoch,
                                  "cycles": cycles}
        row.update(values)
        self.rows.append(row)
        self.last_epoch = epoch
        if self._fh is not None:
            self._fh.write(_row_bytes(row))
            self._fh.write("\n")
        return row

    def close(self) -> None:
        """Flush and close the JSONL file (idempotent)."""
        if self._fh is not None and not self._fh.closed:
            self._fh.close()


def load_timeseries(path: str) -> List[Dict[str, object]]:
    """Read one ``timeseries.jsonl`` file; rejects unknown majors.

    The sampler streams rows live, so a kill mid-run can leave a torn
    final line; like every streamed-artifact loader, this one drops an
    unparseable *last* line silently and still raises on garbage in the
    middle of the file (that is corruption, not a torn tail).
    """
    rows = []
    with open(path, encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    while lines and not lines[-1].strip():
        lines.pop()
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except ValueError:
            if index == len(lines) - 1:
                break
            raise
        major = int(row.get("v", TS_SCHEMA_MAJOR))
        if major != TS_SCHEMA_MAJOR:
            raise ValueError(
                f"{path}: unsupported timeseries schema major "
                f"{major} (this build reads {TS_SCHEMA_MAJOR})")
        rows.append(row)
    return rows


#: Worker-row fields summed into the merged row (cost + outcome tallies).
_SUMMED_FIELDS = ("programs", "crashes", "unique_crashes", "restores",
                  "recoveries", "link_txns", "link_bytes", "corpus")


def merge_worker_series(
        worker_rows: List[List[Dict[str, object]]]
) -> List[Dict[str, object]]:
    """Align per-worker series at epoch barriers into campaign curves.

    For every epoch present in any worker's series the merged row carries
    the epoch, its cycle timestamp, each worker's edge count (``lanes``),
    the best single-worker frontier (``edges_max`` — a lower bound on the
    true merged frontier, whose exact value only the orchestrator's
    barrier series knows), and the summed cost/outcome tallies.  A worker
    that has no row at an epoch (quarantined early, or finished) holds
    its last known values — the same convention a coverage step curve
    uses.  Output order is ascending epoch, so merging the same inputs
    is byte-for-byte reproducible.
    """
    epochs = sorted({int(row["epoch"])
                     for rows in worker_rows for row in rows})
    by_worker = [{int(row["epoch"]): row for row in rows}
                 for rows in worker_rows]
    merged: List[Dict[str, object]] = []
    last_seen: List[Optional[Dict[str, object]]] = \
        [None] * len(worker_rows)
    for epoch in epochs:
        lanes: List[int] = []
        cycles = 0
        sums = {name: 0 for name in _SUMMED_FIELDS}
        for index, rows in enumerate(by_worker):
            row = rows.get(epoch, last_seen[index])
            if rows.get(epoch) is not None:
                last_seen[index] = rows[epoch]
                cycles = max(cycles, int(rows[epoch]["cycles"]))
            if row is None:
                lanes.append(0)
                continue
            lanes.append(int(row.get("edges", 0)))
            for name in _SUMMED_FIELDS:
                sums[name] += int(row.get(name, 0))
        out: Dict[str, object] = {"v": TS_SCHEMA_MAJOR, "epoch": epoch,
                                  "cycles": cycles,
                                  "edges_max": max(lanes, default=0),
                                  "lanes": lanes}
        out.update(sums)
        merged.append(out)
    return merged


def write_timeseries(path: str,
                     rows: Iterable[Dict[str, object]]) -> str:
    """Write rows as canonical JSONL (the merge artifact writer).

    Unlike the sampler's live stream this writes a complete artifact in
    one shot, so it goes through the atomic-replace helper.
    """
    from repro.db.io import atomic_write_text
    return atomic_write_text(
        path, "".join(_row_bytes(row) + "\n" for row in rows))
