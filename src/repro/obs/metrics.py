"""Metrics registry: counters, gauges, fixed-bucket histograms.

Everything is plain Python with O(1) updates so instrumented hot paths
(per-DDI-command latency, coverage-drain bytes, restore latency) stay
cheap, and everything snapshots to JSON-friendly dicts for the run
artifact (``metrics.json``).
"""

from __future__ import annotations

import bisect
from typing import Dict, Optional, Sequence, Tuple

# Default latency buckets for debug-link commands, in virtual cycles.
# Probe latency per round-trip is ~1200 cycles (board catalog), so the
# buckets straddle one-command costs up to full reflash territory.
DDI_LATENCY_BUCKETS: Tuple[int, ...] = (
    500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000)

#: Every literal metric name the stack may register.  Like
#: :data:`repro.obs.events.EVENT_REGISTRY` this closes the vocabulary:
#: run-artifact consumers (the Prometheus exporter, the HTML report)
#: select by name, so a new literal ``counter("...")`` / ``gauge`` /
#: ``histogram`` site declares its name here first and the determinism
#: linter (``EOF306``) rejects unknown literals.  Dynamically formatted
#: families (``ddi.cmd.<name>``, ``ddi.bytes.<name>``,
#: ``recovery.rung.<rung>``) are outside the literal check by design.
METRIC_REGISTRY = frozenset({
    # -- engine / fuzzing loop ---------------------------------------------
    "sites.clamped", "corpus.size", "crash.observed", "exec.cycles",
    # -- coverage / debug link ---------------------------------------------
    "coverage.drain.bytes", "coverage.drain.records", "cov.truncated",
    "link.drain.skipped", "link.cache.hits", "link.transactions",
    "link.txn.cycles", "link.bytes", "uart.lines",
    # -- restore / recovery -------------------------------------------------
    "restore.latency", "recovery.latency",
    "restore.snapshot.latency", "restore.snapshot.pages",
    "restore.snapshot.fallbacks",
    # -- multi-board campaigns (repro.farm) ---------------------------------
    "farm.sync.epochs", "farm.merged.edges", "farm.shared.corpus",
    "farm.seeds.shared", "farm.seeds.imported",
    "farm.backend", "farm.shards", "farm.shard.touched",
    "farm.sync.delta.bytes", "farm.workers.lost",
    # -- telemetry pipeline -------------------------------------------------
    "ts.samples", "flight.dumps", "profile.attribution",
    # -- campaign store (repro.db) ------------------------------------------
    "db.salvaged", "db.quarantined", "db.quarantined.bytes",
    "db.uncommitted", "db.checkpoints", "db.journal.records",
    "db.journal.bytes",
})


class Counter:
    """Monotone event count."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-written value (corpus size, queue depth, ...)."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    ``buckets`` are upper bounds; a final implicit +inf bucket catches
    overflows.  Recording is a bisect into a short tuple — cheap enough
    for per-command instrumentation.
    """

    def __init__(self, name: str,
                 buckets: Sequence[float] = DDI_LATENCY_BUCKETS):
        self.name = name
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Bucket-resolution percentile estimate (q in [0, 1]).

        The estimate is a bucket upper bound clamped into the observed
        ``[min, max]`` range, so it never reports a value outside the
        data: an empty histogram reads 0, a single sample reads itself,
        ``q <= 0`` reads the min and ``q >= 1`` the max.
        """
        if not self.count:
            return 0.0
        assert self.min is not None and self.max is not None
        if self.count == 1 or q >= 1.0:
            return float(self.max)
        if q <= 0.0:
            return float(self.min)
        target = q * self.count
        seen = 0
        estimate = float(self.max)
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= target:
                if index < len(self.buckets):
                    estimate = float(self.buckets[index])
                break
        return min(max(estimate, float(self.min)), float(self.max))

    def snapshot(self) -> Dict[str, object]:
        return {"buckets": list(self.buckets), "counts": list(self.counts),
                "count": self.count, "sum": self.total,
                "min": self.min, "max": self.max, "mean": self.mean}

    def summary(self) -> str:
        """One-line human rendering for the run report."""
        if not self.count:
            return "n=0"
        return (f"n={self.count} mean={self.mean:.0f} "
                f"p50~{self.percentile(0.5):.0f} "
                f"p90~{self.percentile(0.9):.0f} max={self.max:.0f}")


class MetricsRegistry:
    """Get-or-create registry; same name always returns the same object."""

    def __init__(self):
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str,
                  buckets: Sequence[float] = DDI_LATENCY_BUCKETS) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(name, buckets)
        return histogram

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly dump of every metric."""
        return {
            "counters": {name: c.value
                         for name, c in sorted(self.counters.items())},
            "gauges": {name: g.value
                       for name, g in sorted(self.gauges.items())},
            "histograms": {name: h.snapshot()
                           for name, h in sorted(self.histograms.items())},
        }
