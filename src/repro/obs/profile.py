"""Cycle-budget profiler: attribute every spent virtual cycle to a phase.

Built on the span tracer's per-phase aggregates, the profiler answers
the EmbedFuzz-style question "where did the board time actually go": it
folds raw span names into a small phase tree (generate / inject / exec /
cov-drain / triage / restore / sync), measures the run's total spent
cycles from the stats series (``final - start_cycles``), and reports the
attributed share — the acceptance bar is that >= 95% of every run's
cycles land in a *named* phase, with the remainder reported explicitly
as ``unattributed`` rather than silently dropped.

Everything in ``profile.json`` derives from integer cycle counters, so
identical seeds produce byte-identical profiles (wall-clock span fields
are deliberately excluded).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

#: File name of the per-run profile artifact.
PROFILE_FILE = "profile.json"

#: Major schema version stamped into the artifact as ``"v"``.
PROFILE_SCHEMA_MAJOR = 1

#: Span name -> top-level phase of the profile tree.  Spans not listed
#: keep their own name as a top-level phase, so a new span is never
#: silently mis-attributed.
SPAN_TO_PHASE = {
    "generate": "generate",
    "mutate": "generate",
    "flash-program": "inject",
    "continue": "exec",
    "drain-coverage": "cov-drain",
    "triage": "triage",
    "restore": "restore",
    "sync": "sync",
}

#: Report order of the tree's top-level phases.
PHASE_TREE_ORDER = ("generate", "inject", "exec", "cov-drain", "triage",
                    "restore", "sync")


def _share(cycles: int, total: int) -> float:
    """Exact-ratio share rounded for stable JSON rendering."""
    return round(cycles / total, 6) if total > 0 else 0.0


def run_total_cycles(stats_data: Dict[str, object]) -> int:
    """Spent cycles of one run: last series timestamp minus the cycle
    clock at run start (boot cost is not the fuzzer's budget)."""
    series = stats_data.get("series") or []
    if not series:
        return 0
    final = int(series[-1][0])
    return max(final - int(stats_data.get("start_cycles", 0)), 0)


def build_profile(data: Dict[str, object]) -> Dict[str, object]:
    """Fold one run's ``metrics.json`` payload into a profile tree.

    ``data`` is the :func:`repro.obs.report.collect_run_data` bundle;
    only its integer cycle fields are consumed.
    """
    phases_data: Dict[str, dict] = data.get("phases", {}) or {}
    stats_data = data.get("stats") or {}
    total = run_total_cycles(stats_data)

    tree: Dict[str, dict] = {}
    for span, entry in phases_data.items():
        phase = SPAN_TO_PHASE.get(span, span)
        node = tree.setdefault(phase, {"cycles": 0, "spans": 0,
                                       "max_cycles": 0, "children": {}})
        cycles = int(entry.get("cycles", 0))
        node["cycles"] += cycles
        node["spans"] += int(entry.get("count", 0))
        node["max_cycles"] = max(node["max_cycles"],
                                 int(entry.get("max_cycles", 0)))
        node["children"][span] = {
            "cycles": cycles, "spans": int(entry.get("count", 0))}

    # The restore phase breaks down further: cycles spent inside
    # StateRestoration reflashes (the restore.latency histogram) and
    # snapshot-tier restores (the restore.snapshot.latency histogram,
    # which includes each restore's verify probe) vs the ladder's own
    # backoff/reboot/verify overhead around them.  The snapshot child
    # only appears when snapshot restores actually happened, so
    # snapshot-less profiles keep their historical two-child shape.
    histograms = (data.get("metrics", {}) or {}).get("histograms", {})
    restore = tree.get("restore")
    if restore is not None:
        reflash = int((histograms.get("restore.latency") or {})
                      .get("sum", 0) or 0)
        reflash = min(reflash, restore["cycles"])
        snapshot_hist = histograms.get("restore.snapshot.latency") or {}
        snapshot_spans = int(snapshot_hist.get("count", 0) or 0)
        snapshot = min(int(snapshot_hist.get("sum", 0) or 0),
                       restore["cycles"] - reflash)
        restore["children"] = {
            "reflash": {"cycles": reflash,
                        "spans": int((histograms.get("restore.latency")
                                      or {}).get("count", 0) or 0)},
            "ladder-overhead": {
                "cycles": restore["cycles"] - reflash - snapshot,
                "spans": restore["spans"]},
        }
        if snapshot_spans > 0:
            restore["children"]["snapshot"] = {
                "cycles": snapshot, "spans": snapshot_spans}

    attributed = sum(node["cycles"] for node in tree.values())
    if total <= 0:
        # No series (e.g. a run that never executed): fall back to the
        # attributed sum so shares still render as fractions of 1.
        total = attributed

    ordered = [name for name in PHASE_TREE_ORDER if name in tree]
    ordered += sorted(name for name in tree if name not in PHASE_TREE_ORDER)
    phases: List[Dict[str, object]] = []
    for name in ordered:
        node = tree[name]
        children = [
            {"name": child, "cycles": entry["cycles"],
             "share": _share(entry["cycles"], total),
             "spans": entry["spans"]}
            for child, entry in sorted(node["children"].items())]
        phases.append({"name": name, "cycles": node["cycles"],
                       "share": _share(node["cycles"], total),
                       "spans": node["spans"],
                       "max_cycles": node["max_cycles"],
                       "children": children})
    unattributed = max(total - attributed, 0)
    phases.append({"name": "unattributed", "cycles": unattributed,
                   "share": _share(unattributed, total), "spans": 0,
                   "max_cycles": 0, "children": []})
    return {"v": PROFILE_SCHEMA_MAJOR,
            "run_id": data.get("run_id", ""),
            "total_cycles": total,
            "attributed_cycles": min(attributed, total),
            "attribution": _share(min(attributed, total), total),
            "phases": phases}


def aggregate_profiles(
        profiles: List[Dict[str, object]],
        run_id: str = "") -> Dict[str, object]:
    """Sum several runs' profiles into one (the campaign artifact).

    Cycle counts add; shares and the attribution ratio are recomputed
    against the summed total, so the aggregate stays exact.
    """
    total = sum(int(p.get("total_cycles", 0)) for p in profiles)
    merged: Dict[str, Dict[str, object]] = {}
    order: List[str] = []
    for profile in profiles:
        for phase in profile.get("phases", []):
            name = phase["name"]
            node = merged.get(name)
            if node is None:
                node = merged[name] = {"name": name, "cycles": 0,
                                       "spans": 0, "max_cycles": 0,
                                       "children": []}
                order.append(name)
            node["cycles"] += int(phase.get("cycles", 0))
            node["spans"] += int(phase.get("spans", 0))
            node["max_cycles"] = max(node["max_cycles"],
                                     int(phase.get("max_cycles", 0)))
    phases = []
    attributed = 0
    for name in order:
        node = merged[name]
        if name != "unattributed":
            attributed += node["cycles"]
        node["share"] = _share(node["cycles"], total)
        phases.append(node)
    return {"v": PROFILE_SCHEMA_MAJOR, "run_id": run_id,
            "total_cycles": total,
            "attributed_cycles": min(attributed, total),
            "attribution": _share(min(attributed, total), total),
            "phases": phases}


def profile_table_rows(profile: Dict[str, object]) -> List[List[object]]:
    """Rows for the report's "Cycle budget" table (children indented)."""
    rows: List[List[object]] = []
    for phase in profile.get("phases", []):
        rows.append([phase["name"], phase["spans"], phase["cycles"],
                     f"{100.0 * phase['share']:.1f}%"])
        children = phase.get("children", [])
        if len(children) > 1:
            for child in children:
                rows.append([f"  {child['name']}", child["spans"],
                             child["cycles"],
                             f"{100.0 * child['share']:.1f}%"])
    return rows


def write_profile(run_dir: str, profile: Dict[str, object]) -> str:
    """Write ``profile.json`` into a run directory."""
    path = os.path.join(run_dir, PROFILE_FILE)
    from repro.db.io import atomic_write_json
    return atomic_write_json(path, profile)


def load_profile(run_dir: str) -> Dict[str, object]:
    """Read a run directory's ``profile.json``; rejects unknown majors."""
    path = os.path.join(run_dir, PROFILE_FILE)
    with open(path, encoding="utf-8") as fh:
        profile = json.load(fh)
    major = int(profile.get("v", PROFILE_SCHEMA_MAJOR))
    if major != PROFILE_SCHEMA_MAJOR:
        raise ValueError(
            f"{path}: unsupported profile schema major {major} "
            f"(this build reads {PROFILE_SCHEMA_MAJOR})")
    return profile
