"""Run one fuzzer on one target, repeatedly, and summarise.

Every engine (EOF, EOF-nf, Tardis, GDBFuzz, SHIFT, Gustave) is built
fresh per seed — new board, new image, new RNG — so seeds are genuinely
independent repetitions, as in the paper's 5-run protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.baselines import (
    GdbFuzzEngine,
    GustaveEngine,
    ShiftEngine,
    TardisEngine,
    make_eof_nf_engine,
)
from repro.errors import RecoveryExhausted
from repro.firmware.builder import BuildInfo, build_firmware
from repro.fuzz.engine import EngineOptions, EofEngine, FuzzResult
from repro.fuzz.stats import series_edges_at
from repro.fuzz.targets import TargetConfig
from repro.obs import Observability, RingBufferSink
from repro.spec.llmgen import generate_validated_specs


@dataclass
class SeedSummary:
    """Aggregated results of one fuzzer over several seeds."""

    fuzzer: str
    target: str
    edges: List[int] = field(default_factory=list)
    module_edges: List[int] = field(default_factory=list)
    bugs: List[int] = field(default_factory=list)
    execs: List[int] = field(default_factory=list)
    curves: List[List[tuple]] = field(default_factory=list)
    results: List[FuzzResult] = field(default_factory=list)
    # Per-seed debug-link accounting (repro.link).
    link_transactions: List[int] = field(default_factory=list)
    link_bytes: List[int] = field(default_factory=list)
    # Per-seed observability snapshots (run_seeds(observe=True) only).
    obs_snapshots: List[dict] = field(default_factory=list)
    # Per-seed cycle-budget profiles (observe=True only).
    profiles: List[dict] = field(default_factory=list)
    # Per-seed in-memory time series (observe=True + sample_interval).
    timeseries: List[List[dict]] = field(default_factory=list)

    @property
    def mean_edges(self) -> float:
        """Mean branch coverage over seeds."""
        return sum(self.edges) / max(len(self.edges), 1)

    @property
    def mean_link_transactions(self) -> float:
        """Mean debug-link transactions per seed."""
        return sum(self.link_transactions) / max(len(self.link_transactions), 1)

    @property
    def mean_link_bytes(self) -> float:
        """Mean debug-link frame bytes per seed."""
        return sum(self.link_bytes) / max(len(self.link_bytes), 1)

    @property
    def mean_transactions_per_program(self) -> float:
        """Link transactions per attempted program (the §4.5 lever)."""
        programs = sum(r.stats.programs_executed + r.stats.rejected_programs
                       for r in self.results)
        return sum(self.link_transactions) / max(programs, 1)

    @property
    def mean_module_edges(self) -> float:
        """Mean module-confined coverage over seeds (Table 4 cells)."""
        return sum(self.module_edges) / max(len(self.module_edges), 1)

    @property
    def mean_saturation(self) -> float:
        """Mean coverage saturation (edges seen / statically-reachable
        edge universe) over seeds whose engine computed a universe; 0.0
        when none did (buffer-based baselines skip the analysis)."""
        values = [r.stats.coverage_saturation() for r in self.results
                  if r.stats.reachable_edges > 0]
        return sum(values) / max(len(values), 1)

    def curve_band(self, timestamps: Sequence[int]):
        """(mean, min, max) coverage at each timestamp across seeds."""
        band = []
        for when in timestamps:
            values = [self._at(curve, when) for curve in self.curves]
            band.append((sum(values) / max(len(values), 1),
                         min(values, default=0), max(values, default=0)))
        return band

    @staticmethod
    def _at(curve, when: int) -> int:
        return series_edges_at(curve, when)

    def phase_breakdown(self) -> dict:
        """Mean virtual cycles per loop phase across observed seeds.

        Empty unless the summary was produced with ``observe=True``;
        this is what throughput-breakdown bench tables render.
        """
        totals: dict = {}
        for snapshot in self.obs_snapshots:
            for phase, entry in snapshot.get("phases", {}).items():
                totals[phase] = totals.get(phase, 0) + entry["cycles"]
        runs = max(len(self.obs_snapshots), 1)
        return {phase: cycles / runs for phase, cycles in totals.items()}

    @property
    def mean_attribution(self) -> float:
        """Mean cycle-budget attribution ratio across observed seeds
        (the >= 0.95 acceptance bar of the telemetry pipeline)."""
        values = [p.get("attribution", 0.0) for p in self.profiles]
        return sum(values) / max(len(values), 1)


def edges_in_module(result: FuzzResult, build: BuildInfo,
                    module: str) -> int:
    """Ground-truth edge count confined to one module (Table 4 columns)."""
    count = 0
    for edge in result.coverage.edges:
        symbol = build.site_table.symbol_of_site(edge & 0xFFFF)
        if symbol is None:
            continue
        if build.site_table.for_symbol(symbol).module == module:
            count += 1
    return count


def _apply_chaos(engine, chaos: str, chaos_seed: Optional[int]):
    """Point an engine's options at a fault-injection profile.

    Works on anything built around the EOF loop: bare :class:`EofEngine`
    or wrappers that expose the core at ``.engine`` (Tardis).
    """
    core = engine.engine if hasattr(engine, "engine") else engine
    options = getattr(core, "options", None)
    if not isinstance(options, EngineOptions):
        raise ValueError(
            f"engine {type(engine).__name__} does not support fault "
            f"injection (no EngineOptions)")
    options.chaos_profile = chaos
    options.chaos_seed = chaos_seed
    return engine


def make_engine(fuzzer: str, build: BuildInfo, seed: int,
                budget_cycles: int, entry_api: Optional[str] = None,
                restrict_modules: Optional[Sequence[str]] = None,
                obs: Optional[Observability] = None,
                chaos: Optional[str] = None,
                chaos_seed: Optional[int] = None,
                link_batching: bool = True,
                snapshots: bool = True,
                restore_every: int = 0):
    """Construct a named engine for a built target.

    ``obs`` attaches an observability bundle to the engines built on the
    EOF loop (buffer-based baselines ignore it).  ``chaos`` names a
    :data:`repro.chaos.PROFILES` fault-injection profile for engines
    built on the EOF loop; the buffer-based baselines reject it.
    ``link_batching=False`` pins the plain EOF engine to the historical
    one-command-per-round-trip link path (the throughput bench's
    before/after comparison).  ``snapshots=False`` likewise pins it to
    the reflash-only recovery ladder, and ``restore_every=N`` restores
    the pristine post-boot state every N programs (the snapshot
    throughput bench's workload).
    """
    engine = None
    if fuzzer in ("eof", "eof-nf", "tardis"):
        spec = generate_validated_specs(build)
        if restrict_modules:
            spec = spec.restricted_to(
                [a.name for a in build.api_defs
                 if a.module in set(restrict_modules)])
        if fuzzer == "eof":
            engine = EofEngine(build, spec, EngineOptions(
                seed=seed, budget_cycles=budget_cycles,
                link_batching=link_batching, snapshots=snapshots,
                restore_every=restore_every), obs=obs)
        elif fuzzer == "eof-nf":
            engine = make_eof_nf_engine(build, spec, seed=seed,
                                        budget_cycles=budget_cycles, obs=obs)
        else:
            engine = TardisEngine(build, spec, seed=seed,
                                  budget_cycles=budget_cycles, obs=obs)
    elif fuzzer == "gdbfuzz":
        engine = GdbFuzzEngine(build, entry_api, seed=seed,
                               budget_cycles=budget_cycles)
    elif fuzzer == "shift":
        engine = ShiftEngine(build, entry_api, seed=seed,
                             budget_cycles=budget_cycles)
    elif fuzzer == "gustave":
        engine = GustaveEngine(build, seed=seed, budget_cycles=budget_cycles)
    if engine is None:
        raise ValueError(f"unknown fuzzer {fuzzer!r}")
    if chaos is not None:
        _apply_chaos(engine, chaos, chaos_seed)
    return engine


def run_engine(fuzzer: str, target: TargetConfig, seed: int,
               budget_cycles: int, entry_api: Optional[str] = None,
               restrict_modules: Optional[Sequence[str]] = None,
               module: Optional[str] = None,
               obs: Optional[Observability] = None,
               chaos: Optional[str] = None,
               chaos_seed: Optional[int] = None,
               link_batching: bool = True,
               snapshots: bool = True,
               restore_every: int = 0):
    """One seed of one fuzzer on one target; returns (result, build)."""
    build = build_firmware(target.build_config())
    engine = make_engine(fuzzer, build, seed, budget_cycles,
                         entry_api=entry_api,
                         restrict_modules=restrict_modules, obs=obs,
                         chaos=chaos, chaos_seed=chaos_seed,
                         link_batching=link_batching,
                         snapshots=snapshots,
                         restore_every=restore_every)
    result = engine.run()
    return result, build


def run_seeds(fuzzer: str, target: TargetConfig, seeds: int,
              budget_cycles: int, entry_api: Optional[str] = None,
              restrict_modules: Optional[Sequence[str]] = None,
              module: Optional[str] = None,
              observe: bool = False,
              chaos: Optional[str] = None,
              link_batching: bool = True,
              snapshots: bool = True,
              restore_every: int = 0,
              sample_interval: int = 0) -> SeedSummary:
    """The paper's repeated-runs protocol.

    ``observe=True`` attaches a fresh in-memory observability bundle to
    each seed and stores its snapshot plus cycle-budget profile, so
    bench tables can report where the budget's cycles went (see
    :meth:`SeedSummary.phase_breakdown` / :attr:`profiles`).
    ``sample_interval`` additionally rides an in-memory
    :class:`~repro.obs.timeseries.TimeSeriesSampler` on each seed (rows
    land in :attr:`SeedSummary.timeseries`).  ``chaos`` runs every seed
    under that fault-injection profile (the fault streams reseed per
    fuzzing seed, so repetitions stay independent).
    """
    from repro.obs.profile import build_profile
    from repro.obs.timeseries import TimeSeriesSampler

    summary = SeedSummary(fuzzer=fuzzer, target=target.name)
    for seed in range(1, seeds + 1):
        obs = None
        if observe:
            obs = Observability(
                run_id=f"{fuzzer}-{target.name}-seed{seed}")
            obs.attach(RingBufferSink())
            if sample_interval > 0:
                obs.sampler = TimeSeriesSampler(sample_interval)
        result, build = run_engine(fuzzer, target, seed, budget_cycles,
                                   entry_api=entry_api,
                                   restrict_modules=restrict_modules,
                                   obs=obs, chaos=chaos, chaos_seed=seed,
                                   link_batching=link_batching,
                                   snapshots=snapshots,
                                   restore_every=restore_every)
        summary.edges.append(result.edges)
        summary.bugs.append(len(result.crash_db))
        summary.execs.append(result.stats.programs_executed)
        summary.curves.append(list(result.stats.series))
        summary.results.append(result)
        summary.link_transactions.append(result.stats.link_transactions)
        summary.link_bytes.append(result.stats.link_bytes)
        if obs is not None:
            snapshot = obs.snapshot()
            summary.obs_snapshots.append(snapshot)
            summary.profiles.append(build_profile(
                {**snapshot, "stats": result.stats.to_dict()}))
            if obs.sampler is not None:
                summary.timeseries.append(list(obs.sampler.rows))
        if module is not None:
            summary.module_edges.append(
                edges_in_module(result, build, module))
    return summary


def make_campaign(target: TargetConfig, workers: int,
                  total_budget_cycles: int, campaign_seed: int = 1,
                  sync_interval: int = 400_000, import_cap: int = 2,
                  import_min_novelty: int = 2,
                  replay_imports: bool = True,
                  share_frontier: bool = False,
                  obs: Optional[Observability] = None,
                  worker_obs: Optional[Callable[[int],
                                                Observability]] = None,
                  epoch_hook: Optional[Callable[[dict], None]] = None,
                  state_dir: Optional[str] = None,
                  resume: bool = False,
                  warm_start_dir: Optional[str] = None,
                  checkpoint_every: int = 4,
                  snapshots: bool = True,
                  backend: str = "thread",
                  corpus_shards: Optional[int] = None):
    """Build (but do not run) one multi-board campaign orchestrator.

    Splitting construction from :meth:`~repro.farm.CampaignOrchestrator.run`
    lets callers wire signal handlers at the orchestrator before the
    first epoch (the CLI's graceful-interrupt path).  ``state_dir``
    attaches a :class:`repro.db.CampaignStore` (created on first use);
    with ``resume`` the campaign fast-forwards deterministically to the
    store's last committed epoch and continues.  ``warm_start_dir``
    pre-seeds the shared corpus from *another* campaign's store.
    ``backend`` picks where workers execute (``thread``, ``process``,
    ``socket``); remote backends build their engines in the worker,
    so ``worker_obs`` only applies to the thread backend.
    """
    from repro.farm import (CampaignOptions, CampaignOrchestrator,
                            WorkerSpec)
    from repro.farm.orchestrator import campaign_config
    from repro.farm.state import DEFAULT_SHARDS

    def factory(index: int, seed: int, budget_cycles: int) -> EofEngine:
        # Each worker engine constructs its own SnapshotManager against
        # its own board — per-worker snapshots, no shared state.
        build = build_firmware(target.build_config())
        spec = generate_validated_specs(build)
        bundle = worker_obs(index) if worker_obs is not None else None
        return EofEngine(build, spec, EngineOptions(
            seed=seed, budget_cycles=budget_cycles,
            snapshots=snapshots, name=f"eof-w{index}"), obs=bundle)

    options = CampaignOptions(
        campaign_seed=campaign_seed, workers=workers,
        sync_interval=sync_interval,
        total_budget_cycles=total_budget_cycles,
        import_cap=import_cap,
        import_min_novelty=import_min_novelty,
        replay_imports=replay_imports,
        share_frontier=share_frontier,
        backend=backend,
        corpus_shards=(DEFAULT_SHARDS if corpus_shards is None
                       else corpus_shards))
    worker_spec = None
    if backend != "thread":
        worker_spec = WorkerSpec(target=target.name,
                                 snapshots=snapshots)
    store = None
    if state_dir is not None:
        from repro.db import CampaignStore
        store = CampaignStore(state_dir, obs=obs,
                              checkpoint_every=checkpoint_every)
        store.open(campaign_config(options, target.name), resume=resume)
    warm_entries = None
    if warm_start_dir is not None:
        from repro.db import CampaignStore
        warm_entries = CampaignStore.read(
            warm_start_dir, obs=obs).corpus_entries()
    orchestrator = CampaignOrchestrator(factory, options, obs=obs,
                                        store=store,
                                        warm_entries=warm_entries,
                                        worker_spec=worker_spec)
    orchestrator.epoch_hook = epoch_hook
    return orchestrator


def run_campaign(target: TargetConfig, workers: int,
                 total_budget_cycles: int, **kwargs):
    """One parallel multi-board campaign of EOF on one target.

    Spins up ``workers`` engines (fresh board + image + derived RNG
    stream each) under a shared corpus/coverage/crash-triage state and
    returns the :class:`repro.farm.CampaignResult`.  ``sync_interval``
    is in virtual cycles per worker; 0 disables syncing, which makes
    the campaign exactly N independent single-board runs whose stats
    are merged at the end — the scaling baseline the benchmark
    compares against.  ``worker_obs`` (worker index -> bundle) attaches
    per-worker observability, e.g. one trace subdirectory per board.
    ``epoch_hook`` is called on the coordinator thread at every sync
    barrier with the epoch summary (the ``--dashboard`` feed).  See
    :func:`make_campaign` for the persistence knobs (``state_dir``,
    ``resume``, ``warm_start_dir``, ``checkpoint_every``).
    """
    return make_campaign(target, workers, total_budget_cycles,
                         **kwargs).run()


@dataclass
class ChaosOutcome:
    """One chaos profile's survival record over several seeds."""

    profile: str
    edges: List[int] = field(default_factory=list)
    recoveries: List[int] = field(default_factory=list)
    aborted: int = 0  # seeds that ended in RecoveryExhausted

    @property
    def mean_edges(self) -> float:
        """Mean coverage over the seeds that produced a result."""
        return sum(self.edges) / max(len(self.edges), 1)

    @property
    def mean_recoveries(self) -> float:
        """Mean successful ladder climbs per seed."""
        return sum(self.recoveries) / max(len(self.recoveries), 1)


def run_chaos_matrix(target: TargetConfig, profiles: Sequence[str],
                     seeds: int, budget_cycles: int,
                     fuzzer: str = "eof") -> List[ChaosOutcome]:
    """Edges-under-chaos bench: one EOF run per (profile, seed).

    A seed that exhausts the recovery ladder counts as ``aborted`` —
    its partial stats still contribute edge/recovery numbers, because a
    fuzzer that quarantines a dead board after real work is not the
    same as one that produced nothing.
    """
    outcomes = []
    for profile in profiles:
        outcome = ChaosOutcome(profile=profile)
        for seed in range(1, seeds + 1):
            build = build_firmware(target.build_config())
            engine = make_engine(fuzzer, build, seed, budget_cycles,
                                 chaos=profile, chaos_seed=seed)
            core = engine.engine if hasattr(engine, "engine") else engine
            try:
                result = engine.run()
            except RecoveryExhausted:
                outcome.aborted += 1
                outcome.edges.append(core.coverage.edge_count)
                outcome.recoveries.append(core.stats.recoveries)
            else:
                outcome.edges.append(result.edges)
                outcome.recoveries.append(result.stats.recoveries)
        outcomes.append(outcome)
    return outcomes
