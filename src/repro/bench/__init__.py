"""Benchmark harness: budgets, runners and paper-style reporting.

One module per concern:

* :mod:`budget` — maps the paper's wall-clock durations (24 h campaigns,
  10-minute overhead windows) onto deterministic virtual-cycle budgets,
  scalable via ``EOF_BENCH_SCALE``.
* :mod:`runner` — builds a target, constructs the requested engine and
  runs it for one seed; plus multi-seed averaging.
* :mod:`report` — renders Table 1-4 / Figure 7-8 style text output.
"""

from repro.bench.budget import BenchBudget, bench_scale
from repro.bench.runner import (
    run_engine,
    run_seeds,
    SeedSummary,
    edges_in_module,
)
from repro.bench.report import render_table, render_curve

__all__ = [
    "BenchBudget",
    "bench_scale",
    "run_engine",
    "run_seeds",
    "SeedSummary",
    "edges_in_module",
    "render_table",
    "render_curve",
]
