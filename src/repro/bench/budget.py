"""Virtual-time budgets.

The paper fuzzes each target for 24 hours, repeats every experiment 5
times, and measures execution overhead over 10-minute windows.  Our
substrate runs on a deterministic cycle clock, so "24 hours" maps to a
cycle budget.  The default budgets are sized for a laptop-scale benchmark
run (a few minutes for the whole suite); set ``EOF_BENCH_SCALE`` to grow
or shrink every budget proportionally, e.g.::

    EOF_BENCH_SCALE=4 pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os
from dataclasses import dataclass


def bench_scale() -> float:
    """The global budget multiplier (``EOF_BENCH_SCALE``, default 1)."""
    try:
        return max(float(os.environ.get("EOF_BENCH_SCALE", "1")), 0.01)
    except ValueError:
        return 1.0


@dataclass(frozen=True)
class BenchBudget:
    """Cycle budgets for one experiment family."""

    campaign_cycles: int     # the "24 hour" fuzzing campaign
    overhead_cycles: int     # the "10 minute" overhead window
    seeds: int               # repetitions (the paper uses 5)

    @classmethod
    def default(cls) -> "BenchBudget":
        """The laptop-scale defaults, scaled by EOF_BENCH_SCALE."""
        scale = bench_scale()
        return cls(
            campaign_cycles=int(8_000_000 * scale),
            overhead_cycles=int(600_000 * scale),
            seeds=max(int(round(3 * min(scale, 1.67))), 1),
        )

    def curve_samples(self, points: int = 25):
        """Evenly spaced cycle timestamps for coverage-growth curves."""
        step = self.campaign_cycles // points
        return [step * i for i in range(1, points + 1)]
