"""Paper-style text rendering for tables and coverage curves."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def render_table(title: str, columns: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """A fixed-width table with a title rule, like the paper's tables."""
    widths = [len(str(column)) for column in columns]
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(cells):
        return "  ".join(cell.ljust(widths[i])
                         for i, cell in enumerate(cells))
    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    out = [title, rule, line([str(c) for c in columns]), rule]
    out.extend(line(row) for row in str_rows)
    out.append(rule)
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    return str(cell)


def improvement(ours: float, theirs: float) -> str:
    """The parenthesised "+X%" the paper's tables carry."""
    if theirs <= 0:
        return "(n/a)"
    return f"(+{100.0 * (ours - theirs) / theirs:.2f}%)"


def render_curve(title: str,
                 series: Dict[str, List[Tuple[float, float, float]]],
                 timestamps: Sequence[int], width: int = 60,
                 height: int = 14) -> str:
    """ASCII coverage-growth curves with min/max bands (Figure 7/8).

    ``series`` maps a fuzzer name to [(mean, lo, hi)] aligned with
    ``timestamps``.
    """
    peak = max((point[2] for band in series.values() for point in band),
               default=1) or 1
    grid = [[" "] * width for _ in range(height)]
    marks = "ox+*#@"
    legend = []
    for index, (name, band) in enumerate(sorted(series.items())):
        mark = marks[index % len(marks)]
        legend.append(f"{mark}={name}")
        for column in range(width):
            sample = min(int(column * len(band) / width), len(band) - 1)
            mean = band[sample][0]
            row = height - 1 - int((mean / peak) * (height - 1))
            grid[row][column] = mark
    lines = [title, f"y: branches (peak {int(peak)}), "
                    f"x: virtual time ({timestamps[-1]} cycles)"]
    for row_index, row in enumerate(grid):
        y_value = int(peak * (height - 1 - row_index) / (height - 1))
        lines.append(f"{y_value:6d} |" + "".join(row))
    lines.append("       +" + "-" * width)
    lines.append("        " + "  ".join(legend))
    return "\n".join(lines)
