"""Campaign worker child process (``python -m repro.farm.procworker``).

One engine per process: the coordinator spawns this module, hands it a
:class:`~repro.farm.wire.WorkerSpec`, and drives it through the farm
wire protocol — ``hello``/``start``, then one ``epoch`` request per
sync barrier answered with a delta-only ``epoch_result``, ``deliver``
for cross-worker imports, ``finish`` for the final stats, ``exit``.

The child keeps exactly the barrier bookkeeping the in-thread backend
keeps on the coordinator (offered digests, reported edges, crash
offset), so an epoch result carries only what is *new* since the last
barrier — the O(delta) half of the sharded-sync contract.

Transports: ``--transport pipe`` frames journal-CRC records over
stdin/stdout (the process backend); ``--transport socket --connect N``
dials ``127.0.0.1:N`` and speaks EOFL host frames (the socket
backend).  On the pipe transport, ``sys.stdout`` is rebound to stderr
before the engine boots so stray prints can never corrupt a frame.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Set

from repro.errors import RecoveryExhausted
from repro.farm.wire import (
    PipeFrameIO,
    SocketFrameIO,
    WorkerSpec,
    WorkerTransportError,
    encode_epoch_result,
)
from repro.fuzz.corpus import CorpusEntry

#: Status verbs, duplicated from repro.farm.handles to keep this
#: module import-light in the child (no subprocess machinery).
_LIVE, _DONE, _ABORTED = "live", "done", "aborted"


class EngineWorker:
    """One engine plus the delta bookkeeping of its barriers."""

    def __init__(self, spec: WorkerSpec):
        self.spec = spec
        self.engine = None
        self._offered: Set[str] = set()
        self._reported_edges: Set[int] = set()
        self._crash_offset = 0

    def start(self) -> Dict[str, object]:
        from repro.firmware.builder import build_firmware
        from repro.fuzz.engine import EngineOptions, EofEngine
        from repro.fuzz.targets import get_target
        from repro.spec.llmgen import generate_validated_specs

        target = get_target(self.spec.target)
        build = build_firmware(target.build_config())
        spec_set = generate_validated_specs(build)
        self.engine = EofEngine(build, spec_set, EngineOptions(
            seed=self.spec.seed,
            budget_cycles=self.spec.budget_cycles,
            snapshots=self.spec.snapshots,
            name=self.spec.name))
        self.engine.start()
        return {"index": self.spec.index}

    def run_epoch(self, target_cycles: int) -> Dict[str, object]:
        engine = self.engine
        try:
            if engine.run_until(target_cycles):
                cycles = engine.session.board.machine.cycles
                status = _LIVE if cycles < self.spec.budget_cycles \
                    else _DONE
            else:
                status = _DONE
        except RecoveryExhausted:
            status = _ABORTED
        delta = [entry for entry in engine.corpus.entries
                 if entry.digest not in self._offered]
        self._offered.update(entry.digest for entry in delta)
        fresh_edges = engine.coverage.edges - self._reported_edges
        self._reported_edges |= fresh_edges
        unique = engine.crash_db.unique_crashes()
        crashes = unique[self._crash_offset:]
        self._crash_offset = len(unique)
        return encode_epoch_result(status, delta, fresh_edges, crashes,
                                   self._summary(), self._cycles())

    def deliver(self, records: List[Dict[str, object]],
                replay: bool) -> Dict[str, object]:
        from repro.fuzz.corpus import entry_from_record
        entries: List[CorpusEntry] = \
            [entry_from_record(dict(record)) for record in records]
        if replay:
            self.engine.inject_programs(
                [entry.program for entry in entries])
        else:
            self.engine.import_entries(entries)
        return {"count": len(entries)}

    def absorb(self, edges: List[int]) -> Dict[str, object]:
        self.engine.absorb_frontier({int(edge) for edge in edges})
        return {}

    def finish(self) -> Dict[str, object]:
        result = self.engine.finish()
        return {
            "name": result.name,
            "os_name": result.os_name,
            "stats": result.stats.to_dict(),
            "edges": sorted(result.coverage.edges),
            "crashes": [report.to_dict() for report
                        in result.crash_db.unique_crashes()],
            "corpus_size": result.corpus_size,
        }

    def _summary(self) -> Dict[str, int]:
        stats = self.engine.stats
        return {
            "edges": self.engine.coverage.edge_count,
            "execs": stats.programs_executed,
            "crashes": stats.unique_crashes,
            "restores": stats.restorations,
            "snapshot_restores": stats.snapshot_restores,
            "snapshot_fallbacks": stats.snapshot_fallbacks,
        }

    def _cycles(self) -> int:
        engine = self.engine
        if engine is None or engine.session is None:
            return 0
        return engine.session.board.machine.cycles


def serve(io) -> int:
    """Answer coordinator requests until ``exit`` (or transport EOF)."""
    kind, payload = io.recv()
    if kind != "hello":
        io.send("error", {"message": f"expected hello, got {kind!r}"})
        return 1
    worker = EngineWorker(WorkerSpec.from_dict(
        dict(payload.get("spec", {}))))
    while True:
        kind, payload = io.recv()
        if kind == "start":
            try:
                started = worker.start()
            except Exception as exc:  # boot failure -> typed error up
                io.send("error", {"message": f"{type(exc).__name__}: "
                                             f"{exc}"})
                return 1
            io.send("started", started)
        elif kind == "epoch":
            io.send("epoch_result", worker.run_epoch(
                int(payload.get("target", 0))))
        elif kind == "deliver":
            io.send("delivered", worker.deliver(
                list(payload.get("entries", [])),
                bool(payload.get("replay", True))))
        elif kind == "frontier":
            io.send("frontier_ok", worker.absorb(
                list(payload.get("edges", []))))
        elif kind == "finish":
            io.send("finished", worker.finish())
        elif kind == "exit":
            return 0
        else:
            io.send("error", {"message": f"unknown request {kind!r}"})
            return 1


def _open_io(transport: str, port: Optional[int]):
    if transport == "pipe":
        rfile = sys.stdin.buffer
        wfile = sys.stdout.buffer
        # Anything the engine (or a stray print) writes to stdout would
        # corrupt the frame stream; reroute the text layer to stderr.
        sys.stdout = sys.stderr
        return PipeFrameIO(rfile, wfile)
    import socket

    from repro.link.host import HostFrameStream
    sock = socket.create_connection(("127.0.0.1", int(port or 0)),
                                    timeout=60.0)
    sock.settimeout(None)
    return SocketFrameIO(HostFrameStream(sock))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.farm.procworker")
    parser.add_argument("--transport", choices=("pipe", "socket"),
                        default="pipe")
    parser.add_argument("--connect", type=int, default=None,
                        help="coordinator port (socket transport)")
    args = parser.parse_args(argv)
    io = _open_io(args.transport, args.connect)
    try:
        return serve(io)
    except WorkerTransportError:
        # The coordinator went away; nothing to report to.
        return 0
    finally:
        io.close()


if __name__ == "__main__":
    sys.exit(main())
