"""Worker wire protocol: specs, framing and epoch-result payloads.

Everything a campaign moves across a process or host boundary goes
through this module, in exactly the serialized forms the stack already
trusts:

* **payloads** are canonical JSON built from the existing round-trip
  codecs — :func:`repro.fuzz.corpus.entry_to_record`,
  :meth:`repro.fuzz.crash.CrashReport.to_dict`,
  :meth:`repro.fuzz.stats.FuzzStats.to_dict`;
* **pipe framing** reuses the campaign journal's CRC record format
  (:func:`repro.db.journal.encode_record`), so a torn or corrupt frame
  is detected the same way a torn journal is;
* **socket framing** reuses the EOFL link codec via
  :class:`repro.link.host.HostFrameStream` — one codec for target and
  fleet traffic.

Both framings speak the same ``(kind, payload)`` message surface, so
the process and socket backends share one protocol driver
(:mod:`repro.farm.handles` / :mod:`repro.farm.procworker`).  Transport
death — EOF, broken pipe, CRC failure — always surfaces as
:class:`WorkerTransportError`; the orchestrator maps it to a lost
worker, never a hung barrier.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import BinaryIO, Dict, List, Sequence, Set, Tuple

from repro.db.journal import MAGIC, MAX_PAYLOAD, encode_record
from repro.db.journal import decode_record as _decode_journal_record
from repro.fuzz.corpus import CorpusEntry, entry_from_record, entry_to_record
from repro.fuzz.crash import CrashReport
from repro.link.host import HostFrameStream, host_command, host_payload

__all__ = ["WorkerSpec", "WorkerTransportError", "PipeFrameIO",
           "SocketFrameIO", "encode_epoch_result", "decode_epoch_result",
           "frame_size"]

#: Record-type letter of a worker frame in the journal CRC format.
WIRE_RECORD_TYPE = "W"

#: Journal frame header: u16 magic | u8 version | u8 type | u32 length
#: | u32 crc (repro.db.journal).  The reader only needs magic and
#: length offsets; full verification goes through ``decode_record``.
_HEADER_SIZE = 12


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a remote worker needs to rebuild its engine.

    The coordinator derives ``index``/``seed``/``budget_cycles`` per
    worker from the campaign options (the same splitmix64 derivation
    the in-thread backend uses), so a campaign stays a pure function of
    ``(campaign_seed, workers, sync_interval)`` no matter where its
    engines run.
    """

    target: str
    index: int = 0
    seed: int = 0
    budget_cycles: int = 0
    snapshots: bool = True
    name: str = ""

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "WorkerSpec":
        return cls(target=str(data.get("target", "")),
                   index=int(data.get("index", 0)),
                   seed=int(data.get("seed", 0)),
                   budget_cycles=int(data.get("budget_cycles", 0)),
                   snapshots=bool(data.get("snapshots", True)),
                   name=str(data.get("name", "")))


class WorkerTransportError(RuntimeError):
    """The worker's transport died (EOF, broken pipe, corrupt frame)."""


class PipeFrameIO:
    """Journal-CRC frames over a pair of byte streams (stdin/stdout).

    One message is one journal record whose payload is
    ``{"kind": verb, "body": {...}}``; CRC failure or a short read is a
    dead worker, not a parse error to retry.
    """

    def __init__(self, rfile: BinaryIO, wfile: BinaryIO):
        self._rfile = rfile
        self._wfile = wfile
        self.bytes_sent = 0
        self.bytes_received = 0
        #: Size of the most recent frame in either direction — the
        #: sync-delta-bytes histogram samples this after each epoch
        #: result.
        self.last_frame_bytes = 0

    def send(self, kind: str, payload: Dict[str, object]) -> int:
        frame = encode_record(WIRE_RECORD_TYPE,
                              {"kind": kind, "body": payload})
        try:
            self._wfile.write(frame)
            self._wfile.flush()
        except (OSError, ValueError) as exc:
            raise WorkerTransportError(
                f"worker pipe write failed: {exc}") from exc
        self.bytes_sent += len(frame)
        self.last_frame_bytes = len(frame)
        return len(frame)

    def recv(self) -> Tuple[str, Dict[str, object]]:
        header = self._read_exact(_HEADER_SIZE)
        if int.from_bytes(header[0:2], "little") != MAGIC:
            raise WorkerTransportError("bad worker frame magic")
        length = int.from_bytes(header[4:8], "little")
        if length > MAX_PAYLOAD:
            raise WorkerTransportError(
                f"worker frame length {length} exceeds bound")
        body = self._read_exact(length)
        record = _decode_journal_record(header + body)
        if record is None:
            raise WorkerTransportError("worker frame failed CRC")
        self.bytes_received += _HEADER_SIZE + length
        self.last_frame_bytes = _HEADER_SIZE + length
        payload = record.payload
        kind = str(payload.get("kind", ""))
        message = payload.get("body")
        if not kind or not isinstance(message, dict):
            raise WorkerTransportError("malformed worker message")
        return kind, message

    def _read_exact(self, count: int) -> bytes:
        chunks = bytearray()
        while len(chunks) < count:
            try:
                chunk = self._rfile.read(count - len(chunks))
            except (OSError, ValueError) as exc:
                raise WorkerTransportError(
                    f"worker pipe read failed: {exc}") from exc
            if not chunk:
                raise WorkerTransportError("worker pipe closed")
            chunks += chunk
        return bytes(chunks)

    def close(self) -> None:
        for stream in (self._wfile, self._rfile):
            try:
                stream.close()
            except (OSError, ValueError):
                pass


class SocketFrameIO:
    """The same ``(kind, payload)`` surface over an EOFL host stream."""

    def __init__(self, stream: HostFrameStream):
        self._stream = stream
        self.last_frame_bytes = 0

    @property
    def bytes_sent(self) -> int:
        return self._stream.bytes_sent

    @property
    def bytes_received(self) -> int:
        return self._stream.bytes_received

    def send(self, kind: str, payload: Dict[str, object]) -> int:
        from repro.errors import ProtocolError
        try:
            sent = self._stream.send([host_command(kind, payload)])
        except ProtocolError as exc:
            raise WorkerTransportError(str(exc)) from exc
        self.last_frame_bytes = sent
        return sent

    def recv(self) -> Tuple[str, Dict[str, object]]:
        from repro.errors import ProtocolError
        before = self._stream.bytes_received
        try:
            commands = self._stream.recv()
        except ProtocolError as exc:
            raise WorkerTransportError(str(exc)) from exc
        if len(commands) != 1:
            raise WorkerTransportError(
                f"expected one host command, got {len(commands)}")
        self.last_frame_bytes = self._stream.bytes_received - before
        try:
            return host_payload(commands[0])
        except ProtocolError as exc:
            raise WorkerTransportError(str(exc)) from exc

    def close(self) -> None:
        self._stream.close()


# -- epoch-result payload ----------------------------------------------------

def encode_epoch_result(status: str, entries: Sequence[CorpusEntry],
                        edges: Sequence[int],
                        crashes: Sequence[CrashReport],
                        summary: Dict[str, int],
                        cycles: int) -> Dict[str, object]:
    """One epoch barrier's worth of worker state, JSON-friendly.

    Entries whose programs the protocol cannot encode (hostile-test
    constructions only; generated programs always encode) are counted
    in ``dropped`` rather than half-shipped.
    """
    records = []
    dropped = 0
    for entry in entries:
        record = entry_to_record(entry)
        if record is None:
            dropped += 1
            continue
        records.append(record)
    return {
        "status": status,
        "entries": records,
        "dropped": dropped,
        "edges": sorted(int(edge) for edge in edges),
        "crashes": [report.to_dict() for report in crashes],
        "summary": {key: int(value) for key, value in summary.items()},
        "cycles": int(cycles),
    }


def decode_epoch_result(payload: Dict[str, object]
                        ) -> Tuple[str, List[CorpusEntry], Set[int],
                                   List[CrashReport], Dict[str, int],
                                   int]:
    """Inverse of :func:`encode_epoch_result`."""
    entries = [entry_from_record(dict(record))
               for record in payload.get("entries", [])]
    edges = {int(edge) for edge in payload.get("edges", [])}
    crashes = [CrashReport.from_dict(dict(record))
               for record in payload.get("crashes", [])]
    summary = {str(key): int(value) for key, value
               in dict(payload.get("summary", {})).items()}
    return (str(payload.get("status", "aborted")), entries, edges,
            crashes, summary, int(payload.get("cycles", 0)))


def frame_size(kind: str, payload: Dict[str, object]) -> int:
    """Pipe-frame size of one message without shipping it.

    The in-thread backend uses this to report the *would-be* sync delta
    bytes, so the ``farm.sync.delta.bytes`` histogram is comparable
    across backends.
    """
    return len(encode_record(WIRE_RECORD_TYPE,
                             {"kind": kind, "body": payload}))
