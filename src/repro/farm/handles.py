"""Transport-agnostic worker handles: thread, subprocess, socket.

The orchestrator drives every worker through one interface,
:class:`WorkerHandle` — begin/join an epoch, inspect what the worker
knows, deliver imports, collect the final result — so *where* the
engine runs (a pool thread, a child process, the far end of a socket)
is a transport decision, not an orchestration one.

Backends:

* :class:`InThreadHandle` — the engine lives in this process and runs
  on the orchestrator's thread pool.  This is the determinism
  reference: its bookkeeping is exactly the pre-refactor
  orchestrator's, so fixed ``(campaign_seed, workers, sync_interval)``
  campaigns stay byte-identical.
* :class:`ProcessHandle` — one engine per child process
  (``python -m repro.farm.procworker``), epoch results exchanged as
  canonical-JSON frames over pipes under the journal's CRC discipline
  (:mod:`repro.farm.wire`).
* :class:`SocketHandle` — the same protocol over the EOFL host framing
  (:mod:`repro.link.host`); the handle spawns a loopback worker, but
  the stream would carry across hosts unchanged.

Remote handles mirror the worker's offered/delivered digest sets and
edge frontier on the coordinator, updating them from each epoch's
*delta*.  At a barrier the mirror equals the live engine state the
in-thread backend reads directly: pushes always precede pulls within a
barrier, imports injected via replay only execute in the *next* epoch
(so they arrive in the next delta), and a DONE worker's later deltas
are empty.  That equality is what makes the process/socket backends
produce the same merged frontier, corpus digests and crash signatures
as the in-thread reference — with O(delta) traffic.

A dead transport surfaces as :class:`WorkerLost`; the orchestrator
degrades the board to quarantined instead of hanging the barrier.
"""

from __future__ import annotations

import os
import subprocess
import sys
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set

from repro.errors import RecoveryExhausted
from repro.fuzz.corpus import CorpusEntry, entry_to_record
from repro.fuzz.crash import CrashDb, CrashReport
from repro.fuzz.engine import EofEngine, FuzzResult
from repro.fuzz.feedback import CoverageMap
from repro.fuzz.stats import FuzzStats
from repro.farm.wire import (
    PipeFrameIO,
    SocketFrameIO,
    WorkerSpec,
    WorkerTransportError,
    decode_epoch_result,
    frame_size,
)

#: Worker liveness states across epochs (shared with the orchestrator).
LIVE, DONE, ABORTED = "live", "done", "aborted"

#: The summary fields every backend reports at each barrier.
SUMMARY_FIELDS = ("edges", "execs", "crashes", "restores",
                  "snapshot_restores", "snapshot_fallbacks")


class WorkerLost(WorkerTransportError):
    """A worker's transport died mid-campaign."""

    def __init__(self, index: int, reason: str):
        super().__init__(f"worker {index} lost: {reason}")
        self.index = index
        self.reason = reason


@dataclass
class EpochOutcome:
    """What one worker brought to one epoch barrier."""

    status: str
    entries: List[CorpusEntry] = field(default_factory=list)
    edges: Set[int] = field(default_factory=set)
    crashes: List[CrashReport] = field(default_factory=list)
    summary: Dict[str, int] = field(default_factory=dict)
    cycles: int = 0
    #: Bytes the epoch result cost on the wire (measured for remote
    #: backends, computed-equivalent for the in-thread one).
    wire_bytes: int = 0


class WorkerHandle:
    """One worker as the orchestrator sees it, wherever it runs."""

    backend = "thread"

    def __init__(self, index: int):
        self.index = index

    # -- lifecycle (begin/join split so remote boots overlap) ---------------

    def begin_start(self) -> None:
        raise NotImplementedError

    def join_start(self) -> None:
        raise NotImplementedError

    def begin_epoch(self, epoch: int, target_cycles: int) -> None:
        raise NotImplementedError

    def join_epoch(self) -> EpochOutcome:
        raise NotImplementedError

    # -- barrier-time state (what sync needs to push and pull) --------------

    def known_digests(self) -> Set[str]:
        raise NotImplementedError

    def local_edges(self) -> Set[int]:
        raise NotImplementedError

    def deliver(self, entries: List[CorpusEntry], replay: bool) -> None:
        raise NotImplementedError

    def absorb_frontier(self, edges: Set[int]) -> None:
        raise NotImplementedError

    def summary(self) -> Dict[str, int]:
        raise NotImplementedError

    def cycles(self) -> int:
        raise NotImplementedError

    # -- wrap-up ------------------------------------------------------------

    def finish(self) -> FuzzResult:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class InThreadHandle(WorkerHandle):
    """The engine runs in-process on the orchestrator's pool.

    Byte-identity with the pre-refactor orchestrator comes from keeping
    its exact bookkeeping: the epoch body (worker context) only runs
    the engine; every digest/crash-offset update happens in
    :meth:`join_epoch` on the coordinator, at the barrier.
    """

    backend = "thread"

    #: Concurrency contract (EOF401): coordinator bookkeeping, touched
    #: only between epochs while the pool is joined — never from worker
    #: or signal context.  The epoch body writes no handle state.
    GUARDED_BY = {
        "_future": "@barrier",
        "_offered": "@barrier",
        "_delivered": "@barrier",
        "_reported_edges": "@barrier",
        "_crash_offset": "@barrier",
    }

    def __init__(self, index: int, engine: EofEngine,
                 worker_budget: int):
        super().__init__(index)
        self.engine = engine
        self.worker_budget = worker_budget
        #: The orchestrator's pool, installed before the first epoch.
        self.executor = None
        self._future = None
        self._offered: Set[str] = set()
        self._delivered: Set[str] = set()
        self._reported_edges: Set[int] = set()
        self._crash_offset = 0

    def begin_start(self) -> None:
        # Boot happens here, sequentially with the other workers'
        # begin_start calls: bring-up mutates per-board state only, but
        # keeping it on one thread makes boot-order effects (shared
        # build caches, clamp tallies) reproducible.
        self.engine.start()

    def join_start(self) -> None:
        return None

    def begin_epoch(self, epoch: int, target_cycles: int) -> None:
        self._future = self.executor.submit(self._epoch_body,
                                            target_cycles)

    def _epoch_body(self, target_cycles: int) -> str:
        # Worker context: runs only the engine; handle bookkeeping
        # waits for the barrier.
        engine = self.engine
        try:
            if engine.run_until(target_cycles):
                cycles = engine.session.board.machine.cycles
                return LIVE if cycles < self.worker_budget else DONE
            return DONE
        except RecoveryExhausted:
            # Quarantined board: the worker is dead, its findings are
            # not — the barrier still merges them.
            return ABORTED

    def join_epoch(self) -> EpochOutcome:
        status = self._future.result()
        self._future = None
        engine = self.engine
        delta = [entry for entry in engine.corpus.entries
                 if entry.digest not in self._offered]
        self._offered.update(entry.digest for entry in delta)
        fresh_edges = engine.coverage.edges - self._reported_edges
        self._reported_edges |= fresh_edges
        unique = engine.crash_db.unique_crashes()
        crashes = unique[self._crash_offset:]
        self._crash_offset = len(unique)
        return EpochOutcome(status=status, entries=delta,
                            edges=fresh_edges, crashes=crashes,
                            summary=self.summary(),
                            cycles=self.cycles())

    def known_digests(self) -> Set[str]:
        return (self._offered | self._delivered
                | set(self.engine.corpus.digests()))

    def local_edges(self) -> Set[int]:
        return self.engine.coverage.edges

    def deliver(self, entries: List[CorpusEntry], replay: bool) -> None:
        self._delivered.update(entry.digest for entry in entries)
        if replay:
            self.engine.inject_programs(
                [entry.program for entry in entries])
        else:
            self.engine.import_entries(entries)

    def absorb_frontier(self, edges: Set[int]) -> None:
        self.engine.absorb_frontier(edges)

    def summary(self) -> Dict[str, int]:
        stats = self.engine.stats
        return {
            "edges": self.engine.coverage.edge_count,
            "execs": stats.programs_executed,
            "crashes": stats.unique_crashes,
            "restores": stats.restorations,
            "snapshot_restores": stats.snapshot_restores,
            "snapshot_fallbacks": stats.snapshot_fallbacks,
        }

    def cycles(self) -> int:
        engine = self.engine
        if engine.session is None:
            return 0
        return engine.session.board.machine.cycles

    def finish(self) -> FuzzResult:
        return self.engine.finish()

    def close(self) -> None:
        return None


class _RemoteHandle(WorkerHandle):
    """Shared protocol driver for process and socket workers.

    All I/O happens on the coordinator thread; the fields below are
    coordinator-side mirrors of the worker, advanced by epoch deltas.
    """

    #: Concurrency contract (EOF401): every field is coordinator-only
    #: barrier bookkeeping, like the in-thread handle's.
    GUARDED_BY = {
        "_known": "@barrier",
        "_edges": "@barrier",
        "_summary": "@barrier",
        "_cycles": "@barrier",
        "_pending_epoch": "@barrier",
        "_lost_reason": "@barrier",
        "_final": "@barrier",
    }

    def __init__(self, index: int, spec: WorkerSpec):
        super().__init__(index)
        self.spec = spec
        self._io = None
        self._known: Set[str] = set()
        self._edges: Set[int] = set()
        self._summary: Dict[str, int] = {
            key: 0 for key in SUMMARY_FIELDS}
        self._cycles = 0
        self._pending_epoch = False
        self._lost_reason = ""
        self._final: Optional[FuzzResult] = None

    # -- transport ----------------------------------------------------------

    def _open_transport(self) -> None:
        raise NotImplementedError

    def _close_transport(self) -> None:
        raise NotImplementedError

    def _send(self, kind: str, payload: Dict[str, object]) -> None:
        if self._lost_reason:
            raise WorkerLost(self.index, self._lost_reason)
        try:
            self._io.send(kind, payload)
        except WorkerTransportError as exc:
            self._lost_reason = str(exc)
            raise WorkerLost(self.index, self._lost_reason) from exc

    def _recv(self, expected: str) -> Dict[str, object]:
        if self._lost_reason:
            raise WorkerLost(self.index, self._lost_reason)
        try:
            kind, payload = self._io.recv()
        except WorkerTransportError as exc:
            self._lost_reason = str(exc)
            raise WorkerLost(self.index, self._lost_reason) from exc
        if kind == "error":
            # The worker reported a real failure (bad spec, boot
            # exception).  That is a campaign bug, not a lost
            # transport: surface it.
            raise RuntimeError(
                f"worker {self.index} failed: "
                f"{payload.get('message', 'unknown error')}")
        if kind != expected:
            self._lost_reason = (f"protocol violation: expected "
                                 f"{expected!r}, got {kind!r}")
            raise WorkerLost(self.index, self._lost_reason)
        return payload

    # -- lifecycle ----------------------------------------------------------

    def begin_start(self) -> None:
        self._open_transport()
        self._send("hello", {"spec": self.spec.to_dict()})
        self._send("start", {})

    def join_start(self) -> None:
        self._recv("started")

    def begin_epoch(self, epoch: int, target_cycles: int) -> None:
        self._send("epoch", {"epoch": epoch, "target": target_cycles})
        self._pending_epoch = True

    def join_epoch(self) -> EpochOutcome:
        payload = self._recv("epoch_result")
        self._pending_epoch = False
        status, entries, edges, crashes, summary, cycles = \
            decode_epoch_result(payload)
        self._known.update(entry.digest for entry in entries)
        self._edges |= edges
        self._summary = summary
        self._cycles = cycles
        return EpochOutcome(status=status, entries=entries, edges=edges,
                            crashes=crashes, summary=summary,
                            cycles=cycles,
                            wire_bytes=self._io.last_frame_bytes)

    def known_digests(self) -> Set[str]:
        return set(self._known)

    def local_edges(self) -> Set[int]:
        return self._edges

    def deliver(self, entries: List[CorpusEntry], replay: bool) -> None:
        records = []
        for entry in entries:
            record = entry_to_record(entry)
            if record is not None:
                records.append(record)
        self._known.update(entry.digest for entry in entries)
        self._send("deliver", {"entries": records, "replay": replay})
        self._recv("delivered")

    def absorb_frontier(self, edges: Set[int]) -> None:
        self._send("frontier", {"edges": sorted(edges)})
        self._recv("frontier_ok")

    def summary(self) -> Dict[str, int]:
        return dict(self._summary)

    def cycles(self) -> int:
        return self._cycles

    def finish(self) -> FuzzResult:
        if self._final is not None:
            return self._final
        if self._lost_reason:
            self._final = self._degraded_result()
            return self._final
        try:
            self._send("finish", {})
            payload = self._recv("finished")
        except WorkerLost:
            self._final = self._degraded_result()
            return self._final
        stats = FuzzStats.from_dict(dict(payload.get("stats", {})))
        coverage = CoverageMap()
        coverage.add_edges(int(edge) for edge in
                           payload.get("edges", []))
        crash_db = CrashDb()
        for record in payload.get("crashes", []):
            crash_db.add(CrashReport.from_dict(dict(record)))
        self._final = FuzzResult(
            name=str(payload.get("name", self.spec.name)),
            os_name=str(payload.get("os_name", "")),
            stats=stats, coverage=coverage, crash_db=crash_db,
            corpus_size=int(payload.get("corpus_size", 0)))
        return self._final

    def _degraded_result(self) -> FuzzResult:
        """Best-effort result for a lost worker, from the last barrier
        mirror: the frontier it had reported is real coverage; the
        epoch that died is discarded wholesale."""
        stats = FuzzStats(
            programs_executed=self._summary.get("execs", 0),
            unique_crashes=self._summary.get("crashes", 0),
            restorations=self._summary.get("restores", 0),
            snapshot_restores=self._summary.get(
                "snapshot_restores", 0),
            snapshot_fallbacks=self._summary.get(
                "snapshot_fallbacks", 0))
        if self._edges:
            stats.record_point(self._cycles, len(self._edges))
        coverage = CoverageMap()
        coverage.add_edges(self._edges)
        return FuzzResult(name=self.spec.name, os_name="",
                          stats=stats, coverage=coverage,
                          crash_db=CrashDb(), corpus_size=0)

    def close(self) -> None:
        if self._io is not None and not self._lost_reason:
            try:
                self._io.send("exit", {})
            except WorkerTransportError:
                pass
        self._close_transport()


def _worker_argv(transport: str, extra: List[str]) -> List[str]:
    return ([sys.executable, "-m", "repro.farm.procworker",
             "--transport", transport] + extra)


def _worker_env() -> Dict[str, str]:
    """Child environment with this repro package importable."""
    import repro
    src_root = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if src_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (src_root + os.pathsep + existing
                             if existing else src_root)
    return env


class ProcessHandle(_RemoteHandle):
    """One engine in a child process, frames over stdin/stdout pipes."""

    backend = "process"

    def __init__(self, index: int, spec: WorkerSpec):
        super().__init__(index, spec)
        self._proc: Optional[subprocess.Popen] = None

    def _open_transport(self) -> None:
        try:
            self._proc = subprocess.Popen(
                _worker_argv("pipe", []),
                stdin=subprocess.PIPE, stdout=subprocess.PIPE,
                env=_worker_env())
        except OSError as exc:
            raise WorkerLost(self.index,
                             f"spawn failed: {exc}") from exc
        self._io = PipeFrameIO(self._proc.stdout, self._proc.stdin)

    def _close_transport(self) -> None:
        if self._io is not None:
            self._io.close()
        if self._proc is not None:
            try:
                self._proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self._proc.kill()
                self._proc.wait()


class SocketHandle(_RemoteHandle):
    """The same worker protocol over EOFL host frames on a socket.

    Spawns a loopback worker that connects back to an ephemeral
    listener; the framing (``repro.link.host``) is host-agnostic, so
    the handle is the template for real cross-host fleets.
    """

    backend = "socket"

    def __init__(self, index: int, spec: WorkerSpec):
        super().__init__(index, spec)
        self._proc: Optional[subprocess.Popen] = None
        self._stream = None

    def _open_transport(self) -> None:
        import socket as socket_module

        from repro.link.host import HostFrameStream
        listener = socket_module.socket(socket_module.AF_INET,
                                        socket_module.SOCK_STREAM)
        try:
            listener.bind(("127.0.0.1", 0))
            listener.listen(1)
            port = listener.getsockname()[1]
            try:
                self._proc = subprocess.Popen(
                    _worker_argv("socket", ["--connect", str(port)]),
                    env=_worker_env())
            except OSError as exc:
                raise WorkerLost(self.index,
                                 f"spawn failed: {exc}") from exc
            listener.settimeout(60.0)
            try:
                conn, _ = listener.accept()
            except OSError as exc:
                raise WorkerLost(
                    self.index,
                    f"worker never connected: {exc}") from exc
        finally:
            listener.close()
        self._stream = HostFrameStream(conn)
        self._io = SocketFrameIO(self._stream)

    def _close_transport(self) -> None:
        if self._stream is not None:
            self._stream.close()
        if self._proc is not None:
            try:
                self._proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self._proc.kill()
                self._proc.wait()


def build_worker_handles(backend: str, workers: int,
                         spec_template: WorkerSpec,
                         seeds: List[int],
                         worker_budget: int) -> List[WorkerHandle]:
    """Per-worker remote handles from one spec template."""
    cls = {"process": ProcessHandle, "socket": SocketHandle}[backend]
    handles: List[WorkerHandle] = []
    for index in range(workers):
        spec = replace(spec_template, index=index, seed=seeds[index],
                       budget_cycles=worker_budget,
                       name=f"eof-w{index}")
        handles.append(cls(index, spec))
    return handles


def estimate_outcome_bytes(outcome: EpochOutcome) -> int:
    """Wire size the outcome *would* cost as a pipe frame.

    Only the in-thread backend calls this (and only with observability
    enabled): remote backends report measured frame bytes instead.
    """
    from repro.farm.wire import encode_epoch_result
    payload = encode_epoch_result(
        outcome.status, outcome.entries, outcome.edges,
        outcome.crashes, outcome.summary, outcome.cycles)
    return frame_size("epoch_result", payload)
