"""``repro.farm``: parallel multi-board fuzzing campaigns.

The paper runs each 24-hour configuration on several physical boards at
once; this package reproduces that as N worker engines (one virtual
board each) pooling a deduplicated shared corpus, a merged coverage
frontier and a cross-worker crash triage table, with cycle-based sync
epochs keeping the whole campaign deterministic given
``(campaign_seed, workers, sync_interval)``.
"""

from repro.farm.orchestrator import (  # noqa: F401 (re-exported surface)
    CampaignOptions,
    CampaignOrchestrator,
    CampaignResult,
    derive_worker_seed,
)
from repro.farm.state import (  # noqa: F401
    CampaignState,
    SeedProvenance,
    TriagedCrash,
)

__all__ = [
    "CampaignOptions",
    "CampaignOrchestrator",
    "CampaignResult",
    "CampaignState",
    "SeedProvenance",
    "TriagedCrash",
    "derive_worker_seed",
]
