"""``repro.farm``: parallel multi-board fuzzing campaigns.

The paper runs each 24-hour configuration on several physical boards at
once; this package reproduces that as N workers (one virtual board
each) pooling a deduplicated shared corpus, a merged coverage frontier
and a cross-worker crash triage table, with cycle-based sync epochs
keeping the whole campaign deterministic given ``(campaign_seed,
workers, sync_interval)``.

Workers run behind the transport-agnostic :class:`WorkerHandle`
interface: in-process threads (the determinism reference), one child
process per board (pipe frames), or EOFL host frames over a socket —
selected by ``CampaignOptions.backend``.
"""

from repro.farm.handles import (  # noqa: F401 (re-exported surface)
    InThreadHandle,
    ProcessHandle,
    SocketHandle,
    WorkerHandle,
    WorkerLost,
    build_worker_handles,
)
from repro.farm.orchestrator import (  # noqa: F401
    BACKENDS,
    CampaignOptions,
    CampaignOrchestrator,
    CampaignResult,
    derive_worker_seed,
)
from repro.farm.state import (  # noqa: F401
    CampaignState,
    SeedProvenance,
    TriagedCrash,
)
from repro.farm.wire import (  # noqa: F401
    WorkerSpec,
    WorkerTransportError,
)

__all__ = [
    "BACKENDS",
    "CampaignOptions",
    "CampaignOrchestrator",
    "CampaignResult",
    "CampaignState",
    "InThreadHandle",
    "ProcessHandle",
    "SeedProvenance",
    "SocketHandle",
    "TriagedCrash",
    "WorkerHandle",
    "WorkerLost",
    "WorkerSpec",
    "WorkerTransportError",
    "build_worker_handles",
    "derive_worker_seed",
]
