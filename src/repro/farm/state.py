"""Shared campaign state: the global frontier, corpus and crash table.

One :class:`CampaignState` is shared by every worker of a multi-board
campaign (§5's parallel-board setup).  It holds

* the **global coverage frontier** — the union of every worker's edge
  set, merged at sync epochs,
* the **shared corpus** — a content-hash-deduplicated :class:`Corpus`
  of seeds some worker admitted *and* that advanced the global frontier
  (or crashed); origin worker and epoch ride along for triage,
* the **crash triage table** — crash reports deduplicated by signature
  across workers, with per-signature observation counts.

Every method takes the lock, so workers could push concurrently; the
orchestrator nevertheless serialises sync in worker-index order, which
is what makes a campaign a pure function of
``(campaign_seed, workers, sync_interval)``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set

from repro.fuzz.corpus import Corpus, CorpusEntry, MAX_CORPUS
from repro.fuzz.crash import CrashReport


@dataclass
class SeedProvenance:
    """Where a shared seed came from."""

    worker: int
    epoch: int


@dataclass
class TriagedCrash:
    """One cross-worker-unique crash."""

    report: CrashReport
    first_worker: int
    first_epoch: int
    count: int = 1
    workers: Set[int] = field(default_factory=set)


class CampaignState:
    """Thread-safe shared state of one fuzzing campaign."""

    #: Machine-checked concurrency contract (EOF401/EOF405): every
    #: field below may only be touched under ``self._lock`` — workers
    #: hit this object concurrently, and barrier regions get no free
    #: pass here because ``pull``/``push`` run mid-epoch too.
    GUARDED_BY = {
        "edges": "_lock",
        "corpus": "_lock",
        "provenance": "_lock",
        "crashes": "_lock",
        "seeds_shared": "_lock",
        "seeds_imported": "_lock",
        "seeds_warmed": "_lock",
    }

    def __init__(self, max_corpus: int = MAX_CORPUS) -> None:
        self._lock = threading.Lock()
        self.edges: Set[int] = set()
        self.corpus = Corpus(max_entries=max_corpus)
        self.provenance: Dict[str, SeedProvenance] = {}
        self.crashes: Dict[str, TriagedCrash] = {}
        self.seeds_shared = 0
        self.seeds_imported = 0
        self.seeds_warmed = 0

    # -- coverage -----------------------------------------------------------

    @property
    def merged_edge_count(self) -> int:
        with self._lock:
            return len(self.edges)

    def merge_edges(self, edges: Iterable[int]) -> int:
        """Fold one worker's frontier in; returns newly-global edges."""
        with self._lock:
            before = len(self.edges)
            self.edges.update(edges)
            return len(self.edges) - before

    # -- corpus sync --------------------------------------------------------

    def push(self, worker: int, epoch: int,
             entries: Sequence[CorpusEntry]) -> int:
        """Offer one worker's freshly-admitted seeds to the pool.

        A seed is admitted when its content hash is unseen *and* its
        edge footprint still contains an edge the global frontier lacks
        (crashers are admitted regardless: they are triage material even
        when another worker already covered their path).  Admitted
        footprints merge into the frontier immediately, so a later
        worker's duplicate discovery of the same edges is rejected —
        the push order is the dedup order.
        """
        admitted = 0
        with self._lock:
            for entry in entries:
                if entry.digest and entry.digest in self.corpus:
                    continue
                novel = bool(entry.edge_footprint - self.edges)
                if not (novel or entry.crashed):
                    continue
                if self.corpus.import_entry(entry) is None:
                    continue
                self.provenance[entry.digest] = SeedProvenance(
                    worker=worker, epoch=epoch)
                self.edges.update(entry.edge_footprint)
                self.seeds_shared += 1
                admitted += 1
        return admitted

    def pull(self, worker: int, known_digests: Set[str],
             local_edges: Set[int], limit: int,
             min_novelty: int = 1) -> List[CorpusEntry]:
        """Seeds some *other* worker found that are new to this one.

        Returns up to ``limit`` entries whose footprint contains at
        least ``min_novelty`` edges the puller has not covered — the
        "new-to-global edges only" import policy, applied against the
        puller's local frontier so replays are never pure
        re-execution.  Candidates are ranked by how many new-to-local
        edges they carry (admission order breaks ties), so a tight
        import cap spends replay budget on the most frontier-advancing
        seeds first.
        """
        with self._lock:
            ranked = []
            for index, entry in enumerate(self.corpus.entries):
                provenance = self.provenance.get(entry.digest)
                if provenance is None or provenance.worker == worker:
                    continue
                if entry.digest in known_digests:
                    continue
                novelty = len(entry.edge_footprint - local_edges)
                if novelty < max(min_novelty, 1):
                    continue
                ranked.append((-novelty, index, entry))
            ranked.sort(key=lambda item: item[:2])
            out = [entry for _, _, entry in ranked[:limit]]
            self.seeds_imported += len(out)
        return out

    def warm_start(self, entries: Iterable[CorpusEntry]) -> int:
        """Pre-seed the shared pool from another campaign's store.

        Warm-start seeds enter the corpus under the pseudo-worker ``-1``
        — every real worker can pull them — but their footprints are
        *not* merged into the frontier: this campaign has not observed
        those edges, and claiming them would both inflate the headline
        metric and starve the novelty-ranked pull that is supposed to
        deliver the warm seeds in the first place.
        """
        count = 0
        with self._lock:
            for entry in entries:
                if self.corpus.import_entry(entry) is None:
                    continue
                self.provenance[entry.digest] = SeedProvenance(
                    worker=-1, epoch=0)
                self.seeds_warmed += 1
                count += 1
        return count

    # -- crash triage -------------------------------------------------------

    def record_crash(self, worker: int, epoch: int,
                     report: CrashReport) -> bool:
        """Merge one worker's unique crash; True if campaign-new."""
        signature = report.signature()
        with self._lock:
            triaged = self.crashes.get(signature)
            if triaged is not None:
                triaged.count += 1
                triaged.workers.add(worker)
                return False
            self.crashes[signature] = TriagedCrash(
                report=report, first_worker=worker, first_epoch=epoch,
                workers={worker})
            return True

    def crash_signatures(self) -> List[str]:
        """Campaign-unique crash signatures, first-seen order."""
        with self._lock:
            return list(self.crashes)

    def snapshot_digests(self) -> List[str]:
        """Shared-corpus content hashes, insertion order."""
        with self._lock:
            return self.corpus.digests()
