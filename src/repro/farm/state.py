"""Shared campaign state: the global frontier, corpus and crash table.

One :class:`CampaignState` is shared by every worker of a multi-board
campaign (§5's parallel-board setup).  It holds

* the **global coverage frontier** — the union of every worker's edge
  set, merged at sync epochs,
* the **shared corpus** — a content-hash-deduplicated seed pool some
  worker admitted *and* that advanced the global frontier (or crashed);
  origin worker and epoch ride along for triage,
* the **crash triage table** — crash reports deduplicated by signature
  across workers, with per-signature observation counts.

Sharding
--------
The shared corpus is partitioned into :class:`_StateShard` buckets by
content-hash prefix, each under its own lock, so a push or pull only
contends on the shards a worker's delta actually lands in — sync cost
scales with the delta, not with the resident corpus.  Admission order,
ranking, dedup and eviction are all defined *globally* (the
``_order`` list under the frontier lock), so a sharded state is
observationally identical to ``shards=1`` at any shard count — the
property suite pins this equivalence.

Lock order is strictly ``shard._lock -> _frontier_lock`` (never shard
to shard, never frontier to shard), which the EOF402 pass checks.  The
orchestrator still serialises sync in worker-index order; per-shard
locking is what keeps the state safe when transports deliver results
concurrently.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set

from repro.fuzz.corpus import Corpus, CorpusEntry, MAX_CORPUS, program_hash
from repro.fuzz.crash import CrashReport

#: Default shard count: enough buckets that a realistic delta (a few
#: seeds) touches a minority of locks, small enough that a tiny
#: campaign does not pay for empty structures.
DEFAULT_SHARDS = 8

#: Per-shard corpora never self-evict; eviction is a global decision
#: made by :meth:`CampaignState._enforce_cap` against admission order.
_UNBOUNDED = 1 << 62


@dataclass
class SeedProvenance:
    """Where a shared seed came from."""

    worker: int
    epoch: int


@dataclass
class TriagedCrash:
    """One cross-worker-unique crash."""

    report: CrashReport
    first_worker: int
    first_epoch: int
    count: int = 1
    workers: Set[int] = field(default_factory=set)


class _StateShard:
    """One content-hash bucket of the shared corpus."""

    #: Machine-checked concurrency contract (EOF401/EOF405): the shard
    #: corpus may only be touched under the shard's own lock.
    GUARDED_BY = {"corpus": "_lock"}

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.corpus = Corpus(max_entries=_UNBOUNDED)


class _CorpusView:
    """Read facade over the sharded corpus (global admission order).

    Keeps the pre-sharding surface — ``len``, ``in``, ``.entries``,
    ``.digests()``, ``.get`` — so the store, the CLI and the tests are
    oblivious to the partitioning underneath.
    """

    def __init__(self, state: "CampaignState"):
        self._state = state

    def __len__(self) -> int:
        with self._state._frontier_lock:
            return len(self._state._order)

    def __contains__(self, digest: str) -> bool:
        return self.get(digest) is not None

    @property
    def entries(self) -> List[CorpusEntry]:
        """Resident entries, global admission order (a snapshot)."""
        with self._state._frontier_lock:
            return list(self._state._order)

    def digests(self) -> List[str]:
        """Content hashes of the current entries, insertion order."""
        with self._state._frontier_lock:
            return [entry.digest for entry in self._state._order]

    def get(self, digest: str):
        if not digest:
            return None
        shard = self._state._shard_for(digest)
        with shard._lock:
            return shard.corpus.get(digest)


class CampaignState:
    """Thread-safe shared state of one fuzzing campaign."""

    #: Machine-checked concurrency contract (EOF401/EOF405).  The
    #: frontier lock guards everything ranked or ordered globally —
    #: the edge set, admission order, provenance and the sync counters
    #: — while each shard's corpus is guarded by that shard's own lock
    #: and the crash table by its own, so pushes landing in different
    #: shards only meet at the (cheap) frontier section.  Barrier
    #: regions get no free pass here: ``pull``/``push`` run mid-epoch
    #: too.
    GUARDED_BY = {
        "edges": "_frontier_lock",
        "provenance": "_frontier_lock",
        "_order": "_frontier_lock",
        "seeds_shared": "_frontier_lock",
        "seeds_imported": "_frontier_lock",
        "seeds_warmed": "_frontier_lock",
        "crashes": "_crash_lock",
    }

    def __init__(self, max_corpus: int = MAX_CORPUS,
                 shards: int = DEFAULT_SHARDS) -> None:
        if shards < 1:
            raise ValueError("a campaign state needs at least one shard")
        self._frontier_lock = threading.Lock()
        self._crash_lock = threading.Lock()
        self._shards = [_StateShard() for _ in range(shards)]
        self.max_corpus = max_corpus
        self.edges: Set[int] = set()
        #: Resident entries in global admission order — the dedup,
        #: ranking and eviction domain (identical to the entry list of
        #: an unsharded corpus).
        self._order: List[CorpusEntry] = []
        self.provenance: Dict[str, SeedProvenance] = {}
        self.crashes: Dict[str, TriagedCrash] = {}
        self.seeds_shared = 0
        self.seeds_imported = 0
        self.seeds_warmed = 0
        self.corpus = _CorpusView(self)

    # -- sharding -----------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def shard_index(self, digest: str) -> int:
        """Which bucket a content hash routes to (pure, stable)."""
        if not digest:
            return 0
        try:
            prefix = int(digest[:8], 16)
        except ValueError:
            # Hostile-test digests need not be hex; any deterministic
            # mix keeps routing total.
            prefix = zlib.crc32(digest.encode("utf-8", "replace"))
        return prefix % len(self._shards)

    def _shard_for(self, digest: str) -> _StateShard:
        return self._shards[self.shard_index(digest)]

    def _route(self, entry: CorpusEntry) -> _StateShard:
        return self._shard_for(entry.digest or
                               program_hash(entry.program))

    # -- coverage -----------------------------------------------------------

    @property
    def merged_edge_count(self) -> int:
        with self._frontier_lock:
            return len(self.edges)

    def merge_edges(self, edges: Iterable[int]) -> int:
        """Fold one worker's frontier in; returns newly-global edges."""
        with self._frontier_lock:
            before = len(self.edges)
            self.edges.update(edges)
            return len(self.edges) - before

    # -- corpus sync --------------------------------------------------------

    def push(self, worker: int, epoch: int,
             entries: Sequence[CorpusEntry]) -> int:
        """Offer one worker's freshly-admitted seeds to the pool.

        A seed is admitted when its content hash is unseen *and* its
        edge footprint still contains an edge the global frontier lacks
        (crashers are admitted regardless: they are triage material even
        when another worker already covered their path).  Admitted
        footprints merge into the frontier immediately, so a later
        worker's duplicate discovery of the same edges is rejected —
        the push order is the dedup order.
        """
        admitted = 0
        for entry in entries:
            shard = self._route(entry)
            with shard._lock:
                if entry.digest and entry.digest in shard.corpus:
                    continue
                with self._frontier_lock:
                    novel = bool(entry.edge_footprint - self.edges)
                    if not (novel or entry.crashed):
                        continue
                    grew = len(shard.corpus)
                    resident = shard.corpus.import_entry(entry)
                    if resident is None:
                        continue
                    if len(shard.corpus) > grew:
                        self._order.append(resident)
                    self.provenance[entry.digest] = SeedProvenance(
                        worker=worker, epoch=epoch)
                    self.edges.update(entry.edge_footprint)
                    self.seeds_shared += 1
                    admitted += 1
            self._enforce_cap()
        return admitted

    def pull(self, worker: int, known_digests: Set[str],
             local_edges: Set[int], limit: int,
             min_novelty: int = 1) -> List[CorpusEntry]:
        """Seeds some *other* worker found that are new to this one.

        Returns up to ``limit`` entries whose footprint contains at
        least ``min_novelty`` edges the puller has not covered — the
        "new-to-global edges only" import policy, applied against the
        puller's local frontier so replays are never pure
        re-execution.  Candidates are ranked by how many new-to-local
        edges they carry (admission order breaks ties), so a tight
        import cap spends replay budget on the most frontier-advancing
        seeds first.
        """
        with self._frontier_lock:
            ranked = []
            for index, entry in enumerate(self._order):
                provenance = self.provenance.get(entry.digest)
                if provenance is None or provenance.worker == worker:
                    continue
                if entry.digest in known_digests:
                    continue
                novelty = len(entry.edge_footprint - local_edges)
                if novelty < max(min_novelty, 1):
                    continue
                ranked.append((-novelty, index, entry))
            ranked.sort(key=lambda item: item[:2])
            out = [entry for _, _, entry in ranked[:limit]]
            self.seeds_imported += len(out)
        return out

    def warm_start(self, entries: Iterable[CorpusEntry]) -> int:
        """Pre-seed the shared pool from another campaign's store.

        Warm-start seeds enter the corpus under the pseudo-worker ``-1``
        — every real worker can pull them — but their footprints are
        *not* merged into the frontier: this campaign has not observed
        those edges, and claiming them would both inflate the headline
        metric and starve the novelty-ranked pull that is supposed to
        deliver the warm seeds in the first place.
        """
        count = 0
        for entry in entries:
            shard = self._route(entry)
            with shard._lock:
                with self._frontier_lock:
                    grew = len(shard.corpus)
                    resident = shard.corpus.import_entry(entry)
                    if resident is None:
                        continue
                    if len(shard.corpus) > grew:
                        self._order.append(resident)
                    self.provenance[entry.digest] = SeedProvenance(
                        worker=-1, epoch=0)
                    self.seeds_warmed += 1
                    count += 1
            self._enforce_cap()
        return count

    def _enforce_cap(self) -> None:
        """Apply the global eviction policy after an admission.

        Identical victim selection to the unsharded corpus (pinned by
        the shard-equivalence property suite): lowest current
        scheduling weight loses, earliest-admitted among ties.  Victim
        choice happens under the frontier lock alone; removal then
        takes the victim's shard first, keeping the shard -> frontier
        lock order.
        """
        while True:
            with self._frontier_lock:
                if len(self._order) <= self.max_corpus:
                    return
                victim = min(range(len(self._order)),
                             key=lambda i: self._order[i].weight())
                digest = self._order[victim].digest
            shard = self._shard_for(digest)
            with shard._lock:
                with self._frontier_lock:
                    removed = shard.corpus.remove(digest)
                    if removed is not None:
                        for position, entry in enumerate(self._order):
                            if entry is removed:
                                del self._order[position]
                                break

    # -- crash triage -------------------------------------------------------

    def record_crash(self, worker: int, epoch: int,
                     report: CrashReport) -> bool:
        """Merge one worker's unique crash; True if campaign-new."""
        signature = report.signature()
        with self._crash_lock:
            triaged = self.crashes.get(signature)
            if triaged is not None:
                triaged.count += 1
                triaged.workers.add(worker)
                return False
            self.crashes[signature] = TriagedCrash(
                report=report, first_worker=worker, first_epoch=epoch,
                workers={worker})
            return True

    def crash_signatures(self) -> List[str]:
        """Campaign-unique crash signatures, first-seen order."""
        with self._crash_lock:
            return list(self.crashes)

    def snapshot_digests(self) -> List[str]:
        """Shared-corpus content hashes, insertion order."""
        with self._frontier_lock:
            return [entry.digest for entry in self._order]
