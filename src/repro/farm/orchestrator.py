"""Multi-board campaign orchestration (the paper's §5 parallel setup).

The orchestrator steps N workers — one virtual board each — through
cycle-based **sync epochs**: every worker fuzzes independently until
its own cycle clock crosses the epoch boundary, then a barrier merges
worker state into the shared :class:`CampaignState` and delivers
cross-worker seed imports, and the next epoch begins.

Workers run behind the transport-agnostic :class:`WorkerHandle`
interface (:mod:`repro.farm.handles`): the ``thread`` backend keeps
every engine in-process (the determinism reference), ``process`` runs
one engine per child process with epoch deltas framed over pipes, and
``socket`` speaks the same protocol over EOFL host frames.  The store
stays coordinator-only under every backend, so persistence and resume
are backend-independent.

Determinism argument
--------------------
A campaign is a pure function of ``(campaign_seed, workers,
sync_interval)``:

* each worker's RNG stream is derived from the campaign seed by a
  splitmix64 mix of its index — streams never touch each other;
* within an epoch a worker mutates only its own engine, whose behaviour
  is already deterministic in virtual time;
* the epoch barrier is a full join — shared-state merging happens on
  the coordinator thread in worker-index order, never concurrently with
  execution — so neither thread scheduling nor process scheduling can
  reorder any observable merge;
* sync points are **cycle-based** (epoch ``k`` ends at ``k *
  sync_interval`` virtual cycles per worker), never wall-clock-based;
* remote backends ship only *deltas* (new seeds, new edges, new
  crashes since the last barrier), and merging a delta stream is
  state-identical to merging the full sets the in-thread backend
  reads directly.

A worker whose transport dies mid-epoch is treated like a quarantined
board: the un-synced epoch is discarded, a ``farm.worker.lost`` event
(plus flight-recorder dump) marks the loss, and the campaign continues
with the remaining workers instead of hanging the barrier.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set

from repro.farm.handles import (
    ABORTED,
    DONE,
    LIVE,
    EpochOutcome,
    InThreadHandle,
    WorkerHandle,
    WorkerLost,
    build_worker_handles,
    estimate_outcome_bytes,
)
from repro.farm.state import DEFAULT_SHARDS, CampaignState, TriagedCrash
from repro.farm.wire import WorkerSpec
from repro.fuzz.corpus import MAX_CORPUS, CorpusEntry
from repro.fuzz.crash import CrashReport
from repro.fuzz.engine import EofEngine, FuzzResult
from repro.fuzz.stats import CampaignStats
from repro.obs import NULL_OBS, Observability

if TYPE_CHECKING:
    from repro.db.store import CampaignStore

#: Worker liveness states across epochs (shared with the handles).
_LIVE, _DONE, _ABORTED = LIVE, DONE, ABORTED

#: The campaign backends ``--backend`` may name, with the numeric code
#: the ``farm.backend`` gauge reports.
BACKENDS = ("thread", "process", "socket")

#: Sync-delta size buckets, in bytes: a lone seed frame lands in the
#: low hundreds, a busy epoch in the tens of KiB, and anything past a
#: MiB means a worker pushed corpus-scale state (the smell the O(delta)
#: contract exists to prevent).
DELTA_BYTE_BUCKETS = (256, 1_024, 4_096, 16_384, 65_536,
                      262_144, 1_048_576, 4_194_304)


def derive_worker_seed(campaign_seed: int, index: int) -> int:
    """Per-worker RNG stream seed (splitmix64 of seed and index).

    Streams for different indices are statistically independent, and
    the derivation is pure arithmetic, so replaying a campaign replays
    every worker bit-for-bit.
    """
    mask = (1 << 64) - 1
    z = (campaign_seed * 0x9E3779B97F4A7C15 + (index + 1)) & mask
    z ^= z >> 30
    z = (z * 0xBF58476D1CE4E5B9) & mask
    z ^= z >> 27
    z = (z * 0x94D049BB133111EB) & mask
    z ^= z >> 31
    # Keep seeds readable in logs while staying collision-free in
    # practice for realistic worker counts.
    return z & 0x7FFFFFFF


@dataclass
class CampaignOptions:
    """Knobs of one multi-board campaign."""

    campaign_seed: int = 1
    workers: int = 2
    #: Virtual cycles each worker runs between sync barriers; 0 turns
    #: syncing off entirely (= N independent single-board runs whose
    #: stats are merged at the end — the scaling baseline).  The
    #: default is deliberately coarse: syncing too often floods workers
    #: with each other's still-warm seeds before local exploration has
    #: paid off.
    sync_interval: int = 400_000
    #: Total cycle budget across the whole campaign; each worker gets
    #: ``total_budget_cycles // workers``.
    total_budget_cycles: int = 2_000_000
    #: Max cross-worker seeds delivered to one worker per sync epoch.
    #: The pull is novelty-ranked, so a tight cap spends the import
    #: budget on the few most frontier-advancing foreign seeds instead
    #: of flooding the local pool.
    import_cap: int = 2
    #: Minimum new-to-local edges a seed must carry to be worth
    #: importing onto this worker's board.
    import_min_novelty: int = 2
    #: Replay imported seeds on the receiving board (the default):
    #: re-execution realises the foreign path locally, admits the seed
    #: with *local* coverage credit, and hands the mutation scheduler
    #: real material.  Off, imports merge straight into the local
    #: corpus without spending cycles — cheaper, but the scheduler then
    #: weights them on second-hand numbers.
    replay_imports: bool = True
    #: Fold the global frontier into each worker's notion of "already
    #: seen" at sync, so local reward skips edges other boards covered.
    #: Off by default: suppressing the local discovery-rate signal this
    #: way measurably slows the merged frontier (workers de-prioritise
    #: regions that are productive *for them*).
    share_frontier: bool = False
    shared_corpus_max: int = MAX_CORPUS
    name: str = "eof-farm"
    #: Where worker engines execute: ``thread`` (in-process, the
    #: determinism reference), ``process`` (one child process per
    #: board, pipe frames), ``socket`` (EOFL host frames).  Every
    #: backend replays the same campaign.
    backend: str = "thread"
    #: Content-hash buckets of the shared corpus; push/pull contends
    #: only on the shards a delta lands in.  Observationally
    #: equivalent at any count (property-tested).
    corpus_shards: int = DEFAULT_SHARDS


@dataclass
class CampaignResult:
    """Everything a campaign produced."""

    options: CampaignOptions
    stats: CampaignStats
    worker_results: List[FuzzResult]
    edges: Set[int] = field(default_factory=set)
    crashes: Dict[str, TriagedCrash] = field(default_factory=dict)
    corpus_digests: List[str] = field(default_factory=list)

    @property
    def merged_edges(self) -> int:
        """The campaign's merged-frontier size (the headline metric)."""
        return len(self.edges)

    def crash_signatures(self) -> List[str]:
        """Campaign-unique crash signatures, first-seen order."""
        return list(self.crashes)


def campaign_config(options: CampaignOptions,
                    target: str = "") -> Dict[str, object]:
    """The option set a campaign store persists and re-checks on resume.

    Every :class:`CampaignOptions` field that steers *execution* is
    included: a resumed campaign is a deterministic replay, so any knob
    that changes what the workers do — not just the seed triple — must
    match for the replay to reproduce the interrupted run.  ``backend``
    and ``corpus_shards`` are deliberately excluded: transport and
    partitioning choices replay the same campaign (the backend
    acceptance gate), so a store written under one backend may resume
    under another.
    """
    config: Dict[str, object] = asdict(options)
    config.pop("backend", None)
    config.pop("corpus_shards", None)
    config["target"] = target
    return config


#: Builds one worker engine: (worker_index, worker_seed, budget_cycles).
EngineFactory = Callable[[int, int, int], EofEngine]


class CampaignOrchestrator:
    """Run one campaign: N workers, shared corpus, sync epochs."""

    #: Concurrency contract (EOF401/EOF405).  ``@atomic`` — the stop
    #: flag is written from the CLI signal handler and read at the
    #: barrier, so writes must stay single constant stores (GIL-atomic).
    #: ``@barrier`` — coordinator bookkeeping touched only between
    #: epochs, while every worker future has been joined; never from
    #: worker or signal context.
    GUARDED_BY = {
        "_stop_requested": "@atomic",
        "_interrupted": "@barrier",
        "_last_imported": "@barrier",
        "_last_delta_bytes": "@barrier",
        "_status": "@barrier",
        "_lost": "@barrier",
        "_epochs_run": "@barrier",
    }

    #: Methods that *are* the epoch barrier: every worker future has
    #: been joined when they run, so EOF405 permits cross-object
    #: mutation (e.g. folding store state back into ``state``) here.
    EPOCH_BARRIERS = ("_sync", "_persist_epoch")

    def __init__(self, factory: Optional[EngineFactory],
                 options: Optional[CampaignOptions] = None,
                 obs: Optional[Observability] = None,
                 store: Optional["CampaignStore"] = None,
                 warm_entries: Optional[List[CorpusEntry]] = None,
                 worker_spec: Optional[WorkerSpec] = None):
        self.options = options or CampaignOptions()
        if self.options.workers < 1:
            raise ValueError("a campaign needs at least one worker")
        if self.options.backend not in BACKENDS:
            raise ValueError(
                f"unknown campaign backend {self.options.backend!r} "
                f"(expected one of {', '.join(BACKENDS)})")
        self.obs = obs or NULL_OBS
        #: Opened campaign store (ownership transfers here: the
        #: orchestrator checkpoints and closes it when the run ends).
        #: A store opened with ``resume`` sets the fast-forward point.
        #: The store lives on the coordinator under every backend.
        self.store = store
        self._resume_epoch = store.resumed_from_epoch if store else 0
        self._stop_requested = False
        self._interrupted = False
        self._last_imported = 0
        self._last_delta_bytes = 0
        self.state = CampaignState(
            max_corpus=self.options.shared_corpus_max,
            shards=self.options.corpus_shards)
        if warm_entries:
            self.state.warm_start(warm_entries)
        per_worker = max(
            self.options.total_budget_cycles // self.options.workers, 1)
        self.worker_budget = per_worker
        seeds = [derive_worker_seed(self.options.campaign_seed, index)
                 for index in range(self.options.workers)]
        self.engines: List[EofEngine] = []
        if self.options.backend == "thread":
            if factory is None:
                raise ValueError(
                    "the thread backend needs an engine factory")
            handles: List[WorkerHandle] = []
            for index in range(self.options.workers):
                engine = factory(index, seeds[index], per_worker)
                self.engines.append(engine)
                handles.append(InThreadHandle(index, engine,
                                              per_worker))
            self.handles = handles
        else:
            if worker_spec is None:
                raise ValueError(
                    f"the {self.options.backend} backend needs a "
                    f"worker spec template")
            self.handles = build_worker_handles(
                self.options.backend, self.options.workers,
                worker_spec, seeds, per_worker)
        self._status = [_LIVE for _ in self.handles]
        self._lost: Set[int] = set()
        self._epochs_run = 0
        #: Optional live-dashboard callback, invoked on the coordinator
        #: thread at every epoch barrier with a summary dict (see
        #: :meth:`_epoch_summary`).  ``eof-fuzz campaign --dashboard``
        #: plugs the ANSI renderer in here.
        self.epoch_hook: Optional[Callable[[dict], None]] = None

    # -- the campaign -------------------------------------------------------

    def run(self) -> CampaignResult:
        """Run every epoch to completion and return the merged result."""
        opts = self.options
        try:
            self._start_workers()
            if self.obs.enabled:
                self.obs.bind_clock(self._campaign_clock)
                self.obs.emit("farm.campaign.start",
                              workers=opts.workers,
                              sync_interval=opts.sync_interval,
                              total_budget=opts.total_budget_cycles,
                              campaign_seed=opts.campaign_seed,
                              backend=opts.backend,
                              shards=self.state.shard_count)
                self.obs.gauge("farm.backend").set(
                    BACKENDS.index(opts.backend))
                self.obs.gauge("farm.shards").set(
                    self.state.shard_count)
            if opts.backend == "thread":
                with ThreadPoolExecutor(max_workers=opts.workers) \
                        as pool:
                    for handle in self.handles:
                        handle.executor = pool
                    self._epoch_loop()
            else:
                self._epoch_loop()
            return self._collect()
        finally:
            for handle in self.handles:
                handle.close()

    def _start_workers(self) -> None:
        """Boot every worker; remote boots overlap, in-thread boots run
        sequentially inside ``begin_start`` (reproducible boot-order
        effects are part of the determinism reference)."""
        for index, handle in enumerate(self.handles):
            try:
                handle.begin_start()
            except WorkerLost as lost:
                self._mark_lost(0, lost)
        for index, handle in enumerate(self.handles):
            if self._status[index] != _LIVE:
                continue
            try:
                handle.join_start()
            except WorkerLost as lost:
                self._mark_lost(0, lost)
        if all(status == _ABORTED for status in self._status):
            raise RuntimeError("every campaign worker failed to start")

    def _epoch_loop(self) -> None:
        while any(status == _LIVE for status in self._status):
            self._epochs_run += 1
            epoch = self._epochs_run
            target = self._epoch_target(epoch)
            live = [index for index in range(len(self.handles))
                    if self._status[index] == _LIVE]
            began = []
            for index in live:
                try:
                    self.handles[index].begin_epoch(epoch, target)
                    began.append(index)
                except WorkerLost as lost:
                    self._mark_lost(epoch, lost)
            outcomes: Dict[int, EpochOutcome] = {}
            for index in began:
                try:
                    outcomes[index] = self.handles[index].join_epoch()
                except WorkerLost as lost:
                    # The epoch died with the worker: its un-synced
                    # results are discarded, the campaign continues.
                    self._mark_lost(epoch, lost)
                    continue
                self._status[index] = outcomes[index].status
            self._sync(epoch, outcomes)
            self._persist_epoch(epoch)
            if self._stop_requested:
                # Honoured only at the barrier, *after* the epoch
                # persisted: the run stops on a committed epoch, so
                # a resume continues exactly where it left off.
                self._interrupted = True
                break

    def request_stop(self) -> None:
        """Ask the campaign to stop at the next epoch barrier.

        Safe to call from a signal handler: it only sets a flag; the
        coordinator checks it after each barrier has merged and
        persisted, then winds down cleanly with a final checkpoint.
        """
        self._stop_requested = True

    def _mark_lost(self, epoch: int, lost: WorkerLost) -> None:
        """Degrade a dead transport to a quarantined board."""
        self._status[lost.index] = _ABORTED
        self._lost.add(lost.index)
        if self.obs.enabled:
            self.obs.counter("farm.workers.lost").inc()
            self.obs.emit("farm.worker.lost", worker=lost.index,
                          epoch=epoch, reason=lost.reason)
            if self.obs.flight is not None:
                self.obs.flight.dump("worker-lost",
                                     f"worker-{lost.index}",
                                     obs=self.obs)

    def _campaign_clock(self) -> int:
        """Campaign virtual time: the furthest worker clock."""
        cycles = 0
        for handle in self.handles:
            cycles = max(cycles, handle.cycles())
        return cycles

    def _epoch_target(self, epoch: int) -> int:
        if self.options.sync_interval <= 0:
            return self.worker_budget
        return min(epoch * self.options.sync_interval,
                   self.worker_budget)

    # -- the barrier --------------------------------------------------------

    def _sync(self, epoch: int,
              outcomes: Dict[int, EpochOutcome]) -> None:
        """Merge worker outcomes into the campaign, in worker order,
        then deliver imports.  Runs on the coordinator thread only."""
        delta_bytes = 0
        shards_touched: Set[int] = set()
        with self.obs.span("sync"):
            for index in sorted(outcomes):
                self._push_outcome(index, epoch, outcomes[index],
                                   shards_touched)
            imported_total = 0
            for index, handle in enumerate(self.handles):
                if self._status[index] != _LIVE:
                    continue
                imported_total += self._pull_worker(index, handle)
                if self.options.share_frontier:
                    handle.absorb_frontier(self.state.edges)
        if self.obs.enabled:
            self.obs.counter("farm.sync.epochs").inc()
            self.obs.gauge("farm.merged.edges").set(
                len(self.state.edges))
            self.obs.gauge("farm.shared.corpus").set(
                len(self.state.corpus))
            if shards_touched:
                self.obs.counter("farm.shard.touched").inc(
                    len(shards_touched))
            histogram = self.obs.histogram("farm.sync.delta.bytes",
                                           buckets=DELTA_BYTE_BUCKETS)
            for index in sorted(outcomes):
                outcome = outcomes[index]
                size = outcome.wire_bytes or \
                    estimate_outcome_bytes(outcome)
                delta_bytes += size
                histogram.record(size)
            self.obs.emit("farm.epoch", epoch=epoch,
                          merged_edges=len(self.state.edges),
                          shared_seeds=len(self.state.corpus),
                          imported=imported_total,
                          live_workers=sum(
                              1 for status in self._status
                              if status == _LIVE))
        # The campaign-level time series samples at every barrier: one
        # row per epoch, timestamped with the epoch's target cycles (a
        # pure function of epoch and sync_interval, so replays match).
        self._last_imported = imported_total
        self._last_delta_bytes = delta_bytes
        summary = None
        if self.obs.sampler is not None or self.epoch_hook is not None:
            summary = self._epoch_summary(epoch, imported_total)
        if self.obs.sampler is not None:
            row = {key: summary[key] for key in
                   ("edges", "lanes", "programs", "crashes", "shared",
                    "imported", "live")}
            self.obs.sampler.record(
                epoch, self._epoch_target(epoch), row)
        if self.epoch_hook is not None:
            self.epoch_hook(summary)

    def _push_outcome(self, index: int, epoch: int,
                      outcome: EpochOutcome,
                      shards_touched: Set[int]) -> None:
        """Merge one worker's epoch delta (seeds, edges, crashes)."""
        # Push before merging the frontier delta: admission tests each
        # seed's footprint against *other* workers' edges; merging this
        # worker's coverage first would reject its own discoveries.
        admitted = self.state.push(index, epoch, outcome.entries)
        for entry in outcome.entries:
            if entry.digest:
                shards_touched.add(self.state.shard_index(entry.digest))
        self.state.merge_edges(outcome.edges)
        for report in outcome.crashes:
            if self.state.record_crash(index, epoch, report):
                if self.obs.enabled:
                    self.obs.emit("farm.crash.new", worker=index,
                                  epoch=epoch, kind=report.kind,
                                  signature=report.signature())
        if self.obs.enabled and admitted:
            self.obs.counter("farm.seeds.shared").inc(admitted)

    def _pull_worker(self, index: int, handle: WorkerHandle) -> int:
        entries = self.state.pull(
            index, known_digests=handle.known_digests(),
            local_edges=handle.local_edges(),
            limit=self.options.import_cap,
            min_novelty=self.options.import_min_novelty)
        if not entries:
            return 0
        handle.deliver(entries, self.options.replay_imports)
        if self.obs.enabled:
            self.obs.counter("farm.seeds.imported").inc(len(entries))
        return len(entries)

    def _epoch_summary(self, epoch: int, imported: int) -> dict:
        """Deterministic barrier snapshot (sampler + dashboard feed)."""
        workers = []
        for index, handle in enumerate(self.handles):
            worker = handle.summary()
            worker["status"] = self._status[index]
            workers.append(worker)
        return {
            "epoch": epoch,
            "edges": len(self.state.edges),
            "merged_edges": len(self.state.edges),
            "lanes": [worker["edges"] for worker in workers],
            "programs": sum(w["execs"] for w in workers),
            "crashes": len(self.state.crashes),
            "shared": len(self.state.corpus),
            "shared_corpus": len(self.state.corpus),
            "imported": imported,
            "live": sum(1 for status in self._status
                        if status == _LIVE),
            "live_workers": sum(1 for status in self._status
                                if status == _LIVE),
            "workers_total": len(self.handles),
            "workers": workers,
        }

    # -- persistence (repro.db) ---------------------------------------------

    def _persist_epoch(self, epoch: int) -> None:
        """Journal the barrier that just completed (when a store rides
        along).

        A resumed campaign is a deterministic replay: epochs up to the
        stored one re-execute with journaling suppressed (they are
        already on disk), the resume barrier itself is *verified*
        against the store, and only epochs beyond it journal new work.
        """
        if self.store is None:
            return
        with self.obs.span("sync"):
            if epoch < self._resume_epoch:
                return
            if epoch == self._resume_epoch:
                self._verify_resume(epoch)
                return
            summary = self._epoch_summary(epoch, self._last_imported)
            row = {key: summary[key] for key in
                   ("edges", "lanes", "programs", "crashes", "shared",
                    "imported", "live")}
            self.store.record_epoch(epoch, self._epoch_target(epoch),
                                    self.state, row)

    def _verify_resume(self, epoch: int) -> None:
        """The replay reached the stored barrier: check it reproduced
        the persisted state, and if code drift broke the replay, fold
        the persisted findings back in rather than losing them."""
        mismatch = self.store.verify(
            self.state.edges, self.state.crashes.keys(),
            self.state.snapshot_digests())
        if mismatch:
            self.state.merge_edges(self.store.edges)
            for signature, record in self.store.crashes.items():
                if signature in self.state.crashes:
                    continue
                report = record.get("report")
                self.state.crashes[signature] = TriagedCrash(
                    report=CrashReport.from_dict(dict(report or {})),
                    first_worker=int(record.get("first_worker", 0)),
                    first_epoch=int(record.get("first_epoch", 0)),
                    count=int(record.get("count", 1)),
                    workers={int(w) for w in record.get("workers", ())})
        if self.obs.enabled:
            self.obs.emit("db.resume", epoch=epoch,
                          match=not mismatch, **{
                              f"drift_{key}": value
                              for key, value in mismatch.items()})

    # -- wrap-up ------------------------------------------------------------

    def _collect(self) -> CampaignResult:
        results = []
        for index, handle in enumerate(self.handles):
            result = handle.finish()
            results.append(result)
            if self.obs.enabled:
                self.obs.emit("farm.worker.done", worker=index,
                              edges=result.edges,
                              programs=result.stats.programs_executed,
                              aborted=self._status[index] == _ABORTED)
        stats = CampaignStats(
            workers=[result.stats for result in results],
            merged_edges=len(self.state.edges),
            merged_unique_crashes=len(self.state.crashes),
            shared_corpus_size=len(self.state.corpus),
            sync_epochs=self._epochs_run,
            seeds_shared=self.state.seeds_shared,
            seeds_imported=self.state.seeds_imported,
            aborted_workers=sum(1 for status in self._status
                                if status == _ABORTED),
            resumed_from_epoch=self._resume_epoch,
            interrupted=self._interrupted)
        if self.store is not None:
            # Final checkpoint: a completed run's store doubles as a
            # warm-start corpus; an interrupted run's is the resume
            # point.
            self.store.close(final_checkpoint=True)
            if self.obs.enabled and self._interrupted:
                self.obs.emit("db.interrupted",
                              epoch=self._epochs_run,
                              resumable=True)
        if self.obs.enabled:
            self.obs.emit("farm.campaign.end",
                          merged_edges=stats.merged_edges,
                          unique_crashes=stats.merged_unique_crashes,
                          epochs=stats.sync_epochs,
                          shared=stats.seeds_shared,
                          imported=stats.seeds_imported)
        return CampaignResult(
            options=self.options, stats=stats, worker_results=results,
            edges=set(self.state.edges), crashes=dict(self.state.crashes),
            corpus_digests=self.state.snapshot_digests())
