"""One-shot program execution: run a hand-written API sequence on a
fresh board and report what happened.

This is the "reproducer" path: Table 2's bugs, the Figure 6 case study,
the examples and the regression tests all drive known call sequences and
inspect the resulting halt, crash report and UART output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.agent.protocol import (
    ArgData,
    ArgImm,
    ArgRef,
    Call,
    TestProgram,
    serialize_program,
)
from repro.ddi.session import DebugSession, open_session
from repro.errors import DebugLinkTimeout
from repro.link.codec import decode_u32
from repro.firmware.builder import BuildInfo, build_firmware
from repro.fuzz.crash import CrashReport
from repro.fuzz.monitors import ExceptionMonitor, LogMonitor
from repro.fuzz.targets import TargetConfig
from repro.hw.machine import HaltEvent, HaltReason

# ("ref", 2) marks a handle produced by call #2; ints and bytes are
# immediates/buffers.
ArgSpec = Union[int, bytes, Tuple[str, int]]


@dataclass
class Outcome:
    """What one program execution produced."""

    completed: bool
    halts: List[HaltEvent] = field(default_factory=list)
    crash: Optional[CrashReport] = None
    log_crashes: List[CrashReport] = field(default_factory=list)
    uart: List[str] = field(default_factory=list)
    link_timeout: bool = False
    session: Optional[DebugSession] = None

    @property
    def crashed(self) -> bool:
        """Did either monitor flag this execution?"""
        return self.crash is not None or bool(self.log_crashes)


def build_program(build: BuildInfo,
                  calls: Sequence[Tuple[str, Sequence[ArgSpec]]]) -> TestProgram:
    """Assemble a program from (api name, args) pairs."""
    assembled: List[Call] = []
    for name, args in calls:
        api_id = build.api_order.index(name)
        wire_args = []
        for arg in args:
            if isinstance(arg, bytes):
                wire_args.append(ArgData(arg))
            elif isinstance(arg, tuple) and arg and arg[0] == "ref":
                wire_args.append(ArgRef(arg[1]))
            else:
                wire_args.append(ArgImm(int(arg)))
        assembled.append(Call(api_id=api_id, args=tuple(wire_args)))
    return TestProgram(calls=assembled)


def execute_once(target: TargetConfig,
                 calls: Sequence[Tuple[str, Sequence[ArgSpec]]],
                 session: Optional[DebugSession] = None,
                 build: Optional[BuildInfo] = None,
                 max_resumes: int = 64) -> Outcome:
    """Flash (or reuse) a target, run one program, watch the monitors."""
    if session is None:
        build = build or build_firmware(target.build_config())
        session = open_session(build)
    else:
        build = session.build
    board = session.board
    if board.boot_failed:
        raise RuntimeError("target did not boot")
    kernel = board.runtime.kernel
    gdb = session.gdb
    for symbol in ("executor_main", "read_prog", "execute_one",
                   "_kcmp_buf_full"):
        gdb.break_insert(symbol, label="agent-sync")
    exc_monitor = ExceptionMonitor(session, build.config.os_name,
                                   [kernel.EXCEPTION_SYMBOL])
    exc_monitor.arm()
    log_monitor = LogMonitor(build.config.os_name)
    session.consume_boot_chatter()

    program = build_program(build, calls)
    raw = serialize_program(program)
    layout = build.ram_layout
    with session.batch():
        gdb.write_u32(layout.input_buf_addr, len(raw))
        gdb.write_memory(layout.input_buf_addr + 4, raw)

    outcome = Outcome(completed=False, session=session)
    for _ in range(max_resumes):
        try:
            event = gdb.exec_continue()
        except DebugLinkTimeout:
            outcome.link_timeout = True
            break
        outcome.halts.append(event)
        if event.reason == HaltReason.COV_FULL:
            gdb.write_u32(layout.cov_buf_addr, 0)
            continue
        if event.reason == HaltReason.EXCEPTION and \
                exc_monitor.matches(event):
            outcome.crash = exc_monitor.capture(event)
            break
        if event.reason == HaltReason.STALL:
            break
        if event.symbol == "executor_main" and \
                event.reason == HaltReason.BREAKPOINT and \
                len(outcome.halts) >= 2:
            # Consult the agent's status block: 3 = DONE, 5 = BAD_PROG.
            state = decode_u32(gdb.read_memory(layout.status_addr + 4, 4))
            outcome.completed = (state == 3)
            break
    outcome.uart = session.drain_uart()
    outcome.log_crashes = log_monitor.scan(outcome.uart)
    return outcome
