"""The EOF fuzzing loop (Figure 3 / Figure 4).

One iteration: pick or generate an API-aware program, serialize it into
the agent's input buffer over the debug link, drive the agent through its
sync breakpoints, drain coverage (including mid-run ``_kcmp_buf_full``
traps), run the bug monitors over halts and UART output, decide
interestingness, and keep the target alive through the watchdogs and
reflash-based restoration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.agent.protocol import TestProgram, serialize_program
from repro.ddi.session import DebugSession, open_session
from repro.errors import (
    DebugLinkError,
    DebugLinkTimeout,
    FlashError,
    RecoveryExhausted,
)
from repro.firmware.builder import BuildInfo
from repro.fuzz.corpus import Corpus
from repro.fuzz.crash import CrashDb, CrashReport, KIND_HANG
from repro.fuzz.feedback import CoverageMap
from repro.fuzz.generator import ProgramGenerator
from repro.fuzz.monitors import ExceptionMonitor, LogMonitor
from repro.fuzz.mutator import ProgramMutator
from repro.fuzz.restore import (
    REBOOT_CYCLES,
    RecoveryLadder,
    StateRestoration,
)
from repro.fuzz.rng import FuzzRng
from repro.fuzz.snapshot import SnapshotManager
from repro.fuzz.stats import FuzzStats
from repro.fuzz.watchdog import LivenessWatchdog
from repro.hw.machine import HaltEvent, HaltReason
from repro.instrument.sancov import decode_coverage_buffer
from repro.instrument.sites import CLAMPS
from repro.obs import NULL_OBS, Observability
from repro.spec.model import SpecSet

AGENT_STATUS_CRASHED = 4

__all__ = ["AGENT_STATUS_CRASHED", "REBOOT_CYCLES", "EngineOptions",
           "FuzzResult", "EofEngine"]


@dataclass
class EngineOptions:
    """Knobs that differentiate EOF from its ablations/baselines."""

    seed: int = 0
    budget_cycles: int = 2_000_000
    max_iterations: int = 1_000_000
    feedback: bool = True               # EOF-nf turns this off
    use_exception_monitor: bool = True  # Tardis-style engines turn this off
    use_log_monitor: bool = True
    restore_with_reflash: bool = True   # False = naive reboot-only recovery
    record_hangs_as_crashes: bool = False  # timeout-only detection (Tardis)
    # Batch link commands (program injection + first continue as one
    # transaction, single-exchange delta coverage drains).  Off = the
    # historical one-command-per-round-trip path; results are
    # byte-identical either way, only the transaction count changes.
    link_batching: bool = True
    # Snapshot-tier restoration (repro.fuzz.snapshot): capture RAM +
    # registers after the clean boot and recover crashes by dirty-page
    # write-back instead of reflash.  Off = the historical
    # reflash-ladder-only path; fuzzing outcomes are identical either
    # way (the restore-equivalence suite gates it), only recovery
    # latency changes.
    snapshots: bool = True
    # Restore to the pristine post-boot state every N executed programs
    # (0 = only restore on crashes).  This is the snapshot-vs-reflash
    # throughput workload: with snapshots the periodic restore is a
    # dirty-page write-back, without them a full Algorithm 1 reflash.
    restore_every: int = 0
    mutate_probability: float = 0.25
    max_calls: int = 12
    # Syzkaller-style "smash": on new coverage, immediately queue this
    # many one-shot variants of the discovering input.
    smash_count: int = 6
    # §6 extension: probe allocator metadata over the debug link every N
    # programs (0 = off).  Catches silent corruption the crash monitors
    # never see.
    heap_probe_every: int = 0
    # Deterministic fault injection (repro.chaos): a profile name from
    # repro.chaos.PROFILES, or None for a clean link.  chaos_seed defaults
    # to the fuzzing seed so one seed fixes the whole run.
    chaos_profile: Optional[str] = None
    chaos_seed: Optional[int] = None
    name: str = "eof"


@dataclass
class FuzzResult:
    """Everything a run produced."""

    name: str
    os_name: str
    stats: FuzzStats
    coverage: CoverageMap
    crash_db: CrashDb
    corpus_size: int = 0

    @property
    def edges(self) -> int:
        """Final distinct-edge count (the tables' branch metric)."""
        return self.coverage.edge_count


class EofEngine:
    """The host fuzzer bound to one build + spec."""

    def __init__(self, build: BuildInfo, spec: SpecSet,
                 options: Optional[EngineOptions] = None,
                 obs: Optional[Observability] = None):
        self.build = build
        self.spec = spec
        self.options = options or EngineOptions()
        self.obs = obs or NULL_OBS
        if self.obs.enabled and not self.obs.run_id:
            self.obs.set_run_id(
                f"{self.options.name}-{build.config.os_name}"
                f"-seed{self.options.seed}")
        self.rng = FuzzRng(self.options.seed)
        self.coverage = CoverageMap()
        self.corpus = Corpus()
        self.crash_db = CrashDb()
        self.stats = FuzzStats()
        self.generator = ProgramGenerator(
            spec, self.rng,
            coverage=self.coverage if self.options.feedback else None)
        self.mutator = ProgramMutator(spec, self.rng, self.generator)
        # Statically-reachable edge universe for this build: the
        # denominator of the coverage-saturation metric.  Analysis is
        # best-effort — an unanalyzable build just reports saturation 0.
        try:
            from repro.analysis.reach import reachable_edge_universe
            self.stats.reachable_edges = reachable_edge_universe(build)
        except Exception:
            self.stats.reachable_edges = 0
        self.session: Optional[DebugSession] = None
        self.watchdog: Optional[LivenessWatchdog] = None
        self.restoration: Optional[StateRestoration] = None
        self.ladder: Optional[RecoveryLadder] = None
        self.snapshot: Optional[SnapshotManager] = None
        self.chaos = None
        self._smash_queue: List[TestProgram] = []
        self._inject_queue: List[TestProgram] = []
        self._recent_new_edges: List[int] = []
        self._fresh_edges: List[int] = []
        self._iteration = 0
        self._clamps_at_start = 0
        # Campaign mode: edges other boards already covered (the global
        # bitmap, refreshed at sync epochs).  Locally-fresh edges that
        # are foreign-known earn no interestingness reward, so workers
        # steer away from each other's territory instead of
        # rediscovering it.
        self.foreign_edges: set = set()
        self.heap_probe = None
        self.log_monitor = LogMonitor(build.config.os_name, obs=self.obs)
        self.exception_monitor: Optional[ExceptionMonitor] = None
        self._exception_symbol = ""

    # -- setup -------------------------------------------------------------------

    def _attach(self) -> None:
        self.session = open_session(self.build, obs=self.obs)
        self.watchdog = LivenessWatchdog(self.session, obs=self.obs)
        self.restoration = StateRestoration(self.session, obs=self.obs)
        if self.options.snapshots:
            self.snapshot = SnapshotManager(self.session, stats=self.stats,
                                            obs=self.obs)
        self.ladder = RecoveryLadder(
            self.session, self.restoration, watchdog=self.watchdog,
            stats=self.stats, obs=self.obs, rearm=self._rearm_after_boot,
            use_reflash=self.options.restore_with_reflash,
            snapshot=self.snapshot)
        board = self.session.board
        if board.boot_failed or board.runtime is None:
            raise RuntimeError("target never booted; image is broken")
        kernel = board.runtime.kernel
        self._exception_symbol = kernel.EXCEPTION_SYMBOL
        self._arm_sync_breakpoints()
        if self.options.use_exception_monitor:
            self.exception_monitor = ExceptionMonitor(
                self.session, self.build.config.os_name,
                [self._exception_symbol], obs=self.obs)
            self.exception_monitor.arm()
        if self.options.heap_probe_every > 0:
            from repro.fuzz.health import HeapHealthProbe
            self.heap_probe = HeapHealthProbe(
                self.session, every_n_programs=self.options.heap_probe_every)
        self.session.consume_boot_chatter()
        if self.snapshot is not None:
            # Snapshot the verified clean boot before fault injection
            # goes live: the capture is factory bring-up, and the image
            # must be trusted.  Charged before start_cycles, so the
            # one-time capture cost is not the fuzzing loop's to answer.
            self.snapshot.capture()
        if self.options.chaos_profile:
            # Install fault injection only after clean factory bring-up:
            # chaos models a flaky *deployed* link, not a broken bench.
            # (Imported here: repro.chaos sits above repro.fuzz.rng.)
            from repro.chaos import FaultPlan, get_profile, install_chaos
            seed = self.options.chaos_seed
            if seed is None:
                seed = self.options.seed
            plan = FaultPlan(get_profile(self.options.chaos_profile),
                             seed=seed, obs=self.obs)
            self.chaos = install_chaos(self.session, plan, obs=self.obs)

    def _arm_sync_breakpoints(self) -> None:
        """Arm the agent sync points — one batched transaction when
        batching is on, four round-trips otherwise."""
        gdb = self.session.gdb
        if self.options.link_batching:
            with self.session.batch():
                for symbol in ("executor_main", "read_prog", "execute_one",
                               "_kcmp_buf_full"):
                    gdb.break_insert(symbol, label="agent-sync")
        else:
            for symbol in ("executor_main", "read_prog", "execute_one",
                           "_kcmp_buf_full"):
                gdb.break_insert(symbol, label="agent-sync")

    def _rearm_after_boot(self) -> None:
        """Re-install breakpoints lost to a power event (none are on our
        virtual probe, but arming is idempotent and cheap)."""
        self._arm_sync_breakpoints()
        if self.exception_monitor is not None:
            self.exception_monitor._armed = False
            self.exception_monitor.arm()
        self.watchdog.reset()

    # -- the loop ------------------------------------------------------------------

    def run(self) -> FuzzResult:
        """Fuzz until the cycle budget or iteration cap is exhausted."""
        self.start()
        self.run_until(self.options.budget_cycles)
        return self.finish()

    def start(self) -> None:
        """Attach to the target and open the run (idempotent)."""
        if self.session is not None:
            return
        self._attach()
        self._clamps_at_start = CLAMPS.count
        # Cycle-budget baseline: boot spent cycles before the loop ever
        # ran, and the profiler only accounts for the loop's own budget.
        self.stats.start_cycles = self.session.board.machine.cycles
        if self.obs.enabled:
            self.obs.emit("run.start", fuzzer=self.options.name,
                          os=self.build.config.os_name,
                          seed=self.options.seed,
                          budget_cycles=self.options.budget_cycles)

    def run_until(self, cycle_limit: int) -> bool:
        """Fuzz until the board's cycle clock reaches ``cycle_limit``
        (clamped to the budget) or the iteration cap is hit.

        This is the campaign sync point: ``repro.farm`` steps each
        worker engine one epoch at a time and merges state at the
        cycle-based boundaries, so the whole campaign stays
        deterministic.  Returns True while budget remains.
        """
        opts = self.options
        board = self.session.board
        limit = min(cycle_limit, opts.budget_cycles)
        try:
            while (board.machine.cycles < limit
                   and self._iteration < opts.max_iterations):
                self._iteration += 1
                program = self._next_program()
                self._execute_program(program)
                if opts.restore_every > 0 and \
                        self._iteration % opts.restore_every == 0:
                    self._periodic_restore()
                if opts.feedback and self._iteration % 64 == 0:
                    self.coverage.decay_credit()
                self.stats.record_point(board.machine.cycles,
                                        self.coverage.edge_count)
                # Telemetry sampling at virtual-cycle epochs: one int
                # compare per iteration until a boundary is crossed.
                sampler = self.obs.sampler
                if sampler is not None and \
                        board.machine.cycles >= sampler.next_cycles:
                    count = sampler.maybe_sample(board.machine.cycles,
                                                 self._telemetry_row)
                    if count and self.obs.enabled:
                        self.obs.counter("ts.samples").inc(count)
                        self.obs.emit("ts.sample",
                                      epoch=sampler.last_epoch,
                                      edges=self.coverage.edge_count)
            self._sync_link_stats()
        except RecoveryExhausted:
            # Quarantine: the board never came back.  Stop loudly rather
            # than fuzz dead hardware, but leave the stats consistent so
            # the caller can still report what the run achieved.
            self.stats.record_point(board.machine.cycles,
                                    self.coverage.edge_count)
            self._sync_link_stats()
            if self.obs.enabled:
                self.obs.emit("run.abort", reason="recovery-exhausted",
                              edges=self.coverage.edge_count,
                              programs=self.stats.programs_executed)
            raise
        return (board.machine.cycles < opts.budget_cycles
                and self._iteration < opts.max_iterations)

    def _periodic_restore(self) -> None:
        """Return to the pristine post-boot state between programs
        (``restore_every``): stateless-fuzzing mode, and the workload
        the snapshot-vs-reflash throughput gate measures.  Dirty-page
        write-back when a snapshot is ready; Algorithm 1 reflash
        otherwise.  Either way the board is left verified alive."""
        with self.obs.span("restore"):
            if self.snapshot is not None and self.snapshot.ready and \
                    self.snapshot.restore():
                self._rearm_after_boot()
                return
            if self.restoration is not None:
                self.stats.restorations += 1
                try:
                    restored = self.restoration.restore()
                except (DebugLinkError, DebugLinkTimeout, FlashError):
                    # e.g. a chaos-corrupted reflash failing its verify
                    # readback: the ladder's bounded retries handle it.
                    restored = False
                if restored:
                    self._rearm_after_boot()
                    self.session.consume_boot_chatter()
                    return
        # The pristine restore itself failed (corrupt flash, chaos):
        # climb the ladder like any other recovery.
        self._escalate(start="reboot", reason="periodic-restore")

    def _sync_link_stats(self) -> None:
        """Mirror the link's accounting into the run stats."""
        self.stats.link_transactions = self.session.link.transactions
        self.stats.link_bytes = self.session.link.bytes_moved

    def _telemetry_row(self) -> dict:
        """One time-series sample: integer state only, never wall clock,
        so identical seeds stream byte-identical ``timeseries.jsonl``."""
        phases = {name: int(entry.get("cycles", 0))
                  for name, entry in
                  sorted(self.obs.tracer.snapshot().items())}
        return {
            "edges": self.coverage.edge_count,
            "programs": self.stats.programs_executed,
            "crashes": self.stats.crashes_observed,
            "unique_crashes": self.stats.unique_crashes,
            "corpus": len(self.corpus),
            "restores": self.stats.restorations,
            "recoveries": self.stats.recoveries,
            "link_txns": self.session.link.transactions,
            "link_bytes": self.session.link.bytes_moved,
            "phases": phases,
        }

    def finish(self) -> FuzzResult:
        """Close the run and return its result bundle."""
        board = self.session.board
        self.stats.record_point(board.machine.cycles,
                                self.coverage.edge_count)
        self._sync_link_stats()
        if self.obs.enabled:
            # Sub-site ids that fell outside a function's declared block
            # during this run: each is an out-of-range ``ctx.cov(n)`` the
            # modulo clamp silently folded (see EOF202/EOF203).
            clamped = CLAMPS.count - self._clamps_at_start
            if clamped > 0:
                self.obs.counter("sites.clamped").inc(clamped)
            self.obs.gauge("corpus.size").set(len(self.corpus))
            self.obs.emit("run.end", edges=self.coverage.edge_count,
                          programs=self.stats.programs_executed,
                          unique_crashes=self.stats.unique_crashes,
                          restorations=self.stats.restorations)
        return FuzzResult(name=self.options.name,
                          os_name=self.build.config.os_name,
                          stats=self.stats, coverage=self.coverage,
                          crash_db=self.crash_db,
                          corpus_size=len(self.corpus))

    def inject_programs(self, programs: List[TestProgram]) -> None:
        """Queue cross-worker seeds for replay (the campaign import
        path).  Injected programs run before local generation; the ones
        that reproduce their coverage here are admitted to the local
        corpus through the ordinary interestingness test."""
        self._inject_queue.extend(programs)
        self.stats.imported_seeds += len(programs)

    def import_entries(self, entries) -> int:
        """Merge foreign corpus entries directly into the local pool
        (the zero-cost campaign import path).

        Unlike :meth:`inject_programs` this spends no target cycles:
        the seed arrives with its recorded footprint and weight inputs,
        and becomes mutation/splice material immediately.  Returns how
        many entries were actually new here.
        """
        imported = 0
        for entry in entries:
            if self.corpus.import_entry(entry) is not None:
                imported += 1
        self.stats.imported_seeds += imported
        return imported

    def absorb_frontier(self, edges) -> None:
        """Refresh the foreign-edge view of the global coverage bitmap
        (campaign sync hook; edges this board saw itself are kept out
        of the foreign set so local reporting stays local)."""
        self.foreign_edges.update(
            edge for edge in edges if edge not in self.coverage.edges)

    def _discovery_rate(self) -> float:
        """New edges per program over the recent window."""
        window = self._recent_new_edges[-150:]
        if len(window) < 50:
            return 1.0  # still in the pilot phase
        return sum(window) / len(window)

    def _exploiting(self) -> bool:
        """Exploration/exploitation schedule: while fresh generation is
        still discovering rapidly, mutation and smash are a waste of the
        budget; they pay once the easy surface is sampled out."""
        return self._discovery_rate() < 0.15

    def _next_program(self) -> TestProgram:
        opts = self.options
        if self._inject_queue:
            return self._inject_queue.pop(0)
        if self._smash_queue:
            return self._smash_queue.pop()
        if opts.feedback and len(self.corpus) > 0 and \
                self._exploiting() and \
                self.rng.chance(opts.mutate_probability):
            entry = self.corpus.pick(self.rng)
            if entry is not None:
                with self.obs.span("mutate"):
                    if len(self.corpus) > 1 and self.rng.chance(0.2):
                        other = self.corpus.pick(self.rng)
                        if other is not None and other is not entry:
                            return self.mutator.splice(entry.program,
                                                       other.program)
                    return self.mutator.mutate(entry.program)
        with self.obs.span("generate"):
            return self.generator.generate(max_calls=opts.max_calls)

    # -- one test case ---------------------------------------------------------------

    def _execute_program(self, program: TestProgram) -> None:
        self._fresh_edges = []
        try:
            raw = serialize_program(program)
        except Exception:
            self.stats.rejected_programs += 1
            return
        gdb = self.session.gdb
        layout = self.build.ram_layout
        if len(raw) + 4 > layout.input_buf_size:
            self.stats.rejected_programs += 1
            return
        self._run_started_at = self.session.board.machine.cycles
        try:
            if self.options.link_batching:
                # Header write + payload write + the resume into
                # read_prog, pipelined as ONE link transaction (§4.5:
                # the injection round-trips dominate short programs).
                with self.obs.span("flash-program"):
                    with self.session.batch():
                        gdb.write_u32(layout.input_buf_addr, len(raw))
                        gdb.write_memory(layout.input_buf_addr + 4, raw)
                        first = gdb.exec_continue()
                self._drive(program, first_halt=first.result())
            else:
                with self.obs.span("flash-program"):
                    gdb.write_u32(layout.input_buf_addr, len(raw))
                    gdb.write_memory(layout.input_buf_addr + 4, raw)
                self._drive(program)
        except DebugLinkTimeout:
            self.stats.link_timeouts += 1
            if self.watchdog is not None:
                self.watchdog.note_timeout()
            self._salvage()

    def _drive(self, program: TestProgram,
               first_halt: Optional[HaltEvent] = None) -> None:
        gdb = self.session.gdb
        new_edges = 0
        # read_prog halt (already reached when the injection batch
        # carried the first resume).
        if first_halt is not None:
            event = first_halt
        else:
            with self.obs.span("continue"):
                event = gdb.exec_continue()
        if self._handle_abnormal(event, program, new_edges):
            return
        # execute_one halt (or straight back to executor_main on reject).
        with self.obs.span("continue"):
            event = gdb.exec_continue()
        if event.symbol == "executor_main":
            self.stats.rejected_programs += 1
            self._post_run(program, new_edges, executed=False)
            return
        if self._handle_abnormal(event, program, new_edges):
            return
        # Execution until completion, draining cov-full traps.
        while True:
            with self.obs.span("continue"):
                event = gdb.exec_continue()
            if event.reason == HaltReason.COV_FULL:
                self.stats.cov_full_traps += 1
                new_edges += self._drain_coverage()
                continue
            if event.symbol == "executor_main" and \
                    event.reason == HaltReason.BREAKPOINT:
                self.stats.programs_executed += 1
                self.stats.calls_executed += len(program.calls)
                self._post_run(program, new_edges, executed=True)
                return
            if self._handle_abnormal(event, program, new_edges):
                return
            # Unexpected stop (e.g. read_prog after a desync): continue.

    def _handle_abnormal(self, event: HaltEvent, program: TestProgram,
                         new_edges: int) -> bool:
        """Returns True if the event terminated this test case."""
        if event.reason == HaltReason.EXCEPTION:
            self._on_exception(event, program, new_edges)
            return True
        if event.reason == HaltReason.STALL:
            self._on_stall(event, program, new_edges)
            return True
        return False

    def _record_crash(self, report: CrashReport) -> bool:
        """Count one crash observation; True if it is a new unique crash."""
        self.stats.crashes_observed += 1
        fresh = self.crash_db.add(report)
        if fresh:
            self.stats.unique_crashes += 1
        if self.obs.enabled:
            self.obs.counter("crash.observed").inc()
            self.obs.emit("crash.report", kind=report.kind,
                          monitor=report.monitor, cause=report.cause,
                          unique=fresh)
        if fresh and self.obs.flight is not None:
            # Black-box dump for every *new* signature; duplicates are
            # deduplicated inside the recorder.
            self.obs.flight.dump("crash", report.signature(),
                                 obs=self.obs)
        return fresh

    def _post_run(self, program: TestProgram, new_edges: int,
                  executed: bool) -> None:
        new_edges += self._drain_coverage()
        self._recent_new_edges.append(new_edges)
        if self.heap_probe is not None and executed:
            defect = self.heap_probe.maybe_probe()
            if defect is not None:
                self._record_crash(CrashReport(
                    os_name=self.build.config.os_name,
                    kind="silent-corruption", cause=defect,
                    monitor="heap-probe", program=program))
        log_reports = self._scan_logs(program)
        crashed = bool(log_reports)
        spent = self.session.board.machine.cycles \
            - getattr(self, "_run_started_at", 0)
        if self.obs.enabled:
            self.obs.histogram("exec.cycles").record(spent)
            self.obs.emit("exec.program", executed=executed,
                          calls=len(program.calls), new_edges=new_edges,
                          cycles_spent=spent, crashed=crashed)
        if self.options.feedback and (new_edges > 0 or crashed):
            self.corpus.add(program, new_edges, crashed=crashed,
                            exec_cycles=spent, edges=self._fresh_edges)
            self.coverage.credit_calls(
                [call.api_id for call in program.calls], new_edges)
            if self.obs.enabled:
                self.obs.gauge("corpus.size").set(len(self.corpus))
                self.obs.emit("corpus.add", new_edges=new_edges,
                              crashed=crashed, size=len(self.corpus))
            if new_edges > 0 and self._exploiting():
                self._smash(program)

    def _smash(self, program: TestProgram) -> None:
        """Queue immediate neighbourhood variants of a discovering input
        (Syzkaller's smash phase): the gradient is hottest right now."""
        for _ in range(self.options.smash_count):
            self._smash_queue.append(self.mutator.mutate(program))

    def _drain_coverage(self) -> int:
        layout = self.build.ram_layout
        gdb = self.session.gdb
        capacity = (layout.cov_buf_size - 4) // 4
        with self.obs.span("drain-coverage"):
            if self.options.link_batching:
                # One COV_DRAIN transaction: generation check, count,
                # body and clear in a single exchange; an unchanged
                # generation word means nothing new landed and the whole
                # drain cost one word read.
                try:
                    raw = gdb.link.cov_drain(
                        layout.cov_buf_addr, capacity,
                        gen_addr=getattr(layout, "cov_gen_addr", 0))
                except DebugLinkTimeout:
                    return 0
                if raw is None:
                    if self.obs.enabled:
                        self.obs.counter("link.drain.skipped").inc()
                    return 0
            else:
                try:
                    count = gdb.read_u32(layout.cov_buf_addr)
                    count = min(count, capacity)
                    raw = gdb.read_memory(layout.cov_buf_addr,
                                          4 + count * 4)
                except DebugLinkTimeout:
                    return 0
                gdb.write_u32(layout.cov_buf_addr, 0)
            edges = decode_coverage_buffer(raw, obs=self.obs)
            fresh_edges = self.coverage.add_new(edges)
            if self.foreign_edges:
                # Campaign dedup: an edge some other board already
                # covered still enters the local map (it *was* seen
                # here) but earns no reward — rediscovering the global
                # frontier is not progress.
                fresh_edges = [edge for edge in fresh_edges
                               if edge not in self.foreign_edges]
            self._fresh_edges.extend(fresh_edges)
            fresh = len(fresh_edges)
        if self.obs.enabled:
            self.obs.counter("coverage.drain.bytes").inc(len(raw))
            self.obs.histogram(
                "coverage.drain.records",
                buckets=(1, 4, 16, 64, 256, 1024)).record(len(edges))
            if fresh:
                self.obs.emit("coverage.growth", new_edges=fresh,
                              total_edges=self.coverage.edge_count)
        return fresh

    def _scan_logs(self, program: Optional[TestProgram]) -> List[CrashReport]:
        """Returns only the *new* (previously unseen) crash reports."""
        if not self.options.use_log_monitor:
            self.session.drain_uart()
            return []
        with self.obs.span("triage"):
            lines = self.session.drain_uart()
            fresh = []
            for report in self.log_monitor.scan(lines):
                report.program = program
                if self._record_crash(report):
                    fresh.append(report)
        return fresh

    # -- failure paths ------------------------------------------------------------------

    def _on_exception(self, event: HaltEvent, program: TestProgram,
                      new_edges: int) -> None:
        new_edges += self._drain_coverage()
        new_crash = False
        if self.exception_monitor is not None and \
                self.exception_monitor.matches(event):
            with self.obs.span("triage"):
                report = self.exception_monitor.capture(event)
                report.program = program
                new_crash = self._record_crash(report)
                # The panic banner on the UART belongs to this same crash;
                # don't let the log monitor double-report it.
                self.session.drain_uart()
        else:
            new_crash = bool(self._scan_logs(program))
        # Save the payload when it found something new — re-admitting
        # every duplicate crasher just burns the budget on restores.
        if self.options.feedback and (new_edges > 0 or new_crash):
            spent = self.session.board.machine.cycles \
                - getattr(self, "_run_started_at", 0)
            self.corpus.add(program, new_edges, crashed=new_crash,
                            exec_cycles=spent, edges=self._fresh_edges)
            self.coverage.credit_calls(
                [call.api_id for call in program.calls], new_edges)
        self._recover()

    def _on_stall(self, event: HaltEvent, program: TestProgram,
                  new_edges: int) -> None:
        self.stats.stalls += 1
        new_edges += self._drain_coverage()
        # An assertion hang leaves its line on the UART: the log monitor
        # (not the exception monitor) is what attributes these (§4.5.2).
        crashed = bool(self._scan_logs(program))
        if not crashed and self.options.record_hangs_as_crashes:
            # Timeout-only detection (the Tardis model): every hang is
            # recorded, without backtrace or cause attribution.
            self._record_crash(CrashReport(
                os_name=self.build.config.os_name,
                kind=KIND_HANG, cause="target hang",
                detail=event.detail, monitor="timeout",
                program=program))
            crashed = True
        if self.options.feedback and (new_edges > 0 or crashed):
            spent = self.session.board.machine.cycles \
                - getattr(self, "_run_started_at", 0)
            self.corpus.add(program, new_edges, crashed=crashed,
                            exec_cycles=spent, edges=self._fresh_edges)
        # Algorithm 1: confirm via the watchdog, then salvage.  A parked
        # PC with intact flash only needs a reboot; the reflash hammer is
        # for images that no longer boot.
        if self.watchdog is not None and not self.watchdog.check():
            pass  # expected: PC is parked
        self._recover()

    def _recover(self) -> None:
        """Post-crash recovery: snapshot write-back when a trusted
        snapshot is ready, else start at the reboot rung (the crash is
        real; a bare retry would just re-probe a panicked kernel — which
        is also why the snapshot path skips the retry rung on the way
        down)."""
        if self.snapshot is not None and self.snapshot.ready:
            self._escalate(start="snapshot", reason="crash",
                           skip=("retry",))
        else:
            self._escalate(start="reboot", reason="crash")

    def _salvage(self) -> None:
        """Link-loss recovery: climb the ladder from the retry rung —
        under fault injection most timeouts are transient and a backoff
        retry saves the reflash.  The snapshot rung is deliberately NOT
        consulted here: a retry leaves the surviving target state
        untouched, and a snapshot write-back would rewind it — the two
        restore modes must recover timeouts identically."""
        self._escalate(start="retry", reason="link-timeout")

    def _escalate(self, start: str, reason: str,
                  skip: tuple = ()) -> None:
        """Run the recovery ladder; only ever returns with a verified
        live board (breakpoints re-armed, watchdog reset, UART drained).
        Raises :class:`RecoveryExhausted` when the board is dead."""
        with self.obs.span("restore"):
            self.ladder.recover(start=start, reason=reason, skip=skip)
        self._maybe_recapture()

    def _maybe_recapture(self) -> None:
        """Re-capture after a recovery that left the snapshot invalid
        (reflash moved the flash epoch, or the verify probe struck it
        out): the board is verified alive and freshly booted, which is
        exactly the state a snapshot must be taken from."""
        if self.snapshot is None or self.snapshot.ready:
            return
        with self.obs.span("restore"):
            self.snapshot.capture()
