"""Algorithm 1, ``LivenessWatchDog``: the two host-side liveness checks.

1. **Connection timeout** — a debug-link operation raising
   :class:`DebugLinkTimeout` means the target failed to boot or is
   entirely unresponsive (lines 4-5).
2. **PC stall** — ``-exec-continue`` that leaves the program counter
   unchanged means no instruction retires, typically a corrupted image or
   a dead spin (lines 6-10).

Both run host-side over the debug link with no target instrumentation.
"""

from __future__ import annotations

from repro.ddi.session import DebugSession
from repro.errors import DebugLinkTimeout
from repro.obs import NULL_OBS

INT_MIN = -(2 ** 31)


class LivenessWatchdog:
    """Stateful watchdog bound to one debug session."""

    def __init__(self, session: DebugSession, obs=NULL_OBS):
        self.session = session
        self.obs = obs
        self.last_pc: int = INT_MIN
        self.timeout_trips = 0
        self.stall_trips = 0

    def reset(self) -> None:
        """Forget PC history (after a restoration or reboot)."""
        self.last_pc = INT_MIN

    def note_timeout(self) -> None:
        """Record a :class:`DebugLinkTimeout` observed outside
        :meth:`check` (e.g. the engine's execute path), so the watchdog
        trip counter and the engine's ``link_timeouts`` stat cannot
        drift apart."""
        self.timeout_trips += 1
        if self.obs.enabled:
            self.obs.emit("liveness.trip", kind="link-timeout",
                          trips=self.timeout_trips)

    def check(self) -> bool:
        """One watchdog evaluation; False = system needs salvaging.

        Mirrors Algorithm 1 line-by-line: a connection timeout fails
        immediately; the first PC sample only seeds history; a repeated
        PC fails.
        """
        try:
            pc = self.session.read_pc()
        except DebugLinkTimeout:
            self.timeout_trips += 1
            if self.obs.enabled:
                self.obs.emit("liveness.trip", kind="link-timeout",
                              trips=self.timeout_trips)
            return False
        if self.last_pc == INT_MIN:
            self.last_pc = pc
            return True
        if self.last_pc == pc:
            self.stall_trips += 1
            if self.obs.enabled:
                self.obs.emit("liveness.trip", kind="pc-stall", pc=pc,
                              trips=self.stall_trips)
            return False
        self.last_pc = pc
        return True

    def observe_pc(self, pc: int) -> None:
        """Feed a PC sampled elsewhere (after a halt event)."""
        if self.last_pc == INT_MIN:
            self.last_pc = pc
