"""Snapshot-tier state restoration: RAM + registers, not reflash.

The paper's Algorithm 1 restores by reflashing every partition and
rebooting — correct, but ``REFLASH_CYCLES`` dominates recovery latency
on crash-heavy targets.  EmbedFuzz-style snapshot/restore is the step
change: capture the target once after a verified clean boot, then bring
it back by rewriting only what changed.

:class:`SnapshotManager` implements that tier for one debug session:

* **capture** — one batched link transaction reads all of RAM plus the
  coverage generation word; the CPU register file and a deep copy of the
  booted runtime are taken through the probe-side APIs
  (:meth:`repro.hw.machine.Machine.capture_registers`,
  :meth:`repro.hw.board.Board.capture_runtime_image`).  A deterministic
  canary word is planted in the unused tail of the agent status block
  before the read, so the image carries its own integrity probe.
* **dirty tracking** — host-side and page-granular, via the
  :class:`repro.link.client.DebugLink` write log: host writes mark their
  exact pages, every resume marks the statically-known execution-dirty
  ranges (kernel heap, agent status, crash block, coverage buffer), a
  reset marks everything.
* **restore** — write back only the dirty pages plus the canary in one
  ``session.batch()``, restore the register file, install a fresh copy
  of the captured runtime, then *verify*: read back the generation word
  and the canary.  A mismatch means the snapshot (or the write-back) is
  suspect — the restore fails, the recovery ladder escalates to the
  reflash tier, and after ``SUSPECT_THRESHOLD`` strikes the snapshot
  invalidates itself so the engine re-captures from a clean boot.
* **invalidation** — any flash write bumps the link's ``flash_epoch``;
  a snapshot taken against an older image refuses to restore (the RAM
  image would disagree with what the new image boots into).

Concurrency: a manager is owned by exactly one engine/worker thread and
shares no state across workers — campaign fleets get one manager per
board (see ``repro.farm``), so there is nothing to lock.

Why the generation word + canary verify suffices: the substrate's RAM
only mutates through the link (which the dirty log watches) or while
the core runs (which marks the declared execution-dirty ranges, the
complete writable surface of the firmware).  The only unmodeled risks
are a torn/corrupted write-back and a stale capture — the canary
catches bit-level corruption of the write-back path, and the generation
word catches a capture that no longer matches the tracer state the
restored runtime believes in.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.ddi.session import DebugSession
from repro.errors import DebugLinkError, DebugLinkTimeout
from repro.link.client import DIRTY_PAGE_SIZE, pages_for_range
from repro.obs import NULL_OBS

# Virtual-time costs, charged to the machine's cycle clock like every
# other recovery tier.  Capture streams the whole RAM image once (a few
# hundred KB over SWD, but off the hot path); a restore writes a few
# tens of dirty KB plus the register file and the verify readback.
SNAPSHOT_CAPTURE_CYCLES = 4_000
SNAPSHOT_RESTORE_BASE_CYCLES = 600
SNAPSHOT_PAGE_WRITE_CYCLES = 8

#: Deterministic integrity word planted in the unused tail of the agent
#: status block (the agent packs 20 of the 64 reserved bytes).
SNAPSHOT_CANARY = 0x5AFE_C0DE

#: Verify-probe mismatches tolerated before the snapshot invalidates
#: itself and the engine re-captures from a verified clean boot.
SUSPECT_THRESHOLD = 2


class SnapshotManager:
    """Snapshot capture/restore bound to one debug session.

    Owned by a single engine; never shared across farm workers (each
    board gets its own manager), so no locking is required.
    """

    def __init__(self, session: DebugSession, stats=None, obs=NULL_OBS):
        self.session = session
        self.stats = stats
        self.obs = obs
        self.layout = session.build.ram_layout
        self.valid = False
        self.suspect_count = 0
        self.captures = 0
        self.restores = 0
        self.fallbacks = 0
        self.pages_written = 0
        self._ram_image: Optional[bytes] = None
        self._registers = None
        self._runtime_image = None
        self._gen_value = 0
        self._flash_epoch = -1

    # -- state ----------------------------------------------------------------

    @property
    def canary_addr(self) -> int:
        """Last word of the status block — never touched by the agent."""
        return self.layout.status_addr + self.layout.status_size - 4

    @property
    def ready(self) -> bool:
        """Can :meth:`restore` be attempted right now?

        False until a capture succeeded, after self-invalidation, and
        whenever flash moved since the capture (the RAM image predates
        the image now in flash).
        """
        return (self.valid and self._ram_image is not None
                and self.session.link.flash_epoch == self._flash_epoch)

    def invalidate(self, reason: str = "") -> None:
        """Drop the snapshot; the next capture starts from scratch."""
        if self.valid and self.obs.enabled:
            self.obs.emit("restore.snapshot.invalidate", reason=reason)
        self.valid = False

    def _exec_dirty_ranges(self) -> List[Tuple[int, int]]:
        """The complete RAM surface the firmware writes while running:
        kernel heap, agent status block, crash report block, coverage
        buffer and its generation word."""
        layout = self.layout
        ranges = [
            (layout.kernel_heap_base, layout.kernel_heap_size),
            (layout.status_addr, layout.status_size),
            (layout.crash_addr, layout.crash_size),
            (layout.cov_buf_addr, layout.cov_buf_size),
            (layout.input_buf_addr, layout.input_buf_size),
        ]
        if layout.cov_gen_addr:
            ranges.append((layout.cov_gen_addr, 4))
        return ranges

    # -- capture ---------------------------------------------------------------

    def capture(self) -> bool:
        """Snapshot the target.  Call only against a verified clean boot
        (the engine captures right after boot-chatter drain, and
        re-captures after a successful reflash-tier recovery).

        Returns True on success; a link fault leaves the manager
        not-ready and the ladder simply skips the snapshot rung.
        """
        session = self.session
        board = session.board
        link = session.link
        machine = board.machine
        started_at = machine.cycles
        gen_addr = self.layout.cov_gen_addr
        try:
            link.write_u32(self.canary_addr, SNAPSHOT_CANARY)
            with session.batch():
                ram_pending = link.read_mem(board.ram.base, board.ram.size)
                gen_pending = link.read_u32(gen_addr) if gen_addr else None
            self._ram_image = bytes(ram_pending.result())
            self._gen_value = gen_pending.result() if gen_pending else 0
        except (DebugLinkError, DebugLinkTimeout):
            self.invalidate(reason="capture-link-fault")
            return False
        self._registers = machine.capture_registers()
        self._runtime_image = board.capture_runtime_image()
        link.set_exec_dirty_ranges(self._exec_dirty_ranges())
        link.clear_dirty()
        self._flash_epoch = link.flash_epoch
        machine.tick(SNAPSHOT_CAPTURE_CYCLES)
        self.valid = True
        self.suspect_count = 0
        self.captures += 1
        if self.stats is not None:
            self.stats.snapshot_captures += 1
        if self.obs.enabled:
            self.obs.emit("restore.snapshot.capture",
                          bytes=len(self._ram_image),
                          gen=self._gen_value,
                          cycles_spent=machine.cycles - started_at)
        return True

    # -- restore ---------------------------------------------------------------

    def _dirty_page_spans(self) -> List[Tuple[int, int]]:
        """(addr, length) spans to write back, clipped to RAM."""
        ram = self.session.board.ram
        link = self.session.link
        if link.dirty_all:
            pages = pages_for_range(ram.base, ram.size)
        else:
            pages = sorted(link.dirty_pages())
        spans = []
        for page in pages:
            start = max(page * DIRTY_PAGE_SIZE, ram.base)
            end = min((page + 1) * DIRTY_PAGE_SIZE, ram.base + ram.size)
            if start < end:
                spans.append((start, end - start))
        return spans

    def restore(self) -> bool:
        """Write dirty pages + registers back; verify; True on success.

        A failed verify counts a suspect strike and returns False (the
        ladder escalates to reflash); ``SUSPECT_THRESHOLD`` strikes
        invalidate the snapshot entirely.
        """
        if not self.ready:
            return False
        session = self.session
        board = session.board
        link = session.link
        machine = board.machine
        started_at = machine.cycles
        spans = self._dirty_page_spans()
        base = board.ram.base
        try:
            with session.batch():
                for addr, length in spans:
                    link.write_mem(
                        addr, self._ram_image[addr - base:
                                              addr - base + length])
                link.write_u32(self.canary_addr, SNAPSHOT_CANARY)
        except (DebugLinkError, DebugLinkTimeout):
            return self._suspect("write-back-fault")
        machine.restore_registers(self._registers)
        board.restore_runtime_image(self._runtime_image)
        # The restore rewound the tracer's generation word: the next
        # coverage drain must be a full one, exactly like after a reboot.
        link.forget_drain_state()
        machine.tick(SNAPSHOT_RESTORE_BASE_CYCLES
                     + SNAPSHOT_PAGE_WRITE_CYCLES * len(spans))
        if not self._verify_probe():
            return self._suspect("verify-mismatch")
        link.clear_dirty()
        self.restores += 1
        self.pages_written += len(spans)
        self.suspect_count = 0
        spent = machine.cycles - started_at
        if self.stats is not None:
            self.stats.snapshot_restores += 1
            self.stats.snapshot_pages_written += len(spans)
        if self.obs.enabled:
            self.obs.counter("restore.snapshot.pages").inc(len(spans))
            self.obs.histogram("restore.snapshot.latency").record(spent)
            self.obs.emit("restore.snapshot.restore", pages=len(spans),
                          cycles_spent=spent)
        return True

    def _verify_probe(self) -> bool:
        """Read back the generation word + canary and compare to capture.

        Inside a batch the link never serves reads from cache, so these
        are real target readbacks of what the write-back produced.
        """
        session = self.session
        link = session.link
        gen_addr = self.layout.cov_gen_addr
        try:
            with session.batch():
                canary_pending = link.read_u32(self.canary_addr)
                gen_pending = link.read_u32(gen_addr) if gen_addr else None
            if canary_pending.result() != SNAPSHOT_CANARY:
                return False
            if gen_pending is not None and \
                    gen_pending.result() != self._gen_value:
                return False
        except (DebugLinkError, DebugLinkTimeout):
            return False
        return True

    def _suspect(self, reason: str) -> bool:
        """One verify strike: count it, maybe self-invalidate, fail."""
        self.suspect_count += 1
        self.fallbacks += 1
        if self.stats is not None:
            self.stats.snapshot_fallbacks += 1
        if self.obs.enabled:
            self.obs.counter("restore.snapshot.fallbacks").inc()
            self.obs.emit("restore.snapshot.fallback", reason=reason,
                          strikes=self.suspect_count)
        if self.suspect_count >= SUSPECT_THRESHOLD:
            self.invalidate(reason=f"suspect-threshold:{reason}")
        return False
