"""Deterministic randomness helpers shared by generator and mutator."""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

T = TypeVar("T")

# Tokens the spec synthesiser distils from unit-test examples and API
# reference text (§4.5): they seed buffer arguments with plausible
# protocol fragments instead of pure noise.
BUFFER_DICTIONARY = (
    b"GET / HTTP/1.1\r\n\r\n",
    b"POST /api/echo HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd",
    b"content-length:",
    b"connection: keep-alive",
    b'{"key": "value"}',
    b'{"a": [1, 2, 3]}',
    b'[{"nested": {"deep": true}}]',
    b'"escaped \\" string"',
    b"\x00\x00\x00\x00",
    b"\xff\xff\xff\xff",
    b"AAAA",
    # Console fragments (from the shells' unit-test examples).
    b"set ",
    b"led on",
    b"led off",
    b"log 3",
    b"cat boot.cfg",
    b"hexdump 0 16",
    b"ifconfig up",
    b"echo hi",
    b";",
    b" 1",
    b"config net set mtu 1500",
    b"config ",
    b"test heap",
    b"$",
)


class FuzzRng:
    """A seeded RNG with fuzzing-shaped distributions."""

    def __init__(self, seed: int = 0):
        self.random = random.Random(seed)

    def chance(self, probability: float) -> bool:
        """True with the given probability."""
        return self.random.random() < probability

    def pick(self, items: Sequence[T]) -> T:
        """Uniform choice."""
        return self.random.choice(items)

    def pick_weighted(self, items: Sequence[T],
                      weights: Sequence[float]) -> T:
        """Weighted choice; falls back to uniform on degenerate weights."""
        total = sum(weights)
        if total <= 0:
            return self.pick(items)
        return self.random.choices(items, weights=weights, k=1)[0]

    def geometric(self, mean: int, cap: int) -> int:
        """Small-biased length in [0, cap] with roughly the given mean."""
        if mean <= 0:
            return 0
        p = 1.0 / (mean + 1)
        value = 0
        while value < cap and not self.chance(p):
            value += 1
        return value

    def int_in(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi]."""
        return self.random.randint(lo, hi)

    def interesting_int(self, lo: int, hi: int) -> int:
        """An integer biased toward boundaries and small values."""
        roll = self.random.random()
        if roll < 0.35:
            return self.random.randint(lo, hi)
        if roll < 0.55:
            return self.pick([lo, hi, lo + 1, max(hi - 1, lo)])
        if roll < 0.92:
            span = max(hi - lo, 1)
            return lo + self.geometric(min(8, span), span)
        # Occasional out-of-range boundary injection: real mutators do
        # this, and it is what reaches clamp/reject branches and the
        # block-forever stall paths.
        return self.pick([hi + 1, lo - 1 if lo > 0 else hi + 2,
                          0xFFFF, 0x7FFFFFFF, -1])

    def random_bytes(self, maxlen: int, mean: int = 12) -> bytes:
        """A fresh byte buffer, dictionary-seeded half the time."""
        if self.chance(0.5):
            token = self.pick(BUFFER_DICTIONARY)
            if len(token) <= maxlen:
                if self.chance(0.4):
                    return token
                # Token + noise tail.
                tail = bytes(self.random.randrange(256) for _ in range(
                    self.geometric(4, maxlen - len(token))))
                return (token + tail)[:maxlen]
        length = self.geometric(mean, maxlen)
        return bytes(self.random.randrange(256) for _ in range(length))

    def random_string(self, maxlen: int,
                      candidates: Sequence[str] = ()) -> bytes:
        """A printable string; draws documented candidates half the time."""
        if candidates and self.chance(0.5):
            return self.pick(candidates).encode("latin1")[:maxlen]
        length = self.geometric(5, maxlen)
        alphabet = "abcdefghijklmnopqrstuvwxyz0123456789_/"
        return "".join(self.pick(alphabet)
                       for _ in range(length)).encode("latin1")

    # -- format-aware payload builders (spec `buffer[..., fmt]` hints) ------

    HTTP_METHODS = ("GET", "HEAD", "POST", "PUT", "DELETE", "BREW")
    HTTP_PATHS = ("/", "/index.html", "/status", "/api/led", "/api/echo",
                  "/api/config", "/nope", "/status?verbose=1")
    HTTP_HEADERS = ("host: dev", "connection: keep-alive",
                    "connection: close", "user-agent: eof",
                    "accept: */*", "expect: 100-continue", "x-junk: 1")
    HTTP_BODIES = (b"", b"on", b"off", b"hello", b"led=on&mode=2",
                   b"nopair", b"x" * 40)

    def gen_http_request(self, maxlen: int) -> bytes:
        """A structured (mostly well-formed) HTTP request."""
        method = self.pick(self.HTTP_METHODS)
        path = self.pick(self.HTTP_PATHS)
        version = self.pick(("HTTP/1.1", "HTTP/1.0", "HTTP/2", "HTPT/1.1"))
        lines = [f"{method} {path} {version}".encode()]
        for _ in range(self.geometric(2, 5)):
            lines.append(self.pick(self.HTTP_HEADERS).encode())
        body = self.pick(self.HTTP_BODIES)
        if body and self.chance(0.8):
            length = len(body) if self.chance(0.8) else \
                self.int_in(0, len(body) + 8)
            lines.append(f"content-length: {length}".encode())
        request = b"\r\n".join(lines) + b"\r\n\r\n" + body
        if self.chance(0.1):
            request = self.mutate_bytes(request, maxlen)  # light damage
        return request[:maxlen]

    def gen_json_text(self, maxlen: int, depth: int = 0) -> bytes:
        """A structured (mostly well-formed) JSON document."""
        def value(level: int) -> str:
            roll = self.random.random()
            if level >= 4 or roll < 0.35:
                return self.pick(("1", "-27", "true", "false", "null",
                                  '"s"', '"\\u0041"', '"two words"',
                                  str(self.int_in(-10**6, 10**6))))
            if roll < 0.7:
                items = [value(level + 1)
                         for _ in range(self.geometric(2, 4))]
                return "[" + ", ".join(items) + "]"
            pairs = [f'"k{i}": {value(level + 1)}'
                     for i in range(self.geometric(2, 4))]
            return "{" + ", ".join(pairs) + "}"
        text = value(depth).encode()
        if self.chance(0.15):
            text = self.mutate_bytes(text, maxlen)  # light damage
        return text[:maxlen]

    def formatted_bytes(self, fmt: str, maxlen: int) -> bytes:
        """Dispatch on a spec format hint; unknown formats fall back to
        dictionary-seeded noise."""
        if fmt == "http_request":
            return self.gen_http_request(maxlen)
        if fmt == "json":
            return self.gen_json_text(maxlen)
        return self.random_bytes(maxlen)

    def mutate_int(self, value: int, lo: int, hi: int) -> int:
        """Tweak an integer: increment, bitflip, boundary, or re-roll."""
        roll = self.random.random()
        if roll < 0.3:
            return value + self.pick([-1, 1, -8, 8])
        if roll < 0.5:
            return value ^ (1 << self.random.randrange(16))
        if roll < 0.7:
            return self.pick([lo, hi, 0, 1])
        return self.interesting_int(lo, hi)

    WORD_DICTIONARY = (
        "help", "echo", "set", "unset", "env", "led", "log", "cat",
        "hexdump", "ifconfig", "ps", "free", "config", "test",
        "on", "off", "toggle", "up", "down", "get", "reset",
        "net", "can", "log", "mtu", "baud", "heap", "sched", "ipc", "all",
        "boot.cfg", "version", "motd", "0x10", "16", "3", "k", "$k", ";",
    )

    def mutate_words(self, data: bytes, maxlen: int) -> bytes:
        """Token-level mutation for textual arguments (console lines,
        names): replace/insert/drop whole words from the dictionary."""
        text = data.decode("latin1", "replace")
        words = text.split(" ") if text else []
        for _ in range(1 + self.geometric(1, 3)):
            op = self.random.randrange(4)
            if op == 0 or not words:
                words.insert(self.random.randint(0, len(words)),
                             self.pick(self.WORD_DICTIONARY))
            elif op == 1:
                words[self.random.randrange(len(words))] = \
                    self.pick(self.WORD_DICTIONARY)
            elif op == 2 and len(words) > 1:
                del words[self.random.randrange(len(words))]
            else:
                index = self.random.randrange(len(words))
                words[index] = words[index] + self.pick(["1", "x", "0"])
        return " ".join(words).encode("latin1")[:maxlen]

    def mutate_bytes(self, data: bytes, maxlen: int) -> bytes:
        """AFL-style havoc: byte ops plus dictionary-token and chunk ops."""
        if not data:
            return self.random_bytes(maxlen)
        out = bytearray(data)
        for _ in range(1 + self.geometric(2, 8)):
            op = self.random.randrange(6)
            pos = self.random.randrange(len(out)) if out else 0
            if op == 0 and out:
                out[pos] = self.random.randrange(256)
            elif op == 1 and len(out) < maxlen:
                out.insert(pos, self.random.randrange(256))
            elif op == 2 and len(out) > 1:
                del out[pos]
            elif op == 3 and out:
                out[pos] ^= 1 << self.random.randrange(8)
            elif op == 4:
                # Token insertion/overwrite (AFL dictionaries): this is
                # what reaches keyword-gated branches.
                token = self.pick(BUFFER_DICTIONARY)
                if self.chance(0.5) and len(out) + len(token) <= maxlen:
                    out[pos:pos] = token
                else:
                    out[pos:pos + len(token)] = token
            elif op == 5 and len(out) > 4:
                # Duplicate a chunk elsewhere in the buffer.
                start = self.random.randrange(len(out) - 2)
                length = 1 + self.geometric(4, min(16, len(out) - start - 1))
                chunk = bytes(out[start:start + length])
                out[pos:pos] = chunk
        return bytes(out[:maxlen])
