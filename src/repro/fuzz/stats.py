"""Run statistics: coverage-over-time series and event counters.

Time is the target's cycle clock (deterministic virtual time); the
series is what the Figure 7/8 coverage-growth plots are drawn from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class FuzzStats:
    """Counters + coverage time series for one fuzzing run."""

    programs_executed: int = 0
    calls_executed: int = 0
    crashes_observed: int = 0
    unique_crashes: int = 0
    stalls: int = 0
    link_timeouts: int = 0
    restorations: int = 0
    reboots: int = 0
    cov_full_traps: int = 0
    rejected_programs: int = 0
    series: List[Tuple[int, int]] = field(default_factory=list)  # (cycles, edges)

    def record_point(self, cycles: int, edges: int) -> None:
        """Append a coverage sample (deduplicated per edge count)."""
        if self.series and self.series[-1][1] == edges and \
                len(self.series) > 1 and self.series[-2][1] == edges:
            # Collapse flat stretches: keep first and latest sample.
            self.series[-1] = (cycles, edges)
            return
        self.series.append((cycles, edges))

    def final_edges(self) -> int:
        """Last coverage sample (0 if none)."""
        return self.series[-1][1] if self.series else 0

    def edges_at(self, cycles: int) -> int:
        """Coverage at or before a given cycle timestamp."""
        best = 0
        for when, edges in self.series:
            if when > cycles:
                break
            best = edges
        return best

    def summary(self) -> str:
        """One-line human summary."""
        return (f"execs={self.programs_executed} edges={self.final_edges()} "
                f"crashes={self.unique_crashes}/{self.crashes_observed} "
                f"restores={self.restorations}")
