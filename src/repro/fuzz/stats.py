"""Run statistics: coverage-over-time series and event counters.

Time is the target's cycle clock (deterministic virtual time); the
series is what the Figure 7/8 coverage-growth plots are drawn from.
Samples are recorded in nondecreasing cycle order (the engine's loop
guarantees it), which is what lets :meth:`FuzzStats.edges_at` binary
search instead of scanning Figure-7-length series.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field, fields
from typing import Dict, List, Sequence, Tuple

_INF_EDGES = float("inf")

#: FuzzStats fields that measure transport cost, not fuzzing outcome.
LINK_ACCOUNTING_FIELDS = ("link_transactions", "link_bytes")

#: FuzzStats fields that measure *how* state was restored, not what the
#: run found.  Snapshot-tier and reflash-tier runs of the same seed
#: necessarily differ here (and in every cycle timestamp downstream of a
#: recovery), so the restore-equivalence gate compares
#: ``semantic_dict(restore_invariant=True)``, which drops these and
#: projects the series onto its edge progression.
RESTORE_ACCOUNTING_FIELDS = (
    "restorations", "reboots", "reattaches",
    "snapshot_captures", "snapshot_restores", "snapshot_fallbacks",
    "snapshot_pages_written", "start_cycles")


def series_edges_at(series: Sequence[Tuple[int, int]], cycles: int) -> int:
    """Coverage at or before ``cycles`` in a (cycles, edges) series.

    The series must be sorted by cycle timestamp (as recorded); lookup
    is a binary search, so querying many timestamps against a long
    series (curve bands, report percentiles) stays cheap.
    """
    index = bisect_right(series, (cycles, _INF_EDGES))
    return series[index - 1][1] if index else 0


@dataclass
class FuzzStats:
    """Counters + coverage time series for one fuzzing run."""

    programs_executed: int = 0
    calls_executed: int = 0
    crashes_observed: int = 0
    unique_crashes: int = 0
    stalls: int = 0
    link_timeouts: int = 0
    restorations: int = 0
    reboots: int = 0
    recoveries: int = 0
    reattaches: int = 0
    recovery_failures: int = 0
    # Snapshot-tier restoration (repro.fuzz.snapshot): captures taken,
    # dirty-page restores served, verify-probe fallbacks to the reflash
    # ladder, and total pages written back.
    snapshot_captures: int = 0
    snapshot_restores: int = 0
    snapshot_fallbacks: int = 0
    snapshot_pages_written: int = 0
    cov_full_traps: int = 0
    rejected_programs: int = 0
    # Cross-worker seeds injected into this engine by campaign sync
    # (repro.farm); 0 for single-board runs.
    imported_seeds: int = 0
    # Statically-reachable edge universe for the run's build (from
    # repro.analysis.reach); 0 when analysis was unavailable.
    reachable_edges: int = 0
    # Debug-link accounting (repro.link): how many transactions and
    # frame bytes the run cost.  Excluded from semantic_dict() — batched
    # and unbatched runs of the same seed differ ONLY here.
    link_transactions: int = 0
    link_bytes: int = 0
    # Cycle-clock reading when the fuzzing loop started: the profiler's
    # budget baseline (boot cycles are not the fuzzer's to spend).
    start_cycles: int = 0
    series: List[Tuple[int, int]] = field(default_factory=list)  # (cycles, edges)

    def record_point(self, cycles: int, edges: int) -> None:
        """Append a coverage sample (deduplicated per edge count).

        Flat stretches collapse to their first and latest sample, so the
        first-occurrence timestamp of every edge count is preserved.
        """
        if self.series and self.series[-1][1] == edges and \
                len(self.series) > 1 and self.series[-2][1] == edges:
            # Collapse flat stretches: keep first and latest sample.
            self.series[-1] = (cycles, edges)
            return
        self.series.append((cycles, edges))

    def final_edges(self) -> int:
        """Last coverage sample (0 if none)."""
        return self.series[-1][1] if self.series else 0

    def edges_at(self, cycles: int) -> int:
        """Coverage at or before a given cycle timestamp."""
        return series_edges_at(self.series, cycles)

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly dump (counters + series as [cycles, edges] pairs)."""
        data: Dict[str, object] = {
            f.name: getattr(self, f.name)
            for f in fields(self) if f.name != "series"}
        data["series"] = [[cycles, edges] for cycles, edges in self.series]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FuzzStats":
        """Inverse of :meth:`to_dict`; ignores unknown keys."""
        counter_names = {f.name for f in fields(cls)} - {"series"}
        stats = cls(**{name: int(data.get(name, 0))
                       for name in counter_names})
        stats.series = [(int(cycles), int(edges))
                        for cycles, edges in data.get("series", [])]
        return stats

    def semantic_dict(self, restore_invariant: bool = False) \
            -> Dict[str, object]:
        """:meth:`to_dict` minus link accounting.

        This is the equality domain of the batched-vs-unbatched
        determinism gate: everything the fuzzer *found* (coverage,
        crashes, recoveries, the whole time series) must be
        byte-identical across modes; only the transport cost may differ.

        ``restore_invariant=True`` additionally drops the
        restore-accounting fields and replaces the ``(cycles, edges)``
        series with its edge progression — the equality domain of the
        snapshot-vs-reflash gate, where recovery *latency* is the whole
        point of the difference but every discovered edge and crash must
        still match exactly.
        """
        data = self.to_dict()
        for name in LINK_ACCOUNTING_FIELDS:
            data.pop(name, None)
        if restore_invariant:
            for name in RESTORE_ACCOUNTING_FIELDS:
                data.pop(name, None)
            data["series"] = [edges for _, edges in self.series]
        return data

    def coverage_saturation(self) -> float:
        """Fraction of the statically-reachable edge universe seen so far.

        0.0 when no universe was computed.  The universe is a structural
        estimate, so long runs can exceed 1.0 slightly; values are not
        clamped — an overshoot is a signal the estimate needs recalibration.
        """
        if self.reachable_edges <= 0:
            return 0.0
        return self.final_edges() / self.reachable_edges

    def summary(self) -> str:
        """One-line human summary."""
        line = (f"execs={self.programs_executed} edges={self.final_edges()} "
                f"crashes={self.unique_crashes}/{self.crashes_observed} "
                f"restores={self.restorations}")
        if self.reachable_edges > 0:
            line += f" saturation={self.coverage_saturation():.1%}"
        return line


@dataclass
class CampaignStats:
    """Per-worker + merged statistics of one multi-board campaign.

    ``merged_edges`` counts the union frontier across workers, so the
    basic consistency invariant is ``merged_edges >= max(per-worker
    edges)`` — replay-determinism tests assert it for every worker
    count.
    """

    workers: List[FuzzStats] = field(default_factory=list)
    merged_edges: int = 0
    merged_unique_crashes: int = 0
    shared_corpus_size: int = 0
    sync_epochs: int = 0
    seeds_shared: int = 0     # pushes admitted to the shared corpus
    seeds_imported: int = 0   # pulls delivered to some worker
    aborted_workers: int = 0  # RecoveryExhausted quarantines
    # Persistence (repro.db): the epoch a resumed campaign restarted
    # from (0 = fresh), and whether this run stopped at an interrupt
    # request instead of exhausting its budget.
    resumed_from_epoch: int = 0
    interrupted: bool = False

    @property
    def worker_count(self) -> int:
        return len(self.workers)

    def total_programs(self) -> int:
        """Programs executed across all boards."""
        return sum(stats.programs_executed for stats in self.workers)

    def max_worker_edges(self) -> int:
        """Best single-board frontier (merged_edges is >= this)."""
        return max((stats.final_edges() for stats in self.workers),
                   default=0)

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly dump (per-worker stats nested)."""
        return {
            "merged_edges": self.merged_edges,
            "merged_unique_crashes": self.merged_unique_crashes,
            "shared_corpus_size": self.shared_corpus_size,
            "sync_epochs": self.sync_epochs,
            "seeds_shared": self.seeds_shared,
            "seeds_imported": self.seeds_imported,
            "aborted_workers": self.aborted_workers,
            "resumed_from_epoch": self.resumed_from_epoch,
            "interrupted": self.interrupted,
            "workers": [stats.to_dict() for stats in self.workers],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignStats":
        """Inverse of :meth:`to_dict`; ignores unknown keys."""
        stats = cls(
            merged_edges=int(data.get("merged_edges", 0)),
            merged_unique_crashes=int(
                data.get("merged_unique_crashes", 0)),
            shared_corpus_size=int(data.get("shared_corpus_size", 0)),
            sync_epochs=int(data.get("sync_epochs", 0)),
            seeds_shared=int(data.get("seeds_shared", 0)),
            seeds_imported=int(data.get("seeds_imported", 0)),
            aborted_workers=int(data.get("aborted_workers", 0)),
            resumed_from_epoch=int(data.get("resumed_from_epoch", 0)),
            interrupted=bool(data.get("interrupted", False)))
        stats.workers = [FuzzStats.from_dict(worker)
                         for worker in data.get("workers", [])]
        return stats

    def summary(self) -> str:
        """One-line human summary of the whole campaign."""
        return (f"workers={self.worker_count} "
                f"merged_edges={self.merged_edges} "
                f"execs={self.total_programs()} "
                f"crashes={self.merged_unique_crashes} "
                f"shared={self.seeds_shared} "
                f"imported={self.seeds_imported} "
                f"epochs={self.sync_epochs}")
