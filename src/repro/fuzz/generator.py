"""API-aware test-case generation (§4.5).

Programs are call sequences whose arguments satisfy the typed constraints
of the validated specification: integers inside declared ranges (with
deliberate boundary injection), documented string candidates, dictionary-
seeded buffers — and, crucially, *resource dependencies*: an argument that
consumes a queue handle is wired to an earlier call that produced one,
inserting the producer if none exists yet.  Call selection is scored by
resource adjacency and recent-coverage credit, which is exactly the
generation guidance the paper describes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.agent.protocol import (
    ArgData,
    ArgImm,
    ArgRef,
    Call,
    TestProgram,
)
from repro.analysis.speclint import lint_spec
from repro.fuzz.feedback import CoverageMap
from repro.fuzz.rng import FuzzRng
from repro.spec.model import (
    BufferType,
    CallDef,
    ConstType,
    FlagsRef,
    IntType,
    ResourceRef,
    SpecSet,
    StringType,
)

MAX_PRODUCER_DEPTH = 2
DEFAULT_MAX_CALLS = 12


class ProgramGenerator:
    """Generates well-typed programs from a validated SpecSet."""

    def __init__(self, spec: SpecSet, rng: FuzzRng,
                 coverage: Optional[CoverageMap] = None):
        self.spec = spec
        self.rng = rng
        self.coverage = coverage
        self.enabled = spec.enabled_indices()
        # Static pruning: the spec linter proves some calls can never
        # have their resource inputs satisfied (EOF102) — emitting them
        # wastes on-hardware executions on guaranteed early-EINVAL paths,
        # so they are dropped from the candidate pool up front.
        lint = lint_spec(spec)
        self.pruned = frozenset(i for i in lint.dead_call_ids
                                if i in set(self.enabled))
        if self.pruned:
            self.enabled = [i for i in self.enabled if i not in self.pruned]
        self._producers: Dict[str, List[int]] = {}
        for api_id in self.enabled:
            call = spec.calls[api_id]
            if call.ret:
                self._producers.setdefault(call.ret, []).append(api_id)

    # -- call selection ---------------------------------------------------------

    def _call_weight(self, api_id: int, produced: Dict[str, List[int]],
                     prev_api: Optional[int]) -> float:
        call = self.spec.calls[api_id]
        weight = 1.0
        needs = call.consumes()
        for resource in needs:
            if produced.get(resource):
                weight += 2.0   # adjacency: its inputs are on the table
            else:
                weight -= 0.5   # would need a producer insertion
        if call.ret and not produced.get(call.ret):
            weight += 1.0       # opens a new resource for later calls
        if call.pseudo:
            weight += 0.5       # pseudo functions drive deep sequences
        if self.coverage is not None:
            weight += min(self.coverage.credit_of(api_id), 8.0)
            if prev_api is not None:
                weight += min(self.coverage.pair_credit_of(prev_api, api_id),
                              12.0)
        return max(weight, 0.1)

    def _choose_call(self, produced: Dict[str, List[int]],
                     prev_api: Optional[int] = None) -> int:
        weights = [self._call_weight(api_id, produced, prev_api)
                   for api_id in self.enabled]
        return self.rng.pick_weighted(self.enabled, weights)

    # -- argument generation ---------------------------------------------------------

    def _gen_arg(self, param_type, calls: List[Call],
                 produced: Dict[str, List[int]], depth: int):
        if isinstance(param_type, IntType):
            return ArgImm(self.rng.interesting_int(param_type.lo,
                                                   param_type.hi))
        if isinstance(param_type, FlagsRef):
            flags = self.spec.flags.get(param_type.name)
            if flags is None:
                return ArgImm(0)
            value = 0
            for _, bit in flags.values:
                if self.rng.chance(0.4):
                    value |= bit
            return ArgImm(value)
        if isinstance(param_type, StringType):
            return ArgData(self.rng.random_string(param_type.maxlen,
                                                  param_type.candidates))
        if isinstance(param_type, BufferType):
            if param_type.fmt and self.rng.chance(0.85):
                # The spec documents a wire format: emit a well-formed
                # payload (precondition satisfaction, the paper's API-
                # awareness argument) most of the time.
                return ArgData(self.rng.formatted_bytes(param_type.fmt,
                                                        param_type.maxlen))
            return ArgData(self.rng.random_bytes(param_type.maxlen))
        if isinstance(param_type, ConstType):
            return ArgImm(param_type.value)
        if isinstance(param_type, ResourceRef):
            return self._gen_resource_arg(param_type.name, calls, produced,
                                          depth)
        return ArgImm(0)

    def _gen_resource_arg(self, resource: str, calls: List[Call],
                          produced: Dict[str, List[int]], depth: int):
        existing = produced.get(resource, [])
        if existing and self.rng.chance(0.9):
            return ArgRef(self.rng.pick(existing))
        if depth < MAX_PRODUCER_DEPTH and len(calls) < 60:
            producers = [p for p in self._producers.get(resource, [])]
            if producers and self.rng.chance(0.85):
                producer_id = self.rng.pick(producers)
                self._emit_call(producer_id, calls, produced, depth + 1)
                if produced.get(resource):
                    return ArgRef(produced[resource][-1])
        # No producer available: a deliberately invalid handle exercises
        # the target's validation branches.
        return ArgImm(self.rng.pick([0, -1, 7, 0xDEAD]))

    def _emit_call(self, api_id: int, calls: List[Call],
                   produced: Dict[str, List[int]], depth: int) -> None:
        call_def = self.spec.calls[api_id]
        args = tuple(self._gen_arg(param.type, calls, produced, depth)
                     for param in call_def.params)
        calls.append(Call(api_id=api_id, args=args))
        if call_def.ret:
            produced.setdefault(call_def.ret, []).append(len(calls) - 1)

    # -- entry point ------------------------------------------------------------------

    def generate(self, max_calls: int = DEFAULT_MAX_CALLS) -> TestProgram:
        """Build one fresh program."""
        if not self.enabled:
            return TestProgram(calls=[])
        target_len = 1 + self.rng.geometric(max_calls // 2, max_calls)
        calls: List[Call] = []
        produced: Dict[str, List[int]] = {}
        while len(calls) < target_len:
            prev_api = calls[-1].api_id if calls else None
            api_id = self._choose_call(produced, prev_api)
            self._emit_call(api_id, calls, produced, depth=0)
        return TestProgram(calls=calls)
