"""The EOF host fuzzer (the paper's core contribution).

The engine (:mod:`engine`) drives one flashed board over the debug
interface: API-aware generation (:mod:`generator`) and mutation
(:mod:`mutator`) from validated Syzlang specs, SanCov edge feedback
(:mod:`feedback`), the log/exception bug monitors (:mod:`monitors`),
Algorithm 1's liveness watchdogs (:mod:`watchdog`) and reflash-based
state restoration (:mod:`restore`).
"""

from repro.fuzz.engine import EofEngine, EngineOptions, FuzzResult
from repro.fuzz.corpus import Corpus, CorpusEntry
from repro.fuzz.crash import CrashDb, CrashReport
from repro.fuzz.feedback import CoverageMap
from repro.fuzz.generator import ProgramGenerator
from repro.fuzz.monitors import ExceptionMonitor, LogMonitor
from repro.fuzz.mutator import ProgramMutator
from repro.fuzz.restore import StateRestoration
from repro.fuzz.stats import FuzzStats
from repro.fuzz.watchdog import LivenessWatchdog

__all__ = [
    "EofEngine",
    "EngineOptions",
    "FuzzResult",
    "Corpus",
    "CorpusEntry",
    "CrashDb",
    "CrashReport",
    "CoverageMap",
    "ProgramGenerator",
    "ExceptionMonitor",
    "LogMonitor",
    "ProgramMutator",
    "StateRestoration",
    "FuzzStats",
    "LivenessWatchdog",
]
