"""Mutation of corpus programs (§4.5: "altering API parameters or
adjusting the order of the sequence").

Structural operators (insert / remove / swap / splice) can invalidate
result references, so every mutation ends with a repair pass that
re-wires each resource argument to a compatible earlier producer (or, if
none exists, an invalid handle — itself a legitimate fuzz value).
"""

from __future__ import annotations

from typing import List, Optional

from repro.agent.protocol import (
    ArgData,
    ArgImm,
    ArgRef,
    Call,
    TestProgram,
    MAX_CALLS,
)
from repro.fuzz.generator import ProgramGenerator
from repro.fuzz.rng import FuzzRng
from repro.spec.model import (
    BufferType,
    FlagsRef,
    IntType,
    ResourceRef,
    SpecSet,
    StringType,
)


class ProgramMutator:
    """Applies weighted mutation operators to a program."""

    def __init__(self, spec: SpecSet, rng: FuzzRng,
                 generator: ProgramGenerator):
        self.spec = spec
        self.rng = rng
        self.generator = generator

    # -- public ------------------------------------------------------------

    def mutate(self, program: TestProgram) -> TestProgram:
        """Return a mutated copy (the input is never modified)."""
        calls = list(program.calls)
        if not calls:
            return self.generator.generate()
        rounds = 1 + self.rng.geometric(1, 3)
        for _ in range(rounds):
            op = self.rng.pick_weighted(
                ["arg", "insert", "remove", "swap", "dup", "tail"],
                [5.0, 2.0, 1.5, 1.5, 1.0, 1.0])
            if op == "arg":
                calls = self._mutate_arg(calls)
            elif op == "insert" and len(calls) < MAX_CALLS - 4:
                calls = self._insert_call(calls)
            elif op == "remove" and len(calls) > 1:
                calls = self._remove_call(calls)
            elif op == "swap" and len(calls) > 1:
                calls = self._swap_calls(calls)
            elif op == "dup" and len(calls) < MAX_CALLS - 1:
                calls = calls + [self.rng.pick(calls)]
            elif op == "tail":
                calls = self._regen_tail(calls)
        return TestProgram(calls=self._repair(calls))

    def splice(self, first: TestProgram,
               second: TestProgram) -> TestProgram:
        """Prefix of one seed + suffix of another."""
        if not first.calls or not second.calls:
            return self.mutate(first if first.calls else second)
        cut_a = self.rng.int_in(1, len(first.calls))
        cut_b = self.rng.int_in(0, len(second.calls) - 1)
        calls = list(first.calls[:cut_a]) + list(second.calls[cut_b:])
        return TestProgram(calls=self._repair(calls[:MAX_CALLS]))

    # -- operators ------------------------------------------------------------------

    def _mutate_arg(self, calls: List[Call]) -> List[Call]:
        index = self.rng.int_in(0, len(calls) - 1)
        call = calls[index]
        if not call.args:
            return calls
        call_def = self.spec.calls[call.api_id]
        arg_index = self.rng.int_in(0, len(call.args) - 1)
        param_type = (call_def.params[arg_index].type
                      if arg_index < len(call_def.params) else None)
        new_arg = self._mutate_one(call.args[arg_index], param_type)
        args = list(call.args)
        args[arg_index] = new_arg
        calls = list(calls)
        calls[index] = Call(api_id=call.api_id, args=tuple(args))
        return calls

    def _mutate_one(self, arg, param_type):
        if isinstance(arg, ArgImm):
            lo, hi = 0, 0xFFFF
            if isinstance(param_type, IntType):
                lo, hi = param_type.lo, param_type.hi
            return ArgImm(self.rng.mutate_int(arg.value, lo, hi))
        if isinstance(arg, ArgData):
            maxlen = 64
            if isinstance(param_type, (BufferType, StringType)):
                maxlen = param_type.maxlen
            if isinstance(param_type, StringType) and self.rng.chance(0.7):
                # Textual arguments mutate at word granularity; byte havoc
                # mostly just breaks the tokens.
                return ArgData(self.rng.mutate_words(arg.data, maxlen))
            if isinstance(param_type, BufferType) and param_type.fmt and \
                    self.rng.chance(0.5):
                # Format-typed buffers re-roll structurally half the time.
                return ArgData(self.rng.formatted_bytes(param_type.fmt,
                                                        maxlen))
            return ArgData(self.rng.mutate_bytes(arg.data, maxlen))
        if isinstance(arg, ArgRef):
            if self.rng.chance(0.3):
                return ArgImm(self.rng.pick([0, -1, arg.index, 0xBEEF]))
            return arg
        return arg

    def _insert_call(self, calls: List[Call]) -> List[Call]:
        fresh = self.generator.generate(max_calls=2).calls
        if not fresh:
            return calls
        pos = self.rng.int_in(0, len(calls))
        shifted: List[Call] = []
        delta = len(fresh)
        for i, call in enumerate(calls):
            if i >= pos:
                call = self._shift_refs(call, pos, delta)
            shifted.append(call)
        return shifted[:pos] + list(fresh) + shifted[pos:]

    def _remove_call(self, calls: List[Call]) -> List[Call]:
        victim = self.rng.int_in(0, len(calls) - 1)
        out: List[Call] = []
        for i, call in enumerate(calls):
            if i == victim:
                continue
            if i > victim:
                call = self._shift_refs(call, victim, -1, removed=victim)
            out.append(call)
        return out

    def _swap_calls(self, calls: List[Call]) -> List[Call]:
        i = self.rng.int_in(0, len(calls) - 2)
        calls = list(calls)
        calls[i], calls[i + 1] = calls[i + 1], calls[i]
        return calls

    def _regen_tail(self, calls: List[Call]) -> List[Call]:
        keep = self.rng.int_in(1, len(calls))
        tail = self.generator.generate(max_calls=4).calls
        return calls[:keep] + list(tail)

    @staticmethod
    def _shift_refs(call: Call, boundary: int, delta: int,
                    removed: Optional[int] = None) -> Call:
        args = []
        for arg in call.args:
            if isinstance(arg, ArgRef):
                if removed is not None and arg.index == removed:
                    args.append(ArgImm(-1))
                    continue
                if arg.index >= boundary:
                    args.append(ArgRef(arg.index + delta))
                    continue
            args.append(arg)
        return Call(api_id=call.api_id, args=tuple(args))

    # -- repair -----------------------------------------------------------------------

    def _repair(self, calls: List[Call]) -> List[Call]:
        """Re-establish ref validity and resource typing after surgery."""
        produced_at: List[Optional[str]] = []
        repaired: List[Call] = []
        for index, call in enumerate(calls):
            if call.api_id >= len(self.spec.calls) or \
                    call.api_id in self.spec.disabled:
                produced_at.append(None)
                repaired.append(call)
                continue
            call_def = self.spec.calls[call.api_id]
            args = []
            for arg_index, arg in enumerate(call.args):
                param_type = (call_def.params[arg_index].type
                              if arg_index < len(call_def.params) else None)
                if isinstance(arg, ArgRef):
                    needed = (param_type.name
                              if isinstance(param_type, ResourceRef) else None)
                    valid = (0 <= arg.index < index and
                             (needed is None
                              or produced_at[arg.index] == needed))
                    if not valid:
                        replacement = self._find_producer(produced_at,
                                                          index, needed)
                        arg = (ArgRef(replacement) if replacement is not None
                               else ArgImm(self.rng.pick([0, -1, 0xDEAD])))
                args.append(arg)
            repaired.append(Call(api_id=call.api_id, args=tuple(args)))
            produced_at.append(call_def.ret)
        return repaired

    @staticmethod
    def _find_producer(produced_at: List[Optional[str]], before: int,
                       resource: Optional[str]) -> Optional[int]:
        if resource is None:
            return None
        for index in range(before - 1, -1, -1):
            if produced_at[index] == resource:
                return index
        return None
