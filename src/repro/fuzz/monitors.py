"""The two bug monitors of §4.5.2.

* :class:`LogMonitor` — scans the host-captured UART stream against
  regex patterns (assertion lines, panic banners).  This is what catches
  assertion bugs, which hang the target instead of entering the
  exception handler.
* :class:`ExceptionMonitor` — arms breakpoints on the OS-specific fatal
  entry points (``panic_handler`` / ``common_exception`` / ...) and, when
  one fires, extracts the crash-info block and a symbolized backtrace
  over the debug link.
"""

from __future__ import annotations

import re
from typing import List, Sequence

from repro.ddi.session import DebugSession
from repro.fuzz.crash import (
    CrashReport,
    KIND_ASSERT,
    KIND_FAULT,
    KIND_PANIC,
)
from repro.hw.machine import HaltEvent
from repro.obs import NULL_OBS
from repro.oses.common.context import (
    CAUSE_ASSERT,
    CAUSE_BUS_FAULT,
    CRASH_MAGIC,
)

# Patterns cover the diverse error vocabularies of the five kernels.
DEFAULT_LOG_PATTERNS: Sequence[str] = (
    r"assertion failed",
    r"ASSERTION FAIL",
    r"Assertion failed",
    r"configASSERT failed",
    r"POK assert",
    r"PANIC",
    r"FATAL",
    r"BUG: unexpected stop",
    r"hard fault",
    r"stack corruption",
    r"Oops",
)


class LogMonitor:
    """Regex scanning over the UART stream."""

    def __init__(self, os_name: str,
                 patterns: Sequence[str] = DEFAULT_LOG_PATTERNS,
                 obs=NULL_OBS):
        self.os_name = os_name
        self.obs = obs
        self.patterns = [re.compile(p) for p in patterns]
        self.matched_lines = 0

    def scan(self, lines: Sequence[str]) -> List[CrashReport]:
        """Crash events found in a batch of fresh UART lines."""
        reports: List[CrashReport] = []
        for line in lines:
            for pattern in self.patterns:
                if pattern.search(line):
                    self.matched_lines += 1
                    kind = (KIND_ASSERT if "ssert" in line.lower()
                            else KIND_PANIC)
                    reports.append(CrashReport(
                        os_name=self.os_name, kind=kind, cause=line.strip(),
                        monitor="log"))
                    if self.obs.enabled:
                        self.obs.emit("monitor.detect", monitor="log",
                                      kind=kind, cause=line.strip())
                    break
        return reports


class ExceptionMonitor:
    """Breakpoints on the OS's fatal-error entry points."""

    def __init__(self, session: DebugSession, os_name: str,
                 exception_symbols: Sequence[str], obs=NULL_OBS):
        self.session = session
        self.os_name = os_name
        self.obs = obs
        self.exception_symbols = list(exception_symbols)
        self._armed = False

    def arm(self) -> None:
        """Insert breakpoints at every exception symbol (once)."""
        if self._armed:
            return
        for symbol in self.exception_symbols:
            self.session.gdb.break_insert(symbol, label="exception-monitor")
        self._armed = True

    def matches(self, event: HaltEvent) -> bool:
        """Did this halt stop at one of our exception symbols?"""
        return event.symbol in self.exception_symbols

    def capture(self, event: HaltEvent) -> CrashReport:
        """Build a full report from an exception halt."""
        cause_code, cause_text = self._read_crash_block()
        kind = KIND_PANIC
        if cause_code == CAUSE_BUS_FAULT:
            kind = KIND_FAULT
        elif cause_code == CAUSE_ASSERT:
            kind = KIND_ASSERT
        backtrace = [frame.symbol for frame in event.backtrace]
        uart_tail = self.session.board.uart.tail(6)
        if self.obs.enabled:
            self.obs.emit("monitor.detect", monitor="exception", kind=kind,
                          cause=cause_text or event.detail,
                          symbol=event.symbol, depth=len(backtrace))
        return CrashReport(
            os_name=self.os_name, kind=kind,
            cause=cause_text or event.detail, detail=event.detail,
            monitor="exception", backtrace=backtrace, uart_tail=uart_tail,
            cycles=self.session.board.machine.cycles)

    def _read_crash_block(self) -> "tuple[int, str]":
        layout = self.session.build.ram_layout
        try:
            raw = self.session.gdb.read_memory(layout.crash_addr, 12)
        except Exception:
            return 0, ""
        magic = int.from_bytes(raw[0:4], "little")
        if magic != CRASH_MAGIC:
            return 0, ""
        cause_code = int.from_bytes(raw[4:8], "little")
        length = min(int.from_bytes(raw[8:12], "little"),
                     layout.crash_size - 12)
        if length <= 0:
            return cause_code, ""
        text = self.session.gdb.read_memory(layout.crash_addr + 12, length)
        return cause_code, text.decode("utf-8", "replace")
