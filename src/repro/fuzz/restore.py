"""Algorithm 1, ``StateRestoration``: reflash every partition and reboot.

The partition map comes from the build configuration file — the same
KConfig-style text :func:`repro.firmware.layout.parse_partition_table`
extracts (line 13) — and the partition *payloads* come from the host's
build artifacts (the files a real deployment keeps next to the image).
A plain reboot is tried first only by the engine; this class is the
heavy hammer for when flash itself is damaged.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.ddi.session import DebugSession
from repro.firmware.layout import parse_partition_table
from repro.obs import NULL_OBS

# Virtual-time cost of a full reflash + the post-reboot settle sleep
# (Algorithm 1 line 19 sleeps 5 s; flashing a few hundred KB takes
# seconds over SWD).  Charged to the machine's cycle clock so crash-heavy
# fuzzing pays a realistic throughput price.
REFLASH_CYCLES = 60_000
SETTLE_CYCLES = 20_000


class StateRestoration:
    """Reflash-based recovery bound to one session."""

    def __init__(self, session: DebugSession, obs=NULL_OBS):
        self.session = session
        self.obs = obs
        self.restorations = 0
        # Line 13: PartitionMap <- GetPartitionTable(KConfig)
        self.partition_specs = parse_partition_table(
            session.build.kconfig_text)
        self._files: Dict[str, Tuple[bytes, int]] = \
            session.build.partition_map()

    def restore(self) -> bool:
        """Lines 15-19: flash each partition file at its offset, rewrite
        the master header, reboot, settle.  True if the target came back.
        """
        self.restorations += 1
        board = self.session.board
        started_at = board.machine.cycles
        flashed_bytes = 0
        flashed_parts = 0
        for part in self.partition_specs:
            payload_offset = self._files.get(part.name)
            if payload_offset is None:
                continue
            payload, offset = payload_offset
            self.session.flash(payload, offset)
            flashed_bytes += len(payload)
            flashed_parts += 1
            board.machine.tick(REFLASH_CYCLES // max(len(
                self.partition_specs), 1))
        self.session.flash_header()
        if self.obs.enabled:
            self.obs.emit("restore.reflash", partitions=flashed_parts,
                          bytes=flashed_bytes,
                          cycles_spent=board.machine.cycles - started_at)
        self.session.reboot()
        board.machine.tick(SETTLE_CYCLES)  # sleep(5s)
        booted = not board.boot_failed
        if self.obs.enabled:
            spent = board.machine.cycles - started_at
            self.obs.histogram("restore.latency").record(spent)
            self.obs.emit("restore.reboot", booted=booted,
                          cycles_spent=spent, kind="reflash")
        return booted
