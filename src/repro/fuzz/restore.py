"""Algorithm 1 ``StateRestoration`` plus the recovery-escalation ladder.

:class:`StateRestoration` is the paper's heavy hammer: reflash every
partition from the KConfig partition table (line 13) and reboot.
:class:`RecoveryLadder` is what makes the loop survive *flaky* hardware:
a bounded-retry escalation over four rungs —

    retry  →  reboot  →  reflash + verify readback  →  full reattach

— each with deterministic backoff charged to the virtual cycle clock,
ending in :class:`~repro.errors.RecoveryExhausted` (quarantine) when the
board never comes back.  Every rung's attempts and successes surface
through ``repro.obs`` as ``recovery.escalate`` events,
``recovery.rung.*`` counters and a ``recovery.latency`` histogram.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.ddi.session import DebugSession
from repro.errors import (
    DebugLinkError,
    DebugLinkTimeout,
    FlashError,
    RecoveryExhausted,
)
from repro.firmware.layout import parse_partition_table
from repro.obs import NULL_OBS

# Virtual-time cost of a full reflash + the post-reboot settle sleep
# (Algorithm 1 line 19 sleeps 5 s; flashing a few hundred KB takes
# seconds over SWD).  Charged to the machine's cycle clock so crash-heavy
# fuzzing pays a realistic throughput price.
REFLASH_CYCLES = 60_000
SETTLE_CYCLES = 20_000

# Post-reboot settle charged by the ladder's reboot rung (the engine's
# historical reboot cost).
REBOOT_CYCLES = 20_000

# First-attempt backoff of the retry rung; doubles per attempt.
RETRY_BACKOFF_CYCLES = 2_000

# Reflash-free engines (restore_with_reflash=False) cannot self-repair a
# damaged image: model the gap until a human reflashes the part.
MANUAL_INTERVENTION_CYCLES = 80_000

# Bounded attempts per rung (deterministic, so recovery event streams
# are reproducible run-to-run).  The snapshot rung gets exactly one
# attempt: a failed verify means the snapshot is suspect, and retrying
# the same suspect image cannot succeed — escalate instead.
DEFAULT_RUNG_ATTEMPTS = {
    "snapshot": 1,
    "retry": 2,
    "reboot": 2,
    "reflash": 3,
    "reattach": 2,
}


class StateRestoration:
    """Reflash-based recovery bound to one session."""

    def __init__(self, session: DebugSession, obs=NULL_OBS):
        self.session = session
        self.obs = obs
        self.restorations = 0
        # Line 13: PartitionMap <- GetPartitionTable(KConfig)
        self.partition_specs = parse_partition_table(
            session.build.kconfig_text)
        self._files: Dict[str, Tuple[bytes, int]] = \
            session.build.partition_map()

    def restore(self) -> bool:
        """Lines 15-19: flash each partition file at its offset, rewrite
        the master header, reboot, settle.  True if the target came back.

        The full :data:`REFLASH_CYCLES` cost is charged across the
        partitions *actually flashed* — specs without a host-side
        payload skip the flash but must not shrink the charged cost.
        """
        self.restorations += 1
        board = self.session.board
        started_at = board.machine.cycles
        flashed_bytes = 0
        flashable = [part for part in self.partition_specs
                     if part.name in self._files]
        per_part = REFLASH_CYCLES // max(len(flashable), 1)
        for part in flashable:
            payload, offset = self._files[part.name]
            self.session.flash(payload, offset)
            flashed_bytes += len(payload)
            board.machine.tick(per_part)
        if flashable:
            # Integer-division remainder: the charge is exactly
            # REFLASH_CYCLES, however many partitions carried payloads.
            board.machine.tick(REFLASH_CYCLES - per_part * len(flashable))
        self.session.flash_header()
        if self.obs.enabled:
            self.obs.emit("restore.reflash", partitions=len(flashable),
                          bytes=flashed_bytes,
                          cycles_spent=board.machine.cycles - started_at)
        self.session.reboot()
        board.machine.tick(SETTLE_CYCLES)  # sleep(5s)
        booted = not board.boot_failed
        if self.obs.enabled:
            spent = board.machine.cycles - started_at
            self.obs.histogram("restore.latency").record(spent)
            self.obs.emit("restore.reboot", booted=booted,
                          cycles_spent=spent, kind="reflash")
        return booted


class RecoveryLadder:
    """Bounded, escalating recovery for one debug session.

    Rungs, cheapest first:

    0. ``snapshot`` — :class:`repro.fuzz.snapshot.SnapshotManager`:
       write back dirty RAM pages + registers, verify with the
       generation word and canary readback.  Skipped silently (no
       attempt charged) when no manager is attached or its snapshot is
       not ready, so snapshot-less ladders behave exactly as before.
    1. ``retry``    — deterministic backoff, then probe the link again
       (a transient chaos glitch must not cost a reflash).
    2. ``reboot``   — warm reset + settle; fixes parked PCs with an
       intact image.
    3. ``reflash``  — :class:`StateRestoration` with verify readback;
       flash-write corruption fails the attempt and is retried.
    4. ``reattach`` — :meth:`DebugSession.reattach` (probe detach +
       power cycle) followed by a fresh reflash.

    Every rung's attempts are bounded; when the top rung fails the
    board is quarantined via :class:`RecoveryExhausted`.  A rung only
    *succeeds* once :meth:`_verify_alive` confirmed the board booted,
    the link answers, and the caller's breakpoints re-armed — so a
    successful :meth:`recover` guarantees the engine never executes a
    program on a board whose last reboot reported ``boot_failed``.
    """

    RUNGS = ("snapshot", "retry", "reboot", "reflash", "reattach")

    def __init__(self, session: DebugSession,
                 restoration: StateRestoration,
                 watchdog=None, stats=None, obs=NULL_OBS,
                 rearm=None, use_reflash: bool = True,
                 attempts: Optional[Dict[str, int]] = None,
                 snapshot=None):
        self.session = session
        self.restoration = restoration
        self.watchdog = watchdog
        self.stats = stats
        self.obs = obs
        self.rearm = rearm  # callable: re-install breakpoints/monitors
        self.use_reflash = use_reflash
        self.snapshot = snapshot  # Optional SnapshotManager (rung 0)
        self.attempts = dict(DEFAULT_RUNG_ATTEMPTS)
        if attempts:
            self.attempts.update(attempts)

    # -- the ladder ---------------------------------------------------------

    def recover(self, start: str = "retry", reason: str = "",
                skip: Tuple[str, ...] = ()) -> str:
        """Climb the ladder from ``start``; returns the winning rung.

        ``skip`` names rungs to pass over without charging attempts —
        the crash path skips ``retry`` when it falls past the snapshot
        rung, because re-probing a panicked kernel can answer the link
        without having recovered anything.  The snapshot rung skips
        itself (silently, no attempt charged) when no manager is
        attached or its snapshot is not ready.

        Raises :class:`RecoveryExhausted` when every remaining rung's
        attempt budget is spent without the board coming back.
        """
        board = self.session.board
        started_at = board.machine.cycles
        attempted = []
        for rung in self.RUNGS[self.RUNGS.index(start):]:
            if rung in skip:
                continue
            if rung == "snapshot" and (self.snapshot is None
                                       or not self.snapshot.ready):
                continue
            for attempt in range(1, self.attempts[rung] + 1):
                attempted.append(rung)
                if self.obs.enabled:
                    self.obs.counter(f"recovery.rung.{rung}.attempts").inc()
                ok = self._run_rung(rung, attempt)
                if self.obs.enabled:
                    self.obs.emit("recovery.escalate", rung=rung,
                                  attempt=attempt, ok=ok, reason=reason)
                if ok:
                    spent = board.machine.cycles - started_at
                    if self.stats is not None:
                        self.stats.recoveries += 1
                    if self.obs.enabled:
                        self.obs.counter(
                            f"recovery.rung.{rung}.successes").inc()
                        self.obs.histogram("recovery.latency").record(spent)
                        self.obs.emit("recovery.complete", rung=rung,
                                      attempts=len(attempted),
                                      cycles_spent=spent, reason=reason)
                    return rung
        if self.stats is not None:
            self.stats.recovery_failures += 1
        if self.obs.enabled:
            self.obs.emit("recovery.exhausted", reason=reason,
                          attempts=len(attempted),
                          cycles_spent=board.machine.cycles - started_at)
        flight = getattr(self.obs, "flight", None)
        if flight is not None:
            # Quarantine is exactly what the flight recorder exists for:
            # dump the last events before the board went dark.
            flight.dump("recovery-exhausted",
                        f"quarantine-{board.name}", obs=self.obs)
        raise RecoveryExhausted(
            f"{board.name}: recovery ladder exhausted after "
            f"{len(attempted)} attempts "
            f"({reason or 'unspecified failure'}); board quarantined",
            rungs=attempted)

    # -- rungs ---------------------------------------------------------------

    def _run_rung(self, rung: str, attempt: int) -> bool:
        if rung == "snapshot":
            return self._rung_snapshot()
        if rung == "retry":
            return self._rung_retry(attempt)
        if rung == "reboot":
            return self._rung_reboot()
        if rung == "reflash":
            return self._rung_reflash()
        return self._rung_reattach()

    def _rung_snapshot(self) -> bool:
        """Rung 0: snapshot write-back + verify probe.  The manager's
        own verify (gen word + canary) decides success; a suspect
        snapshot fails the rung and the ladder escalates to the reflash
        tier — no silent corruption can leak into coverage."""
        try:
            if not self.snapshot.restore():
                return False
        except (DebugLinkError, DebugLinkTimeout):
            return False
        return self._verify_alive()

    def _rung_retry(self, attempt: int) -> bool:
        # Deterministic exponential backoff, charged to virtual time.
        self.session.board.machine.tick(
            RETRY_BACKOFF_CYCLES << (attempt - 1))
        return self._verify_alive()

    def _rung_reboot(self) -> bool:
        board = self.session.board
        self.session.reboot()
        board.machine.tick(REBOOT_CYCLES)
        if self.stats is not None:
            self.stats.reboots += 1
        if self.obs.enabled:
            self.obs.emit("restore.reboot", kind="reboot-only",
                          booted=not board.boot_failed,
                          cycles_spent=REBOOT_CYCLES)
        if board.boot_failed:
            return False
        return self._verify_alive()

    def _rung_reflash(self) -> bool:
        if not self.use_reflash:
            # Naive recovery cannot self-reflash: wait out the
            # manual-intervention gap before "a human" does it.
            self.session.board.machine.tick(MANUAL_INTERVENTION_CYCLES)
        return self._restore_verified()

    def _rung_reattach(self) -> bool:
        if self.stats is not None:
            self.stats.reattaches += 1
        if not self.session.reattach():
            return False
        # A power cycle does not repair flash; always reflash after.
        return self._restore_verified()

    def _restore_verified(self) -> bool:
        """One reflash attempt; verify-readback failures fail the rung."""
        if self.stats is not None:
            self.stats.restorations += 1
        try:
            if not self.restoration.restore():
                return False
        except (DebugLinkError, DebugLinkTimeout, FlashError):
            return False
        return self._verify_alive()

    # -- success criterion ----------------------------------------------------

    def _verify_alive(self) -> bool:
        """Did the board really come back?  Booted, link answering,
        breakpoints re-armed, boot chatter drained, watchdog re-seeded."""
        board = self.session.board
        if board.boot_failed or board.runtime is None or board.link_lost:
            return False
        try:
            self.session.read_pc()
            if self.rearm is not None:
                self.rearm()
            self.session.consume_boot_chatter()
        except DebugLinkTimeout:
            return False
        if self.watchdog is not None:
            self.watchdog.reset()
        return True
