"""Out-of-band memory-health probing (a §6 "future work" extension).

The paper's threats-to-validity section notes EOF only sees *explicit*
failures — silent memory corruption sails past the log and exception
monitors — and suggests richer detectors.  This module implements the
debug-port-native version: since the host can read arbitrary RAM while
the target is halted, it can walk the allocator's on-RAM metadata between
test cases and flag structural damage (smashed guard words, broken block
chains, bitmap underflow) *without any target-side sanitizer runtime*.

The walkers are read-only reimplementations of each allocator's layout —
the host-side knowledge is the same build metadata EOF already extracts.
Zephyr's sys_heap keeps its bucket heads in registers/static state rather
than the probed window, so only its in-window chunk headers are checked.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Optional

from repro.ddi.session import DebugSession
from repro.errors import DebugLinkTimeout

SMEM_MAGIC = 0x1EA0
SMEM_HEADER = 12
SMEM_NAME_FIELD = 16
SMEM_CONTROL = 24
SMEM_GUARD = 0x5AFE5AFE

HEAP4_HEADER = 8
HEAP4_ALLOC_BIT = 0x8000_0000
HEAP4_SIZE_MASK = 0x7FFF_FFFF

GRAN_GRANULE = 32


def check_smem(raw: bytes) -> Optional[str]:
    """Validate an rt_smem window snapshot (RT-Thread)."""
    if len(raw) < SMEM_CONTROL + 2 * SMEM_HEADER:
        return "window too small to hold a heap"
    guard = struct.unpack_from("<I", raw, SMEM_NAME_FIELD)[0]
    if guard != SMEM_GUARD:
        return (f"control-block guard word smashed "
                f"(0x{guard:08x} != 0x{SMEM_GUARD:08x})")
    size = len(raw) & ~7
    end = size - SMEM_HEADER
    offset = SMEM_CONTROL
    hops = 0
    while offset < end:
        magic, _used, nxt, _prev = struct.unpack_from("<HHII", raw, offset)
        if magic != SMEM_MAGIC:
            return f"bad block magic 0x{magic:04x} at offset {offset}"
        if nxt <= offset or nxt > end:
            return f"block chain broken at offset {offset} (next={nxt})"
        offset = nxt
        hops += 1
        if hops > 100_000:
            return "cyclic block chain"
    return None


def check_heap4(raw: bytes) -> Optional[str]:
    """Validate a heap_4 window snapshot (FreeRTOS): the free list must
    be address-ordered, in-window and unallocated."""
    size = len(raw) & ~7
    offset = struct.unpack_from("<I", raw, 0)[0]  # head's next_free
    previous_end = 0
    hops = 0
    while offset:
        if offset < 8 or offset + HEAP4_HEADER > size:
            return f"free block offset {offset} outside the window"
        nxt, block = struct.unpack_from("<II", raw, offset)
        if block & HEAP4_ALLOC_BIT:
            return f"allocated block on the free list at offset {offset}"
        length = block & HEAP4_SIZE_MASK
        if offset < previous_end:
            return f"free list not address-ordered at offset {offset}"
        if offset + length > size:
            return f"free block at {offset} overruns the window"
        previous_end = offset + length
        offset = nxt
        hops += 1
        if hops > 100_000:
            return "cyclic free list"
    return None


def check_gran(raw: bytes) -> Optional[str]:
    """Validate a gran window snapshot (NuttX): the bitmap's own
    granules must still be marked used."""
    total_gran = len(raw) // GRAN_GRANULE
    bitmap_bytes = (total_gran + 7) // 8
    reserve = (bitmap_bytes + GRAN_GRANULE - 1) // GRAN_GRANULE
    for gran in range(reserve):
        byte = raw[gran // 8]
        if not byte & (1 << (gran % 8)):
            return f"bitmap granule {gran} was freed"
    return None


CHECKERS: Dict[str, Callable[[bytes], Optional[str]]] = {
    "rt-thread": check_smem,
    "freertos": check_heap4,
    "nuttx": check_gran,
}


class HeapHealthProbe:
    """Periodic allocator-metadata validation over the debug link."""

    def __init__(self, session: DebugSession, every_n_programs: int = 16):
        self.session = session
        self.every = max(every_n_programs, 1)
        self.checker = CHECKERS.get(session.build.config.os_name)
        self.probes = 0
        self.defects_found = 0
        self._countdown = self.every

    @property
    def supported(self) -> bool:
        """Does this OS keep probeable allocator metadata in the window?"""
        return self.checker is not None

    def maybe_probe(self) -> Optional[str]:
        """Called once per executed program; probes every N-th time.

        Returns a defect description when the allocator metadata is
        structurally damaged — a *silent* corruption the crash monitors
        would have missed.
        """
        if self.checker is None:
            return None
        self._countdown -= 1
        if self._countdown > 0:
            return None
        self._countdown = self.every
        return self.probe()

    def probe(self) -> Optional[str]:
        """Probe now, unconditionally."""
        if self.checker is None:
            return None
        layout = self.session.build.ram_layout
        try:
            raw = self.session.gdb.read_memory(layout.kernel_heap_base,
                                               layout.kernel_heap_size)
        except DebugLinkTimeout:
            return None
        self.probes += 1
        defect = self.checker(raw)
        if defect is not None:
            self.defects_found += 1
        return defect
