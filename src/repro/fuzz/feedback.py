"""Coverage feedback: the host-side edge map and per-call credit.

Edges arrive from the drained on-target coverage buffer; the map answers
"did this input reach anything new?" (the corpus admission test) and
keeps per-API credit scores that bias generation toward calls that have
recently produced new coverage (§4.5's adjacency/recency scoring).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

DECAY = 0.95


class CoverageMap:
    """Accumulated edge coverage plus per-call and adjacency credit.

    ``pair_credit`` is the §4.5 "call adjacency" score: consecutive API
    pairs that appeared in coverage-producing inputs are remembered, so
    generation learns orderings (probe before unlock before mount) that
    no type signature expresses.
    """

    def __init__(self) -> None:
        self.edges: Set[int] = set()
        self.call_credit: Dict[int, float] = {}
        self.pair_credit: Dict[tuple, float] = {}

    @property
    def edge_count(self) -> int:
        """Distinct edges seen so far — the "branches found" metric the
        paper's tables report."""
        return len(self.edges)

    def add_edges(self, edges: Iterable[int]) -> int:
        """Merge a drained buffer; returns how many edges were new."""
        return len(self.add_new(edges))

    def add_new(self, edges: Iterable[int]) -> List[int]:
        """Merge a drained buffer; returns the edges that were new.

        The list (in drain order) is what the engine records as a
        seed's edge footprint, so campaign sync can reason about which
        frontier a seed actually advanced.
        """
        new = []
        for edge in edges:
            if edge not in self.edges:
                self.edges.add(edge)
                new.append(edge)
        return new

    def credit_calls(self, api_ids: Iterable[int], new_edges: int) -> None:
        """Reward the calls *and consecutive pairs* of a productive input."""
        if new_edges <= 0:
            return
        sequence = list(api_ids)
        bonus = float(new_edges)
        for api_id in set(sequence):
            self.call_credit[api_id] = self.call_credit.get(api_id, 0.0) \
                + bonus
        for first, second in zip(sequence, sequence[1:]):
            key = (first, second)
            self.pair_credit[key] = self.pair_credit.get(key, 0.0) + bonus

    def decay_credit(self) -> None:
        """Age credit so "recent coverage" stays recent."""
        for api_id in list(self.call_credit):
            self.call_credit[api_id] *= DECAY
            if self.call_credit[api_id] < 0.01:
                del self.call_credit[api_id]
        for key in list(self.pair_credit):
            self.pair_credit[key] *= DECAY
            if self.pair_credit[key] < 0.01:
                del self.pair_credit[key]

    def credit_of(self, api_id: int) -> float:
        """Current recency credit of one API."""
        return self.call_credit.get(api_id, 0.0)

    def pair_credit_of(self, prev_api: int, api_id: int) -> float:
        """Adjacency credit of emitting ``api_id`` right after ``prev_api``."""
        return self.pair_credit.get((prev_api, api_id), 0.0)

    def snapshot_series_point(self) -> int:
        """Convenience for time-series recording."""
        return len(self.edges)
