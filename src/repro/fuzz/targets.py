"""Target registration (§4.6).

Adapting EOF to an embedded OS means registering it here: which board it
ships on, which components are linked in, where instrumentation goes,
the OpenOCD arguments, and the OS's exception symbols.  This module is
the reproduction of the paper's "register the target in EOF" step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.firmware.layout import BuildConfig
from repro.hw.boards import BOARD_CATALOG


@dataclass(frozen=True)
class TargetConfig:
    """One registered fuzz target."""

    name: str
    os_name: str
    board: str
    components: Tuple[str, ...] = ()
    instrument_modules: Optional[Tuple[str, ...]] = None
    openocd_args: Tuple[str, ...] = ()
    description: str = ""

    @property
    def arch(self) -> str:
        """Processor architecture, derived from the board."""
        return BOARD_CATALOG[self.board].arch

    @property
    def endianness(self) -> str:
        """Byte order, derived from the board."""
        return BOARD_CATALOG[self.board].endianness

    def build_config(self, instrument: bool = True) -> BuildConfig:
        """Materialise the firmware build configuration."""
        return BuildConfig(
            os_name=self.os_name,
            board=self.board,
            instrument=instrument,
            instrument_modules=self.instrument_modules,
            components=self.components,
        )


TARGETS: Dict[str, TargetConfig] = {}


def _register(target: TargetConfig) -> None:
    TARGETS[target.name] = target


_register(TargetConfig(
    name="freertos", os_name="freertos", board="stm32f407",
    openocd_args=("-f", "interface/stlink.cfg", "-f", "target/stm32f4x.cfg"),
    description="FreeRTOS full-system target on an STM32F407 (SWD)"))
_register(TargetConfig(
    name="rt-thread", os_name="rt-thread", board="stm32f407",
    openocd_args=("-f", "interface/stlink.cfg", "-f", "target/stm32f4x.cfg"),
    description="RT-Thread full-system target on an STM32F407 (SWD)"))
_register(TargetConfig(
    name="zephyr", os_name="zephyr", board="stm32f407",
    openocd_args=("-f", "interface/stlink.cfg", "-f", "target/stm32f4x.cfg"),
    description="Zephyr full-system target on an STM32F407 (SWD)"))
_register(TargetConfig(
    name="nuttx", os_name="nuttx", board="stm32h745",
    openocd_args=("-f", "interface/stlink.cfg", "-f", "target/stm32h7x.cfg"),
    description="NuttX full-system target on an STM32H745 "
                "(no emulator exists for this board)"))
_register(TargetConfig(
    name="pokos", os_name="pokos", board="qemu-virt",
    openocd_args=("-f", "interface/jlink.cfg", "-f", "target/qemu.cfg"),
    description="PoKOS target on qemu-virt (the Gustave comparison)"))
_register(TargetConfig(
    name="freertos-riscv", os_name="freertos", board="esp32c3",
    openocd_args=("-f", "interface/esp_usb_jtag.cfg",
                  "-f", "target/esp32c3.cfg"),
    description="FreeRTOS on a RISC-V ESP32-C3 (JTAG)"))
_register(TargetConfig(
    name="freertos-app", os_name="freertos", board="esp32",
    components=("json", "http"),
    instrument_modules=("json", "http"),
    openocd_args=("-f", "interface/ftdi/esp32_devkitj.cfg",
                  "-f", "target/esp32.cfg"),
    description="Application-level target: HTTP server + JSON on an "
                "ESP32, instrumentation confined to those modules "
                "(the Table 4 setup)"))


def get_target(name: str) -> TargetConfig:
    """Look up a registered target."""
    if name not in TARGETS:
        raise KeyError(f"unknown target {name!r}; known: {sorted(TARGETS)}")
    return TARGETS[name]
