"""Seed corpus: interesting inputs and their scheduling weights.

An input is admitted when it triggered new coverage or revealed a fault
(§4.5); crash-revealing payloads get a weight bonus so they are mutated
more — the paper credits exactly this for reaching deeper paths (§5.4.2).

Entries are deduplicated by content hash (the wire encoding of the
program), which is also the identity shared-corpus sync uses to merge
corpora across campaign workers (``repro.farm``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional

from repro.agent.protocol import (TestProgram, deserialize_program,
                                  serialize_program)
from repro.fuzz.rng import FuzzRng

CRASH_BONUS = 1.5
MAX_CORPUS = 4096


def program_hash(program: TestProgram) -> str:
    """Stable content identity of a test program.

    Hashes the wire encoding, so two programs that serialize to the same
    agent input are the same seed — the dedup key for both the local
    corpus and the campaign-wide shared corpus.  Programs the protocol
    cannot encode (over-long calls built by hostile tests) fall back to
    a structural repr, keeping the hash total.
    """
    try:
        raw = serialize_program(program)
    except Exception:
        raw = repr(program.calls).encode("utf-8", "replace")
    return hashlib.sha256(raw).hexdigest()


@dataclass
class CorpusEntry:
    """One saved seed."""

    program: TestProgram
    new_edges: int = 0
    crashed: bool = False
    picks: int = 0
    exec_cycles: int = 0
    #: Content hash (assigned by :meth:`Corpus.add`).
    digest: str = ""
    #: The edges this seed newly contributed when it was admitted —
    #: what shared-corpus sync uses to decide "new to the global
    #: frontier" without re-executing the program.
    edge_footprint: FrozenSet[int] = field(default_factory=frozenset)

    def weight(self) -> float:
        """Scheduling weight (productive, fast, fresh seeds win)."""
        base = 1.0 + float(self.new_edges)
        if self.crashed:
            base += CRASH_BONUS
        # AFL-style perf score: fast seeds are mutated more, otherwise a
        # few slow-but-productive inputs monopolise the budget.
        speed_penalty = 1.0 + self.exec_cycles / 4000.0
        # Fresh seeds get explored before over-picked ones.
        return base / (speed_penalty * (1.0 + 0.1 * self.picks))


def entry_to_record(entry: CorpusEntry) -> Optional[Dict[str, object]]:
    """JSON-friendly persistence record of one seed (``repro.db``).

    The program rides along as the hex of its wire encoding — the same
    bytes the content hash covers, so a record is self-verifying against
    its digest.  Programs the protocol cannot encode (hostile-test
    constructions) return ``None``: they cannot be reconstructed, so the
    store skips rather than half-persists them.
    """
    try:
        raw = serialize_program(entry.program)
    except Exception:
        return None
    return {
        "digest": entry.digest or program_hash(entry.program),
        "program": raw.hex(),
        "new_edges": entry.new_edges,
        "crashed": entry.crashed,
        "exec_cycles": entry.exec_cycles,
        "footprint": sorted(entry.edge_footprint),
    }


def entry_from_record(record: Dict[str, object]) -> CorpusEntry:
    """Inverse of :func:`entry_to_record`.

    Raises ``ProtocolError``/``ValueError`` on malformed records — the
    store catches these and quarantines the record instead of loading
    a seed it cannot trust.
    """
    program = deserialize_program(bytes.fromhex(str(record["program"])))
    return CorpusEntry(
        program=program,
        new_edges=int(record.get("new_edges", 0)),
        crashed=bool(record.get("crashed", False)),
        exec_cycles=int(record.get("exec_cycles", 0)),
        digest=str(record.get("digest", "")) or program_hash(program),
        edge_footprint=frozenset(
            int(edge) for edge in record.get("footprint", ())))


class Corpus:
    """The seed pool (content-hash deduplicated)."""

    def __init__(self, max_entries: int = MAX_CORPUS) -> None:
        self.entries: List[CorpusEntry] = []
        self.max_entries = max_entries
        self.total_added = 0
        self._by_digest: Dict[str, CorpusEntry] = {}

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self._by_digest

    def digests(self) -> List[str]:
        """Content hashes of the current entries, insertion order."""
        return [entry.digest for entry in self.entries]

    def get(self, digest: str) -> Optional[CorpusEntry]:
        """Entry with the given content hash, if still resident."""
        return self._by_digest.get(digest)

    def add(self, program: TestProgram, new_edges: int,
            crashed: bool = False, exec_cycles: int = 0,
            edges: Iterable[int] = ()) -> CorpusEntry:
        """Admit an interesting input (idempotent per content hash).

        Re-adding a program already in the pool merges into the resident
        entry (best observed ``new_edges``, sticky ``crashed`` flag,
        union footprint) instead of growing the pool; ``total_added``
        counts admissions either way, so it stays monotone.
        """
        digest = program_hash(program)
        self.total_added += 1
        existing = self._by_digest.get(digest)
        if existing is not None:
            existing.new_edges = max(existing.new_edges, new_edges)
            existing.crashed = existing.crashed or crashed
            existing.edge_footprint = existing.edge_footprint | \
                frozenset(edges)
            return existing
        entry = CorpusEntry(program=program, new_edges=new_edges,
                            crashed=crashed, exec_cycles=exec_cycles,
                            digest=digest,
                            edge_footprint=frozenset(edges))
        self.entries.append(entry)
        self._by_digest[digest] = entry
        if len(self.entries) > self.max_entries:
            self._evict()
        return entry

    def _evict(self) -> None:
        """Eviction policy (pinned by regression test): drop the entry
        with the lowest current scheduling weight; among equal weights
        the earliest-admitted (stalest) entry loses.  The best-weighted
        entry can never be the victim."""
        victim = min(range(len(self.entries)),
                     key=lambda i: self.entries[i].weight())
        removed = self.entries.pop(victim)
        del self._by_digest[removed.digest]

    def remove(self, digest: str) -> Optional[CorpusEntry]:
        """Drop one entry by content hash; returns it, or None.

        The campaign's sharded shared corpus makes eviction a *global*
        decision across shards (``repro.farm.state``), so the policy
        lives there and each shard only needs targeted removal.
        """
        removed = self._by_digest.pop(digest, None)
        if removed is not None:
            for position, entry in enumerate(self.entries):
                if entry is removed:
                    del self.entries[position]
                    break
        return removed

    def import_entry(self, entry: CorpusEntry) -> Optional[CorpusEntry]:
        """Merge a foreign (shared-corpus) entry into this pool.

        Returns the resident entry, or None when it was already present
        — the caller uses that to count genuine imports.
        """
        if entry.digest and entry.digest in self._by_digest:
            return None
        resident = self.add(entry.program, entry.new_edges,
                            crashed=entry.crashed,
                            exec_cycles=entry.exec_cycles,
                            edges=entry.edge_footprint)
        return resident

    def pick(self, rng: FuzzRng) -> Optional[CorpusEntry]:
        """Weighted seed selection for mutation."""
        if not self.entries:
            return None
        entry = rng.pick_weighted(self.entries,
                                  [e.weight() for e in self.entries])
        entry.picks += 1
        return entry
