"""Seed corpus: interesting inputs and their scheduling weights.

An input is admitted when it triggered new coverage or revealed a fault
(§4.5); crash-revealing payloads get a weight bonus so they are mutated
more — the paper credits exactly this for reaching deeper paths (§5.4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.agent.protocol import TestProgram
from repro.fuzz.rng import FuzzRng

CRASH_BONUS = 1.5
MAX_CORPUS = 4096


@dataclass
class CorpusEntry:
    """One saved seed."""

    program: TestProgram
    new_edges: int = 0
    crashed: bool = False
    picks: int = 0
    exec_cycles: int = 0

    def weight(self) -> float:
        """Scheduling weight (productive, fast, fresh seeds win)."""
        base = 1.0 + float(self.new_edges)
        if self.crashed:
            base += CRASH_BONUS
        # AFL-style perf score: fast seeds are mutated more, otherwise a
        # few slow-but-productive inputs monopolise the budget.
        speed_penalty = 1.0 + self.exec_cycles / 4000.0
        # Fresh seeds get explored before over-picked ones.
        return base / (speed_penalty * (1.0 + 0.1 * self.picks))


class Corpus:
    """The seed pool."""

    def __init__(self) -> None:
        self.entries: List[CorpusEntry] = []
        self.total_added = 0

    def __len__(self) -> int:
        return len(self.entries)

    def add(self, program: TestProgram, new_edges: int,
            crashed: bool = False, exec_cycles: int = 0) -> CorpusEntry:
        """Admit an interesting input."""
        entry = CorpusEntry(program=program, new_edges=new_edges,
                            crashed=crashed, exec_cycles=exec_cycles)
        self.entries.append(entry)
        self.total_added += 1
        if len(self.entries) > MAX_CORPUS:
            # Drop the stalest low-value seed.
            victim = min(range(len(self.entries)),
                         key=lambda i: self.entries[i].weight())
            self.entries.pop(victim)
        return entry

    def pick(self, rng: FuzzRng) -> Optional[CorpusEntry]:
        """Weighted seed selection for mutation."""
        if not self.entries:
            return None
        entry = rng.pick_weighted(self.entries,
                                  [e.weight() for e in self.entries])
        entry.picks += 1
        return entry
