"""Crash reports and deduplication.

A report carries everything Figure 6 shows: the detecting monitor, the
cause text extracted from the target's crash-info block, the symbolized
backtrace unwound over the debug link, the UART tail, and the offending
program.  Dedup is by (kind, top frames, cause prefix) — the classic
stack-hash signature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.agent.protocol import TestProgram

KIND_PANIC = "kernel-panic"
KIND_ASSERT = "kernel-assertion"
KIND_FAULT = "hard-fault"
KIND_HANG = "hang"


@dataclass
class CrashReport:
    """One observed failure."""

    os_name: str
    kind: str
    cause: str
    detail: str = ""
    monitor: str = ""              # "exception" | "log" | "timeout"
    backtrace: List[str] = field(default_factory=list)
    uart_tail: List[str] = field(default_factory=list)
    program: Optional[TestProgram] = None
    cycles: int = 0

    def signature(self) -> str:
        """Dedup key: stack hash when we have frames, else the cause text
        with every number/hex literal normalised away."""
        import re
        frames = ",".join(self.backtrace[:3])
        cause_head = re.sub(r"(0x[0-9a-fA-F]+|\d+)", "N",
                            self.cause)[:80].strip()
        if frames:
            return f"{self.os_name}|{self.kind}|{frames}"
        return f"{self.os_name}|{self.kind}|{cause_head}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly persistence record (``repro.db``).

        The offending program is embedded as the hex of its wire
        encoding when it encodes; reports whose programs cannot be
        serialized persist everything else (triage survives even when
        the reproducer does not).
        """
        data: Dict[str, object] = {
            "os_name": self.os_name, "kind": self.kind,
            "cause": self.cause, "detail": self.detail,
            "monitor": self.monitor,
            "backtrace": list(self.backtrace),
            "uart_tail": list(self.uart_tail),
            "cycles": self.cycles,
        }
        if self.program is not None:
            from repro.agent.protocol import serialize_program
            try:
                data["program"] = serialize_program(self.program).hex()
            except Exception:
                pass
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CrashReport":
        """Inverse of :meth:`to_dict`; an undecodable embedded program
        degrades to ``program=None`` rather than failing the load."""
        program = None
        raw = data.get("program")
        if raw:
            from repro.agent.protocol import deserialize_program
            try:
                program = deserialize_program(bytes.fromhex(str(raw)))
            except Exception:
                program = None
        return cls(
            os_name=str(data.get("os_name", "")),
            kind=str(data.get("kind", "")),
            cause=str(data.get("cause", "")),
            detail=str(data.get("detail", "")),
            monitor=str(data.get("monitor", "")),
            backtrace=[str(frame) for frame in data.get("backtrace", [])],
            uart_tail=[str(line) for line in data.get("uart_tail", [])],
            program=program,
            cycles=int(data.get("cycles", 0)))

    def render(self) -> str:
        """Human-readable report (the Figure 6 shape)."""
        lines = [f"[{self.os_name}] {self.kind}: {self.cause}"]
        if self.detail:
            lines.append(f"  detail : {self.detail}")
        lines.append(f"  monitor: {self.monitor}")
        for level, frame in enumerate(self.backtrace, start=1):
            lines.append(f"  Level {level}: {frame}")
        for uart_line in self.uart_tail[-4:]:
            lines.append(f"  uart   | {uart_line}")
        return "\n".join(lines)


class CrashDb:
    """Deduplicated crash collection."""

    def __init__(self) -> None:
        self.by_signature: Dict[str, CrashReport] = {}
        self.counts: Dict[str, int] = {}
        self.total_events = 0

    def add(self, report: CrashReport) -> bool:
        """Record an event; True if it is a *new* (unique) crash."""
        self.total_events += 1
        signature = report.signature()
        self.counts[signature] = self.counts.get(signature, 0) + 1
        if signature in self.by_signature:
            return False
        self.by_signature[signature] = report
        return True

    def unique_crashes(self) -> List[CrashReport]:
        """All distinct crashes, first-seen order."""
        return list(self.by_signature.values())

    def __len__(self) -> int:
        return len(self.by_signature)
