"""Pass 1 — specification dataflow lint (``EOF1xx``).

Builds the producer/consumer resource graph over a parsed
:class:`~repro.spec.model.SpecSet` and flags structure the type checker
cannot see:

* **EOF101** — a resource some call consumes but *no* call produces; the
  generator can never satisfy such a parameter.
* **EOF102** — a call that is *transitively* unsatisfiable: at least one
  of its consumed resources has no satisfiable producer (computed as a
  fixpoint over the resource graph, so a producer that itself depends on
  an unproduced resource does not count).  These are the statically-dead
  calls the generator prunes — executing them on the target can only
  burn budget on validation failures.
* **EOF103** — a ``flags`` definition no call references.
* **EOF104** — an integer parameter whose range is empty (``lo > hi``).
* **EOF105** — a string candidate that can never be emitted: a duplicate
  of an earlier candidate (shadowed) or longer than ``maxlen``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.analysis.diagnostics import Diagnostic, SEV_ERROR, diag
from repro.spec.model import FlagsRef, IntType, SpecSet, StringType


@dataclass
class SpecLintResult:
    """Diagnostics plus the statically-dead call set consumers prune."""

    os_name: str = ""
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: api_ids of transitively-unsatisfiable calls (the EOF102 set).
    dead_call_ids: Set[int] = field(default_factory=set)
    #: resources consumed but never produced (the EOF101 set).
    unproduced_resources: Set[str] = field(default_factory=set)

    @property
    def clean(self) -> bool:
        return not self.diagnostics

    def summary(self) -> Dict[str, object]:
        return {"spec.dead_calls": len(self.dead_call_ids),
                "spec.unproduced_resources":
                    sorted(self.unproduced_resources),
                "spec.diagnostics": len(self.diagnostics)}


def _satisfiable_calls(spec: SpecSet) -> Set[int]:
    """Fixpoint: a call is satisfiable iff every resource it consumes has
    at least one satisfiable producer."""
    producers: Dict[str, List[int]] = {}
    for api_id, call in enumerate(spec.calls):
        if call.ret:
            producers.setdefault(call.ret, []).append(api_id)
    satisfiable: Set[int] = set()
    changed = True
    while changed:
        changed = False
        for api_id, call in enumerate(spec.calls):
            if api_id in satisfiable:
                continue
            ok = True
            for need in call.consumes():
                live = [p for p in producers.get(need, ())
                        if p in satisfiable]
                if not live:
                    ok = False
                    break
            if ok:
                satisfiable.add(api_id)
                changed = True
    return satisfiable


def lint_spec(spec: SpecSet, suppressions=None,
              locations: Dict[str, tuple] = None) -> SpecLintResult:
    """Run the dataflow lint over one parsed specification.

    Spec diagnostics have no source line of their own (the spec is a
    synthesized model), so inline suppression needs ``locations``: a
    ``call name -> (rel_path, line)`` map pointing at the kernel method
    backing each call (``analyze_target`` builds it from the ``@kapi``
    surface).  Per-call findings (EOF102/104/105) honor an ``# eof:
    allow[...]`` on the method's ``def`` line; resource/flags findings
    (EOF101/103) name no call and are not suppressible.
    """
    result = SpecLintResult(os_name=spec.os_name)
    locations = locations or {}

    def _suppressed(call_name: str, code: str) -> bool:
        if suppressions is None or call_name not in locations:
            return False
        rel_path, line = locations[call_name]
        return suppressions.allows(rel_path, line, code)

    produced = {call.ret for call in spec.calls if call.ret}
    consumed: Set[str] = set()
    for call in spec.calls:
        consumed.update(call.consumes())

    # EOF101 — consumed but never produced.
    for resource in sorted(consumed - produced):
        needers = [c.name for c in spec.calls if resource in c.consumes()]
        result.unproduced_resources.add(resource)
        result.diagnostics.append(diag(
            "EOF101",
            f"resource {resource!r} is consumed by "
            f"{', '.join(needers)} but no call produces it",
            where=resource, severity=SEV_ERROR, consumers=tuple(needers)))

    # EOF102 — transitively unsatisfiable calls (the prune set).
    satisfiable = _satisfiable_calls(spec)
    for api_id, call in enumerate(spec.calls):
        if api_id in satisfiable:
            continue
        missing = sorted(need for need in call.consumes()
                         if not any(p in satisfiable
                                    for p in spec.producers_of(need)))
        result.dead_call_ids.add(api_id)
        if _suppressed(call.name, "EOF102"):
            continue
        result.diagnostics.append(diag(
            "EOF102",
            f"call {call.name!r} can never be satisfied: no reachable "
            f"producer for {', '.join(repr(m) for m in missing)}",
            where=call.name, severity=SEV_ERROR,
            api_id=api_id, missing=tuple(missing)))

    # EOF103 — dead flags definitions.
    referenced = {param.type.name for call in spec.calls
                  for param in call.params
                  if isinstance(param.type, FlagsRef)}
    for name in sorted(set(spec.flags) - referenced):
        result.diagnostics.append(diag(
            "EOF103", f"flags {name!r} is declared but never referenced",
            where=name))

    # EOF104 / EOF105 — per-parameter type pathologies.
    for call in spec.calls:
        for param in call.params:
            where = f"{call.name}.{param.name}"
            if isinstance(param.type, IntType) and \
                    param.type.lo > param.type.hi and \
                    not _suppressed(call.name, "EOF104"):
                result.diagnostics.append(diag(
                    "EOF104",
                    f"parameter {where} has empty range "
                    f"[{param.type.lo}:{param.type.hi}]",
                    where=where, severity=SEV_ERROR))
            if isinstance(param.type, StringType):
                seen: Set[str] = set()
                for candidate in param.type.candidates:
                    if candidate in seen and \
                            not _suppressed(call.name, "EOF105"):
                        result.diagnostics.append(diag(
                            "EOF105",
                            f"parameter {where}: candidate "
                            f"{candidate!r} shadows an earlier duplicate",
                            where=where, candidate=candidate))
                    elif candidate not in seen and \
                            len(candidate) > param.type.maxlen and \
                            not _suppressed(call.name, "EOF105"):
                        result.diagnostics.append(diag(
                            "EOF105",
                            f"parameter {where}: candidate "
                            f"{candidate!r} exceeds maxlen "
                            f"{param.type.maxlen} and can never be emitted",
                            where=where, candidate=candidate))
                    seen.add(candidate)
    return result
