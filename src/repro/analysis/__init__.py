"""``repro.analysis``: host-side static analysis of the whole stack.

Four passes with stable diagnostic codes (see
:mod:`repro.analysis.diagnostics` for the code table):

* **Pass 1 — spec dataflow lint** (:mod:`repro.analysis.speclint`,
  ``EOF1xx``): producer/consumer resource-graph checks over a parsed
  :class:`~repro.spec.model.SpecSet`.  The generator consumes the result
  to prune statically-dead calls from sequence generation.
* **Pass 2 — kernel reachability** (:mod:`repro.analysis.reach`,
  ``EOF2xx``): AST call-graph walk from each target's API dispatch
  entries, intersected with the build's site table, yielding the
  statically-reachable edge universe behind ``coverage_saturation``.
* **Pass 3 — determinism lint** (:mod:`repro.analysis.lint`,
  ``EOF3xx``): repo-hygiene rules over ``src/repro`` itself, exposed as
  ``eof-fuzz lint`` and enforced in CI.
* **Pass 4 — concurrency effects** (:mod:`repro.analysis.concurrency`,
  ``EOF4xx``): interprocedural effect analysis over ``src/repro`` —
  guarded-attribute discipline (``GUARDED_BY``), lock-order cycles,
  signal-handler effect whitelisting, and threaded module-global
  writes.  Exposed as ``eof-fuzz concurrency`` and gated in CI.

All passes honor inline ``# eof: allow[EOFnnn]`` suppressions
(:mod:`repro.analysis.suppress`); a stale allow is itself reported as
``EOF407``.

``analyze_target`` runs passes 1+2 (and optionally 3+4) for one
registered fuzz target and bundles everything into a single
:class:`~repro.analysis.diagnostics.AnalysisReport`;
``write_analysis_artifact`` drops it as ``analysis.json`` next to the
run's observability artifacts; ``explain_code`` backs ``eof-fuzz
analyze --explain``.
"""

from __future__ import annotations

import inspect
import json
import os
from typing import Dict, Optional, Tuple

from repro.analysis.diagnostics import (  # noqa: F401 (re-exported surface)
    CODE_TABLE,
    AnalysisReport,
    Diagnostic,
    diag,
)
from repro.analysis.concurrency import analyze_concurrency  # noqa: F401
from repro.analysis.lint import (  # noqa: F401
    _iter_python_files,
    _rel,
    default_lint_root,
    lint_sources,
)
from repro.analysis.reach import (  # noqa: F401
    ReachResult,
    analyze_build,
    analyze_reachability,
    reachable_edge_universe,
)
from repro.analysis.speclint import SpecLintResult, lint_spec  # noqa: F401
from repro.analysis.suppress import (  # noqa: F401
    SuppressionIndex,
    scan_suppressions,
)

ANALYSIS_FILE = "analysis.json"


def _repo_suppressions() -> SuppressionIndex:
    """One shared suppression index over the ``repro`` package tree."""
    root = default_lint_root()
    return scan_suppressions(
        [(path, _rel(path, root))
         for path in _iter_python_files([root])])


def _api_locations(kernel_cls: type) -> Dict[str, Tuple[str, int]]:
    """``call name -> (rel_path, def line)`` for a kernel's API surface,
    so spec diagnostics can honor inline suppressions."""
    from repro.oses.common.api import collect_apis

    root = default_lint_root()
    out: Dict[str, Tuple[str, int]] = {}
    for api in collect_apis(kernel_cls):
        func = inspect.unwrap(getattr(kernel_cls, api.name, None)
                              or (lambda: None))
        try:
            source_file = inspect.getsourcefile(func)
            _lines, first_line = inspect.getsourcelines(func)
        except (TypeError, OSError):
            continue
        if source_file:
            out[api.name] = (_rel(os.path.abspath(source_file), root),
                             first_line)
    return out


def analyze_target(target_name: str,
                   include_lint: bool = True,
                   include_concurrency: bool = True) -> AnalysisReport:
    """Run the static-analysis passes for one registered fuzz target."""
    from repro.firmware.builder import build_firmware
    from repro.fuzz.targets import get_target
    from repro.oses import os_registry
    from repro.spec.llmgen import generate_validated_specs

    target = get_target(target_name)
    build = build_firmware(target.build_config())
    report = AnalysisReport(target=target_name)
    suppressions = _repo_suppressions()

    kernel_cls = os_registry()[build.config.os_name]
    spec = generate_validated_specs(build)
    spec_result = lint_spec(spec, suppressions=suppressions,
                            locations=_api_locations(kernel_cls))
    report.extend(spec_result.diagnostics)
    report.summary.update(spec_result.summary())
    report.summary["spec.calls_total"] = len(spec.calls)

    reach_result = analyze_build(build, suppressions=suppressions)
    report.extend(reach_result.diagnostics)
    report.summary.update(reach_result.summary())

    prefixes = ["EOF1", "EOF2"]
    if include_lint:
        lint_report = lint_sources(suppressions=suppressions)
        report.extend(lint_report.diagnostics)
        report.summary.update(lint_report.summary)
        prefixes.append("EOF3")
    if include_concurrency:
        conc_report = analyze_concurrency(suppressions=suppressions)
        report.extend(conc_report.diagnostics)
        report.summary.update(conc_report.summary)
        prefixes.append("EOF4")
    # EOF407 only for code ranges this invocation actually checked: an
    # allow for a pass that did not run is unproven, not stale.
    report.extend(suppressions.unused_diagnostics(tuple(prefixes)))
    return report


def analysis_summary(report: AnalysisReport) -> Dict[str, object]:
    """Compact dict for run artifacts and the report.txt section."""
    codes: Dict[str, int] = {}
    for diagnostic in report.diagnostics:
        codes[diagnostic.code] = codes.get(diagnostic.code, 0) + 1
    return {
        "target": report.target,
        "diagnostics": len(report.diagnostics),
        "codes": codes,
        "summary": {key: value
                    for key, value in sorted(report.summary.items())
                    if isinstance(value, (int, float, str, bool))},
    }


#: Modules whose docstrings document diagnostic codes, in lookup order.
_EXPLAIN_MODULES = (
    "repro.analysis.speclint",
    "repro.spec.validate",
    "repro.analysis.reach",
    "repro.analysis.lint",
    "repro.analysis.concurrency",
    "repro.analysis.suppress",
)


def _docstring_section(code: str) -> str:
    """The documentation chunk for ``code`` from its pass docstring.

    Paragraph blocks are split on blank lines; bullet lists pack several
    codes into one block, so within a block the bullet starting at the
    ``**code**`` marker is carved out up to the next top-level bullet.
    """
    import importlib

    for module_name in _EXPLAIN_MODULES:
        try:
            module = importlib.import_module(module_name)
        except ImportError:
            continue
        doc = module.__doc__ or ""
        if code not in doc:
            continue
        for block in doc.split("\n\n"):
            if code not in block:
                continue
            lines = block.splitlines()
            starts = [i for i, line in enumerate(lines)
                      if line.lstrip().startswith("* ")]
            if not starts:
                return block.strip("\n")
            # Find the bullet whose span contains the code marker.
            for i, start in enumerate(starts):
                end = starts[i + 1] if i + 1 < len(starts) else len(lines)
                chunk = "\n".join(lines[start:end])
                if code in chunk:
                    return chunk.rstrip("\n")
            return block.strip("\n")
    return ""


def explain_code(code: str) -> Optional[str]:
    """Human documentation for one diagnostic code (None if unknown)."""
    if code not in CODE_TABLE:
        return None
    header = f"{code}: {CODE_TABLE[code]}"
    section = _docstring_section(code)
    return f"{header}\n\n{section}" if section else header


def write_analysis_artifact(run_dir: str,
                            report: AnalysisReport) -> str:
    """Write ``analysis.json`` into a run-artifact directory."""
    os.makedirs(run_dir, exist_ok=True)
    path = os.path.join(run_dir, ANALYSIS_FILE)
    from repro.db.io import atomic_write_json
    return atomic_write_json(path, report.to_dict())


def load_analysis_artifact(run_dir: str) -> Optional[AnalysisReport]:
    """Read a run directory's ``analysis.json`` (None if absent)."""
    path = os.path.join(run_dir, ANALYSIS_FILE)
    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as fh:
        return AnalysisReport.from_dict(json.load(fh))
