"""``repro.analysis``: host-side static analysis of the whole stack.

Three passes with stable diagnostic codes (see
:mod:`repro.analysis.diagnostics` for the code table):

* **Pass 1 — spec dataflow lint** (:mod:`repro.analysis.speclint`,
  ``EOF1xx``): producer/consumer resource-graph checks over a parsed
  :class:`~repro.spec.model.SpecSet`.  The generator consumes the result
  to prune statically-dead calls from sequence generation.
* **Pass 2 — kernel reachability** (:mod:`repro.analysis.reach`,
  ``EOF2xx``): AST call-graph walk from each target's API dispatch
  entries, intersected with the build's site table, yielding the
  statically-reachable edge universe behind ``coverage_saturation``.
* **Pass 3 — determinism lint** (:mod:`repro.analysis.lint`,
  ``EOF3xx``): repo-hygiene rules over ``src/repro`` itself, exposed as
  ``eof-fuzz lint`` and enforced in CI.

``analyze_target`` runs passes 1+2 (and optionally 3) for one registered
fuzz target and bundles everything into a single
:class:`~repro.analysis.diagnostics.AnalysisReport`;
``write_analysis_artifact`` drops it as ``analysis.json`` next to the
run's observability artifacts.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.analysis.diagnostics import (  # noqa: F401 (re-exported surface)
    CODE_TABLE,
    AnalysisReport,
    Diagnostic,
    diag,
)
from repro.analysis.lint import default_lint_root, lint_sources  # noqa: F401
from repro.analysis.reach import (  # noqa: F401
    ReachResult,
    analyze_build,
    analyze_reachability,
    reachable_edge_universe,
)
from repro.analysis.speclint import SpecLintResult, lint_spec  # noqa: F401

ANALYSIS_FILE = "analysis.json"


def analyze_target(target_name: str,
                   include_lint: bool = True) -> AnalysisReport:
    """Run the static-analysis passes for one registered fuzz target."""
    from repro.firmware.builder import build_firmware
    from repro.fuzz.targets import get_target
    from repro.spec.llmgen import generate_validated_specs

    target = get_target(target_name)
    build = build_firmware(target.build_config())
    report = AnalysisReport(target=target_name)

    spec = generate_validated_specs(build)
    spec_result = lint_spec(spec)
    report.extend(spec_result.diagnostics)
    report.summary.update(spec_result.summary())
    report.summary["spec.calls_total"] = len(spec.calls)

    reach_result = analyze_build(build)
    report.extend(reach_result.diagnostics)
    report.summary.update(reach_result.summary())

    if include_lint:
        lint_report = lint_sources()
        report.extend(lint_report.diagnostics)
        report.summary.update(lint_report.summary)
    return report


def write_analysis_artifact(run_dir: str,
                            report: AnalysisReport) -> str:
    """Write ``analysis.json`` into a run-artifact directory."""
    os.makedirs(run_dir, exist_ok=True)
    path = os.path.join(run_dir, ANALYSIS_FILE)
    from repro.db.io import atomic_write_json
    return atomic_write_json(path, report.to_dict())


def load_analysis_artifact(run_dir: str) -> Optional[AnalysisReport]:
    """Read a run directory's ``analysis.json`` (None if absent)."""
    path = os.path.join(run_dir, ANALYSIS_FILE)
    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as fh:
        return AnalysisReport.from_dict(json.load(fh))
