"""Pass 2 — kernel reachability and instrumentation hygiene (``EOF2xx``).

Walks the Python AST of a target's kernel class (and any linked
components) from its API dispatch entries — the ``@kapi`` methods, the
boot/housekeeping lifecycle hooks, the OS's exception entry point, and
any extra roots a kernel declares via ``ANALYSIS_ROOTS`` — building a
conservative call graph: a method reaches another when its body mentions
it as an attribute (``self.foo(...)``, ``self.kernel.foo``) *or* as a
string constant (``getattr``-style dispatch, handler tables).

Intersecting the reachable set with the build's
:class:`~repro.instrument.sites.SiteTable` yields:

* **EOF201** — dead instrumentation: an instrumented function no
  dispatch entry can reach (its site block can never fire, inflating the
  denominator of any coverage ratio),
* **EOF202** — a ``self.ctx.cov(n)`` whose constant ``n`` falls outside
  the function's declared site block (it would be modulo-clamped at
  runtime, aliasing two distinct branches onto one site),
* **EOF203** — runtime clamp occurrences already recorded by
  :data:`repro.instrument.sites.CLAMPS` in this process,

plus the *statically-reachable edge universe*: a structural estimate of
how many distinct ``(prev_site, cur_site)`` records the instrumentation
can produce.  ``coverage_saturation = edges_seen / reachable_edges`` is
what makes a flat coverage trajectory interpretable — saturated targets
and stagnating fuzzers look identical in raw edge counts.
"""

from __future__ import annotations

import ast
import inspect
import os
import textwrap
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, diag
from repro.instrument.sites import CLAMPS, SiteTable
from repro.oses.common.api import collect_apis, collect_kfuncs

#: Lifecycle hooks that execute outside API dispatch (boot, idle ticks,
#: per-testcase resets, fatal-signal routing).  They fire coverage too,
#: so reachability roots at them as well as at the ``@kapi`` surface.
LIFECYCLE_ROOTS: Tuple[str, ...] = (
    "boot", "boot_os", "idle_tick", "on_testcase_start", "on_boot",
    "handle_fatal",
)


@dataclass
class ReachResult:
    """Reachability of one build: call graph + site intersection."""

    os_name: str = ""
    roots: List[str] = field(default_factory=list)
    reachable: Set[str] = field(default_factory=set)
    call_edges: Set[Tuple[str, str]] = field(default_factory=set)
    instrumented: List[str] = field(default_factory=list)
    dead_functions: List[str] = field(default_factory=list)
    reachable_sites: int = 0
    total_sites: int = 0
    reachable_edges: int = 0
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def summary(self) -> Dict[str, object]:
        return {
            "reach.roots": len(self.roots),
            "reach.functions_reachable": len(self.reachable),
            "reach.call_edges": len(self.call_edges),
            "reach.instrumented_functions": len(self.instrumented),
            "reach.dead_functions": len(self.dead_functions),
            "reach.sites_reachable": self.reachable_sites,
            "reach.sites_total": self.total_sites,
            "reach.edge_universe": self.reachable_edges,
        }


def _class_method_asts(cls: type) -> Tuple[Dict[str, ast.FunctionDef],
                                           Dict[str, Tuple[str, int]]]:
    """``name -> FunctionDef`` across a class's MRO (subclass wins),
    plus ``name -> (rel_path, file_line)`` real source locations so
    inline suppressions can match reach diagnostics by line."""
    out: Dict[str, ast.FunctionDef] = {}
    locations: Dict[str, Tuple[str, int]] = {}
    for klass in reversed(cls.__mro__):
        if klass is object:
            continue
        try:
            source = textwrap.dedent(inspect.getsource(klass))
            _lines, class_first = inspect.getsourcelines(klass)
            source_file = inspect.getsourcefile(klass) or ""
        except (TypeError, OSError):
            continue
        rel_path = _source_rel(source_file)
        tree = ast.parse(source)
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        out[item.name] = item
                        # Snippet linenos are 1-based within the class
                        # source, which starts at file line class_first:
                        # file_line = offset + snippet_line.
                        locations[item.name] = (rel_path, class_first - 1)
                break
    return out, locations


def _source_rel(source_file: str) -> str:
    """A source path relative to the ``repro`` package root."""
    if not source_file:
        return ""
    from repro.analysis.lint import _rel, default_lint_root
    return _rel(os.path.abspath(source_file), default_lint_root())


def _method_refs(fn_node: ast.FunctionDef, known: Set[str]) -> Set[str]:
    """Method names a body can transfer control to.

    Conservative on purpose: any attribute access or string constant
    matching a known method name counts, so ``getattr(self, "hook")()``
    and handler tables keep their targets reachable.
    """
    refs: Set[str] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Attribute) and node.attr in known:
            refs.add(node.attr)
        elif isinstance(node, ast.Constant) and \
                isinstance(node.value, str) and node.value in known:
            refs.add(node.value)
    return refs


def _cov_overflows(fn_node: ast.FunctionDef,
                   declared_sites: int) -> List[Tuple[int, int]]:
    """``(sub_site, line)`` for constant ``...cov(n)`` calls outside the
    declared block (valid sub-sites are 0..sites-1; 0 is the entry)."""
    overflows: List[Tuple[int, int]] = []
    for node in ast.walk(fn_node):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "cov" and node.args):
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, int):
            if not 0 <= first.value < declared_sites:
                overflows.append((first.value, node.lineno))
    return overflows


def analyze_reachability(kernel_cls: type,
                         component_classes: Sequence[type] = (),
                         site_table: Optional[SiteTable] = None,
                         os_name: str = "",
                         suppressions=None) -> ReachResult:
    """Static reachability of one kernel + components against a build.

    ``suppressions`` (a :class:`repro.analysis.suppress
    .SuppressionIndex`) drops EOF201/EOF202 findings whose *real*
    source line carries an ``# eof: allow[...]`` comment; EOF203 has no
    source location (it tallies runtime clamps) and is not
    suppressible.
    """
    result = ReachResult(os_name=os_name or
                         getattr(kernel_cls, "NAME", kernel_cls.__name__))

    classes: List[type] = [kernel_cls, *component_classes]
    methods: Dict[str, ast.FunctionDef] = {}
    locations: Dict[str, Tuple[str, int]] = {}
    declared_sites: Dict[str, int] = {}
    roots: Set[str] = set()
    for cls in classes:
        cls_methods, cls_locations = _class_method_asts(cls)
        methods.update(cls_methods)
        locations.update(cls_locations)
        for meta in collect_kfuncs(cls):
            declared_sites[meta.name] = meta.sites
        roots.update(api.name for api in collect_apis(cls))
        roots.update(getattr(cls, "ANALYSIS_ROOTS", ()))
    exception_symbol = getattr(kernel_cls, "EXCEPTION_SYMBOL", "")
    roots.update(LIFECYCLE_ROOTS)
    if exception_symbol:
        roots.add(exception_symbol)
    known = set(methods)
    roots &= known
    result.roots = sorted(roots)

    # -- call graph + transitive closure ------------------------------------
    graph = {name: _method_refs(node, known)
             for name, node in methods.items()}
    seen: Set[str] = set()
    stack = sorted(roots)
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        for callee in graph.get(current, ()):
            result.call_edges.add((current, callee))
            if callee not in seen:
                stack.append(callee)
    result.reachable = seen

    def _suppressed(name: str, snippet_line: int, code: str) -> bool:
        if suppressions is None or name not in locations:
            return False
        rel_path, offset = locations[name]
        return rel_path and suppressions.allows(
            rel_path, offset + snippet_line, code)

    # -- EOF202: static sub-site overflows (independent of the build) -------
    for name, sites in sorted(declared_sites.items()):
        node = methods.get(name)
        if node is None:
            continue
        for sub, line in _cov_overflows(node, sites):
            if _suppressed(name, line, "EOF202"):
                continue
            result.diagnostics.append(diag(
                "EOF202",
                f"{name} fires sub-site {sub} but declares only "
                f"{sites} sites; it will be clamped to {sub % sites}",
                where=f"{name}:{line}", sub_site=sub,
                declared_sites=sites))

    # -- site-table intersection --------------------------------------------
    if site_table is not None:
        result.total_sites = site_table.total_sites
        intra_edges = 0
        entry_returns = 0
        for info in site_table.blocks():
            result.instrumented.append(info.symbol)
            if info.symbol in seen:
                result.reachable_sites += info.count
                # Within a block: the linear chain plus one skip edge per
                # sub-site (branches bypass blocks), minus the entry.
                intra_edges += 2 * info.count - 1
                # Entry from the reset sentinel / an uninstrumented
                # caller, and the return edge back out.
                entry_returns += 2
            else:
                result.dead_functions.append(info.symbol)
                fn_node = methods.get(info.symbol)
                if fn_node is not None and _suppressed(
                        info.symbol, fn_node.lineno, "EOF201"):
                    continue
                result.diagnostics.append(diag(
                    "EOF201",
                    f"instrumented function {info.symbol!r} "
                    f"({info.count} sites at base {info.base}) is not "
                    f"reachable from any dispatch entry",
                    where=info.symbol, sites=info.count, base=info.base))
        cross = sum(1 for caller, callee in result.call_edges
                    if caller in seen
                    and site_table.for_symbol(caller) is not None
                    and site_table.for_symbol(callee) is not None)
        # Each instrumented call edge contributes the entry edge into the
        # callee and the resume edge back into the caller.
        result.reachable_edges = intra_edges + entry_returns + 2 * cross

    # -- EOF203: runtime clamps recorded in this process --------------------
    if CLAMPS.count:
        worst = sorted(CLAMPS.by_symbol.items(),
                       key=lambda item: (-item[1], item[0]))[:5]
        result.diagnostics.append(diag(
            "EOF203",
            f"{CLAMPS.count} out-of-range sub-sites were clamped at "
            f"runtime (worst: "
            f"{', '.join(f'{s}={n}' for s, n in worst)})",
            where="sites.clamped", count=CLAMPS.count))
    return result


# Memoised per-build-shape universes: engines are constructed once per
# seed, and the AST walk is identical for identical build configurations.
_UNIVERSE_CACHE: Dict[Tuple, int] = {}


def reachable_edge_universe(build) -> int:
    """The statically-reachable edge universe of one ``BuildInfo``.

    Returns 0 for uninstrumented builds (no sites, no universe).
    """
    config = build.config
    key = (config.os_name, tuple(config.components),
           tuple(config.instrument_modules or ()),
           config.instrument, build.site_table.total_sites)
    cached = _UNIVERSE_CACHE.get(key)
    if cached is not None:
        return cached
    result = analyze_build(build)
    _UNIVERSE_CACHE[key] = result.reachable_edges
    return result.reachable_edges


def analyze_build(build, suppressions=None) -> ReachResult:
    """Reachability of a :class:`~repro.firmware.builder.BuildInfo`."""
    from repro.oses import os_registry
    from repro.oses.components import component_registry

    kernel_cls = os_registry()[build.config.os_name]
    registry = component_registry()
    component_classes = [registry[name]
                         for name in build.config.components
                         if name in registry]
    return analyze_reachability(kernel_cls, component_classes,
                                site_table=build.site_table,
                                os_name=build.config.os_name,
                                suppressions=suppressions)
