"""Inline diagnostic suppressions, shared by every analysis pass.

A trailing ``# eof: allow[EOFnnn]`` comment on the offending line tells
whichever pass scans that file to drop matching diagnostics::

    self.total += 1  # eof: allow[EOFnnn]  single-writer by construction

(with ``nnn`` a real code number; the placeholder here deliberately
does not match the scanner, which is line-based and cannot tell a
docstring from code.)

The contract is deliberately narrow:

* a suppression matches **one code on one line** — there is no
  file-level or range form, so an allow can never hide a second,
  unrelated finding that later lands on the same file;
* **EOF407** — an *unused* suppression: an ``allow[...]`` comment that
  matched no diagnostic in a run that executed the pass owning that
  code.  Stale allows are how suppression lists rot, so they are
  themselves a finding.  A pass that did not run (e.g. ``eof-fuzz
  lint`` never executes the concurrency pass) does not report EOF407
  for the other pass's codes — only codes whose range was actually
  checked in this invocation count as stale.

Location matching is suffix-tolerant: passes record ``where`` as
``path:line`` with paths relative to whatever root they scanned, so a
suppression recorded under ``farm/state.py`` matches a diagnostic
reported against ``repro/farm/state.py`` and vice versa.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

from repro.analysis.diagnostics import Diagnostic, diag

#: The inline-comment form every pass honors.
SUPPRESS_RE = re.compile(r"#\s*eof:\s*allow\[(EOF\d{3})\]")


@dataclass
class Suppression:
    """One ``# eof: allow[CODE]`` comment at ``path:line``."""

    path: str
    line: int
    code: str
    used: bool = False


def _same_file(a: str, b: str) -> bool:
    """Suffix-tolerant path equality (different scan roots)."""
    if a == b:
        return True
    return a.endswith("/" + b) or b.endswith("/" + a)


@dataclass
class SuppressionIndex:
    """Every suppression comment found in the scanned sources."""

    suppressions: List[Suppression] = field(default_factory=list)

    def scan_source(self, rel_path: str, source: str) -> None:
        """Collect the allow comments of one file's text."""
        for lineno, text in enumerate(source.splitlines(), start=1):
            for code in SUPPRESS_RE.findall(text):
                self.suppressions.append(
                    Suppression(path=rel_path, line=lineno, code=code))

    def scan_file(self, path: str, rel_path: str) -> None:
        with open(path, encoding="utf-8") as fh:
            self.scan_source(rel_path, fh.read())

    def allows(self, rel_path: str, line: int, code: str) -> bool:
        """True (and mark used) if ``code`` at ``rel_path:line`` is
        suppressed."""
        hit = False
        for entry in self.suppressions:
            if entry.code == code and entry.line == line and \
                    _same_file(entry.path, rel_path):
                entry.used = True
                hit = True
        return hit

    def allows_where(self, where: str, code: str) -> bool:
        """Match a diagnostic by its ``path:line`` where-string."""
        path, sep, line = where.rpartition(":")
        if not sep or not line.isdigit():
            return False
        return self.allows(path, int(line), code)

    def filter(self, diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
        """Drop every diagnostic an allow comment matches."""
        return [d for d in diagnostics
                if not self.allows_where(d.where, d.code)]

    def unused(self, prefixes: Sequence[str]) -> List[Suppression]:
        """Unmatched suppressions whose code range was actually run."""
        return [entry for entry in self.suppressions
                if not entry.used and entry.code.startswith(tuple(prefixes))]

    def unused_diagnostics(self,
                           prefixes: Sequence[str]) -> List[Diagnostic]:
        """EOF407 for every stale allow within the executed ranges."""
        out = []
        for entry in sorted(self.unused(prefixes),
                            key=lambda e: (e.path, e.line, e.code)):
            out.append(diag(
                "EOF407",
                f"suppression allow[{entry.code}] matched no diagnostic; "
                f"remove the stale comment",
                where=f"{entry.path}:{entry.line}",
                suppressed=entry.code))
        return out


def scan_suppressions(files: Sequence[Tuple[str, str]]) -> SuppressionIndex:
    """Build an index from ``(abs_path, rel_path)`` pairs."""
    index = SuppressionIndex()
    for path, rel_path in files:
        try:
            index.scan_file(path, rel_path)
        except OSError:
            continue
    return index
