"""Shared diagnostic model for the static-analysis passes.

Every finding any pass produces is a :class:`Diagnostic` with a *stable*
code, so tooling (CI gates, ``analysis.json`` consumers, tests) can match
on codes instead of message text.  Code ranges are reserved per pass:

* ``EOF1xx`` — specification dataflow (:mod:`repro.analysis.speclint`)
  and spec/API validation (:mod:`repro.spec.validate`),
* ``EOF2xx`` — kernel reachability and instrumentation-site hygiene
  (:mod:`repro.analysis.reach`),
* ``EOF3xx`` — repo determinism / hygiene lint
  (:mod:`repro.analysis.lint`),
* ``EOF4xx`` — concurrency effects: races, lock order, signal safety
  (:mod:`repro.analysis.concurrency`), plus ``EOF407`` for stale
  inline suppressions (:mod:`repro.analysis.suppress`).

An :class:`AnalysisReport` aggregates the diagnostics of one analysis
run plus pass-level summary numbers, and round-trips through JSON as the
``analysis.json`` run artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

#: Stable code -> short title.  New codes are appended, never renumbered.
CODE_TABLE: Dict[str, str] = {
    # -- EOF1xx: spec dataflow + validation ---------------------------------
    "EOF101": "resource consumed but never produced",
    "EOF102": "call transitively unsatisfiable (statically dead)",
    "EOF103": "flags definition never referenced",
    "EOF104": "unsatisfiable integer range (lo > hi)",
    "EOF105": "shadowed or oversized string candidate",
    "EOF110": "spec/API call-count mismatch",
    "EOF111": "spec/API call-order mismatch",
    "EOF112": "spec/API arity mismatch",
    "EOF113": "spec/API pseudo-attribute mismatch",
    "EOF114": "spec/API return-resource mismatch",
    "EOF115": "spec/API parameter mismatch",
    # -- EOF2xx: reachability + instrumentation -----------------------------
    "EOF201": "dead instrumentation site block (unreachable function)",
    "EOF202": "static sub-site overflow (cov() out of declared range)",
    "EOF203": "runtime sub-site clamps observed",
    # -- EOF3xx: determinism / hygiene lint ---------------------------------
    "EOF301": "nondeterministic call outside the RNG/observability layers",
    "EOF302": "bare except clause",
    "EOF303": "event name not declared in the event registry",
    "EOF304": "non-frozen dataclass in the spec model",
    "EOF305": "unparseable source file",
    "EOF306": "metric name not declared in the metric registry",
    "EOF307": "persistent artifact written without the atomic helpers",
    # -- EOF4xx: concurrency effects ----------------------------------------
    "EOF401": "guarded attribute written without its declared lock",
    "EOF402": "lock-order inversion (acquired-while-holding cycle)",
    "EOF403": "signal handler exceeds the flag/append effect whitelist",
    "EOF404": "mutable module global written from threaded context",
    "EOF405": "guarded state mutated from outside its class without "
              "lock or barrier",
    "EOF407": "unused suppression comment",
}

SEV_ERROR = "error"
SEV_WARNING = "warning"
SEV_INFO = "info"


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a stable code, a message, and where it points."""

    code: str
    message: str
    where: str = ""              # call name / symbol / file:line
    severity: str = SEV_WARNING
    data: Tuple[Tuple[str, object], ...] = ()   # JSON-friendly extras

    @property
    def title(self) -> str:
        """Short title of this diagnostic's code class."""
        return CODE_TABLE.get(self.code, "unknown diagnostic")

    def to_dict(self) -> Dict[str, object]:
        return {"code": self.code, "message": self.message,
                "where": self.where, "severity": self.severity,
                "data": dict(self.data)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Diagnostic":
        return cls(code=str(data.get("code", "")),
                   message=str(data.get("message", "")),
                   where=str(data.get("where", "")),
                   severity=str(data.get("severity", SEV_WARNING)),
                   data=tuple(sorted(dict(data.get("data", {})).items())))

    def render(self) -> str:
        where = f" [{self.where}]" if self.where else ""
        return f"{self.code} {self.severity}{where}: {self.message}"


def diag(code: str, message: str, where: str = "",
         severity: str = SEV_WARNING, **data) -> Diagnostic:
    """Convenience constructor; ``data`` keys are sorted for determinism."""
    if code not in CODE_TABLE:
        raise ValueError(f"unregistered diagnostic code {code!r}")
    return Diagnostic(code=code, message=message, where=where,
                      severity=severity, data=tuple(sorted(data.items())))


@dataclass
class AnalysisReport:
    """All diagnostics of one analysis run plus pass summaries."""

    target: str = ""
    diagnostics: List[Diagnostic] = field(default_factory=list)
    summary: Dict[str, object] = field(default_factory=dict)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def by_code(self, prefix: str) -> List[Diagnostic]:
        """All diagnostics whose code starts with ``prefix`` (e.g. "EOF2")."""
        return [d for d in self.diagnostics if d.code.startswith(prefix)]

    def codes(self) -> List[str]:
        """Sorted distinct codes present in this report."""
        return sorted({d.code for d in self.diagnostics})

    @property
    def clean(self) -> bool:
        """True when no diagnostics were produced."""
        return not self.diagnostics

    def to_dict(self) -> Dict[str, object]:
        return {"target": self.target,
                "summary": dict(self.summary),
                "diagnostics": [d.to_dict() for d in self.diagnostics]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "AnalysisReport":
        report = cls(target=str(data.get("target", "")),
                     summary=dict(data.get("summary", {})))
        report.extend(Diagnostic.from_dict(item)
                      for item in data.get("diagnostics", []))
        return report

    def render(self) -> str:
        """Human rendering: summary lines, then one line per diagnostic."""
        lines = []
        if self.target:
            lines.append(f"target    : {self.target}")
        for key in sorted(self.summary):
            lines.append(f"{key:24}: {self.summary[key]}")
        if self.diagnostics:
            lines.append(f"diagnostics ({len(self.diagnostics)}):")
            lines.extend("  " + d.render() for d in self.diagnostics)
        else:
            lines.append("diagnostics: none")
        return "\n".join(lines)
