"""Interprocedural effect analysis: who writes what, holding which locks.

The substrate of the EOF4xx concurrency pass
(:mod:`repro.analysis.concurrency`).  Parsing every Python file under a
root yields a :class:`CodeIndex` with, per function or method:

* the **effect set** — instance-attribute writes (``self.x = ...``,
  ``self.x += ...``, ``self.x[k] = ...``, mutator calls like
  ``self.x.append(...)``), writes to module-level globals, and writes
  through *typed* external receivers (``state.crashes[sig] = ...``
  where ``state`` is known to be a ``CampaignState``);
* the **lock context** of every effect and call: ``with self._lock:``
  regions are tracked lexically, so each write knows exactly which lock
  tokens were held around it;
* the **outgoing calls**, each tagged with how its receiver resolves.

Per class it records the declared concurrency contract: a ``GUARDED_BY``
mapping (attribute name -> guard), where a guard is either the name of a
lock attribute on the same object or one of three sentinels —
``"@atomic"`` (writes must be single constant assignments, which are
atomic under the GIL), ``"@main"`` (the attribute is only ever touched
by single-threaded coordinator code), ``"@barrier"`` (touched only
inside an epoch-barrier region) — plus ``EPOCH_BARRIERS``, the method
names that constitute the barrier region, and the attribute types
recovered from annotations and constructor assignments.

Call resolution is *typed first*: ``self.m()`` binds within the class
(bases included); receivers with a recoverable type (parameter
annotations, ``x = ClassName(...)`` assignments, typed attributes,
``List[T]`` element access, module-level singletons such as ``CLAMPS =
ClampCounter()``) bind to that class and any subclass overrides.  A
call that resolves no type falls back to name matching — and context
propagation follows a fallback edge only when the method name is
*unique* across the scanned tree, so ubiquitous names (``close``,
``emit``, ``get``) never smear a thread context across unrelated
classes.  Lock-discipline checks do not depend on that compromise:
they are lexical and hold in every context.
"""

from __future__ import annotations

import ast
import builtins
import os
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint import _iter_python_files, _rel, default_lint_root

#: Method calls treated as a *write* to their receiver (container
#: mutation in place).
MUTATOR_METHODS = frozenset({
    "append", "appendleft", "add", "update", "extend", "insert",
    "remove", "discard", "pop", "popleft", "popitem", "clear",
    "setdefault", "sort", "reverse",
})

#: Method names that are overwhelmingly dict/list/str/file plumbing.
#: Name-fallback resolution never binds these — a typed receiver is the
#: only way to reach a same-named real method.
_FALLBACK_BLOCKLIST = frozenset({
    "get", "items", "keys", "values", "copy", "join", "split",
    "strip", "encode", "decode", "format", "read", "readline",
    "write", "flush", "close", "seek", "index", "count", "startswith",
    "endswith", "lower", "upper", "replace", "isdigit",
})

_BUILTIN_NAMES = frozenset(dir(builtins))

#: Execution contexts the concurrency pass discovers.
CTX_WORKER = "worker"
CTX_SIGNAL = "signal"
CTX_BARRIER = "barrier"


@dataclass(frozen=True)
class Effect:
    """One write: an attribute or module-global mutation."""

    kind: str                    # "attr" | "global"
    owner: str                   # class name ("" unknown) / module rel path
    name: str                    # attribute / global name
    op: str                      # "assign" | "aug" | "item" | "mutate"
    line: int
    locks: FrozenSet[str]
    via_self: bool = False
    const: bool = False          # simple assignment of a literal
    detail: str = ""             # mutator method name for op == "mutate"


@dataclass(frozen=True)
class CallSite:
    """One outgoing call and how its receiver resolved."""

    scope: str                   # "self" | "type" | "name" | "attr"
    name: str                    # callee method/function name
    type_name: str               # receiver class for scope == "type"
    line: int
    locks: FrozenSet[str]


@dataclass(frozen=True)
class Acquire:
    """One ``with <lock>:`` entry and the locks already held there."""

    lock: str
    held: FrozenSet[str]
    line: int


@dataclass(eq=False)
class FunctionInfo:
    """One function or method with its extracted effect summary."""

    name: str
    qual: str
    rel_path: str
    lineno: int
    node: ast.AST = field(repr=False, default=None)
    cls: Optional["ClassInfo"] = None
    effects: List[Effect] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    acquires: List[Acquire] = field(default_factory=list)
    local_types: Dict[str, str] = field(default_factory=dict)
    global_decls: Set[str] = field(default_factory=set)
    #: Unresolved expressions registered as thread-pool / Thread /
    #: signal-handler targets inside this body.
    worker_refs: List[ast.expr] = field(default_factory=list)
    signal_refs: List[ast.expr] = field(default_factory=list)


@dataclass(eq=False)
class ClassInfo:
    """One class body plus its declared concurrency contract."""

    name: str
    rel_path: str
    lineno: int
    bases: Tuple[str, ...] = ()
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    attr_types: Dict[str, str] = field(default_factory=dict)
    guarded_by: Dict[str, str] = field(default_factory=dict)
    barriers: Tuple[str, ...] = ()


@dataclass(eq=False)
class ModuleInfo:
    """Per-file symbol tables the scanners resolve against."""

    rel_path: str
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    globals: Set[str] = field(default_factory=set)
    module_locks: Set[str] = field(default_factory=set)
    instance_types: Dict[str, str] = field(default_factory=dict)
    imported_modules: Set[str] = field(default_factory=set)


# ---------------------------------------------------------------------------
# annotation / expression typing
# ---------------------------------------------------------------------------

_CONTAINER_BASES = frozenset({
    "List", "Sequence", "Deque", "Set", "FrozenSet", "Tuple",
    "list", "set", "tuple", "deque", "Iterable", "Iterator",
})
_MAPPING_BASES = frozenset({"Dict", "Mapping", "DefaultDict", "dict"})


def _ann_str(node: Optional[ast.AST]) -> str:
    """A class name ("T"), an element type ("[T]"), or ""."""
    if node is None:
        return ""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _ann_str(node.left)
        if left and left != "None":
            return left
        return _ann_str(node.right)
    if isinstance(node, ast.Subscript):
        base = _ann_str(node.value)
        inner = node.slice
        if base == "Optional":
            return _ann_str(inner)
        if base in _CONTAINER_BASES:
            elem = inner.elts[0] if isinstance(inner, ast.Tuple) and \
                inner.elts else inner
            elem_t = _ann_str(elem)
            return f"[{elem_t}]" if elem_t else ""
        if base in _MAPPING_BASES:
            if isinstance(inner, ast.Tuple) and len(inner.elts) == 2:
                value_t = _ann_str(inner.elts[1])
                return f"[{value_t}]" if value_t else ""
        return ""
    return ""


def _lockish_name(name: str) -> bool:
    return "lock" in name.lower()


def _is_lock_ctor(node: ast.AST) -> bool:
    """``threading.Lock()`` / ``RLock()`` / ``Condition()``-shaped."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    attr = func.attr if isinstance(func, ast.Attribute) else \
        (func.id if isinstance(func, ast.Name) else "")
    return attr in ("Lock", "RLock", "Condition", "Semaphore",
                    "BoundedSemaphore")


def _module_rooted(expr: ast.AST, module: ModuleInfo) -> bool:
    """True when an attribute chain is rooted at an imported module
    (``os.path.join`` — an external call, never an in-repo method)."""
    base = expr
    while isinstance(base, ast.Attribute):
        base = base.value
    return isinstance(base, ast.Name) and \
        base.id in module.imported_modules


class CodeIndex:
    """Everything the concurrency rules query."""

    def __init__(self) -> None:
        self.files: List[Tuple[str, str]] = []      # (abs, rel)
        self.modules: Dict[str, ModuleInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.ambiguous_classes: Set[str] = set()
        self.functions: List[FunctionInfo] = []
        self.by_name: Dict[str, List[FunctionInfo]] = {}
        self.subclasses: Dict[str, List[str]] = {}
        self.worker_roots: List[FunctionInfo] = []
        self.signal_roots: List[FunctionInfo] = []
        self.barrier_roots: List[FunctionInfo] = []
        self.parse_failures: List[Tuple[str, int, str]] = []

    # -- class/method resolution -------------------------------------------

    def class_of(self, name: str) -> Optional[ClassInfo]:
        if name in self.ambiguous_classes:
            return None
        return self.classes.get(name)

    def _base_closure(self, name: str) -> List[str]:
        """``name`` plus its base classes, nearest first."""
        out, stack, seen = [], [name], set()
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            out.append(current)
            cls = self.class_of(current)
            if cls is not None:
                stack.extend(cls.bases)
        return out

    def _subclass_closure(self, name: str) -> List[str]:
        out, stack, seen = [], [name], set()
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            out.append(current)
            stack.extend(self.subclasses.get(current, ()))
        return out

    def method_lookup(self, cls_name: str, method: str,
                      include_subclasses: bool = False
                      ) -> List[FunctionInfo]:
        """Resolve a method on a class: own/base def, plus subclass
        overrides when dispatch could be virtual."""
        targets: List[FunctionInfo] = []
        for name in self._base_closure(cls_name):
            cls = self.class_of(name)
            if cls is not None and method in cls.methods:
                targets.append(cls.methods[method])
                break
        if include_subclasses:
            for name in self._subclass_closure(cls_name):
                if name == cls_name:
                    continue
                cls = self.class_of(name)
                if cls is not None and method in cls.methods:
                    override = cls.methods[method]
                    if override not in targets:
                        targets.append(override)
        return targets

    def attr_type(self, cls_name: str, attr: str) -> str:
        """An attribute's recorded type, searching base classes too."""
        for name in self._base_closure(cls_name):
            cls = self.class_of(name)
            if cls is not None and attr in cls.attr_types:
                return cls.attr_types[attr]
        return ""

    # -- call-graph edges ----------------------------------------------------

    def resolve_call(self, fn: FunctionInfo, site: CallSite
                     ) -> Tuple[List[FunctionInfo], bool]:
        """``(targets, strong)``: strong edges came from typed or lexical
        resolution; weak ones from global name fallback."""
        if site.scope == "self" and fn.cls is not None:
            targets = self.method_lookup(fn.cls.name, site.name)
            if targets:
                return targets, True
            return self._fallback(site.name)
        if site.scope == "type":
            return self.method_lookup(site.type_name, site.name,
                                      include_subclasses=True), True
        if site.scope == "name":
            module = self.modules.get(fn.rel_path)
            if module is not None and site.name in module.functions:
                return [module.functions[site.name]], True
            cls = self.class_of(site.name)
            if cls is not None:
                init = cls.methods.get("__init__")
                return ([init] if init else []), True
            return self._fallback(site.name)
        return self._fallback(site.name)

    def _fallback(self, name: str) -> Tuple[List[FunctionInfo], bool]:
        if name in _FALLBACK_BLOCKLIST or name in _BUILTIN_NAMES:
            return [], False
        return list(self.by_name.get(name, ())), False

    def traversable(self, targets: List[FunctionInfo],
                    strong: bool) -> List[FunctionInfo]:
        """The targets a context/effect fixpoint may follow: every
        typed edge, or a name-fallback edge iff the name is unique."""
        if strong:
            return targets
        return targets if len(targets) == 1 else []

    # -- resolved refs (worker/signal roots) --------------------------------

    def resolve_ref(self, fn: FunctionInfo,
                    ref: ast.expr) -> List[FunctionInfo]:
        """A function reference passed to submit()/Thread()/signal()."""
        if isinstance(ref, ast.Attribute):
            receiver_t = _expr_type(ref.value, fn, self)
            if receiver_t and not receiver_t.startswith("["):
                return self.method_lookup(receiver_t, ref.attr,
                                          include_subclasses=True)
            return list(self.by_name.get(ref.attr, ()))
        if isinstance(ref, ast.Name):
            module = self.modules.get(fn.rel_path)
            if module is not None and ref.id in module.functions:
                return [module.functions[ref.id]]
            return list(self.by_name.get(ref.id, ()))
        if isinstance(ref, ast.Lambda):
            return []
        return []


def _expr_type(expr: ast.AST, fn: FunctionInfo, index: CodeIndex) -> str:
    """Static type of an expression: "T", "[T]" (element type), or ""."""
    if isinstance(expr, ast.Name):
        if expr.id == "self" and fn.cls is not None:
            return fn.cls.name
        local = fn.local_types.get(expr.id, "")
        if local:
            return local
        module = index.modules.get(fn.rel_path)
        if module is not None:
            return module.instance_types.get(expr.id, "")
        return ""
    if isinstance(expr, ast.Attribute):
        base_t = _expr_type(expr.value, fn, index)
        if base_t and not base_t.startswith("["):
            return index.attr_type(base_t, expr.attr)
        return ""
    if isinstance(expr, ast.Subscript):
        base_t = _expr_type(expr.value, fn, index)
        if base_t.startswith("[") and base_t.endswith("]"):
            return base_t[1:-1]
        return ""
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and \
                index.class_of(func.id) is not None:
            return func.id
        if isinstance(func, ast.Attribute) and \
                index.class_of(func.attr) is not None:
            return func.attr
        return ""
    return ""


# ---------------------------------------------------------------------------
# class contracts (GUARDED_BY / EPOCH_BARRIERS / attribute types)
# ---------------------------------------------------------------------------

def _scan_class_contract(cls: ClassInfo, node: ast.ClassDef) -> None:
    for item in node.body:
        if isinstance(item, ast.AnnAssign) and \
                isinstance(item.target, ast.Name):
            ann = _ann_str(item.annotation)
            if ann:
                cls.attr_types[item.target.id] = ann
            continue
        if not (isinstance(item, ast.Assign) and len(item.targets) == 1
                and isinstance(item.targets[0], ast.Name)):
            continue
        target = item.targets[0].id
        if target == "GUARDED_BY" and isinstance(item.value, ast.Dict):
            for key, value in zip(item.value.keys, item.value.values):
                if isinstance(key, ast.Constant) and \
                        isinstance(value, ast.Constant) and \
                        isinstance(key.value, str) and \
                        isinstance(value.value, str):
                    cls.guarded_by[key.value] = value.value
        elif target == "EPOCH_BARRIERS" and \
                isinstance(item.value, (ast.Tuple, ast.List)):
            names = tuple(e.value for e in item.value.elts
                          if isinstance(e, ast.Constant)
                          and isinstance(e.value, str))
            cls.barriers = names


def _scan_attr_types(cls: ClassInfo, index: CodeIndex) -> None:
    """``self.x`` types from annotations and constructor assignments."""
    for method in cls.methods.values():
        params = _param_types(method.node)
        for stmt in ast.walk(method.node):
            target, value, ann = None, None, None
            if isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Attribute) and \
                    isinstance(stmt.target.value, ast.Name) and \
                    stmt.target.value.id == "self":
                target, value, ann = stmt.target.attr, stmt.value, \
                    stmt.annotation
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Attribute) and \
                    isinstance(stmt.targets[0].value, ast.Name) and \
                    stmt.targets[0].value.id == "self":
                target, value = stmt.targets[0].attr, stmt.value
            if target is None or target in cls.attr_types:
                continue
            inferred = _ann_str(ann) if ann is not None else ""
            if not inferred and isinstance(value, ast.Call):
                func = value.func
                ctor = func.id if isinstance(func, ast.Name) else \
                    (func.attr if isinstance(func, ast.Attribute) else "")
                if ctor and index.class_of(ctor) is not None:
                    inferred = ctor
            if not inferred and isinstance(value, ast.Name):
                inferred = params.get(value.id, "")
            if inferred:
                cls.attr_types[target] = inferred


def _param_types(node: ast.AST) -> Dict[str, str]:
    out: Dict[str, str] = {}
    args = getattr(node, "args", None)
    if args is None:
        return out
    for arg in list(args.posonlyargs) + list(args.args) + \
            list(args.kwonlyargs):
        ann = _ann_str(arg.annotation)
        if ann:
            out[arg.arg] = ann
    return out


def _local_types(fn: FunctionInfo, index: CodeIndex) -> Dict[str, str]:
    """Parameter annotations plus simple typed local assignments."""
    types = _param_types(fn.node)
    fn.local_types = types
    for _ in range(2):          # two rounds: x = T(); y = x.attr
        for stmt in _walk_own(fn.node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                inferred = _expr_type(stmt.value, fn, index)
                if inferred:
                    types[stmt.targets[0].id] = inferred
            elif isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                ann = _ann_str(stmt.annotation)
                if ann:
                    types[stmt.target.id] = ann
            elif isinstance(stmt, ast.For) and \
                    isinstance(stmt.target, ast.Name):
                iter_t = _expr_type(stmt.iter, fn, index)
                if iter_t.startswith("[") and iter_t.endswith("]"):
                    types[stmt.target.id] = iter_t[1:-1]
    return types


def _walk_own(node: ast.AST):
    """ast.walk that does not descend into nested def/class bodies."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(current))


# ---------------------------------------------------------------------------
# per-function effect extraction
# ---------------------------------------------------------------------------

class _FunctionScanner:
    """One recursive pass over a body, carrying the held-lock set
    through ``with`` statements."""

    def __init__(self, fn: FunctionInfo, index: CodeIndex):
        self.fn = fn
        self.index = index
        self.module = index.modules[fn.rel_path]

    def scan(self) -> None:
        for decl in _walk_own(self.fn.node):
            if isinstance(decl, ast.Global):
                self.fn.global_decls.update(decl.names)
        for stmt in self.fn.node.body:
            self._walk(stmt, ())

    # -- lock tokens ---------------------------------------------------------

    def _lock_token(self, expr: ast.AST) -> Optional[str]:
        if isinstance(expr, ast.Attribute):
            owner_t = _expr_type(expr.value, self.fn, self.index)
            is_lock = _lockish_name(expr.attr)
            if owner_t and not owner_t.startswith("["):
                cls = self.index.class_of(owner_t)
                if cls is not None and not is_lock:
                    is_lock = expr.attr in cls.guarded_by.values()
                if is_lock:
                    return f"{owner_t}.{expr.attr}"
            if is_lock:
                return f"?.{expr.attr}"
            return None
        if isinstance(expr, ast.Name):
            if expr.id in self.module.module_locks or \
                    _lockish_name(expr.id):
                return f"{self.fn.rel_path}::{expr.id}"
            return None
        return None

    # -- the walk ------------------------------------------------------------

    def _walk(self, node: ast.AST, held: Tuple[str, ...]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            return                              # separate scope
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = held
            for item in node.items:
                token = self._lock_token(item.context_expr)
                if token is not None:
                    self.fn.acquires.append(Acquire(
                        lock=token, held=frozenset(inner),
                        line=item.context_expr.lineno))
                    if token not in inner:
                        inner = inner + (token,)
                else:
                    self._walk(item.context_expr, held)
            for stmt in node.body:
                self._walk(stmt, inner)
            return
        if isinstance(node, ast.Assign):
            const = isinstance(node.value, ast.Constant)
            for target in node.targets:
                self._record_store(target, held, op="assign", const=const)
            self._walk(node.value, held)
            for target in node.targets:
                for child in ast.iter_child_nodes(target):
                    self._walk(child, held)
            return
        if isinstance(node, ast.AugAssign):
            self._record_store(node.target, held, op="aug")
            self._walk(node.value, held)
            return
        if isinstance(node, ast.AnnAssign):
            if node.value is not None:
                const = isinstance(node.value, ast.Constant)
                self._record_store(node.target, held, op="assign",
                                   const=const)
                self._walk(node.value, held)
            return
        if isinstance(node, ast.Call):
            self._record_call(node, held)
            for child in ast.iter_child_nodes(node):
                self._walk(child, held)
            return
        for child in ast.iter_child_nodes(node):
            self._walk(child, held)

    # -- stores --------------------------------------------------------------

    def _record_store(self, target: ast.AST, held: Tuple[str, ...],
                      op: str, const: bool = False) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_store(element, held, op=op)
            return
        item_store = False
        while isinstance(target, ast.Subscript):
            target = target.value
            item_store = True
        effective_op = "item" if item_store and op == "assign" else op
        if isinstance(target, ast.Name):
            # A bare ``x = ...`` rebinding is a global write only under
            # an explicit ``global x``; subscript stores on a module
            # global (``TABLE[k] = v``) mutate it regardless.
            is_global = target.id in self.module.globals and \
                (item_store or target.id in self.fn.global_decls)
            if is_global:
                self._add_effect(Effect(
                    kind="global", owner=self.fn.rel_path,
                    name=target.id, op=effective_op, line=target.lineno,
                    locks=frozenset(held),
                    const=const and not item_store))
            return
        if isinstance(target, ast.Attribute):
            base = target.value
            if isinstance(base, ast.Name) and base.id == "self":
                owner = self.fn.cls.name if self.fn.cls else ""
                self._add_effect(Effect(
                    kind="attr", owner=owner, name=target.attr,
                    op=effective_op, line=target.lineno,
                    locks=frozenset(held), via_self=True,
                    const=const and not item_store))
                return
            owner_t = _expr_type(base, self.fn, self.index)
            if owner_t and not owner_t.startswith("[") and \
                    self.index.class_of(owner_t) is not None:
                self._add_effect(Effect(
                    kind="attr", owner=owner_t, name=target.attr,
                    op=effective_op, line=target.lineno,
                    locks=frozenset(held),
                    const=const and not item_store))

    # -- calls ---------------------------------------------------------------

    def _record_call(self, node: ast.Call, held: Tuple[str, ...]) -> None:
        func = node.func
        self._maybe_register_root(node)
        if isinstance(func, ast.Name):
            if func.id in _BUILTIN_NAMES:
                return
            self.fn.calls.append(CallSite(
                scope="name", name=func.id, type_name="",
                line=node.lineno, locks=frozenset(held)))
            return
        if not isinstance(func, ast.Attribute):
            return
        if _module_rooted(func.value, self.module) or (
                isinstance(func.value, ast.Attribute)
                and _module_rooted(func.value, self.module)):
            return                              # os.path.join(...) etc.
        if func.attr in MUTATOR_METHODS:
            self._record_mutator(func, held)
            return
        base = func.value
        if isinstance(base, ast.Name) and base.id == "self" and \
                self.fn.cls is not None:
            self.fn.calls.append(CallSite(
                scope="self", name=func.attr, type_name="",
                line=node.lineno, locks=frozenset(held)))
            return
        receiver_t = _expr_type(base, self.fn, self.index)
        if receiver_t and not receiver_t.startswith("[") and \
                self.index.class_of(receiver_t) is not None:
            self.fn.calls.append(CallSite(
                scope="type", name=func.attr, type_name=receiver_t,
                line=node.lineno, locks=frozenset(held)))
            return
        self.fn.calls.append(CallSite(
            scope="attr", name=func.attr, type_name="",
            line=node.lineno, locks=frozenset(held)))

    def _record_mutator(self, func: ast.Attribute,
                        held: Tuple[str, ...]) -> None:
        recv = func.value
        while isinstance(recv, ast.Subscript):
            recv = recv.value
        if isinstance(recv, ast.Attribute):
            base = recv.value
            if isinstance(base, ast.Name) and base.id == "self":
                owner = self.fn.cls.name if self.fn.cls else ""
                self._add_effect(Effect(
                    kind="attr", owner=owner, name=recv.attr,
                    op="mutate", line=func.lineno,
                    locks=frozenset(held), via_self=True,
                    detail=func.attr))
                return
            owner_t = _expr_type(base, self.fn, self.index)
            if owner_t and not owner_t.startswith("[") and \
                    self.index.class_of(owner_t) is not None:
                self._add_effect(Effect(
                    kind="attr", owner=owner_t, name=recv.attr,
                    op="mutate", line=func.lineno,
                    locks=frozenset(held), detail=func.attr))
            return
        if isinstance(recv, ast.Name):
            if recv.id in self.module.globals and \
                    recv.id not in self.fn.local_types:
                self._add_effect(Effect(
                    kind="global", owner=self.fn.rel_path,
                    name=recv.id, op="mutate", line=func.lineno,
                    locks=frozenset(held), detail=func.attr))
                return
            # A mutator on a typed module singleton (``CLAMPS.record``
            # is a call, not a mutator) — nothing else to record here.
            return

    def _maybe_register_root(self, node: ast.Call) -> None:
        func = node.func
        attr = func.attr if isinstance(func, ast.Attribute) else \
            (func.id if isinstance(func, ast.Name) else "")
        if attr == "submit" and node.args:
            self.fn.worker_refs.append(node.args[0])
        elif attr == "Thread":
            target = next((kw.value for kw in node.keywords
                           if kw.arg == "target"), None)
            if target is not None:
                self.fn.worker_refs.append(target)
        elif attr == "signal" and isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name) and \
                func.value.id == "signal" and len(node.args) >= 2:
            self.fn.signal_refs.append(node.args[1])

    def _add_effect(self, effect: Effect) -> None:
        self.fn.effects.append(effect)


# ---------------------------------------------------------------------------
# index construction
# ---------------------------------------------------------------------------

def build_index(paths: Optional[Sequence[str]] = None) -> CodeIndex:
    """Parse every Python file under ``paths`` into a CodeIndex."""
    if not paths:
        paths = [default_lint_root()]
    abs_paths = [os.path.abspath(p) for p in paths]
    root = os.path.commonpath(abs_paths) if len(abs_paths) > 1 \
        else abs_paths[0]
    if os.path.isfile(root):
        root = os.path.dirname(root)

    index = CodeIndex()
    trees: List[Tuple[ModuleInfo, ast.Module]] = []
    for path in _iter_python_files(abs_paths):
        rel_path = _rel(path, root)
        index.files.append((path, rel_path))
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            index.parse_failures.append(
                (rel_path, exc.lineno or 0, exc.msg or "syntax error"))
            continue
        module = ModuleInfo(rel_path=rel_path)
        index.modules[rel_path] = module
        trees.append((module, tree))
        _collect_module(index, module, tree)

    # Subclass map + contract scan need the full class table first.
    for cls in index.classes.values():
        for base in cls.bases:
            index.subclasses.setdefault(base, []).append(cls.name)
    for module, tree in trees:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and \
                    node.name in module.classes:
                _scan_class_contract(module.classes[node.name], node)
    for module, _tree in trees:
        for cls in module.classes.values():
            _scan_attr_types(cls, index)

    # Effects need types; types need every class scanned — last pass.
    for fn in index.functions:
        _local_types(fn, index)
    for fn in index.functions:
        _FunctionScanner(fn, index).scan()

    # Execution-context roots.
    for fn in index.functions:
        for ref in fn.worker_refs:
            index.worker_roots.extend(index.resolve_ref(fn, ref))
        for ref in fn.signal_refs:
            index.signal_roots.extend(index.resolve_ref(fn, ref))
    for cls in index.classes.values():
        for name in cls.barriers:
            if name in cls.methods:
                index.barrier_roots.append(cls.methods[name])
    return index


def _collect_module(index: CodeIndex, module: ModuleInfo,
                    tree: ast.Module) -> None:
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                module.imported_modules.add(
                    alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            module.globals.add(name)
            if _is_lock_ctor(node.value) or \
                    (_lockish_name(name) and
                     isinstance(node.value, ast.Call)):
                module.module_locks.add(name)
            if isinstance(node.value, ast.Call):
                func = node.value.func
                ctor = func.id if isinstance(func, ast.Name) else \
                    (func.attr if isinstance(func, ast.Attribute) else "")
                if ctor:
                    module.instance_types[name] = ctor
        elif isinstance(node, ast.AnnAssign) and \
                isinstance(node.target, ast.Name):
            module.globals.add(node.target.id)

    def add_function(node, cls: Optional[ClassInfo], prefix: str) -> None:
        qual = f"{prefix}{node.name}"
        fn = FunctionInfo(name=node.name, qual=qual,
                          rel_path=module.rel_path, lineno=node.lineno,
                          node=node, cls=cls)
        index.functions.append(fn)
        index.by_name.setdefault(node.name, []).append(fn)
        if cls is not None:
            cls.methods[node.name] = fn
        # Bare-name resolution inside this module sees every def,
        # including nested ones (closures registered as callbacks).
        module.functions.setdefault(node.name, fn)
        for child in ast.walk(node):
            if child is node:
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and _direct_parent_scope(node, child):
                add_function(child, cls=None, prefix=f"{qual}.<locals>.")

    def add_class(node: ast.ClassDef) -> None:
        cls = ClassInfo(
            name=node.name, rel_path=module.rel_path, lineno=node.lineno,
            bases=tuple(b.id if isinstance(b, ast.Name) else
                        (b.attr if isinstance(b, ast.Attribute) else "")
                        for b in node.bases))
        module.classes[node.name] = cls
        if node.name in index.classes:
            index.ambiguous_classes.add(node.name)
        else:
            index.classes[node.name] = cls
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                add_function(item, cls=cls, prefix=f"{node.name}.")

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            add_function(node, cls=None, prefix="")
        elif isinstance(node, ast.ClassDef):
            add_class(node)


def _direct_parent_scope(parent: ast.AST, child: ast.AST) -> bool:
    """True when ``child`` is a def nested directly in ``parent`` (not
    inside some deeper nested def/class)."""
    stack = [(parent, True)]
    while stack:
        node, direct = stack.pop()
        for sub in ast.iter_child_nodes(node):
            if sub is child:
                return direct
            nested = isinstance(sub, (ast.FunctionDef,
                                      ast.AsyncFunctionDef, ast.ClassDef))
            stack.append((sub, direct and not nested))
    return False


# ---------------------------------------------------------------------------
# fixpoints the rule layer runs
# ---------------------------------------------------------------------------

def propagate_contexts(index: CodeIndex) -> Dict[FunctionInfo, Set[str]]:
    """Worker / signal / barrier context sets, to a fixpoint over the
    traversable call graph."""
    contexts: Dict[FunctionInfo, Set[str]] = {}
    worklist: List[FunctionInfo] = []

    def seed(fns: List[FunctionInfo], ctx: str) -> None:
        for fn in fns:
            if ctx not in contexts.setdefault(fn, set()):
                contexts[fn].add(ctx)
                worklist.append(fn)

    seed(index.worker_roots, CTX_WORKER)
    seed(index.signal_roots, CTX_SIGNAL)
    seed(index.barrier_roots, CTX_BARRIER)
    while worklist:
        fn = worklist.pop()
        ctx = contexts.get(fn, set())
        for site in fn.calls:
            targets, strong = index.resolve_call(fn, site)
            for callee in index.traversable(targets, strong):
                have = contexts.setdefault(callee, set())
                if not ctx <= have:
                    have.update(ctx)
                    worklist.append(callee)
    return contexts


def entry_locks(index: CodeIndex) -> Dict[FunctionInfo, FrozenSet[str]]:
    """Locks provably held on *every* resolved call into a function
    (one call level deep — lexical regions plus direct callers)."""
    incoming: Dict[FunctionInfo, List[FrozenSet[str]]] = {}
    for fn in index.functions:
        for site in fn.calls:
            targets, strong = index.resolve_call(fn, site)
            for callee in index.traversable(targets, strong):
                incoming.setdefault(callee, []).append(site.locks)
    out: Dict[FunctionInfo, FrozenSet[str]] = {}
    for fn, lock_sets in incoming.items():
        held = frozenset(lock_sets[0])
        for locks in lock_sets[1:]:
            held &= locks
        out[fn] = held
    return out


def transitive_acquires(index: CodeIndex
                        ) -> Dict[FunctionInfo, FrozenSet[str]]:
    """Every lock a function may acquire, directly or via callees."""
    acq: Dict[FunctionInfo, Set[str]] = {
        fn: {a.lock for a in fn.acquires} for fn in index.functions}
    changed = True
    while changed:
        changed = False
        for fn in index.functions:
            for site in fn.calls:
                targets, strong = index.resolve_call(fn, site)
                for callee in index.traversable(targets, strong):
                    extra = acq.get(callee, set()) - acq[fn]
                    if extra:
                        acq[fn].update(extra)
                        changed = True
    return {fn: frozenset(locks) for fn, locks in acq.items()}


def transitive_effects(index: CodeIndex,
                       root: FunctionInfo) -> List[Tuple[FunctionInfo,
                                                         Effect]]:
    """Every effect reachable from ``root`` over traversable edges."""
    seen: Set[int] = set()
    stack = [root]
    out: List[Tuple[FunctionInfo, Effect]] = []
    while stack:
        fn = stack.pop()
        if id(fn) in seen:
            continue
        seen.add(id(fn))
        out.extend((fn, effect) for effect in fn.effects)
        for site in fn.calls:
            targets, strong = index.resolve_call(fn, site)
            stack.extend(index.traversable(targets, strong))
    return out
