"""Pass 3 — repo determinism and hygiene linter (``EOF3xx``).

AST-based rules over ``src/repro`` itself, turning reviewer vigilance
into machine-checked invariants:

* **EOF301** — calls into wall-clock / ambient-randomness APIs
  (``random.*``, ``time.time()``, ``time.monotonic()``,
  ``datetime.now()``/``utcnow()``, argless ``uuid`` helpers) anywhere
  except the seeded RNG (``fuzz/rng.py``) and the observability layer
  (``obs/``), whose wall timestamps are explicitly non-replayable.
  Everything else must consume deterministic virtual time or a seeded
  :class:`~repro.fuzz.rng.FuzzRng` stream, or replays break.
* **EOF302** — bare ``except:`` clauses (they swallow
  ``KeyboardInterrupt`` and hide target signals).
* **EOF303** — an ``emit("name", ...)`` event whose literal name is not
  declared in :data:`repro.obs.events.EVENT_REGISTRY`; undeclared names
  silently fork the event vocabulary run artifacts are parsed by.
* **EOF304** — a dataclass in ``spec/model.py`` that is not
  ``frozen=True``; spec nodes are shared across generator, mutator and
  analysis passes and must be immutable.
* **EOF305** — a source file under the linted tree that does not parse;
  an unparseable file is invisible to every AST rule, so it is itself a
  finding rather than a silent skip.
* **EOF306** — a ``counter("name")`` / ``gauge("name")`` /
  ``histogram("name")`` call whose literal name is not declared in
  :data:`repro.obs.metrics.METRIC_REGISTRY`; the metric vocabulary is
  closed the same way the event vocabulary is (telemetry artifacts —
  ``metrics.prom``, ``timeseries.jsonl``, the HTML report — select
  metrics by name).  Dynamically formatted families (``ddi.cmd.*``,
  ``recovery.rung.*``) are outside the literal check by design.
* **EOF307** — a bare ``open(..., "w")`` whose path names a persistent
  artifact (``.json`` / ``.jsonl`` / ``.prom`` / ``.html``, literally
  or via a module-level filename constant); such writes must go through
  :mod:`repro.db.io`'s atomic helpers so a kill never leaves a torn
  half-file.  The helper module itself is exempt, and append-streamed
  journals opened on a computed path (``events.jsonl`` live sink, the
  sampler) are outside the literal check — their loaders tolerate torn
  tails instead.

Exposed as ``eof-fuzz lint`` and run in CI; the suite asserts the tree
is clean, so any new violation fails the build with its stable code.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, List, Optional, Sequence

from repro.analysis.diagnostics import AnalysisReport, SEV_ERROR, diag

#: Path fragments (relative, ``/``-separated) exempt from EOF301.
NONDETERMINISM_ALLOWED = ("fuzz/rng.py", "obs/")

#: module -> attributes whose *call* is nondeterministic.
_BANNED_CALLS = {
    "random": None,          # every random.* call
    "time": ("time", "monotonic", "perf_counter", "time_ns",
             "monotonic_ns", "perf_counter_ns"),
    "datetime": ("now", "utcnow", "today"),
    "uuid": ("uuid1", "uuid4"),
}


def _iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames
                                 if d != "__pycache__")
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def _rel(path: str, root: str) -> str:
    return os.path.relpath(path, root).replace(os.sep, "/")


def _nondet_allowed(rel_path: str) -> bool:
    return any(fragment in rel_path for fragment in NONDETERMINISM_ALLOWED)


def _banned_call(node: ast.Call) -> Optional[str]:
    """Dotted name of a banned nondeterministic call, or None."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    # Only flag <module>.<attr>(...) and datetime.datetime.now(...) style
    # chains whose *base* is a bare module name — ``self.rng.random`` and
    # other object attributes stay legal.
    base = func.value
    chain = [func.attr]
    while isinstance(base, ast.Attribute):
        chain.append(base.attr)
        base = base.value
    if not isinstance(base, ast.Name):
        return None
    chain.append(base.id)
    chain.reverse()                      # e.g. ["datetime", "datetime", "now"]
    # The chain must be rooted at the module name itself: ``random.x()``
    # is banned, ``self.rng.random.shuffle()`` is a seeded stream.
    banned = _BANNED_CALLS.get(chain[0], ())
    if banned == ():
        return None
    if banned is None or chain[-1] in banned:
        return ".".join(chain)
    return None


def _event_registry() -> frozenset:
    from repro.obs.events import EVENT_REGISTRY
    return EVENT_REGISTRY


def _metric_registry() -> frozenset:
    from repro.obs.metrics import METRIC_REGISTRY
    return METRIC_REGISTRY


#: Method names whose literal first argument names a metric (EOF306).
_METRIC_FACTORIES = ("counter", "gauge", "histogram")

#: Filename suffixes that mark a persistent artifact (EOF307): parsed
#: back by consumers, so a torn half-write is data loss.
PERSISTENT_SUFFIXES = (".json", ".jsonl", ".prom", ".html")

#: Path fragments exempt from EOF307 (the atomic helpers themselves).
ATOMIC_WRITE_ALLOWED = ("db/io.py",)


def _module_constants(tree: ast.AST) -> dict:
    """Module-level ``NAME = "literal"`` string bindings.

    EOF307 resolves these so ``open(join(dir, METRICS_FILE), "w")`` is
    caught just like an inline ``"metrics.json"`` literal.
    """
    constants = {}
    body = tree.body if isinstance(tree, ast.Module) else []
    for node in body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name) and \
                isinstance(node.value, ast.Constant) and \
                isinstance(node.value.value, str):
            constants[node.targets[0].id] = node.value.value
    return constants


def _artifact_name(node: ast.AST, constants: dict) -> Optional[str]:
    """Persistent-artifact filename referenced by a path expression.

    Looks through string literals, module-level filename constants,
    f-string fragments, ``os.path.join(...)``-style calls and string
    concatenation; anything it cannot resolve (attributes, locals) is
    out of scope — those are the streaming-sink paths EOF307
    deliberately leaves alone.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value if node.value.endswith(PERSISTENT_SUFFIXES) \
            else None
    if isinstance(node, ast.Name):
        value = constants.get(node.id)
        return value if value is not None and \
            value.endswith(PERSISTENT_SUFFIXES) else None
    if isinstance(node, ast.JoinedStr):
        for part in node.values:
            if isinstance(part, ast.Constant) and \
                    isinstance(part.value, str) and \
                    part.value.endswith(PERSISTENT_SUFFIXES):
                return part.value
        return None
    if isinstance(node, ast.Call):
        for arg in node.args:
            found = _artifact_name(arg, constants)
            if found is not None:
                return found
        return None
    if isinstance(node, ast.BinOp):
        return _artifact_name(node.left, constants) or \
            _artifact_name(node.right, constants)
    return None


def _open_write_mode(node: ast.Call) -> Optional[str]:
    """The literal write mode of a bare ``open`` call, or None.

    Append modes pass: streamed journals legitimately append, and their
    loaders tolerate torn tails.
    """
    if not (isinstance(node.func, ast.Name) and node.func.id == "open"):
        return None
    if len(node.args) >= 2:
        mode_node = node.args[1]
    else:
        mode_node = next((kw.value for kw in node.keywords
                          if kw.arg == "mode"), None)
    if not isinstance(mode_node, ast.Constant) or \
            not isinstance(mode_node.value, str):
        return None
    mode = mode_node.value
    return mode if ("w" in mode or "x" in mode) else None


def _lint_tree(tree: ast.AST, rel_path: str,
               registry: frozenset,
               metric_registry: frozenset) -> List:
    diagnostics = []
    check_nondet = not _nondet_allowed(rel_path)
    check_frozen = rel_path.endswith("spec/model.py")
    check_atomic = not rel_path.endswith(ATOMIC_WRITE_ALLOWED)
    constants = _module_constants(tree) if check_atomic else {}
    for node in ast.walk(tree):
        if check_nondet and isinstance(node, ast.Call):
            banned = _banned_call(node)
            if banned is not None:
                diagnostics.append(diag(
                    "EOF301",
                    f"nondeterministic call {banned}() — route through "
                    f"fuzz/rng.py or the virtual clock",
                    where=f"{rel_path}:{node.lineno}",
                    severity=SEV_ERROR, call=banned))
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            diagnostics.append(diag(
                "EOF302",
                "bare except: swallows KeyboardInterrupt and target "
                "signals; catch a concrete exception class",
                where=f"{rel_path}:{node.lineno}", severity=SEV_ERROR))
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr == "emit" and node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and \
                    isinstance(first.value, str) and \
                    first.value not in registry:
                diagnostics.append(diag(
                    "EOF303",
                    f"event {first.value!r} is not declared in "
                    f"repro.obs.events.EVENT_REGISTRY",
                    where=f"{rel_path}:{node.lineno}",
                    severity=SEV_ERROR, event=first.value))
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in _METRIC_FACTORIES and node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and \
                    isinstance(first.value, str) and \
                    first.value not in metric_registry:
                diagnostics.append(diag(
                    "EOF306",
                    f"metric {first.value!r} is not declared in "
                    f"repro.obs.metrics.METRIC_REGISTRY",
                    where=f"{rel_path}:{node.lineno}",
                    severity=SEV_ERROR, metric=first.value))
        if check_frozen and isinstance(node, ast.ClassDef):
            for decorator in node.decorator_list:
                if isinstance(decorator, ast.Name) and \
                        decorator.id == "dataclass":
                    frozen = False
                elif isinstance(decorator, ast.Call) and \
                        isinstance(decorator.func, ast.Name) and \
                        decorator.func.id == "dataclass":
                    frozen = any(kw.arg == "frozen"
                                 and isinstance(kw.value, ast.Constant)
                                 and kw.value.value is True
                                 for kw in decorator.keywords)
                else:
                    continue
                if not frozen:
                    diagnostics.append(diag(
                        "EOF304",
                        f"dataclass {node.name} in the spec model must "
                        f"be frozen=True (spec nodes are shared and "
                        f"must be immutable)",
                        where=f"{rel_path}:{node.lineno}",
                        severity=SEV_ERROR, cls=node.name))
        if check_atomic and isinstance(node, ast.Call) and node.args:
            mode = _open_write_mode(node)
            if mode is not None:
                artifact = _artifact_name(node.args[0], constants)
                if artifact is not None:
                    diagnostics.append(diag(
                        "EOF307",
                        f"bare open(..., {mode!r}) writes persistent "
                        f"artifact {artifact!r}; use the repro.db.io "
                        f"atomic helpers so a kill never leaves a "
                        f"torn file",
                        where=f"{rel_path}:{node.lineno}",
                        severity=SEV_ERROR, artifact=artifact,
                        mode=mode))
    return diagnostics


def default_lint_root() -> str:
    """The ``src/repro`` package directory this module ships in."""
    import repro
    return os.path.dirname(os.path.abspath(repro.__file__))


def lint_sources(paths: Optional[Sequence[str]] = None,
                 suppressions=None,
                 report_unused: bool = True) -> AnalysisReport:
    """Run every EOF3xx rule over the given files/directories.

    Defaults to the installed ``repro`` package tree, which is what
    ``eof-fuzz lint`` and the CI gate check.  Inline ``# eof:
    allow[EOF3nn]`` comments drop matching findings; when the pass owns
    its suppression index (``suppressions=None``) it also reports stale
    EOF3xx allows as EOF407 unless ``report_unused`` is false.
    """
    from repro.analysis.suppress import SuppressionIndex

    if not paths:
        paths = [default_lint_root()]
    root = os.path.commonpath([os.path.abspath(p) for p in paths]) \
        if len(paths) > 1 else os.path.abspath(paths[0])
    if os.path.isfile(root):
        root = os.path.dirname(root)
    registry = _event_registry()
    metric_registry = _metric_registry()
    own_index = suppressions is None
    if own_index:
        suppressions = SuppressionIndex()
    report = AnalysisReport(target="lint")
    files = 0
    for path in _iter_python_files([os.path.abspath(p) for p in paths]):
        files += 1
        rel_path = _rel(path, root)
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
        if own_index:
            suppressions.scan_source(rel_path, source)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            report.extend(suppressions.filter([diag(
                "EOF305",
                f"file does not parse: {exc.msg}",
                where=f"{rel_path}:{exc.lineno or 0}",
                severity=SEV_ERROR)]))
            continue
        report.extend(suppressions.filter(
            _lint_tree(tree, rel_path, registry, metric_registry)))
    if own_index and report_unused:
        report.extend(suppressions.unused_diagnostics(("EOF3",)))
    report.summary = {"lint.files": files,
                      "lint.rules": 7,
                      "lint.diagnostics": len(report.diagnostics)}
    return report
