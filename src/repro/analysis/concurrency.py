"""Concurrency pass: static race, lock-order, and signal-safety checks.

Built on the interprocedural effect analysis in
:mod:`repro.analysis.effects`.  Execution contexts are discovered, not
declared: worker context flows from every target of
``ThreadPoolExecutor.submit`` / ``threading.Thread(target=...)``,
signal-handler context from every handler passed to ``signal.signal``,
and barrier context from the methods a class names in its
``EPOCH_BARRIERS`` tuple.  The declared side of the contract is the
``GUARDED_BY`` class attribute: a mapping from attribute name to either
a lock attribute on the same object or one of the sentinels
``"@atomic"`` / ``"@main"`` / ``"@barrier"``.

Diagnostics:

* **EOF401** — a guarded instance attribute is written without its
  declared protection.  For a lock guard the write must be lexically
  inside ``with self.<lock>:`` (or inside a method that every resolved
  caller enters with the lock already held); the check is
  context-independent — an unlocked write is flagged even if today only
  one thread reaches it, because the ``GUARDED_BY`` declaration *is*
  the claim being checked.  ``"@atomic"`` attributes may only be
  assigned whole literal constants (a GIL-atomic store, the stop-flag
  pattern); ``"@main"`` and ``"@barrier"`` attributes may not be
  written from worker or signal context at all.  ``__init__`` is
  exempt: construction happens before the object is published.
* **EOF402** — lock-order inversion: a cycle in the
  acquired-while-holding graph.  Edges come from lexically nested
  ``with`` regions and from calls made while holding a lock into
  functions that (transitively) acquire another.  One diagnostic is
  emitted per strongly connected component, anchored at its
  first-seen acquisition site.
* **EOF403** — a signal handler whose *transitive* effect set exceeds
  the async-signal-safe whitelist: constant flag assignments and
  ``.append(...)`` on a pre-existing container.  Anything else —
  compound updates, dict stores, I/O-adjacent state — can observe torn
  invariants when the handler preempts arbitrary bytecode.
* **EOF404** — a mutable module-level global written (rebound via an
  explicit ``global``, item-assigned, or mutated in place) from a
  function reachable in worker or signal context, with no module-level
  lock held.  Cross-thread module state must either move onto a
  guarded object or take an explicit module lock.
* **EOF405** — guarded state mutated from *outside* its owning class
  (``other.state.crashes[k] = ...``) without holding the declared lock
  and outside an epoch-barrier region.  Barrier regions are exempt
  because the pool has been joined there; worker or signal context is
  never exempt.

What this pass does **not** prove: it reasons over the static call
graph (dynamic dispatch is approximated by type inference plus
unique-name fallback), treats any ``with`` on a lock-ish attribute as
protection regardless of runtime aliasing, and says nothing about
atomicity of read-modify-write *reads*.  It is a discipline checker —
a machine-checked convention — not a model checker.
"""

from __future__ import annotations

import os
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import AnalysisReport, Diagnostic, diag
from repro.analysis.effects import (
    CTX_BARRIER,
    CTX_SIGNAL,
    CTX_WORKER,
    CodeIndex,
    Effect,
    FunctionInfo,
    build_index,
    entry_locks,
    propagate_contexts,
    transitive_acquires,
    transitive_effects,
)
from repro.analysis.suppress import SuppressionIndex, scan_suppressions

#: Guard sentinels a ``GUARDED_BY`` value may use instead of a lock name.
SENTINEL_ATOMIC = "@atomic"
SENTINEL_MAIN = "@main"
SENTINEL_BARRIER = "@barrier"


def _guard_for(index: CodeIndex, owner: str, attr: str) -> str:
    """The declared guard for ``owner.attr``, searching base classes."""
    for name in index._base_closure(owner):
        cls = index.class_of(name)
        if cls is not None and attr in cls.guarded_by:
            return cls.guarded_by[attr]
    return ""


def _lock_held(held: FrozenSet[str], guard: str) -> bool:
    """True when some held token is ``<Class>.<guard>`` / ``?.<guard>``
    (receiver typing may root the token at a base or subclass name, so
    matching is by lock-attribute name)."""
    suffix = "." + guard
    return any(token.endswith(suffix) for token in held)


def _module_lock_held(held: FrozenSet[str]) -> bool:
    return any("::" in token for token in held)


def _where(fn: FunctionInfo, line: int) -> str:
    return f"{fn.rel_path}:{line}"


def _is_threaded(contexts: Dict[FunctionInfo, Set[str]],
                 fn: FunctionInfo) -> bool:
    ctx = contexts.get(fn, ())
    return CTX_WORKER in ctx or CTX_SIGNAL in ctx


def _whitelisted_handler_effect(effect: Effect) -> bool:
    """The async-signal-safe effect shapes EOF403 permits."""
    if effect.op == "assign" and effect.const:
        return True
    return effect.op == "mutate" and effect.detail == "append"


# ---------------------------------------------------------------------------
# EOF401 / EOF405 — guarded-attribute discipline
# ---------------------------------------------------------------------------

def _check_guarded_writes(index: CodeIndex,
                          contexts: Dict[FunctionInfo, Set[str]],
                          entry: Dict[FunctionInfo, FrozenSet[str]]
                          ) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for fn in index.functions:
        held_on_entry = entry.get(fn, frozenset())
        for effect in fn.effects:
            if effect.kind != "attr" or not effect.owner:
                continue
            guard = _guard_for(index, effect.owner, effect.name)
            if not guard:
                continue
            held = effect.locks | held_on_entry
            if effect.via_self:
                if fn.name == "__init__":
                    continue
                violation = self_write_violation(
                    guard, effect, held, contexts, fn)
                if violation:
                    out.append(diag(
                        "EOF401",
                        f"{effect.owner}.{effect.name} is declared "
                        f"GUARDED_BY {guard!r} but {violation}",
                        where=_where(fn, effect.line),
                        function=fn.qual, attribute=effect.name,
                        guard=guard))
            else:
                violation = external_write_violation(
                    guard, effect, held, contexts, fn)
                if violation:
                    out.append(diag(
                        "EOF405",
                        f"{effect.owner}.{effect.name} is mutated from "
                        f"outside {effect.owner} ({fn.qual}) {violation}",
                        where=_where(fn, effect.line),
                        function=fn.qual, attribute=effect.name,
                        guard=guard))
    return out


def self_write_violation(guard: str, effect: Effect,
                         held: FrozenSet[str],
                         contexts: Dict[FunctionInfo, Set[str]],
                         fn: FunctionInfo) -> str:
    """A description of the EOF401 violation, or "" when the write is
    disciplined."""
    if guard == SENTINEL_ATOMIC:
        if effect.op == "assign" and effect.const:
            return ""
        return ("@atomic allows only whole constant assignments; "
                f"this is a {effect.op} write")
    if guard in (SENTINEL_MAIN, SENTINEL_BARRIER):
        if _is_threaded(contexts, fn):
            return (f"{guard} state is written from "
                    f"{'/'.join(sorted(contexts.get(fn, ())))} context")
        return ""
    if _lock_held(held, guard):
        return ""
    return f"this write does not hold self.{guard}"


def external_write_violation(guard: str, effect: Effect,
                             held: FrozenSet[str],
                             contexts: Dict[FunctionInfo, Set[str]],
                             fn: FunctionInfo) -> str:
    """A description of the EOF405 violation, or "" when allowed."""
    if guard == SENTINEL_ATOMIC:
        if effect.op == "assign" and effect.const:
            return ""
        return ("without the @atomic constant-assignment shape "
                f"(a {effect.op} write)")
    if guard in (SENTINEL_MAIN, SENTINEL_BARRIER):
        if _is_threaded(contexts, fn):
            return (f"from {'/'.join(sorted(contexts.get(fn, ())))} "
                    f"context despite its {guard} guard")
        return ""
    if _lock_held(held, guard):
        return ""
    ctx = contexts.get(fn, set())
    if CTX_BARRIER in ctx and not _is_threaded(contexts, fn):
        return ""               # pool joined at the barrier
    return f"without holding its declared lock .{guard}"


# ---------------------------------------------------------------------------
# EOF402 — lock-order inversion
# ---------------------------------------------------------------------------

def _lock_graph(index: CodeIndex
                ) -> Dict[Tuple[str, str], Tuple[str, int]]:
    """acquired-while-holding edges ``(held, acquired) -> provenance``."""
    acq = transitive_acquires(index)
    edges: Dict[Tuple[str, str], Tuple[str, int]] = {}

    def add(held: str, acquired: str, rel_path: str, line: int) -> None:
        if held == acquired:
            return
        key = (held, acquired)
        if key not in edges or (rel_path, line) < edges[key]:
            edges[key] = (rel_path, line)

    for fn in index.functions:
        for acquire in fn.acquires:
            for held in acquire.held:
                add(held, acquire.lock, fn.rel_path, acquire.line)
        for site in fn.calls:
            if not site.locks:
                continue
            targets, strong = index.resolve_call(fn, site)
            for callee in index.traversable(targets, strong):
                for acquired in acq.get(callee, ()):
                    for held in site.locks:
                        add(held, acquired, fn.rel_path, site.line)
    return edges


def _lock_cycles(edges: Dict[Tuple[str, str], Tuple[str, int]]
                 ) -> List[List[str]]:
    """Strongly connected components with a cycle, sorted."""
    graph: Dict[str, List[str]] = {}
    for held, acquired in edges:
        graph.setdefault(held, []).append(acquired)
        graph.setdefault(acquired, [])

    # Tarjan, iterative for determinism over sorted adjacency.
    index_of: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work = [(root, iter(sorted(graph[root])))]
        index_of[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index_of:
                    index_of[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(sorted(component))

    for node in sorted(graph):
        if node not in index_of:
            strongconnect(node)

    cyclic = [scc for scc in sccs
              if len(scc) > 1 or (scc[0], scc[0]) in edges]
    return sorted(cyclic)


def _check_lock_order(index: CodeIndex) -> Tuple[List[Diagnostic], int]:
    edges = _lock_graph(index)
    out: List[Diagnostic] = []
    for scc in _lock_cycles(edges):
        members = set(scc)
        provenance = sorted(
            location for (held, acquired), location in edges.items()
            if held in members and acquired in members)
        rel_path, line = provenance[0]
        order = " -> ".join(scc + [scc[0]])
        out.append(diag(
            "EOF402",
            f"locks can be acquired in conflicting orders: {order}",
            where=f"{rel_path}:{line}", locks=tuple(scc)))
    return out, len(edges)


# ---------------------------------------------------------------------------
# EOF403 — signal-handler effect whitelist
# ---------------------------------------------------------------------------

def _check_signal_handlers(index: CodeIndex) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    seen: Set[int] = set()
    for handler in index.signal_roots:
        if id(handler) in seen:
            continue
        seen.add(id(handler))
        offending = [
            (fn, effect)
            for fn, effect in transitive_effects(index, handler)
            if not _whitelisted_handler_effect(effect)]
        if not offending:
            continue
        offending.sort(key=lambda pair: (pair[0].rel_path,
                                         pair[1].line))
        fn, effect = offending[0]
        target = f"{effect.owner}.{effect.name}" if effect.kind == "attr" \
            else effect.name
        extra = f" (+{len(offending) - 1} more)" \
            if len(offending) > 1 else ""
        out.append(diag(
            "EOF403",
            f"signal handler {handler.qual} transitively performs a "
            f"non-whitelisted {effect.op} write to {target} at "
            f"{fn.rel_path}:{effect.line}{extra}; handlers may only "
            f"set constant flags or append to existing containers",
            where=_where(handler, handler.lineno),
            handler=handler.qual, effects=len(offending)))
    return out


# ---------------------------------------------------------------------------
# EOF404 — module globals under threads
# ---------------------------------------------------------------------------

def _check_module_globals(index: CodeIndex,
                          contexts: Dict[FunctionInfo, Set[str]]
                          ) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for fn in index.functions:
        if not _is_threaded(contexts, fn):
            continue
        for effect in fn.effects:
            if effect.kind != "global":
                continue
            if effect.op == "assign" and effect.const:
                continue        # GIL-atomic flag store
            if _module_lock_held(effect.locks):
                continue
            ctx = "/".join(sorted(
                c for c in contexts.get(fn, ())
                if c in (CTX_WORKER, CTX_SIGNAL)))
            out.append(diag(
                "EOF404",
                f"module global {effect.name!r} is mutated "
                f"({effect.op}) by {fn.qual}, which runs in {ctx} "
                f"context, without a module lock",
                where=_where(fn, effect.line),
                function=fn.qual, name=effect.name))
    return out


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def analyze_concurrency(paths: Optional[Sequence[str]] = None,
                        suppressions: Optional[SuppressionIndex] = None,
                        report_unused: bool = True) -> AnalysisReport:
    """Run the EOF4xx rules over the sources under ``paths``.

    ``suppressions`` may be a pre-built shared index (the caller then
    owns EOF407 reporting); by default the pass scans its own files for
    ``# eof: allow[...]`` comments and, with ``report_unused``, flags
    stale EOF4xx allows.
    """
    index = build_index(paths)
    contexts = propagate_contexts(index)
    entry = entry_locks(index)

    report = AnalysisReport(target="concurrency")
    diagnostics: List[Diagnostic] = []
    diagnostics.extend(_check_guarded_writes(index, contexts, entry))
    lock_diags, lock_edges = _check_lock_order(index)
    diagnostics.extend(lock_diags)
    diagnostics.extend(_check_signal_handlers(index))
    diagnostics.extend(_check_module_globals(index, contexts))

    own_index = suppressions is None
    if own_index:
        suppressions = scan_suppressions(index.files)
    diagnostics = suppressions.filter(diagnostics)
    diagnostics.sort(key=lambda d: (d.where, d.code, d.message))
    report.extend(diagnostics)
    if own_index and report_unused:
        report.extend(suppressions.unused_diagnostics(("EOF4",)))

    guarded = sum(1 for cls in index.classes.values() if cls.guarded_by)
    report.summary = {
        "conc.files": len(index.files),
        "conc.functions": len(index.functions),
        "conc.classes_guarded": guarded,
        "conc.worker_functions": sum(
            1 for ctx in contexts.values() if CTX_WORKER in ctx),
        "conc.signal_handlers": len({id(h) for h in index.signal_roots}),
        "conc.barrier_functions": sum(
            1 for ctx in contexts.values() if CTX_BARRIER in ctx),
        "conc.lock_edges": lock_edges,
        "conc.diagnostics": len(report.diagnostics),
    }
    return report


def default_concurrency_paths() -> List[str]:
    """The tree the CI strict gate scans: ``src/repro``."""
    from repro.analysis.lint import default_lint_root
    return [os.path.abspath(default_lint_root())]
