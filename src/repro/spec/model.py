"""Typed AST of parsed API specifications.

This is the internal representation the paper describes: "EOF converts
Syzlang into an internal abstract syntax tree that encodes API name,
typed arguments, and constraints to facilitate input generation" (§4.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union


@dataclass(frozen=True)
class ResourceDef:
    """``resource name[int32]`` — a handle type produced/consumed by calls."""

    name: str
    underlying: str = "int32"


@dataclass(frozen=True)
class FlagsDef:
    """``flags name = A:1, B:2`` — named bit values."""

    name: str
    values: Tuple[Tuple[str, int], ...]

    def all_bits(self) -> int:
        mask = 0
        for _, bit in self.values:
            mask |= bit
        return mask


@dataclass(frozen=True)
class IntType:
    """``intN[lo:hi]``."""

    bits: int = 32
    lo: int = 0
    hi: int = 0xFFFFFFFF


@dataclass(frozen=True)
class FlagsRef:
    """A reference to a :class:`FlagsDef` by name."""

    name: str


@dataclass(frozen=True)
class ResourceRef:
    """An argument consuming a resource handle."""

    name: str


@dataclass(frozen=True)
class StringType:
    """``string[maxlen]`` or ``string["a", "b", maxlen]``."""

    maxlen: int
    candidates: Tuple[str, ...] = ()


@dataclass(frozen=True)
class BufferType:
    """``buffer[in, maxlen]`` or ``buffer[in, maxlen, format]``."""

    maxlen: int
    fmt: str = ""


@dataclass(frozen=True)
class ConstType:
    """``const[value]``."""

    value: int


TypeRef = Union[IntType, FlagsRef, ResourceRef, StringType, BufferType,
                ConstType]


@dataclass(frozen=True)
class Param:
    """One typed parameter."""

    name: str
    type: TypeRef


@dataclass(frozen=True)
class CallDef:
    """One API call description."""

    name: str
    params: Tuple[Param, ...] = ()
    ret: Optional[str] = None      # resource produced
    pseudo: bool = False           # syz_* pseudo syscall

    def consumes(self) -> List[str]:
        """Resource types this call's arguments require."""
        return [p.type.name for p in self.params
                if isinstance(p.type, ResourceRef)]


@dataclass(frozen=True)
class SpecSet:
    """A full specification: resources, flags, and ordered call defs.

    Call order is significant — it must match the target kernel's API
    dispatch table so ``api_id`` values line up on the wire.

    The dataclass is frozen (spec nodes are shared across generator,
    mutator and analysis passes); the parser still *fills* the container
    fields in place, and the ``without_pseudo``/``restricted_to`` views
    return fresh copies instead of rebinding attributes.
    """

    os_name: str = ""
    resources: Dict[str, ResourceDef] = field(default_factory=dict)
    flags: Dict[str, FlagsDef] = field(default_factory=dict)
    calls: List[CallDef] = field(default_factory=list)
    # Indices the generator must not emit (see without_pseudo /
    # restricted_to).
    disabled: frozenset = frozenset()

    def call_index(self, name: str) -> int:
        """api_id of a call."""
        for i, call in enumerate(self.calls):
            if call.name == name:
                return i
        raise KeyError(name)

    def producers_of(self, resource: str) -> List[int]:
        """Indices of calls producing ``resource``."""
        return [i for i, call in enumerate(self.calls)
                if call.ret == resource]

    def without_pseudo(self) -> "SpecSet":
        """A copy whose pseudo syscalls are dropped from *generation*.

        The calls list keeps its length (api_ids must stay aligned); the
        pseudo entries are replaced by None placeholders the generator
        skips.  Used to model baseline fuzzers whose specs lack the
        pseudo-function layer (e.g. Tardis, §5.1).
        """
        return SpecSet(
            os_name=self.os_name, resources=dict(self.resources),
            flags=dict(self.flags), calls=list(self.calls),
            disabled=frozenset(i for i, c in enumerate(self.calls)
                               if c.pseudo))

    def enabled_indices(self) -> List[int]:
        """api_ids the generator may emit."""
        return [i for i in range(len(self.calls)) if i not in self.disabled]

    def restricted_to(self, names) -> "SpecSet":
        """A copy whose generation is confined to the named calls.

        Used for the Table 4 setup, where EOF "is limited to testing the
        HTTP server and JSON API".  api_ids stay aligned.
        """
        allowed = set(names)
        return SpecSet(
            os_name=self.os_name, resources=dict(self.resources),
            flags=dict(self.flags), calls=list(self.calls),
            disabled=frozenset(i for i, c in enumerate(self.calls)
                               if c.name not in allowed)
            | frozenset(self.disabled))
