"""Parser for the Syzlang subset.

Grammar (one declaration per line, ``#`` comments)::

    resource NAME[int32]
    flags NAME = IDENT:INT, IDENT:INT, ...
    CALLNAME(param type, param type, ...) [RESOURCE] [(pseudo)]

Parameter types::

    int8[lo:hi] | int16[lo:hi] | int32[lo:hi] | int64[lo:hi]
    flags[NAME]
    string[maxlen] | string["lit", "lit", maxlen]
    buffer[in, maxlen]
    const[value]
    RESOURCE            (a previously declared resource name)

This is the "parsing" half of the paper's post-validation gate: text from
the spec synthesiser that does not parse is rejected before it ever
reaches the fuzzer.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.errors import SpecParseError
from repro.spec.model import (
    BufferType,
    CallDef,
    ConstType,
    FlagsDef,
    FlagsRef,
    IntType,
    Param,
    ResourceDef,
    ResourceRef,
    SpecSet,
    StringType,
    TypeRef,
)

_IDENT = r"[A-Za-z_][A-Za-z0-9_]*"
_RES_RE = re.compile(rf"^resource\s+({_IDENT})\s*\[\s*(int8|int16|int32|int64)\s*\]$")
_FLAGS_RE = re.compile(rf"^flags\s+({_IDENT})\s*=\s*(.+)$")
_CALL_RE = re.compile(rf"^({_IDENT})\s*\((.*)\)\s*({_IDENT})?$")
_INT_TYPE_RE = re.compile(r"^int(8|16|32|64)\[\s*(-?\d+)\s*:\s*(-?\d+)\s*\]$")


def _split_top_level(text: str, sep: str = ",") -> List[str]:
    """Split on ``sep`` outside brackets/quotes."""
    parts: List[str] = []
    depth = 0
    in_str = False
    current = []
    for char in text:
        if in_str:
            current.append(char)
            if char == '"':
                in_str = False
            continue
        if char == '"':
            in_str = True
            current.append(char)
        elif char == "[":
            depth += 1
            current.append(char)
        elif char == "]":
            depth -= 1
            current.append(char)
        elif char == sep and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _parse_type(text: str, spec: SpecSet, line_no: int) -> TypeRef:
    text = text.strip()
    match = _INT_TYPE_RE.match(text)
    if match:
        bits = int(match.group(1))
        lo, hi = int(match.group(2)), int(match.group(3))
        if lo > hi:
            raise SpecParseError(f"empty int range [{lo}:{hi}]", line_no)
        return IntType(bits=bits, lo=lo, hi=hi)
    if text.startswith("flags[") and text.endswith("]"):
        name = text[len("flags["):-1].strip()
        if not re.fullmatch(_IDENT, name):
            raise SpecParseError(f"bad flags reference {text!r}", line_no)
        return FlagsRef(name)
    if text.startswith("string[") and text.endswith("]"):
        inner = _split_top_level(text[len("string["):-1])
        if not inner:
            raise SpecParseError("string[] needs a max length", line_no)
        candidates: List[str] = []
        for piece in inner[:-1]:
            if not (piece.startswith('"') and piece.endswith('"')):
                raise SpecParseError(f"bad string literal {piece!r}", line_no)
            candidates.append(piece[1:-1])
        try:
            maxlen = int(inner[-1], 0)
        except ValueError:
            raise SpecParseError(f"bad string maxlen {inner[-1]!r}",
                                 line_no) from None
        if maxlen <= 0:
            raise SpecParseError("string maxlen must be positive", line_no)
        return StringType(maxlen=maxlen, candidates=tuple(candidates))
    if text.startswith("buffer[") and text.endswith("]"):
        inner = _split_top_level(text[len("buffer["):-1])
        if len(inner) not in (2, 3) or inner[0] != "in":
            raise SpecParseError(f"bad buffer type {text!r}", line_no)
        try:
            maxlen = int(inner[1], 0)
        except ValueError:
            raise SpecParseError(f"bad buffer maxlen {inner[1]!r}",
                                 line_no) from None
        fmt = inner[2] if len(inner) == 3 else ""
        if fmt and not re.fullmatch(_IDENT, fmt):
            raise SpecParseError(f"bad buffer format {fmt!r}", line_no)
        return BufferType(maxlen=maxlen, fmt=fmt)
    if text.startswith("const[") and text.endswith("]"):
        try:
            value = int(text[len("const["):-1], 0)
        except ValueError:
            raise SpecParseError(f"bad const {text!r}", line_no) from None
        return ConstType(value=value)
    if re.fullmatch(_IDENT, text):
        if text not in spec.resources:
            raise SpecParseError(f"unknown resource type {text!r}", line_no)
        return ResourceRef(text)
    raise SpecParseError(f"unparseable type {text!r}", line_no)


def parse_spec(text: str, os_name: str = "") -> SpecSet:
    """Parse Syzlang text into a :class:`SpecSet`.

    Raises :class:`SpecParseError` on the first malformed declaration.
    """
    spec = SpecSet(os_name=os_name)
    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue

        match = _RES_RE.match(line)
        if match:
            name, underlying = match.groups()
            if name in spec.resources:
                raise SpecParseError(f"duplicate resource {name!r}", line_no)
            spec.resources[name] = ResourceDef(name=name,
                                               underlying=underlying)
            continue

        match = _FLAGS_RE.match(line)
        if match:
            name, body = match.groups()
            if name in spec.flags:
                raise SpecParseError(f"duplicate flags {name!r}", line_no)
            values: List[Tuple[str, int]] = []
            for piece in _split_top_level(body):
                if ":" not in piece:
                    raise SpecParseError(f"flag {piece!r} missing value",
                                         line_no)
                flag_name, _, flag_value = piece.partition(":")
                flag_name = flag_name.strip()
                if not re.fullmatch(_IDENT, flag_name):
                    raise SpecParseError(f"bad flag name {flag_name!r}",
                                         line_no)
                try:
                    values.append((flag_name, int(flag_value.strip(), 0)))
                except ValueError:
                    raise SpecParseError(
                        f"bad flag value {flag_value!r}", line_no) from None
            if not values:
                raise SpecParseError("flags need at least one value", line_no)
            spec.flags[name] = FlagsDef(name=name, values=tuple(values))
            continue

        pseudo = None
        if line.endswith("(pseudo)"):
            pseudo = "(pseudo)"
            line = line[:-len("(pseudo)")].strip()
        match = _CALL_RE.match(line)
        if match:
            name, params_text, ret = match.groups()
            params: List[Param] = []
            if params_text.strip():
                for piece in _split_top_level(params_text):
                    tokens = piece.split(None, 1)
                    if len(tokens) != 2:
                        raise SpecParseError(
                            f"parameter {piece!r} needs 'name type'", line_no)
                    param_name, type_text = tokens
                    if not re.fullmatch(_IDENT, param_name):
                        raise SpecParseError(
                            f"bad parameter name {param_name!r}", line_no)
                    params.append(Param(name=param_name,
                                        type=_parse_type(type_text, spec,
                                                         line_no)))
            if ret is not None and ret not in spec.resources:
                raise SpecParseError(f"unknown return resource {ret!r}",
                                     line_no)
            if any(call.name == name for call in spec.calls):
                raise SpecParseError(f"duplicate call {name!r}", line_no)
            spec.calls.append(CallDef(name=name, params=tuple(params),
                                      ret=ret, pseudo=pseudo is not None))
            continue

        raise SpecParseError(f"unrecognised declaration: {line!r}", line_no)

    # Referential integrity for flags (resources were checked inline).
    for call in spec.calls:
        for param in call.params:
            if isinstance(param.type, FlagsRef) and \
                    param.type.name not in spec.flags:
                raise SpecParseError(
                    f"call {call.name!r} references unknown flags "
                    f"{param.type.name!r}")
    return spec
