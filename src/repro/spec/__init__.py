"""API specifications (Syzlang subset), §4.5.

The pipeline mirrors the paper's: a synthesiser (:mod:`llmgen`, the
stand-in for GPT-4o prompted with headers/docs) emits Syzlang text from
each OS's machine-readable API registry; the text is then *post-validated*
by parsing (:mod:`parser`) and type checking (:mod:`validate`), and only
validated specifications are admitted to the fuzzer's corpus.
"""

from repro.spec.model import (
    BufferType,
    CallDef,
    ConstType,
    FlagsDef,
    FlagsRef,
    IntType,
    Param,
    ResourceDef,
    ResourceRef,
    SpecSet,
    StringType,
)
from repro.spec.parser import parse_spec
from repro.spec.llmgen import synthesize_spec_text, generate_validated_specs
from repro.spec.validate import validate_against_api

__all__ = [
    "BufferType",
    "CallDef",
    "ConstType",
    "FlagsDef",
    "FlagsRef",
    "IntType",
    "Param",
    "ResourceDef",
    "ResourceRef",
    "SpecSet",
    "StringType",
    "parse_spec",
    "synthesize_spec_text",
    "generate_validated_specs",
    "validate_against_api",
]
