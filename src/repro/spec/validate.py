"""Type checking of parsed specifications against the built API table.

The second half of the paper's post-validation gate: a parsed SpecSet is
only admitted if every call lines up with the target's actual dispatch
table — same order (api_ids ride the wire), same arity, and argument
types compatible with what the kernel implementation declares.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import SpecTypeError
from repro.oses.common.api import ApiDef
from repro.spec.model import (
    BufferType,
    ConstType,
    FlagsRef,
    IntType,
    ResourceRef,
    SpecSet,
    StringType,
)

_KIND_TO_NODE = {
    "int": IntType,
    "flags": FlagsRef,
    "buf": BufferType,
    "str": StringType,
    "res": ResourceRef,
    "const": ConstType,
}


def validate_against_api(spec: SpecSet, api_defs: Sequence[ApiDef]) -> None:
    """Raise :class:`SpecTypeError` on the first mismatch."""
    if len(spec.calls) != len(api_defs):
        raise SpecTypeError(
            f"spec has {len(spec.calls)} calls, target exposes "
            f"{len(api_defs)}")
    for index, (call, api) in enumerate(zip(spec.calls, api_defs)):
        where = f"call #{index} ({call.name})"
        if call.name != api.name:
            raise SpecTypeError(
                f"{where}: order mismatch, target has {api.name!r} here")
        if len(call.params) != len(api.args):
            raise SpecTypeError(
                f"{where}: arity {len(call.params)} != {len(api.args)}")
        if call.pseudo != api.pseudo:
            raise SpecTypeError(f"{where}: pseudo attribute mismatch")
        if call.ret != api.ret:
            raise SpecTypeError(
                f"{where}: return resource {call.ret!r} != {api.ret!r}")
        for param, arg in zip(call.params, api.args):
            expected = _KIND_TO_NODE[arg.kind]
            if not isinstance(param.type, expected):
                raise SpecTypeError(
                    f"{where}: param {param.name!r} is "
                    f"{type(param.type).__name__}, target wants {arg.kind}")
            if isinstance(param.type, IntType):
                if param.type.lo > param.type.hi:
                    raise SpecTypeError(
                        f"{where}: param {param.name!r} has an empty range")
            if isinstance(param.type, ResourceRef) and \
                    param.type.name != arg.res:
                raise SpecTypeError(
                    f"{where}: param {param.name!r} consumes "
                    f"{param.type.name!r}, target wants {arg.res!r}")
            if isinstance(param.type, BufferType):
                if param.type.maxlen > 1024:
                    raise SpecTypeError(
                        f"{where}: buffer {param.name!r} exceeds the "
                        f"wire limit")
                if param.type.fmt != arg.fmt:
                    raise SpecTypeError(
                        f"{where}: buffer {param.name!r} format "
                        f"{param.type.fmt!r} != {arg.fmt!r}")


def check_resource_reachability(spec: SpecSet) -> List[str]:
    """Sanity report: resources that are consumed but never produced.

    Not a hard error (a spec may intentionally model externally-created
    handles), but the generator cannot satisfy such parameters, so the
    report is surfaced in logs and tests.
    """
    produced = {call.ret for call in spec.calls if call.ret}
    orphans = []
    for call in spec.calls:
        for need in call.consumes():
            if need not in produced:
                orphans.append(f"{call.name} needs unproduced resource "
                               f"{need!r}")
    return orphans
