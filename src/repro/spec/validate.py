"""Type checking of parsed specifications against the built API table.

The second half of the paper's post-validation gate: a parsed SpecSet is
only admitted if every call lines up with the target's actual dispatch
table — same order (api_ids ride the wire), same arity, and argument
types compatible with what the kernel implementation declares.

Every mismatch is collected as a :class:`~repro.analysis.diagnostics
.Diagnostic` (stable ``EOF11x`` codes) and raised as *one*
:class:`SpecTypeError` carrying the full list, so a defective spec is
reported completely instead of one defect per round trip.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.analysis.diagnostics import Diagnostic, SEV_ERROR, diag
from repro.errors import SpecTypeError
from repro.oses.common.api import ApiDef
from repro.spec.model import (
    BufferType,
    ConstType,
    FlagsRef,
    IntType,
    ResourceRef,
    SpecSet,
    StringType,
)

_KIND_TO_NODE = {
    "int": IntType,
    "flags": FlagsRef,
    "buf": BufferType,
    "str": StringType,
    "res": ResourceRef,
    "const": ConstType,
}


def collect_api_mismatches(spec: SpecSet,
                           api_defs: Sequence[ApiDef]) -> List[Diagnostic]:
    """Every way ``spec`` disagrees with the target's dispatch table."""
    diagnostics: List[Diagnostic] = []

    def mismatch(code: str, where: str, message: str, **data) -> None:
        diagnostics.append(diag(code, f"{where}: {message}", where=where,
                                severity=SEV_ERROR, **data))

    if len(spec.calls) != len(api_defs):
        mismatch("EOF110", "spec",
                 f"spec has {len(spec.calls)} calls, target exposes "
                 f"{len(api_defs)}",
                 spec_calls=len(spec.calls), api_calls=len(api_defs))
    for index, (call, api) in enumerate(zip(spec.calls, api_defs)):
        where = f"call #{index} ({call.name})"
        if call.name != api.name:
            mismatch("EOF111", where,
                     f"order mismatch, target has {api.name!r} here")
            # Everything downstream would be noise from the misalignment.
            continue
        if len(call.params) != len(api.args):
            mismatch("EOF112", where,
                     f"arity {len(call.params)} != {len(api.args)}")
        if call.pseudo != api.pseudo:
            mismatch("EOF113", where, "pseudo attribute mismatch")
        if call.ret != api.ret:
            mismatch("EOF114", where,
                     f"return resource {call.ret!r} != {api.ret!r}")
        for param, arg in zip(call.params, api.args):
            expected = _KIND_TO_NODE[arg.kind]
            if not isinstance(param.type, expected):
                mismatch("EOF115", where,
                         f"param {param.name!r} is "
                         f"{type(param.type).__name__}, target wants "
                         f"{arg.kind}", param=param.name)
                continue
            if isinstance(param.type, IntType) and \
                    param.type.lo > param.type.hi:
                mismatch("EOF115", where,
                         f"param {param.name!r} has an empty range",
                         param=param.name)
            if isinstance(param.type, ResourceRef) and \
                    param.type.name != arg.res:
                mismatch("EOF115", where,
                         f"param {param.name!r} consumes "
                         f"{param.type.name!r}, target wants {arg.res!r}",
                         param=param.name)
            if isinstance(param.type, BufferType):
                if param.type.maxlen > 1024:
                    mismatch("EOF115", where,
                             f"buffer {param.name!r} exceeds the wire "
                             f"limit", param=param.name)
                if param.type.fmt != arg.fmt:
                    mismatch("EOF115", where,
                             f"buffer {param.name!r} format "
                             f"{param.type.fmt!r} != {arg.fmt!r}",
                             param=param.name)
    return diagnostics


def validate_against_api(spec: SpecSet, api_defs: Sequence[ApiDef]) -> None:
    """Raise one :class:`SpecTypeError` carrying *all* mismatches."""
    diagnostics = collect_api_mismatches(spec, api_defs)
    if diagnostics:
        head = diagnostics[0].message
        suffix = (f" (+{len(diagnostics) - 1} more)"
                  if len(diagnostics) > 1 else "")
        raise SpecTypeError(f"{head}{suffix}", diagnostics=diagnostics)


def check_resource_reachability(spec: SpecSet) -> List[str]:
    """Sanity report: resources that are consumed but never produced.

    Not a hard error (a spec may intentionally model externally-created
    handles), but the generator cannot satisfy such parameters, so the
    report is surfaced in logs and tests.
    """
    produced = {call.ret for call in spec.calls if call.ret}
    orphans = []
    for call in spec.calls:
        for need in call.consumes():
            if need not in produced:
                orphans.append(f"{call.name} needs unproduced resource "
                               f"{need!r}")
    return orphans
