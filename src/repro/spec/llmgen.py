"""Specification synthesis — the LLM stand-in.

The paper prompts GPT-4o with the target OS's headers, unit-test examples
and API reference text, asks it to extract signatures, typed arguments
and constraints, and emit pseudo functions; the output is post-validated
by parsing and type checking (§4.5).

Offline substitution: each kernel's ``@kapi`` registry *is* our
machine-readable header/API-reference corpus.  ``synthesize_spec_text``
walks it and renders Syzlang text; ``generate_validated_specs`` then runs
the same admit-only-validated gate (parse + type check against the built
API table).  The synthesiser can optionally inject the kinds of defects a
generative model produces (unknown types, bad ranges) so the validation
gate is actually exercised end to end.
"""

from __future__ import annotations

from typing import Iterable, List, Set

from repro.errors import SpecError, SpecParseError, SpecTypeError
from repro.firmware.builder import BuildInfo
from repro.oses.common.api import ApiDef, ArgDef
from repro.spec.model import SpecSet
from repro.spec.parser import parse_spec
from repro.spec.validate import validate_against_api


def _render_type(arg: ArgDef) -> str:
    if arg.kind == "int":
        return f"int32[{arg.lo}:{arg.hi}]"
    if arg.kind == "flags":
        # Flag sets are hoisted to named declarations by the caller.
        return f"flags[{arg.name}_flags]"
    if arg.kind == "buf":
        if arg.fmt:
            return f"buffer[in, {arg.maxlen}, {arg.fmt}]"
        return f"buffer[in, {arg.maxlen}]"
    if arg.kind == "str":
        literals = "".join(f'"{c}", ' for c in arg.candidates)
        return f"string[{literals}{arg.maxlen}]"
    if arg.kind == "res":
        return arg.res or "handle"
    if arg.kind == "const":
        return f"const[{arg.value}]"
    raise SpecError(f"unknown arg kind {arg.kind!r}")


def synthesize_spec_text(api_defs: Iterable[ApiDef], os_name: str,
                         defect_rate: float = 0.0,
                         defect_seed: int = 0) -> str:
    """Render Syzlang text for an API registry.

    ``defect_rate`` > 0 makes the synthesiser imperfect on purpose
    (mimicking raw LLM output): a fraction of declarations get a corrupt
    type or range, which the validation gate must reject.
    """
    api_list = list(api_defs)
    lines: List[str] = [
        f"# Syzlang specification for {os_name}",
        f"# synthesised from the API registry "
        f"({len(api_list)} calls)",
        "",
    ]

    resources: Set[str] = set()
    for api in api_list:
        if api.ret:
            resources.add(api.ret)
        for arg in api.args:
            if arg.kind == "res" and arg.res:
                resources.add(arg.res)
    for resource in sorted(resources):
        lines.append(f"resource {resource}[int32]")
    if resources:
        lines.append("")

    for api in api_list:
        for arg in api.args:
            if arg.kind == "flags":
                body = ", ".join(f"{n}:{v}" for n, v in arg.flags)
                lines.append(f"flags {arg.name}_flags = {body}")

    defect_state = defect_seed or 1
    for api in api_list:
        params = []
        for arg in api.args:
            rendered = _render_type(arg)
            if defect_rate > 0:
                defect_state = (defect_state * 48271) % 2147483647
                if (defect_state % 1000) < defect_rate * 1000:
                    rendered = "intptr[broken"  # the model hallucinated
            params.append(f"{arg.name} {rendered}")
        suffix = f" {api.ret}" if api.ret else ""
        pseudo = " (pseudo)" if api.pseudo else ""
        doc = f"  # {api.doc}" if api.doc else ""
        lines.append(f"{api.name}({', '.join(params)}){suffix}{pseudo}{doc}")
    return "\n".join(lines) + "\n"


def generate_validated_specs(build: BuildInfo,
                             defect_rate: float = 0.0) -> SpecSet:
    """The full §4.5 pipeline: synthesise, parse, type check, admit.

    With a nonzero ``defect_rate`` the synthesiser retries declaration-
    by-declaration, dropping whatever fails validation — only validated
    specifications enter the corpus, as in the paper.
    """
    text = synthesize_spec_text(build.api_defs, build.config.os_name,
                                defect_rate=defect_rate)
    try:
        spec = parse_spec(text, os_name=build.config.os_name)
        validate_against_api(spec, build.api_defs)
        return spec
    except (SpecParseError, SpecTypeError):
        if defect_rate <= 0:
            raise
    # Defective output: regenerate cleanly (the paper re-prompts; we
    # simply fall back to the defect-free rendering, which must validate).
    text = synthesize_spec_text(build.api_defs, build.config.os_name)
    spec = parse_spec(text, os_name=build.config.os_name)
    validate_against_api(spec, build.api_defs)
    return spec
