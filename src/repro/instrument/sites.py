"""Coverage-site allocation.

The firmware builder walks every instrumentable function and assigns it a
contiguous block of site IDs: site 0 of the block fires on function entry,
the remaining sub-sites fire at branch points inside the function body.
The resulting :class:`SiteTable` is part of the build artifacts, so the
host can attribute edges back to symbols and filter instrumentation by
module (Table 4 confines instrumentation to the HTTP and JSON modules).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional


class ClampCounter:
    """Process-wide tally of out-of-range sub-site clamps.

    A clamp aliases two distinct branches onto one site id, so silent
    clamping quietly corrupts coverage attribution.  The tally feeds the
    ``sites.clamped`` metric and the static analyzer's ``EOF203``
    diagnostic, making every occurrence visible.

    The module-level :data:`CLAMPS` instance is shared by every farm
    worker thread (each in-thread engine calls :meth:`SiteInfo.site`),
    so the tally is locked — ``count += 1`` is a read-modify-write.
    """

    GUARDED_BY = {"count": "_lock", "by_symbol": "_lock"}

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.count = 0
        self.by_symbol: Dict[str, int] = {}

    def record(self, symbol: str) -> None:
        with self._lock:
            self.count += 1
            self.by_symbol[symbol] = self.by_symbol.get(symbol, 0) + 1

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.by_symbol.clear()


#: Shared tally; :meth:`SiteInfo.site` records into it on every clamp.
CLAMPS = ClampCounter()


@dataclass(frozen=True)
class SiteInfo:
    """One instrumented function's block of coverage sites."""

    symbol: str
    module: str
    base: int          # first site id of the block
    count: int         # block length (entry site + sub-sites)

    def site(self, sub: int) -> int:
        """Absolute site id of sub-site ``sub`` (0 = function entry)."""
        if not 0 <= sub < self.count:
            # Clamp rather than fault: an out-of-range sub-site is a
            # build-model mismatch, not a target bug — but never a
            # silent one: the clamp is tallied for the ``sites.clamped``
            # metric and surfaces as an EOF203 diagnostic.
            CLAMPS.record(self.symbol)
            sub = sub % self.count
        return self.base + sub


class SiteTable:
    """All coverage sites of one firmware image."""

    def __init__(self) -> None:
        self._by_symbol: Dict[str, SiteInfo] = {}
        self._total = 0

    @property
    def total_sites(self) -> int:
        """Number of allocated site ids."""
        return self._total

    def add(self, info: SiteInfo) -> None:
        """Register a function's site block."""
        if info.symbol in self._by_symbol:
            raise ValueError(f"duplicate site block for {info.symbol!r}")
        self._by_symbol[info.symbol] = info
        self._total = max(self._total, info.base + info.count)

    def for_symbol(self, symbol: str) -> Optional[SiteInfo]:
        """Site block of ``symbol``, or None if not instrumented."""
        return self._by_symbol.get(symbol)

    def symbol_of_site(self, site: int) -> Optional[str]:
        """Reverse lookup: which function owns ``site``?"""
        for info in self._by_symbol.values():
            if info.base <= site < info.base + info.count:
                return info.symbol
        return None

    def modules(self) -> List[str]:
        """Sorted list of modules that have instrumented functions."""
        return sorted({info.module for info in self._by_symbol.values()})

    def blocks(self) -> Iterator[SiteInfo]:
        """Iterate site blocks in allocation order."""
        return iter(sorted(self._by_symbol.values(), key=lambda i: i.base))

    def __len__(self) -> int:
        return len(self._by_symbol)


class SiteAllocator:
    """Hands out consecutive site-id blocks during a build."""

    def __init__(self) -> None:
        self.table = SiteTable()
        self._next = 1  # site 0 is reserved as the "no previous site" sentinel

    def allocate(self, symbol: str, module: str, count: int) -> SiteInfo:
        """Allocate ``count`` sites for ``symbol`` and record them."""
        if count < 1:
            raise ValueError("every function needs at least its entry site")
        info = SiteInfo(symbol=symbol, module=module, base=self._next,
                        count=count)
        self._next += count
        self.table.add(info)
        return info
