"""SanCov-style coverage instrumentation (§4.5.1).

At firmware build time every kernel/component function is assigned a block
of *coverage sites* (entry site + sub-sites at interesting branch points).
At run time the instrumented kernel calls the tracer at each site; the
tracer hashes (previous site, current site) into an edge record and
appends it to a coverage buffer living in target RAM, where the host
drains it over the debug link.  When the buffer fills, the target traps at
``_kcmp_buf_full`` so the host can drain and clear it mid-run.
"""

from repro.instrument.sites import SiteAllocator, SiteInfo, SiteTable
from repro.instrument.sancov import (
    SancovTracer,
    COV_HEADER_BYTES,
    COV_RECORD_BYTES,
    decode_coverage_buffer,
    edge_id,
)

__all__ = [
    "SiteAllocator",
    "SiteInfo",
    "SiteTable",
    "SancovTracer",
    "COV_HEADER_BYTES",
    "COV_RECORD_BYTES",
    "decode_coverage_buffer",
    "edge_id",
]
