"""The on-target coverage tracer and its buffer protocol.

Wire format of the coverage buffer (a byte range in target RAM)::

    u32 count          number of edge records that follow
    u32 edge[count]    (prev_site << 16) | cur_site

The tracer stops appending once the buffer is full and raises a *pending
trap* flag; the execution agent notices it at the next safe point and
halts at ``_kcmp_buf_full`` so the host can drain and clear the buffer
(§4.5.1, Figure 5).
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.hw.memory import Ram
from repro.instrument.sites import SiteTable

COV_HEADER_BYTES = 4
COV_RECORD_BYTES = 4

# Cycle cost of one __sanitizer_cov_trace callback; this is the knob that
# produces the paper's §5.5.2 execution overhead.
TRACE_CYCLE_COST = 18


def edge_id(prev_site: int, cur_site: int) -> int:
    """Pack an edge into one 32-bit record (sites are < 2**16)."""
    return ((prev_site & 0xFFFF) << 16) | (cur_site & 0xFFFF)


def decode_coverage_buffer(raw: bytes, obs=None) -> List[int]:
    """Host-side: decode a drained coverage buffer into edge ids.

    A header ``count`` larger than the drained bytes can hold means the
    drain lost records (short read, desynced link).  The decode still
    clamps — partial coverage beats none — but the loss is never silent:
    with an enabled ``obs`` it increments the ``cov.truncated`` counter
    and emits a ``cov.truncated`` event carrying how much went missing.
    """
    if len(raw) < COV_HEADER_BYTES:
        return []
    count = int.from_bytes(raw[:4], "little")
    max_records = (len(raw) - COV_HEADER_BYTES) // COV_RECORD_BYTES
    if count > max_records:
        if obs is not None and obs.enabled:
            obs.counter("cov.truncated").inc(count - max_records)
            obs.emit("cov.truncated", lost_records=count - max_records,
                     header_count=count, capacity=max_records)
        count = max_records
    edges = []
    for i in range(count):
        off = COV_HEADER_BYTES + i * COV_RECORD_BYTES
        edges.append(int.from_bytes(raw[off:off + 4], "little"))
    return edges


class SancovTracer:
    """Target-side edge tracer writing into a RAM-resident buffer.

    ``enabled_modules`` restricts which modules carry instrumentation
    (``None`` = all).  When a module is excluded its functions have *no*
    callbacks at all, so they neither record edges nor update the
    previous-site state nor pay the cycle cost — matching how a real
    build would simply not instrument those translation units.
    """

    def __init__(self, ram: Ram, buf_addr: int, buf_size: int,
                 site_table: SiteTable,
                 enabled_modules: Optional[Set[str]] = None,
                 enabled: bool = True, gen_addr: int = 0):
        if buf_size < COV_HEADER_BYTES + COV_RECORD_BYTES:
            raise ValueError("coverage buffer too small")
        self.ram = ram
        self.buf_addr = buf_addr
        self.buf_size = buf_size
        self.gen_addr = gen_addr
        self.generation = 0
        self.site_table = site_table
        self.enabled_modules = (set(enabled_modules)
                                if enabled_modules is not None else None)
        self.enabled = enabled
        self.capacity = (buf_size - COV_HEADER_BYTES) // COV_RECORD_BYTES
        self.prev_site = 0
        self.trap_pending = False
        self.total_hits = 0       # lifetime callback count (stats)
        self.dropped_hits = 0     # hits lost while the buffer was full
        self._count = 0
        self._last_edge = -1

    def module_enabled(self, module: str) -> bool:
        """Is instrumentation compiled into ``module``?"""
        if not self.enabled:
            return False
        return self.enabled_modules is None or module in self.enabled_modules

    def reset_run_state(self) -> None:
        """Forget the previous site (start of a fresh test case)."""
        self.prev_site = 0
        self._last_edge = -1

    def clear(self) -> None:
        """Zero the buffer header (host does this after draining)."""
        self._count = 0
        self.trap_pending = False
        self._last_edge = -1
        self.ram.write_u32(self.buf_addr, 0)

    def hit(self, site: int) -> int:
        """Record the edge into ``site``; returns cycles consumed."""
        self.total_hits += 1
        edge = edge_id(self.prev_site, site)
        self.prev_site = site
        if edge == self._last_edge:
            # Consecutive identical edges (tight loops) are collapsed on
            # target to keep the buffer useful, as real SanCov guards do.
            return TRACE_CYCLE_COST
        self._last_edge = edge
        if self._count >= self.capacity:
            self.trap_pending = True
            self.dropped_hits += 1
            return TRACE_CYCLE_COST
        off = self.buf_addr + COV_HEADER_BYTES + self._count * COV_RECORD_BYTES
        self.ram.write_u32(off, edge)
        self._count += 1
        self.ram.write_u32(self.buf_addr, self._count)
        if self.gen_addr:
            # Bump the drain generation only when a record actually
            # lands — an unchanged word tells the host the buffer
            # content is exactly what it last drained.
            self.generation = (self.generation + 1) & 0xFFFFFFFF
            self.ram.write_u32(self.gen_addr, self.generation)
        if self._count >= self.capacity:
            self.trap_pending = True
        return TRACE_CYCLE_COST

    @property
    def record_count(self) -> int:
        """Number of records currently buffered."""
        return self._count
