"""Baseline fuzzers the paper compares against (§5.1).

* :mod:`eof_nf`   — EOF without feedback guidance (the ablation).
* :mod:`tardis`   — Syzkaller-derived, QEMU shared-memory transport,
  timeout-only bug detection, no pseudo-call specs.
* :mod:`gdbfuzz`  — byte-buffer inputs into one application entry point,
  coverage from a handful of rotating hardware breakpoints.
* :mod:`shift`    — semihosting-instrumented byte-buffer fuzzing,
  FreeRTOS-only, full coverage at a steep per-exec cost.
* :mod:`gustave`  — AFL-style syscall-image fuzzing of PoKOS on QEMU.

Every baseline reports coverage with the same external meter (the
ground-truth SanCov edge set the instrumented build records), so Table
3/4 numbers are comparable across tools regardless of what feedback each
tool itself can see.
"""

from repro.baselines.eof_nf import make_eof_nf_engine
from repro.baselines.tardis import TardisEngine
from repro.baselines.buffer_base import BufferFuzzerBase
from repro.baselines.gdbfuzz import GdbFuzzEngine
from repro.baselines.shift import ShiftEngine
from repro.baselines.gustave import GustaveEngine

__all__ = [
    "make_eof_nf_engine",
    "TardisEngine",
    "BufferFuzzerBase",
    "GdbFuzzEngine",
    "ShiftEngine",
    "GustaveEngine",
]
