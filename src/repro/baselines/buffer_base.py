"""Shared driver for the byte-buffer baselines (GDBFuzz / SHIFT / Gustave).

These tools are AFL-shaped: the unit of fuzzing is an opaque byte buffer,
mutated by havoc operators and judged interesting by whatever feedback
channel the tool has (rotating hardware breakpoints, semihosted SanCov,
TCG tracing).  Subclasses define how a buffer becomes a test program and
what feedback means; the base class owns the corpus, the debug-link
plumbing, liveness recovery, and the ground-truth coverage meter used
for reporting.
"""

from __future__ import annotations

from typing import List, Optional

from repro.agent.protocol import TestProgram, serialize_program
from repro.ddi.session import DebugSession, open_session
from repro.errors import DebugLinkTimeout
from repro.firmware.builder import BuildInfo
from repro.fuzz.crash import CrashDb, CrashReport, KIND_HANG, KIND_PANIC
from repro.fuzz.engine import FuzzResult
from repro.fuzz.feedback import CoverageMap
from repro.fuzz.restore import StateRestoration
from repro.fuzz.rng import FuzzRng
from repro.fuzz.stats import FuzzStats
from repro.fuzz.watchdog import LivenessWatchdog
from repro.hw.machine import HaltEvent, HaltReason
from repro.instrument.sancov import decode_coverage_buffer

SEED_BUFFERS = (
    b"GET / HTTP/1.1\r\n\r\n",
    b"{}",
    b"[1]",
    b"A" * 16,
    b"\x00" * 8,
)


class BufferFuzzerBase:
    """AFL-style loop over one flashed target."""

    NAME = "buffer-fuzzer"

    def __init__(self, build: BuildInfo, seed: int = 0,
                 budget_cycles: int = 2_000_000,
                 max_iterations: int = 1_000_000,
                 max_buffer: int = 512):
        self.build = build
        self.rng = FuzzRng(seed)
        self.budget_cycles = budget_cycles
        self.max_iterations = max_iterations
        self.max_buffer = max_buffer
        self.stats = FuzzStats()
        self.crash_db = CrashDb()
        # Ground-truth meter: what the instrumented target actually ran.
        self.coverage = CoverageMap()
        self.corpus: List[bytes] = list(SEED_BUFFERS)
        self.session: Optional[DebugSession] = None
        self.watchdog: Optional[LivenessWatchdog] = None
        self.restoration: Optional[StateRestoration] = None

    # How the guest harness frames one fuzz buffer: tools that keep the
    # target alive across inputs effectively deliver input *sequences*,
    # so buffers beyond this size are split into consecutive calls.
    CHUNK = 192

    # -- subclass hooks -----------------------------------------------------

    def make_program(self, data: bytes) -> TestProgram:
        """Turn a raw buffer into a test program."""
        raise NotImplementedError

    def chunk_buffer(self, data: bytes):
        """Split a buffer into per-call chunks (at most 4)."""
        if not data:
            return [b""]
        chunks = [data[i:i + self.CHUNK]
                  for i in range(0, min(len(data), 4 * self.CHUNK),
                                 self.CHUNK)]
        return chunks or [b""]

    def arm_feedback(self) -> None:
        """Install whatever feedback channel the tool uses (after boot)."""

    def feedback_interesting(self, event_bp_hits: List[int],
                             new_truth_edges: int) -> bool:
        """Did this input produce feedback the tool can actually see?"""
        raise NotImplementedError

    def per_exec_overhead_cycles(self, raw_len: int) -> int:
        """Extra target cycles the tool's instrumentation costs per exec."""
        return 0

    # -- driver ------------------------------------------------------------------

    def run(self) -> FuzzResult:
        """Fuzz to the budget."""
        self.session = open_session(self.build)
        board = self.session.board
        if board.boot_failed:
            raise RuntimeError("target never booted")
        self.watchdog = LivenessWatchdog(self.session)
        self.restoration = StateRestoration(self.session)
        self.arm_feedback()
        self.session.consume_boot_chatter()
        iteration = 0
        while (board.machine.cycles < self.budget_cycles
               and iteration < self.max_iterations):
            iteration += 1
            data = self._next_buffer()
            self._execute_buffer(data)
            self.stats.record_point(board.machine.cycles,
                                    self.coverage.edge_count)
        self.stats.record_point(board.machine.cycles,
                                self.coverage.edge_count)
        self.stats.link_transactions = self.session.link.transactions
        self.stats.link_bytes = self.session.link.bytes_moved
        return FuzzResult(name=self.NAME, os_name=self.build.config.os_name,
                          stats=self.stats, coverage=self.coverage,
                          crash_db=self.crash_db,
                          corpus_size=len(self.corpus))

    def _next_buffer(self) -> bytes:
        if self.corpus and self.rng.chance(0.8):
            base = self.rng.pick(self.corpus)
            return self.rng.mutate_bytes(base, self.max_buffer)
        return self.rng.random_bytes(self.max_buffer)

    def _execute_buffer(self, data: bytes) -> None:
        program = self.make_program(data)
        try:
            raw = serialize_program(program)
        except Exception:
            self.stats.rejected_programs += 1
            return
        layout = self.build.ram_layout
        gdb = self.session.gdb
        try:
            gdb.write_u32(layout.input_buf_addr, len(raw))
            gdb.write_memory(layout.input_buf_addr + 4, raw)
            bp_hits, ok = self._drive()
        except DebugLinkTimeout:
            self.stats.link_timeouts += 1
            self._salvage()
            return
        self.session.board.machine.tick(
            self.per_exec_overhead_cycles(len(raw)))
        new_truth = self._drain_truth_coverage()
        self.session.drain_uart()
        if ok:
            self.stats.programs_executed += 1
            self.stats.calls_executed += len(program.calls)
        if self.feedback_interesting(bp_hits, new_truth) and \
                len(data) <= self.max_buffer:
            self.corpus.append(data)

    def _drive(self):
        gdb = self.session.gdb
        bp_hits: List[int] = []
        for _ in range(2):  # read_prog, execute_one
            event = gdb.exec_continue()
            bp_hits.extend(event.bp_hits)
            if self._abnormal(event):
                return bp_hits, False
            if event.symbol == "executor_main":
                self.stats.rejected_programs += 1
                return bp_hits, False
        while True:
            event = gdb.exec_continue()
            bp_hits.extend(event.bp_hits)
            if event.reason == HaltReason.COV_FULL:
                self.stats.cov_full_traps += 1
                self._drain_truth_coverage()
                continue
            if event.symbol == "executor_main" and \
                    event.reason == HaltReason.BREAKPOINT:
                return bp_hits, True
            if self._abnormal(event):
                return bp_hits, False

    def _abnormal(self, event: HaltEvent) -> bool:
        if event.reason == HaltReason.EXCEPTION:
            self._record_crash(KIND_PANIC, event.detail, "exception",
                               [f.symbol for f in event.backtrace])
            self._recover()
            return True
        if event.reason == HaltReason.STALL:
            self.stats.stalls += 1
            self._record_crash(KIND_HANG, event.detail or "target hang",
                               "timeout", [])
            self._salvage()
            return True
        return False

    def _record_crash(self, kind: str, cause: str, monitor: str,
                      backtrace: List[str]) -> None:
        report = CrashReport(os_name=self.build.config.os_name, kind=kind,
                             cause=cause, monitor=monitor,
                             backtrace=backtrace)
        self.stats.crashes_observed += 1
        if self.crash_db.add(report):
            self.stats.unique_crashes += 1

    def _drain_truth_coverage(self) -> int:
        layout = self.build.ram_layout
        gdb = self.session.gdb
        try:
            count = gdb.read_u32(layout.cov_buf_addr)
            capacity = (layout.cov_buf_size - 4) // 4
            raw = gdb.read_memory(layout.cov_buf_addr,
                                  4 + min(count, capacity) * 4)
            gdb.write_u32(layout.cov_buf_addr, 0)
        except DebugLinkTimeout:
            return 0
        return self.coverage.add_edges(
            decode_coverage_buffer(raw, obs=getattr(self, "obs", None)))

    def _recover(self) -> None:
        self.session.reboot()
        self.stats.reboots += 1
        if self.session.board.boot_failed:
            self._salvage()
            return
        self.arm_feedback()
        self.watchdog.reset()
        self.session.drain_uart()

    def _salvage(self) -> None:
        self.restoration.restore()
        self.stats.restorations += 1
        self.arm_feedback()
        self.watchdog.reset()
        self.session.drain_uart()
