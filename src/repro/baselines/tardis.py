"""Tardis (Shen et al., TCAD 2022) model.

Tardis is Syzkaller-derived and coverage-guided, but differs from EOF in
exactly the dimensions the paper calls out (§2.2, §5.4.1):

* **Emulator-bound**: it moves data through QEMU's shared-memory
  mechanism, so it can only run targets that have an emulated board.
  Pointing it at hardware-only parts (STM32H745) raises
  :class:`UnsupportedTargetError` — the Table 1 adaptability limit.
* **Base specs only**: its Syzlang corpus lacks the pseudo-function layer
  (event setting, multi-call sequences), so deep composed behaviours are
  out of its generative reach.
* **Timeout-only detection**: no exception-handler breakpoints, no UART
  log monitor.  Every failure looks like "the VM stopped responding";
  hangs are recorded without cause or backtrace, and assertion bugs that
  merely print-and-hang are indistinguishable from ordinary wedges.
  ("Even if Tardis can generate a test case that triggers such an error,
  it cannot identify the bug.")
"""

from __future__ import annotations

from repro.errors import UnsupportedTargetError
from repro.firmware.builder import BuildInfo, build_firmware
from repro.firmware.layout import BuildConfig
from repro.fuzz.engine import EngineOptions, EofEngine, FuzzResult
from repro.hw.boards import BOARD_CATALOG
from repro.spec.model import SpecSet

SUPPORTED_OSES = ("freertos", "rt-thread", "zephyr", "nuttx")


class TardisEngine:
    """Tardis bound to one (emulatable) target."""

    def __init__(self, build: BuildInfo, spec: SpecSet, seed: int = 0,
                 budget_cycles: int = 2_000_000,
                 max_iterations: int = 1_000_000, obs=None):
        board_spec = build.board_spec
        if not board_spec.has_emulator:
            raise UnsupportedTargetError(
                f"Tardis needs an emulator; no peripheral-accurate QEMU "
                f"model exists for {board_spec.name}")
        if build.config.os_name not in SUPPORTED_OSES:
            raise UnsupportedTargetError(
                f"Tardis has no adaptation for {build.config.os_name!r}")
        options = EngineOptions(
            seed=seed,
            budget_cycles=budget_cycles,
            max_iterations=max_iterations,
            feedback=True,                   # it is coverage-guided
            use_exception_monitor=False,     # timeout-only detection
            use_log_monitor=False,
            record_hangs_as_crashes=True,
            restore_with_reflash=True,       # VM restart == image reload
            name="tardis",
        )
        self.engine = EofEngine(build, spec.without_pseudo(), options,
                                obs=obs)

    def run(self) -> FuzzResult:
        """Fuzz to the budget."""
        return self.engine.run()


def build_for_tardis(os_name: str) -> BuildInfo:
    """Tardis builds targets for the generic QEMU machine."""
    return build_firmware(BuildConfig(os_name=os_name, board="qemu-virt"))


def supports(os_name: str, board: str) -> bool:
    """Table 1 capability predicate."""
    spec = BOARD_CATALOG.get(board)
    return (spec is not None and spec.has_emulator
            and os_name in SUPPORTED_OSES)
