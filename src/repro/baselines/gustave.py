"""Gustave (Duverger & Gantet) model.

Gustave is AFL bolted onto a heavily customised QEMU board: it fuzzes POK
by mutating a raw memory image that the guest interprets as syscall
identifiers and arguments, with coverage from QEMU's TCG.  There is no
type or resource awareness — the buffer bytes *are* the call stream — so
most decoded calls bounce off validation, but full-trace coverage still
guides the corpus (§2.2, Table 3's PoKOS row).
"""

from __future__ import annotations

import struct
from typing import List

from repro.agent.protocol import ArgImm, Call, TestProgram
from repro.baselines.buffer_base import BufferFuzzerBase
from repro.errors import UnsupportedTargetError
from repro.firmware.builder import BuildInfo

SUPPORTED_OSES = ("pokos",)
MAX_DECODED_CALLS = 8
BYTES_PER_CALL = 13  # 1 selector + 3 * u32 args


class GustaveEngine(BufferFuzzerBase):
    """Gustave bound to a PoKOS guest."""

    NAME = "gustave"

    def __init__(self, build: BuildInfo, seed: int = 0,
                 budget_cycles: int = 2_000_000,
                 max_iterations: int = 1_000_000):
        if build.config.os_name not in SUPPORTED_OSES:
            raise UnsupportedTargetError(
                f"Gustave's board model only boots POK; got "
                f"{build.config.os_name!r}")
        if not build.board_spec.has_emulator:
            raise UnsupportedTargetError(
                f"Gustave is QEMU-based; {build.board_spec.name} has no "
                f"emulator")
        super().__init__(build, seed=seed, budget_cycles=budget_cycles,
                         max_iterations=max_iterations,
                         max_buffer=MAX_DECODED_CALLS * BYTES_PER_CALL)
        self.n_apis = len(build.api_order)

    def make_program(self, data: bytes) -> TestProgram:
        """Decode the fuzzed memory image into a raw call stream.

        The guest shim knows the syscall ABI (how many argument slots
        each selector takes) but nothing about types or resources: every
        slot is whatever 32-bit value AFL left in the image.
        """
        calls: List[Call] = []
        offset = 0
        while offset < len(data) and len(calls) < MAX_DECODED_CALLS:
            api_id = data[offset] % max(self.n_apis, 1)
            offset += 1
            arity = len(self.build.api_defs[api_id].args)
            args = []
            for _ in range(arity):
                if offset + 4 <= len(data):
                    (value,) = struct.unpack_from("<I", data, offset)
                    offset += 4
                else:
                    value = 0
                    offset = len(data)
                args.append(ArgImm(value))
            calls.append(Call(api_id=api_id, args=tuple(args)))
        if not calls and data:
            calls.append(Call(api_id=data[0] % max(self.n_apis, 1), args=()))
        return TestProgram(calls=calls)

    def feedback_interesting(self, event_bp_hits: List[int],
                             new_truth_edges: int) -> bool:
        """TCG tracing sees everything the guest executes."""
        return new_truth_edges > 0
