"""EOF-nf: EOF with the feedback guidance removed (§5.1).

Same harness, same specs, same monitors and liveness machinery — but no
coverage-driven corpus: every input is freshly generated, nothing is
saved or mutated, and call selection carries no recency credit.  Coverage
is still *measured* (the paper reports EOF-nf coverage), it just never
guides anything.
"""

from __future__ import annotations

from repro.firmware.builder import BuildInfo
from repro.fuzz.engine import EngineOptions, EofEngine
from repro.spec.model import SpecSet


def make_eof_nf_engine(build: BuildInfo, spec: SpecSet,
                       seed: int = 0,
                       budget_cycles: int = 2_000_000,
                       max_iterations: int = 1_000_000,
                       obs=None) -> EofEngine:
    """Construct the no-feedback ablation engine."""
    options = EngineOptions(
        seed=seed,
        budget_cycles=budget_cycles,
        max_iterations=max_iterations,
        feedback=False,
        name="eof-nf",
    )
    return EofEngine(build, spec, options, obs=obs)
