"""GDBFuzz (Eisele et al., ISSTA 2023) model.

GDBFuzz fuzzes embedded *applications* on real hardware through the debug
port: inputs are opaque byte buffers fed to one entry function, and its
coverage feedback comes from a small set of **rotating hardware
breakpoints** placed on basic blocks the tool has not yet seen (derived
from static disassembly).  The breakpoint budget is whatever the silicon
provides — two comparators on an ESP32 — which is why its coverage view
is sparse and its growth slow (§5.4.2).

Reported coverage uses the same ground-truth edge meter as every other
engine; the breakpoints are only what *GDBFuzz itself* can see.
"""

from __future__ import annotations

from typing import List, Set

from repro.agent.protocol import ArgData, Call, TestProgram
from repro.baselines.buffer_base import BufferFuzzerBase
from repro.errors import UnsupportedTargetError
from repro.firmware.builder import BuildInfo
from repro.hw.boards import BOARD_CATALOG


class GdbFuzzEngine(BufferFuzzerBase):
    """GDBFuzz bound to one application entry point."""

    NAME = "gdbfuzz"

    def __init__(self, build: BuildInfo, entry_api: str, seed: int = 0,
                 budget_cycles: int = 2_000_000,
                 max_iterations: int = 1_000_000):
        super().__init__(build, seed=seed, budget_cycles=budget_cycles,
                         max_iterations=max_iterations)
        if entry_api not in build.api_order:
            raise UnsupportedTargetError(
                f"entry function {entry_api!r} is not linked into the image")
        self.entry_api = entry_api
        self.entry_id = build.api_order.index(entry_api)
        board_spec = BOARD_CATALOG[build.config.board]
        self.bp_budget = board_spec.hw_breakpoints
        # Static-analysis view: every basic block of the modules under
        # test.  Block k of a function sits at (function address + 4k) —
        # what the tool's disassembly pass would report.
        modules = set(build.config.instrument_modules or ()) or None
        self.targets: List[int] = []
        for info in build.site_table.blocks():
            sym = build.symbols.get(info.symbol)
            if sym is None or sym.module == "agent":
                continue
            if modules is not None and sym.module not in modules:
                continue
            for block in range(info.count):
                self.targets.append(sym.address + 4 * block)
        self.covered: Set[int] = set()
        self._armed: List[int] = []
        self.bp_coverage_hits = 0
        self._execs_since_hit = 0
        self.rearm_interval = 40

    # -- buffer -> program ---------------------------------------------------

    def make_program(self, data: bytes) -> TestProgram:
        """One entry-point call per chunk of the fuzzed buffer."""
        return TestProgram(calls=[
            Call(api_id=self.entry_id, args=(ArgData(chunk),))
            for chunk in self.chunk_buffer(data)])

    # -- rotating-breakpoint feedback ---------------------------------------------

    def arm_feedback(self) -> None:
        """Aim the hardware comparators at unseen basic blocks."""
        gdb = self.session.gdb
        for address in self._armed:
            gdb.link.clear_breakpoint(address)
        self._armed = []
        uncovered = [a for a in self.targets if a not in self.covered]
        self.rng.random.shuffle(uncovered)
        for address in uncovered[:self.bp_budget]:
            gdb.link.set_breakpoint(address, "gdbfuzz-cov")
            self._armed.append(address)

    def feedback_interesting(self, event_bp_hits: List[int],
                             new_truth_edges: int) -> bool:
        """Interesting = an armed breakpoint fired (all GDBFuzz sees)."""
        hits = [a for a in event_bp_hits if a in self._armed]
        if not hits:
            self._execs_since_hit += 1
            if self._execs_since_hit >= self.rearm_interval:
                # Nothing armed is being reached: re-aim the comparators
                # at a different sample of unseen blocks.
                self._execs_since_hit = 0
                self.arm_feedback()
            return False
        for address in hits:
            self.covered.add(address)
            self.bp_coverage_hits += 1
        self._execs_since_hit = 0
        # Hit breakpoints are retired and the budget re-aimed at blocks
        # still unseen — the core GDBFuzz trick.
        self.arm_feedback()
        return True
