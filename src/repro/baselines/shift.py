"""SHIFT (Mera et al., USENIX Security 2024) model.

SHIFT brings sanitizer and coverage support to real hardware via
**semihosting**: the target traps into the debugger for every
instrumentation event, which buys full SanCov-quality feedback at a steep
per-event cost and only on the platforms/OSes that were manually adapted
— in our catalog, FreeRTOS (Table 1).  Inputs remain AFL-style byte
buffers into one application entry point, so API preconditions are rarely
satisfied (§5.4.2).
"""

from __future__ import annotations

from typing import List

from repro.agent.protocol import ArgData, Call, TestProgram
from repro.baselines.buffer_base import BufferFuzzerBase
from repro.errors import UnsupportedTargetError
from repro.firmware.builder import BuildInfo

SUPPORTED_OSES = ("freertos",)
# Each semihosting trap stops the core and round-trips the probe; the
# paper bins SHIFT's per-exec overhead far above native SanCov.
SEMIHOST_CYCLES_PER_BYTE = 6
SEMIHOST_FIXED_CYCLES = 1200


class ShiftEngine(BufferFuzzerBase):
    """SHIFT bound to one application entry point."""

    NAME = "shift"

    def __init__(self, build: BuildInfo, entry_api: str, seed: int = 0,
                 budget_cycles: int = 2_000_000,
                 max_iterations: int = 1_000_000):
        if build.config.os_name not in SUPPORTED_OSES:
            raise UnsupportedTargetError(
                f"SHIFT's semihosting runtime is only adapted to "
                f"{SUPPORTED_OSES}; got {build.config.os_name!r}")
        super().__init__(build, seed=seed, budget_cycles=budget_cycles,
                         max_iterations=max_iterations)
        if entry_api not in build.api_order:
            raise UnsupportedTargetError(
                f"entry function {entry_api!r} is not linked into the image")
        self.entry_id = build.api_order.index(entry_api)

    def make_program(self, data: bytes) -> TestProgram:
        """One entry-point call per chunk of the fuzzed buffer."""
        return TestProgram(calls=[
            Call(api_id=self.entry_id, args=(ArgData(chunk),))
            for chunk in self.chunk_buffer(data)])

    def feedback_interesting(self, event_bp_hits: List[int],
                             new_truth_edges: int) -> bool:
        # Semihosting exposes the full edge stream, so SHIFT's feedback
        # is the real coverage signal.
        return new_truth_edges > 0

    def per_exec_overhead_cycles(self, raw_len: int) -> int:
        """Semihosting traps: fixed setup plus per-byte transfer cost."""
        return SEMIHOST_FIXED_CYCLES + SEMIHOST_CYCLES_PER_BYTE * raw_len
