"""Wire format of test programs.

A test program is an API-call sequence serialized into the agent's input
buffer.  The format is deliberately primitive — fixed-width little-endian
fields, no pointers — so the C-agent the paper describes could decode it
with array reads and integer arithmetic alone::

    u32  magic      0x454F4650 ("EOFP")
    u16  version    1
    u16  ncalls     <= MAX_CALLS
    per call:
        u16  api_id
        u8   nargs   <= MAX_ARGS
        per arg:
            u8 tag   0 = immediate, 1 = result ref, 2 = data bytes
            tag 0: i64 value
            tag 1: u16 index of a previous call
            tag 2: u16 length + bytes (<= MAX_DATA)
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Tuple, Union

from repro.errors import ProtocolError

MAGIC = 0x454F4650
VERSION = 1
MAX_CALLS = 64
MAX_ARGS = 8
MAX_DATA = 1024

TAG_IMM = 0
TAG_REF = 1
TAG_DATA = 2


@dataclass(frozen=True)
class ArgImm:
    """An immediate integer argument."""

    value: int


@dataclass(frozen=True)
class ArgRef:
    """A reference to the result of an earlier call (resource handle)."""

    index: int


@dataclass(frozen=True)
class ArgData:
    """An inline byte buffer argument."""

    data: bytes


Argument = Union[ArgImm, ArgRef, ArgData]


@dataclass(frozen=True)
class Call:
    """One API invocation."""

    api_id: int
    args: Tuple[Argument, ...] = ()


@dataclass
class TestProgram:
    """An ordered API-call sequence."""

    __test__ = False  # not a pytest test class, despite the name

    calls: List[Call] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.calls)


def serialize_program(program: TestProgram) -> bytes:
    """Encode a program for the agent's input buffer."""
    if len(program.calls) > MAX_CALLS:
        raise ProtocolError(f"too many calls: {len(program.calls)}")
    out = bytearray(struct.pack("<IHH", MAGIC, VERSION, len(program.calls)))
    for call in program.calls:
        if len(call.args) > MAX_ARGS:
            raise ProtocolError(f"too many args in call {call.api_id}")
        out += struct.pack("<HB", call.api_id & 0xFFFF, len(call.args))
        for arg in call.args:
            if isinstance(arg, ArgImm):
                out += struct.pack("<Bq", TAG_IMM, _clamp_i64(arg.value))
            elif isinstance(arg, ArgRef):
                out += struct.pack("<BH", TAG_REF, arg.index & 0xFFFF)
            elif isinstance(arg, ArgData):
                if len(arg.data) > MAX_DATA:
                    raise ProtocolError("data argument too long")
                out += struct.pack("<BH", TAG_DATA, len(arg.data))
                out += arg.data
            else:
                raise ProtocolError(f"unknown argument type: {arg!r}")
    return bytes(out)


def deserialize_program(raw: bytes) -> TestProgram:
    """Decode a program; raises :class:`ProtocolError` on any violation.

    This is the agent-side ``read_prog()`` body.
    """
    view = memoryview(raw)
    if len(view) < 8:
        raise ProtocolError("input shorter than the header")
    magic, version, ncalls = struct.unpack_from("<IHH", view, 0)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic 0x{magic:08x}")
    if version != VERSION:
        raise ProtocolError(f"unsupported version {version}")
    if ncalls > MAX_CALLS:
        raise ProtocolError(f"ncalls {ncalls} exceeds limit")
    offset = 8
    calls: List[Call] = []
    for call_index in range(ncalls):
        if offset + 3 > len(view):
            raise ProtocolError(f"truncated call header at call {call_index}")
        api_id, nargs = struct.unpack_from("<HB", view, offset)
        offset += 3
        if nargs > MAX_ARGS:
            raise ProtocolError(f"nargs {nargs} exceeds limit")
        args: List[Argument] = []
        for arg_index in range(nargs):
            if offset + 1 > len(view):
                raise ProtocolError("truncated argument tag")
            tag = view[offset]
            offset += 1
            if tag == TAG_IMM:
                if offset + 8 > len(view):
                    raise ProtocolError("truncated immediate")
                (value,) = struct.unpack_from("<q", view, offset)
                offset += 8
                args.append(ArgImm(value))
            elif tag == TAG_REF:
                if offset + 2 > len(view):
                    raise ProtocolError("truncated result reference")
                (index,) = struct.unpack_from("<H", view, offset)
                offset += 2
                if index >= call_index:
                    raise ProtocolError(
                        f"forward reference: call {call_index} arg "
                        f"{arg_index} refers to call {index}")
                args.append(ArgRef(index))
            elif tag == TAG_DATA:
                if offset + 2 > len(view):
                    raise ProtocolError("truncated data length")
                (length,) = struct.unpack_from("<H", view, offset)
                offset += 2
                if length > MAX_DATA:
                    raise ProtocolError(f"data length {length} exceeds limit")
                if offset + length > len(view):
                    raise ProtocolError("truncated data bytes")
                args.append(ArgData(bytes(view[offset:offset + length])))
                offset += length
            else:
                raise ProtocolError(f"unknown argument tag {tag}")
        calls.append(Call(api_id=api_id, args=tuple(args)))
    return TestProgram(calls=calls)


def _clamp_i64(value: int) -> int:
    lo, hi = -(1 << 63), (1 << 63) - 1
    return max(lo, min(hi, value))
