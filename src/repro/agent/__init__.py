"""The cross-platform execution agent (§4.3.2).

The agent is the small piece of code linked into every target image that
deserializes test programs from a RAM buffer and executes them against
the kernel's API table.  It uses only primitive operations (integer
arithmetic, array reads/writes) and *no OS services*, which is what makes
it portable across the five kernels.  The host synchronizes with it via
hardware breakpoints at ``executor_main`` / ``read_prog`` /
``execute_one`` / ``handle_exception`` (Figure 4).
"""

from repro.agent.protocol import (
    ArgData,
    ArgImm,
    ArgRef,
    Call,
    TestProgram,
    deserialize_program,
    serialize_program,
)
from repro.agent.executor import AgentRuntime, AgentPhase, AGENT_STATUS_MAGIC

__all__ = [
    "ArgData",
    "ArgImm",
    "ArgRef",
    "Call",
    "TestProgram",
    "deserialize_program",
    "serialize_program",
    "AgentRuntime",
    "AgentPhase",
    "AGENT_STATUS_MAGIC",
]
