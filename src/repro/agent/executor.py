"""The on-target execution agent.

Implements the Figure 4 loop as a host-driven state machine: the board's
``resume`` advances the agent one phase per continue, halting at the
breakpoint-sync points (``executor_main`` → ``read_prog`` →
``execute_one`` → back), trapping at ``_kcmp_buf_full`` when the coverage
buffer fills, and entering ``handle_exception`` → the OS's fatal-error
symbol when a test case kills the kernel.
"""

from __future__ import annotations

import enum
import struct
from typing import List, Optional

from repro.errors import (
    BusFault,
    ExecutionStall,
    KernelAssertion,
    KernelPanic,
    ProtocolError,
    TargetSignal,
)
from repro.hw.board import Board, TargetRuntime
from repro.hw.machine import HaltEvent, HaltReason, StackFrame
from repro.agent.protocol import TestProgram, ArgImm, ArgRef, ArgData, \
    deserialize_program
from repro.oses.common.kernel import EmbeddedKernel

AGENT_STATUS_MAGIC = 0x53544154  # "STAT"

STATUS_IDLE = 0
STATUS_PROG_READY = 1
STATUS_EXECUTING = 2
STATUS_DONE = 3
STATUS_CRASHED = 4
STATUS_BAD_PROG = 5
STATUS_STALLED = 6


class AgentPhase(enum.Enum):
    """Where the agent is in its loop."""

    WAIT_PROG = "wait-prog"      # halted at executor_main, needs input
    PROG_READY = "prog-ready"    # halted at read_prog, program decoded
    EXECUTING = "executing"      # halted at execute_one or _kcmp_buf_full
    CRASHED = "crashed"          # dead in the exception handler
    STALLED = "stalled"          # degraded state: wedged, not a crash


class AgentRuntime(TargetRuntime):
    """Target runtime = one kernel + the execution agent driving it."""

    def __init__(self, board: Board, kernel: EmbeddedKernel, layout,
                 addresses) -> None:
        self.board = board
        self.kernel = kernel
        self.ctx = kernel.ctx
        self.layout = layout
        self.addresses = addresses
        self.phase = AgentPhase.WAIT_PROG
        self.program: Optional[TestProgram] = None
        self.call_idx = 0
        self.results: List[int] = []
        self.programs_executed = 0
        self.calls_executed = 0

    # -- boot -------------------------------------------------------------------

    def boot(self) -> bool:
        """Bring the kernel up; False means the boot itself crashed."""
        try:
            self.kernel.boot()
        except TargetSignal:
            return False
        self._write_status(STATUS_IDLE)
        self._park_at("executor_main")
        return True

    # -- helpers -----------------------------------------------------------------

    def _addr(self, symbol: str) -> int:
        return self.addresses.get(symbol, 0)

    def _park_at(self, symbol: str) -> None:
        self.board.machine.pc = self._addr(symbol)

    def _take_bp_hits(self) -> List[int]:
        hits = list(self.ctx.bp_hits)
        self.ctx.bp_hits.clear()
        return hits

    def _halt(self, reason: HaltReason, symbol: str,
              detail: str = "") -> HaltEvent:
        self._park_at(symbol)
        return HaltEvent(reason=reason, pc=self._addr(symbol), symbol=symbol,
                         detail=detail, backtrace=self.board.machine.backtrace(),
                         bp_hits=self._take_bp_hits())

    def _write_status(self, state: int, last_rv: int = 0) -> None:
        base = self.layout.status_addr
        self.board.ram.write(base, struct.pack(
            "<IIIq", AGENT_STATUS_MAGIC, state, self.calls_executed,
            last_rv))

    # -- the state machine ---------------------------------------------------------

    def step(self) -> HaltEvent:
        """One ``-exec-continue`` worth of progress."""
        machine = self.board.machine
        machine.tick(50)  # loop plumbing
        if self.phase == AgentPhase.WAIT_PROG:
            return self._step_read_prog()
        if self.phase == AgentPhase.PROG_READY:
            return self._step_arm_execution()
        if self.phase == AgentPhase.EXECUTING:
            return self._step_execute()
        # CRASHED / STALLED: the core never makes progress again.
        machine.wedge(f"agent {self.phase.value}")
        return HaltEvent(reason=HaltReason.STALL, pc=machine.pc,
                         detail=machine.wedge_detail)

    def _step_read_prog(self) -> HaltEvent:
        self._park_at("read_prog")
        base = self.layout.input_buf_addr
        length = self.board.ram.read_u32(base)
        self.board.machine.tick(10 + length // 8)  # deserialization cost
        max_len = self.layout.input_buf_size - 4
        if length == 0 or length > max_len:
            self.program = None
            self._write_status(STATUS_BAD_PROG)
            self.phase = AgentPhase.PROG_READY
            return self._halt(HaltReason.BREAKPOINT, "read_prog",
                              detail="no/oversized input")
        raw = self.board.ram.read(base + 4, length)
        try:
            program = deserialize_program(raw)
        except ProtocolError as exc:
            self.program = None
            self._write_status(STATUS_BAD_PROG)
            self.phase = AgentPhase.PROG_READY
            return self._halt(HaltReason.BREAKPOINT, "read_prog",
                              detail=f"protocol error: {exc}")
        n_apis = len(self.kernel.api_table())
        for call in program.calls:
            if call.api_id >= n_apis:
                self.program = None
                self._write_status(STATUS_BAD_PROG)
                self.phase = AgentPhase.PROG_READY
                return self._halt(HaltReason.BREAKPOINT, "read_prog",
                                  detail=f"unknown api id {call.api_id}")
        self.program = program
        self._write_status(STATUS_PROG_READY)
        self.phase = AgentPhase.PROG_READY
        return self._halt(HaltReason.BREAKPOINT, "read_prog")

    def _step_arm_execution(self) -> HaltEvent:
        if self.program is None:
            # Bad program: skip execution, loop back for the next one.
            self.phase = AgentPhase.WAIT_PROG
            return self._halt(HaltReason.BREAKPOINT, "executor_main",
                              detail="program rejected")
        self.call_idx = 0
        self.results = []
        self.calls_executed = 0
        self.ctx.tracer.reset_run_state()
        self.kernel.on_testcase_start()
        self._write_status(STATUS_EXECUTING)
        self.phase = AgentPhase.EXECUTING
        return self._halt(HaltReason.BREAKPOINT, "execute_one")

    def _step_execute(self) -> HaltEvent:
        tracer = self.ctx.tracer
        if tracer.trap_pending:
            # Resumed from a cov-full trap: the host has drained the
            # buffer; reset the write index and continue where we left off.
            tracer.clear()
        assert self.program is not None
        while self.call_idx < len(self.program.calls):
            call = self.program.calls[self.call_idx]
            self.board.machine.tick(20)  # dispatch cost
            # Coverage is collected per call, KCOV-style (Syzkaller
            # semantics): edges chain within one API invocation.
            tracer.reset_run_state()
            try:
                args = self._resolve_args(call)
                rv = self.kernel.invoke(call.api_id, args)
                self.results.append(rv)
                self.call_idx += 1
                self.calls_executed += 1
                self.kernel.idle_tick()
            except KernelAssertion as sig:
                # Assert text already went out over UART; the system hangs
                # (denial of service) — log-monitor territory.
                self._write_status(STATUS_CRASHED)
                self.phase = AgentPhase.CRASHED
                self.board.machine.wedge(f"assertion hang: {sig.expr}")
                return HaltEvent(reason=HaltReason.STALL,
                                 pc=self.board.machine.pc,
                                 detail=str(sig),
                                 backtrace=self.board.machine.backtrace(),
                                 bp_hits=self._take_bp_hits())
            except (KernelPanic, BusFault) as sig:
                return self._enter_exception(sig)
            except ExecutionStall as sig:
                self._write_status(STATUS_STALLED)
                self.phase = AgentPhase.STALLED
                self.board.machine.wedge(sig.reason)
                return HaltEvent(reason=HaltReason.STALL,
                                 pc=self.board.machine.pc,
                                 detail=sig.reason,
                                 bp_hits=self._take_bp_hits())
            if tracer.trap_pending:
                return self._halt(HaltReason.COV_FULL, "_kcmp_buf_full",
                                  detail="coverage buffer full")
        self.programs_executed += 1
        last_rv = self.results[-1] if self.results else 0
        self._write_status(STATUS_DONE, last_rv)
        self.phase = AgentPhase.WAIT_PROG
        return self._halt(HaltReason.BREAKPOINT, "executor_main")

    def _resolve_args(self, call) -> List:
        resolved: List = []
        for arg in call.args:
            if isinstance(arg, ArgImm):
                resolved.append(arg.value)
            elif isinstance(arg, ArgRef):
                resolved.append(self.results[arg.index]
                                if arg.index < len(self.results) else -1)
            elif isinstance(arg, ArgData):
                resolved.append(arg.data)
            else:  # pragma: no cover - protocol guarantees exhaustiveness
                resolved.append(0)
        return resolved

    def _enter_exception(self, signal: TargetSignal) -> HaltEvent:
        """Fatal path: route into the OS's exception symbol (Figure 4's
        ``handle_exception``) and stop there if the host broke on it."""
        self._write_status(STATUS_CRASHED)
        self.phase = AgentPhase.CRASHED
        machine = self.board.machine
        handler_symbol = self.kernel.EXCEPTION_SYMBOL
        handler_addr = self._addr(handler_symbol)
        try:
            self.kernel.handle_fatal(signal)
        except TargetSignal:
            pass  # a broken handler must still leave us in a defined state
        # The handler "never returns": freeze its frame on the crash stack.
        machine.push_frame(StackFrame(symbol=handler_symbol,
                                      address=handler_addr, module="kernel"))
        if machine.breakpoint_at(handler_addr):
            return HaltEvent(reason=HaltReason.EXCEPTION, pc=handler_addr,
                             symbol=handler_symbol, detail=str(signal),
                             backtrace=machine.backtrace(),
                             bp_hits=self._take_bp_hits())
        machine.wedge(f"dead in {handler_symbol}")
        return HaltEvent(reason=HaltReason.STALL, pc=handler_addr,
                         detail=str(signal),
                         backtrace=machine.backtrace(),
                         bp_hits=self._take_bp_hits())
