"""Command-line interface: ``eof-fuzz``.

Subcommands::

    eof-fuzz targets                   list registered fuzz targets
    eof-fuzz build   --target NAME     build an image and show its layout
    eof-fuzz run     --target NAME     fuzz a target
                     --trace-dir DIR   ... writing run artifacts to DIR
                     --chaos PROFILE   ... under deterministic fault injection
    eof-fuzz campaign TARGET           parallel multi-board campaign
                     --workers N       ... N worker boards
                     --sync-interval C ... shared-corpus sync every C cycles
                     --dashboard       ... live ANSI table at every barrier
                     --state-dir DIR   ... durable crash-safe state store
                     --resume          ... continue from the last epoch
                     --warm-start DIR  ... pre-seed from another campaign
    eof-fuzz report  RUN_DIR           render a recorded run's report
                     --format F        ... as text (default), json or html
    eof-fuzz analyze TARGET            static analysis of one target
                     --out DIR         ... writing analysis.json to DIR
                     --explain CODE    document one diagnostic code
    eof-fuzz lint    [PATH ...]        determinism-lint python sources
    eof-fuzz concurrency [PATH ...]    concurrency-effect analysis (EOF4xx)
    eof-fuzz repro   --bug N           run a Table 2 bug reproducer
    eof-fuzz bugs                      list the Table 2 bug catalog
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.bench.runner import make_engine
from repro.chaos import PROFILES
from repro.errors import RecoveryExhausted
from repro.firmware.builder import build_firmware
from repro.fuzz.oneshot import execute_once
from repro.fuzz.targets import TARGETS, get_target
from repro.oses.bugs import BUG_TABLE


def _cmd_targets(_args) -> int:
    for name, target in sorted(TARGETS.items()):
        print(f"{name:16} {target.os_name:10} on {target.board:10} "
              f"[{target.arch}]  {target.description}")
    return 0


def _cmd_build(args) -> int:
    target = get_target(args.target)
    build = build_firmware(target.build_config(instrument=not args.bare))
    print(f"target    : {target.name} ({target.os_name} on {target.board})")
    print(f"image     : {build.image_total_bytes} bytes"
          f" ({'instrumented' if build.config.instrument else 'bare'})")
    print(f"symbols   : {len(build.symbols)}")
    print(f"cov sites : {build.site_table.total_sites}")
    print(f"APIs      : {len(build.api_order)}")
    print("partitions:")
    for part in build.partition_specs:
        print(f"  {part.name:8} offset=0x{part.offset:06x} "
              f"size=0x{part.size:06x}")
    return 0


def _sample_interval(requested: int, budget_cycles: int) -> int:
    """Epoch width in cycles: the request, or ~50 samples per budget."""
    if requested > 0:
        return requested
    return max(budget_cycles // 50, 1)


def _cmd_run(args) -> int:
    target = get_target(args.target)
    build = build_firmware(target.build_config())
    obs = None
    if args.trace_dir:
        from repro.obs import (FlightRecorder, JsonlSink, Observability,
                               TimeSeriesSampler)
        from repro.obs.report import EVENTS_FILE
        from repro.obs.timeseries import TIMESERIES_FILE
        os.makedirs(args.trace_dir, exist_ok=True)
        obs = Observability(
            run_id=f"{args.fuzzer}-{args.target}-seed{args.seed}")
        obs.attach(JsonlSink(os.path.join(args.trace_dir, EVENTS_FILE)))
        obs.sampler = TimeSeriesSampler(
            _sample_interval(args.sample_interval, args.budget),
            path=os.path.join(args.trace_dir, TIMESERIES_FILE))
        obs.attach_flight(FlightRecorder(args.trace_dir))
    engine = make_engine(args.fuzzer, build, args.seed, args.budget,
                         obs=obs, chaos=args.chaos,
                         chaos_seed=args.chaos_seed,
                         link_batching=not args.no_link_batch,
                         snapshots=not args.no_snapshot)
    chaos_note = f", chaos {args.chaos}" if args.chaos else ""
    print(f"fuzzing {target.name} with {args.fuzzer} "
          f"(budget {args.budget} cycles, seed {args.seed}{chaos_note}) ...")
    core = engine.engine if hasattr(engine, "engine") else engine
    exit_code = 0
    try:
        result = engine.run()
        stats, crash_db = result.stats, result.crash_db
    except RecoveryExhausted as exc:
        # Quarantined board: report what the run achieved, exit loudly.
        stats, crash_db = core.stats, core.crash_db
        print(f"run aborted: {exc}", file=sys.stderr)
        exit_code = 2
    print(stats.summary())
    if stats.link_transactions:
        attempts = max(stats.programs_executed + stats.rejected_programs, 1)
        print(f"link: {stats.link_transactions} transactions "
              f"({stats.link_transactions / attempts:.1f}/program), "
              f"{stats.link_bytes} bytes"
              + (" [unbatched]" if args.no_link_batch else ""))
    if stats.recoveries or stats.recovery_failures:
        print(f"recoveries={stats.recoveries} "
              f"reattaches={stats.reattaches} "
              f"exhausted={stats.recovery_failures}")
    if stats.snapshot_restores or stats.snapshot_fallbacks:
        print(f"snapshot: {stats.snapshot_restores} restores "
              f"({stats.snapshot_pages_written} pages), "
              f"{stats.snapshot_fallbacks} fallbacks to reflash")
    for report in crash_db.unique_crashes():
        print()
        print(report.render())
    if obs is not None:
        from repro.analysis import (analysis_summary, analyze_target,
                                    write_analysis_artifact)
        from repro.obs.report import collect_run_data, write_run_artifacts
        obs.close()
        data = collect_run_data(obs, stats=stats, meta={
            "target": args.target, "fuzzer": args.fuzzer,
            "seed": args.seed, "budget_cycles": args.budget,
            "chaos": args.chaos or "none"})
        # Static-analysis snapshot rides along with the run artifacts so
        # a recorded run carries its own edge-universe provenance, and
        # its compact summary lands in report.txt.
        analysis = analyze_target(args.target, include_lint=False)
        data["analysis"] = analysis_summary(analysis)
        write_run_artifacts(args.trace_dir, data)
        write_analysis_artifact(args.trace_dir, analysis)
        print(f"run artifacts written to {args.trace_dir}")
    return exit_code


def _cmd_campaign(args) -> int:
    import signal

    from repro.bench.runner import make_campaign
    from repro.errors import StoreError
    target = get_target(args.target)
    if args.resume and not args.state_dir:
        print("--resume requires --state-dir", file=sys.stderr)
        return 1
    obs = None
    worker_obs = None
    epoch_hook = None
    worker_bundles = []
    per_worker_budget = max(args.budget // max(args.workers, 1), 1)
    if args.trace_dir:
        from repro.obs import (FlightRecorder, JsonlSink, Observability,
                               TimeSeriesSampler)
        from repro.obs.report import EVENTS_FILE
        from repro.obs.timeseries import TIMESERIES_FILE
        os.makedirs(args.trace_dir, exist_ok=True)
        obs = Observability(
            run_id=f"campaign-{args.target}-seed{args.seed}")
        obs.attach(JsonlSink(os.path.join(args.trace_dir, EVENTS_FILE)))
        # The campaign-level series is barrier-driven (one row per sync
        # epoch, recorded by the orchestrator); the interval only names
        # the epoch width for consumers of the artifact.
        obs.sampler = TimeSeriesSampler(
            max(args.sync_interval, 1),
            path=os.path.join(args.trace_dir, TIMESERIES_FILE))

        def worker_obs(index: int):
            # One trace subdirectory per board: worker-<i>/events.jsonl
            # plus the worker's own timeseries and flight dumps.
            subdir = os.path.join(args.trace_dir, f"worker-{index}")
            os.makedirs(subdir, exist_ok=True)
            bundle = Observability(
                run_id=f"campaign-{args.target}-seed{args.seed}"
                       f"-w{index}")
            bundle.attach(JsonlSink(os.path.join(subdir, EVENTS_FILE)))
            bundle.sampler = TimeSeriesSampler(
                _sample_interval(args.sample_interval,
                                 per_worker_budget),
                path=os.path.join(subdir, TIMESERIES_FILE))
            bundle.attach_flight(FlightRecorder(subdir))
            worker_bundles.append(bundle)
            return bundle

    if args.dashboard:
        from repro.obs.render import render_dashboard

        def epoch_hook(summary):
            print(render_dashboard(
                summary, ansi=sys.stdout.isatty()))

    if args.backend != "thread" and worker_obs is not None:
        # Remote workers build their engines in the child; per-worker
        # observability bundles cannot cross the transport.
        print(f"note: per-worker traces need the thread backend; "
              f"the {args.backend} backend writes campaign-level "
              f"artifacts only", file=sys.stderr)
        worker_obs = None
    print(f"campaign on {target.name}: {args.workers} workers "
          f"({args.backend} backend), total budget {args.budget} "
          f"cycles, sync every {args.sync_interval} cycles, "
          f"seed {args.seed} ...")
    # First SIGINT/SIGTERM asks for a clean stop at the next epoch
    # barrier (state checkpointed, exit code 3); a second one aborts
    # hard.  The handler only sets a flag — all real work happens on
    # the coordinator thread at the barrier.  Handlers go in *before*
    # the store opens and the boards build, so an interrupt that lands
    # during bring-up still honours the exit-code contract.
    stop_signals = []
    orchestrator = None

    def _graceful_stop(signum, _frame):
        if stop_signals:
            raise KeyboardInterrupt
        stop_signals.append(signum)
        if orchestrator is not None:
            orchestrator.request_stop()
        print("\ninterrupt: finishing the current epoch, then "
              "checkpointing (signal again to abort hard) ...",
              file=sys.stderr)

    previous_handlers = {
        sig: signal.signal(sig, _graceful_stop)
        for sig in (signal.SIGINT, signal.SIGTERM)}
    try:
        try:
            orchestrator = make_campaign(
                target, workers=args.workers,
                total_budget_cycles=args.budget,
                campaign_seed=args.seed,
                sync_interval=args.sync_interval,
                import_cap=args.import_cap, obs=obs,
                worker_obs=worker_obs,
                epoch_hook=epoch_hook, state_dir=args.state_dir,
                resume=args.resume, warm_start_dir=args.warm_start,
                checkpoint_every=args.checkpoint_every,
                snapshots=not args.no_snapshot,
                backend=args.backend,
                corpus_shards=args.shards)
        except StoreError as exc:
            print(f"campaign store: {exc}", file=sys.stderr)
            return 1
        store = orchestrator.store
        if store is not None:
            salvage = store.salvage_summary()
            if args.resume:
                print(f"resuming from epoch "
                      f"{salvage['resumed_from_epoch']}: "
                      f"{len(store.entries)} seeds, "
                      f"{len(store.edges)} edges, "
                      f"{len(store.crashes)} crash signatures restored")
            if salvage["quarantined_spans"] \
                    or salvage["torn_tail_bytes"] \
                    or salvage["dropped_uncommitted"]:
                print(f"store salvage: {salvage['salvaged_records']} "
                      f"records kept, {salvage['quarantined_spans']} "
                      f"quarantined, {salvage['torn_tail_bytes']} torn "
                      f"bytes dropped, {salvage['dropped_uncommitted']} "
                      f"uncommitted records discarded")
        if orchestrator.state.seeds_warmed:
            print(f"warm start: {orchestrator.state.seeds_warmed} "
                  f"seeds from {args.warm_start}")
        if stop_signals:
            orchestrator.request_stop()
        result = orchestrator.run()
    finally:
        for sig, handler in previous_handlers.items():
            signal.signal(sig, handler)
    stats = result.stats
    print(stats.summary())
    for index, worker in enumerate(result.worker_results):
        print(f"  worker-{index}: {worker.stats.summary()}")
    for triaged in result.crashes.values():
        print()
        boards = ",".join(str(w) for w in sorted(triaged.workers))
        print(f"seen {triaged.count}x on board(s) {boards}, first in "
              f"epoch {triaged.first_epoch}:")
        print(triaged.report.render())
    if obs is not None:
        from repro.obs.profile import aggregate_profiles, build_profile
        from repro.obs.report import (collect_campaign_data,
                                      collect_run_data,
                                      write_run_artifacts)
        # Per-worker artifact sets first (each worker dir becomes a
        # self-contained run directory), then the campaign-level set
        # with the workers' profiles summed into one budget tree.
        worker_profiles = []
        for index, bundle in enumerate(worker_bundles):
            bundle.close()
            worker_stats = result.worker_results[index].stats
            worker_data = collect_run_data(
                bundle, stats=worker_stats, meta={
                    "target": args.target, "worker": index,
                    "campaign_seed": args.seed})
            worker_profiles.append(build_profile(worker_data))
            write_run_artifacts(
                os.path.join(args.trace_dir, f"worker-{index}"),
                worker_data)
        obs.close()
        data = collect_campaign_data(obs, stats, meta={
            "target": args.target, "workers": args.workers,
            "sync_interval": args.sync_interval,
            "campaign_seed": args.seed,
            "total_budget_cycles": args.budget})
        if worker_profiles:
            data["profile"] = aggregate_profiles(
                worker_profiles, run_id=obs.run_id)
        write_run_artifacts(args.trace_dir, data)
        print(f"campaign artifacts written to {args.trace_dir}")
    if stats.aborted_workers == args.workers:
        print("all workers quarantined", file=sys.stderr)
        return 2
    if stats.interrupted:
        where = f" --state-dir {args.state_dir} --resume" \
            if args.state_dir else ""
        print(f"campaign interrupted at epoch {stats.sync_epochs}; "
              f"state checkpointed — continue with: eof-fuzz campaign "
              f"{args.target}{where}", file=sys.stderr)
        return 3
    return 0


def _cmd_analyze(args) -> int:
    from repro.analysis import (analyze_target, explain_code,
                                write_analysis_artifact)
    if args.explain:
        text = explain_code(args.explain)
        if text is None:
            print(f"unknown diagnostic code {args.explain!r}",
                  file=sys.stderr)
            return 1
        print(text)
        return 0
    if not args.target:
        print("analyze: a TARGET (or --explain CODE) is required",
              file=sys.stderr)
        return 1
    report = analyze_target(args.target, include_lint=not args.no_lint,
                            include_concurrency=not args.no_concurrency)
    print(report.render())
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        path = write_analysis_artifact(args.out, report)
        print(f"\nanalysis written to {path}")
    return 0 if report.clean else 1


def _cmd_lint(args) -> int:
    from repro.analysis import lint_sources
    report = lint_sources(args.paths or None)
    print(report.render())
    return 0 if report.clean else 1


def _cmd_concurrency(args) -> int:
    from repro.analysis import analyze_concurrency
    report = analyze_concurrency(args.paths or None)
    print(report.render())
    return 0 if report.clean else 1


def _cmd_report(args) -> int:
    from repro.obs.report import (METRICS_FILE, SchemaVersionError,
                                  count_events, load_run_data,
                                  render_report)
    if not os.path.exists(os.path.join(args.run_dir, METRICS_FILE)):
        print(f"no {METRICS_FILE} in {args.run_dir}", file=sys.stderr)
        return 1
    try:
        data = load_run_data(args.run_dir)
    except SchemaVersionError as exc:
        print(f"cannot render: {exc}", file=sys.stderr)
        return 1
    if args.format == "json":
        from repro.obs.render import dump_json
        print(dump_json(data))
        return 0
    if args.format == "html":
        from repro.obs.render import render_html
        from repro.obs.timeseries import TIMESERIES_FILE, load_timeseries
        ts_path = os.path.join(args.run_dir, TIMESERIES_FILE)
        timeseries = load_timeseries(ts_path) \
            if os.path.exists(ts_path) else None
        print(render_html(data, timeseries=timeseries))
        return 0
    print(render_report(data))
    recorded = count_events(args.run_dir)
    if recorded:
        print(f"\n{recorded} events recorded in "
              f"{os.path.join(args.run_dir, 'events.jsonl')}")
    return 0


def _cmd_spec(args) -> int:
    from repro.spec.llmgen import synthesize_spec_text
    target = get_target(args.target)
    build = build_firmware(target.build_config())
    print(synthesize_spec_text(build.api_defs, target.os_name), end="")
    return 0


def _cmd_bugs(_args) -> int:
    for bug in BUG_TABLE:
        mark = "confirmed" if bug.confirmed else ""
        print(f"#{bug.number:2} {bug.os_name:10} {bug.scope:10} "
              f"{bug.bug_type:17} {bug.operation:24} {mark}")
    return 0


def _cmd_repro(args) -> int:
    bug = next((b for b in BUG_TABLE if b.number == args.bug), None)
    if bug is None:
        print(f"no bug #{args.bug} in Table 2", file=sys.stderr)
        return 1
    target = get_target(bug.os_name)
    print(f"reproducing bug #{bug.number}: {bug.operation} on "
          f"{bug.os_name} ...")
    outcome = execute_once(target, list(bug.reproducer))
    if outcome.crash is not None:
        print(outcome.crash.render())
    for report in outcome.log_crashes:
        print(report.render())
    if not outcome.crashed:
        print("reproducer did not crash (unexpected)", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="eof-fuzz",
        description="EOF: on-hardware embedded OS fuzzing (reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("targets", help="list registered targets")

    build_p = sub.add_parser("build", help="build a firmware image")
    build_p.add_argument("--target", required=True)
    build_p.add_argument("--bare", action="store_true",
                         help="build without instrumentation")

    run_p = sub.add_parser("run", help="fuzz a target")
    run_p.add_argument("--target", required=True)
    run_p.add_argument("--fuzzer", default="eof",
                       choices=["eof", "eof-nf", "tardis", "gustave"])
    run_p.add_argument("--budget", type=int, default=4_000_000,
                       help="virtual-cycle budget")
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument("--chaos", default=None, metavar="PROFILE",
                       choices=sorted(PROFILES),
                       help="inject deterministic link/board faults: "
                            + ", ".join(sorted(PROFILES)))
    run_p.add_argument("--chaos-seed", type=int, default=None,
                       help="separate seed for the fault streams "
                            "(default: --seed)")
    run_p.add_argument("--no-link-batch", action="store_true",
                       help="disable debug-link command batching and "
                            "delta coverage drain (same results, more "
                            "link transactions)")
    run_p.add_argument("--no-snapshot", action="store_true",
                       help="disable snapshot-tier state restoration "
                            "and recover via the reflash ladder only "
                            "(same results, slower recovery)")
    run_p.add_argument("--trace-dir", default=None,
                       help="write run artifacts (events.jsonl, "
                            "metrics.json, timeseries.jsonl, "
                            "profile.json, metrics.prom, report.txt, "
                            "report.html, flight dumps) into this "
                            "directory")
    run_p.add_argument("--sample-interval", type=int, default=0,
                       metavar="CYCLES",
                       help="timeseries epoch width in virtual cycles "
                            "(default: budget/50)")

    campaign_p = sub.add_parser(
        "campaign", help="parallel multi-board campaign with "
                         "shared-corpus sync",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="exit codes:\n"
               "  0  campaign ran its whole cycle budget\n"
               "  1  error (bad arguments, campaign-store mismatch)\n"
               "  2  every worker board was quarantined\n"
               "  3  interrupted (SIGINT/SIGTERM): the last completed\n"
               "     epoch is checkpointed; rerun with --state-dir DIR\n"
               "     --resume to continue deterministically\n")
    campaign_p.add_argument("target")
    campaign_p.add_argument("--workers", type=int, default=2,
                            help="worker boards fuzzing in parallel")
    campaign_p.add_argument("--sync-interval", type=int,
                            default=400_000, metavar="CYCLES",
                            help="virtual cycles between shared-corpus "
                                 "sync epochs (0 = independent runs)")
    campaign_p.add_argument("--budget", type=int, default=4_000_000,
                            help="total virtual-cycle budget across "
                                 "all workers")
    campaign_p.add_argument("--seed", type=int, default=1,
                            help="campaign seed (worker streams are "
                                 "derived from it)")
    campaign_p.add_argument("--import-cap", type=int, default=2,
                            help="max cross-worker seeds imported per "
                                 "worker per sync epoch")
    campaign_p.add_argument("--backend", default="thread",
                            choices=["thread", "process", "socket"],
                            help="where workers execute: in-process "
                                 "threads (default, the determinism "
                                 "reference), one child process per "
                                 "board, or loopback sockets speaking "
                                 "EOFL host frames")
    campaign_p.add_argument("--shards", type=int, default=None,
                            metavar="N",
                            help="shared-corpus shard count "
                                 "(default: 8; any count is "
                                 "observationally equivalent)")
    campaign_p.add_argument("--trace-dir", default=None,
                            help="write campaign artifacts plus "
                                 "worker-<i>/ trace subdirectories "
                                 "into this directory")
    campaign_p.add_argument("--sample-interval", type=int, default=0,
                            metavar="CYCLES",
                            help="per-worker timeseries epoch width "
                                 "(default: worker budget/50)")
    campaign_p.add_argument("--dashboard", action="store_true",
                            help="print a live ANSI status table at "
                                 "every sync-epoch barrier")
    campaign_p.add_argument("--no-snapshot", action="store_true",
                            help="disable snapshot-tier state "
                                 "restoration on every worker board")
    campaign_p.add_argument("--state-dir", default=None, metavar="DIR",
                            help="persist campaign state (corpus, "
                                 "frontier, crashes) into DIR via a "
                                 "crash-safe journal + checkpoint "
                                 "store")
    campaign_p.add_argument("--resume", action="store_true",
                            help="continue the campaign persisted in "
                                 "--state-dir from its last completed "
                                 "epoch (options must match the "
                                 "original run)")
    campaign_p.add_argument("--warm-start", default=None, metavar="DIR",
                            help="pre-seed the shared corpus from "
                                 "another campaign's state directory "
                                 "(footprints stay out of this run's "
                                 "frontier)")
    campaign_p.add_argument("--checkpoint-every", type=int, default=4,
                            metavar="EPOCHS",
                            help="compact the journal into a full "
                                 "checkpoint every N epochs "
                                 "(default: 4)")

    report_p = sub.add_parser(
        "report", help="render the report of a recorded run directory")
    report_p.add_argument("run_dir")
    report_p.add_argument("--format", default="text",
                          choices=["text", "json", "html"],
                          help="output rendering (default: text)")

    analyze_p = sub.add_parser(
        "analyze", help="static analysis: spec lint + reachability + "
                        "determinism + concurrency")
    analyze_p.add_argument("target", nargs="?", default=None)
    analyze_p.add_argument("--out", default=None, metavar="DIR",
                           help="also write analysis.json into DIR")
    analyze_p.add_argument("--no-lint", action="store_true",
                           help="skip the determinism lint of the host "
                                "sources")
    analyze_p.add_argument("--no-concurrency", action="store_true",
                           help="skip the concurrency-effect pass")
    analyze_p.add_argument("--explain", default=None, metavar="CODE",
                           help="print the documentation of one "
                                "diagnostic code (e.g. EOF401) and exit")

    lint_p = sub.add_parser(
        "lint", help="determinism lint of the host python sources")
    lint_p.add_argument("paths", nargs="*",
                        help="files/directories to lint (default: the "
                             "installed repro package)")

    conc_p = sub.add_parser(
        "concurrency", help="concurrency-effect analysis (EOF4xx) of "
                            "the host python sources")
    conc_p.add_argument("paths", nargs="*",
                        help="files/directories to analyze (default: "
                             "the installed repro package)")

    sub.add_parser("bugs", help="list the Table 2 bug catalog")

    spec_p = sub.add_parser("spec", help="dump the synthesised Syzlang")
    spec_p.add_argument("--target", required=True)

    repro_p = sub.add_parser("repro", help="run a bug reproducer")
    repro_p.add_argument("--bug", type=int, required=True)

    args = parser.parse_args(argv)
    handlers = {"targets": _cmd_targets, "build": _cmd_build,
                "run": _cmd_run, "campaign": _cmd_campaign,
                "report": _cmd_report, "bugs": _cmd_bugs,
                "repro": _cmd_repro, "spec": _cmd_spec,
                "analyze": _cmd_analyze, "lint": _cmd_lint,
                "concurrency": _cmd_concurrency}
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Reader (e.g. `... | head`) went away; not an error worth a traceback.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
