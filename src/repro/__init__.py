"""EOF: effective on-hardware fuzzing of embedded operating systems.

Reproduction of the EuroSys 2026 paper, including every substrate it
depends on: virtual boards (:mod:`repro.hw`), a firmware toolchain
(:mod:`repro.firmware`), five embedded kernels (:mod:`repro.oses`), the
debug interface (:mod:`repro.ddi`), the Syzlang specification pipeline
(:mod:`repro.spec`), the EOF engine (:mod:`repro.fuzz`) and the baseline
fuzzers (:mod:`repro.baselines`).

The five-line tour::

    from repro.firmware.builder import build_firmware
    from repro.fuzz.engine import EngineOptions, EofEngine
    from repro.fuzz.targets import get_target
    from repro.spec.llmgen import generate_validated_specs

    build = build_firmware(get_target("rt-thread").build_config())
    result = EofEngine(build, generate_validated_specs(build),
                       EngineOptions(seed=1, budget_cycles=2_000_000)).run()
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
