"""RT-Thread-flavoured kernel: object containers, 32-priority scheduler,
small-mem boundary-tag heap, memory pools, rich IPC (semaphore, mutex,
event, mailbox, message queue), a device model with a serial driver, and
SAL sockets whose creation path logs through the serial device — the
chain behind the paper's Figure 6 case study.
"""

from repro.oses.rtthread.kernel import RtThreadKernel
from repro.oses.rtthread.smem import SmallMem

__all__ = ["RtThreadKernel", "SmallMem"]
