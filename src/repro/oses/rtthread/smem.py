"""RT-Thread's small-memory allocator (``rt_smem``), boundary-tag style.

A deliberately different algorithm from FreeRTOS's heap_4: every block
(used or free) carries a 12-byte boundary tag with *prev/next offsets*
and a magic word, and allocation walks the block chain linearly (RT-Thread
"small mem" keeps a lowest-free pointer rather than a free list).

Block header (12 bytes, little-endian)::

    u16 magic      0x1EA0
    u16 used       0 free / 1 used
    u32 next       offset of the next block header
    u32 prev       offset of the previous block header

The heap control block at the start of the window holds an 8-byte name
field (``rt_smem_setname`` writes it) followed by a guard word — the
adjacency that injected bug #11 exploits.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from repro.hw.memory import Ram

MAGIC = 0x1EA0
HEADER_SIZE = 12
NAME_FIELD = 16     # name buffer (overruns land on the guard word)
CONTROL_SIZE = 24   # 16-byte name + 4-byte guard + 4 pad
GUARD_WORD = 0x5AFE5AFE
ALIGNMENT = 8


class SmallMem:
    """The rt_smem allocator over ``ram[base, base+size)``."""

    def __init__(self, ram: Ram, base: int, size: int):
        if size < CONTROL_SIZE + 2 * HEADER_SIZE + ALIGNMENT:
            raise ValueError("smem window too small")
        self.ram = ram
        self.base = base
        self.size = size & ~(ALIGNMENT - 1)
        self.used_bytes = 0
        self.max_used = 0
        self.locked = False
        self._init_control()

    # -- control block --------------------------------------------------------

    def _init_control(self) -> None:
        self.ram.write(self.base, b"small-mm".ljust(NAME_FIELD, b"\x00"))
        self.ram.write_u32(self.base + NAME_FIELD, GUARD_WORD)
        self.ram.write_u32(self.base + NAME_FIELD + 4, 0)
        first = CONTROL_SIZE
        end = self.size - HEADER_SIZE
        self._write_header(first, used=0, nxt=end, prev=first)
        # Terminal sentinel block.
        self._write_header(end, used=1, nxt=end, prev=first)
        self.used_bytes = 0

    def name(self) -> bytes:
        """The heap's name field (C-string semantics: stops at NUL)."""
        raw = self.ram.read(self.base, NAME_FIELD)
        return raw.split(b"\x00", 1)[0]

    def guard_intact(self) -> bool:
        """Is the guard word after the name field undamaged?"""
        return self.ram.read_u32(self.base + NAME_FIELD) == GUARD_WORD

    def raw_name_write(self, data: bytes) -> None:
        """Unbounded write into the name field (bug #11's memcpy)."""
        self.ram.write(self.base, data)

    # -- headers ---------------------------------------------------------------

    def _write_header(self, off: int, used: int, nxt: int, prev: int) -> None:
        self.ram.write(self.base + off,
                       struct.pack("<HHII", MAGIC, used, nxt, prev))

    def _read_header(self, off: int) -> Tuple[int, int, int, int]:
        magic, used, nxt, prev = struct.unpack(
            "<HHII", self.ram.read(self.base + off, HEADER_SIZE))
        return magic, used, nxt, prev

    def _end_off(self) -> int:
        return self.size - HEADER_SIZE

    # -- allocation ----------------------------------------------------------------

    def malloc(self, want: int) -> int:
        """Allocate; returns the payload's absolute address or 0."""
        if want <= 0 or want > self.size:
            return 0
        need = (want + ALIGNMENT - 1) & ~(ALIGNMENT - 1)
        off = CONTROL_SIZE
        end = self._end_off()
        while off < end:
            magic, used, nxt, prev = self._read_header(off)
            if magic != MAGIC or nxt <= off or nxt > end:
                return 0  # chain corrupted
            avail = nxt - off - HEADER_SIZE
            if not used and avail >= need:
                if avail - need >= HEADER_SIZE + ALIGNMENT:
                    # Split the tail into a new free block.
                    split = off + HEADER_SIZE + need
                    self._write_header(split, used=0, nxt=nxt, prev=off)
                    n_magic, n_used, n_nxt, n_prev = self._read_header(nxt)
                    self._write_header(nxt, n_used, n_nxt, split)
                    self._write_header(off, used=1, nxt=split, prev=prev)
                else:
                    self._write_header(off, used=1, nxt=nxt, prev=prev)
                self.used_bytes += need + HEADER_SIZE
                self.max_used = max(self.max_used, self.used_bytes)
                return self.base + off + HEADER_SIZE
            off = nxt
        return 0

    def free(self, payload_addr: int) -> bool:
        """Release a block; returns False on an invalid pointer."""
        off = payload_addr - self.base - HEADER_SIZE
        end = self._end_off()
        if off < CONTROL_SIZE or off >= end:
            return False
        magic, used, nxt, prev = self._read_header(off)
        if magic != MAGIC or not used:
            return False
        self._write_header(off, used=0, nxt=nxt, prev=prev)
        self.used_bytes -= (nxt - off)
        self._coalesce(off)
        return True

    def _coalesce(self, off: int) -> None:
        magic, used, nxt, prev = self._read_header(off)
        end = self._end_off()
        # Merge forward.
        if nxt < end:
            n_magic, n_used, n_nxt, _ = self._read_header(nxt)
            if n_magic == MAGIC and not n_used:
                nn_magic, nn_used, nn_nxt, nn_prev = self._read_header(n_nxt)
                self._write_header(off, used=0, nxt=n_nxt, prev=prev)
                self._write_header(n_nxt, nn_used, nn_nxt, off)
                nxt = n_nxt
        # Merge backward.
        if prev != off:
            p_magic, p_used, p_nxt, p_prev = self._read_header(prev)
            if p_magic == MAGIC and not p_used:
                self._write_header(prev, used=0, nxt=nxt, prev=p_prev)
                n_magic, n_used, n_nxt, _ = self._read_header(nxt)
                self._write_header(nxt, n_used, n_nxt, prev)

    # -- introspection ----------------------------------------------------------------

    def walk(self) -> List[Tuple[int, int, int]]:
        """(offset, size, used) of every block; [] if the chain is broken."""
        blocks = []
        off = CONTROL_SIZE
        end = self._end_off()
        hops = 0
        while off < end and hops < 100_000:
            magic, used, nxt, _ = self._read_header(off)
            if magic != MAGIC or nxt <= off or nxt > end:
                return []
            blocks.append((off, nxt - off - HEADER_SIZE, used))
            off = nxt
            hops += 1
        return blocks

    def check_invariants(self) -> Optional[str]:
        """None if healthy, else what is broken (test hook)."""
        if not self.guard_intact():
            return "control-block guard word damaged"
        blocks = self.walk()
        if not blocks:
            return "block chain broken"
        prev_expected = CONTROL_SIZE
        off = CONTROL_SIZE
        while off < self._end_off():
            magic, used, nxt, prev = self._read_header(off)
            if prev != prev_expected:
                return f"bad prev link at offset {off}"
            prev_expected = off
            off = nxt
        return None
