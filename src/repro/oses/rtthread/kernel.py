"""The RT-Thread-flavoured kernel.

Everything is an *object* living in per-class containers; IPC is rich
(semaphore / mutex / event / mailbox / message queue); memory comes from
the small-mem boundary-tag heap and fixed-size memory pools; devices hang
off a device model with a serial driver that the console writes through.
SAL sockets log their creation over the console — the exact call chain of
the paper's Figure 6 case study.

Injected bugs (Table 2; numbers are the paper's):

* **#5**  ``rt_object_get_type()``  assertion on a detached object (log monitor)
* **#6**  ``rt_list_isempty()``     panic on a corrupted service list
* **#7**  ``rt_mp_alloc()``         use-after-delete of a memory pool
* **#8**  ``rt_object_init()``      assertion on re-initialising an object (log monitor)
* **#9**  ``_heap_lock()``          leaked heap lock after a double free -> recursive-lock panic
* **#10** ``rt_event_send()``       send to a deleted event control block
* **#11** ``rt_smem_setname()``     unbounded name copy smashes the heap guard word
* **#12** ``rt_serial_write()``     stale serial device dereferenced while logging socket creation
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.oses.common.api import (
    arg_buf,
    arg_int,
    arg_res,
    arg_str,
    kapi,
    kfunc,
)
from repro.oses.common.dlist import DList, DListNode
from repro.oses.common.kernel import EmbeddedKernel
from repro.oses.common.ladders import CanBusLadder
from repro.oses.common.shell import ShellInterpreter
from repro.oses.rtthread.smem import SmallMem

RT_EOK = 0
RT_ERROR = -1
RT_ETIMEOUT = -2
RT_EFULL = -3
RT_EEMPTY = -4
RT_EINVAL = -10

# Object classes.
OT_THREAD = 1
OT_SEMAPHORE = 2
OT_MUTEX = 3
OT_EVENT = 4
OT_MAILBOX = 5
OT_MSGQUEUE = 6
OT_MEMPOOL = 7
OT_DEVICE = 8
OT_TIMER = 9

EVENT_AND = 0x01
EVENT_OR = 0x02
EVENT_CLEAR = 0x04

MAX_PRIORITY = 31
MAX_OBJECTS = 128


class _RtObject:
    KIND = "obj"

    def __init__(self, otype: int, name: str):
        self.handle = 0
        self.otype = otype
        self.name = name
        self.detached = False


class _Thread:
    KIND = "thread"

    def __init__(self, name: str, stack_addr: int, stack_size: int,
                 priority: int, tick: int):
        self.handle = 0
        self.name = name
        self.stack_addr = stack_addr
        self.stack_size = stack_size
        self.priority = priority
        self.tick = tick
        self.state = "init"    # init | ready | suspended | deleted
        self.wake_tick = 0
        self.run_count = 0


class _Semaphore:
    KIND = "sem"

    def __init__(self, name: str, value: int, flag: int):
        self.handle = 0
        self.name = name
        self.value = value
        self.flag = flag


class _Mutex:
    KIND = "mutex"

    def __init__(self, name: str):
        self.handle = 0
        self.name = name
        self.holder = 0
        self.hold_count = 0


class _Event:
    KIND = "event"

    def __init__(self, name: str, flag: int):
        self.handle = 0
        self.name = name
        self.flag = flag
        self.set = 0
        self.deleted = False  # graveyard flag: handle stays resolvable


class _Mailbox:
    KIND = "mb"

    def __init__(self, name: str, size: int):
        self.handle = 0
        self.name = name
        self.size = size
        self.msgs: List[int] = []


class _MsgQueue:
    KIND = "mq"

    def __init__(self, name: str, msg_size: int, max_msgs: int,
                 storage_addr: int):
        self.handle = 0
        self.name = name
        self.msg_size = msg_size
        self.max_msgs = max_msgs
        self.storage_addr = storage_addr
        self.count = 0
        self.head = 0
        self.tail = 0


class _MemPool:
    KIND = "mp"

    def __init__(self, name: str, block_count: int, block_size: int,
                 storage_addr: int):
        self.handle = 0
        self.name = name
        self.block_count = block_count
        self.block_size = block_size
        self.storage_addr = storage_addr
        self.free_blocks = list(range(block_count))
        self.deleted = False  # graveyard flag (bug #7 food)


class _MpBlock:
    KIND = "mpblock"

    def __init__(self, pool: "_MemPool", index: int):
        self.handle = 0
        self.pool = pool
        self.index = index
        self.freed = False


class _Device:
    KIND = "device"

    def __init__(self, name: str, dev_type: str):
        self.handle = 0
        self.name = name
        self.dev_type = dev_type
        self.open_count = 0
        self.registered = True
        self.ops_valid = True  # cleared on unregister: the stale pointer


class _HeapRef:
    KIND = "mem"

    def __init__(self, addr: int, size: int):
        self.handle = 0
        self.addr = addr
        self.size = size
        self.freed = False


class _ServiceSlot:
    def __init__(self, slot: int):
        self.slot = slot
        self.node = DListNode(owner=self)
        self.registered = False


class RtThreadKernel(CanBusLadder, ShellInterpreter, EmbeddedKernel):
    """RT-Thread v5-flavoured kernel."""

    NAME = "rt-thread"
    VERSION = "v5.0-repro"
    BOOT_BANNER = "- RT -     Thread Operating System (repro build)"
    EXCEPTION_SYMBOL = "common_exception"
    SHELL_PROMPT = "msh"
    ASSERT_LOG_FORMAT = "({expr}) assertion failed at function:{loc}"
    PANIC_LOG_FORMAT = "BUG: unexpected stop: {cause} ({detail})"

    def __init__(self, ctx, config=None):
        super().__init__(ctx, config)
        self.smem: Optional[SmallMem] = None
        self.handles: Dict[int, object] = {}
        self._next_handle = 1
        self.tick = 0
        self.threads: List[_Thread] = []
        self.current_thread: Optional[_Thread] = None
        self.containers: Dict[int, Dict[str, int]] = {}  # type -> name -> handle
        self.heap_lock_depth = 0
        self.service_list = DList()
        self.service_slots = [_ServiceSlot(i) for i in range(8)]
        self.service_list_corrupt = False
        self.console: Optional[_Device] = None

    # -- boot -------------------------------------------------------------------

    def boot_os(self) -> None:
        layout = self.ctx.layout
        self.smem = SmallMem(self.ctx.ram, layout.kernel_heap_base,
                             layout.kernel_heap_size)
        main = _Thread("main", self.smem.malloc(512), 512, 10, 10)
        main.state = "ready"
        self._register(main)
        self.threads.append(main)
        self.current_thread = main
        self.console = _Device("uart0", "serial")
        self._register(self.console)
        self._container_put(OT_DEVICE, "uart0", self.console.handle)
        self.ctx.kprintf("rt_smem heap ready; console on uart0")

    # -- plumbing -----------------------------------------------------------------

    def _register(self, obj):
        handle = self._next_handle
        self._next_handle += 1
        obj.handle = handle
        self.handles[handle] = obj
        return obj

    def _lookup(self, handle: int, kind: str):
        obj = self.handles.get(handle)
        if obj is None or obj.KIND != kind:
            return None
        return obj

    def _container_put(self, otype: int, name: str, handle: int) -> None:
        self.containers.setdefault(otype, {})[name] = handle

    def _container_del(self, otype: int, name: str) -> None:
        self.containers.get(otype, {}).pop(name, None)

    # -- console / serial chain (Figure 6) ---------------------------------------------

    @kfunc(module="serial", sites=8)
    def _serial_poll_tx(self, device: _Device, text: str) -> int:
        """Polled serial transmit — the bottom of the Figure 6 stack."""
        # RT_ASSERT(serial != RT_NULL) passes: the pointer is non-NULL,
        # merely *stale*; the dereference of serial->ops->putc faults.
        if not device.ops_valid:
            self.ctx.cov(1)
            self.ctx.panic("bus fault in _serial_poll_tx",
                           "stale serial device: serial->ops->putc "
                           "dereferences freed memory")
        self.ctx.cov(2)
        self.ctx.uart.putline(text)
        self.ctx.cycles(10 + len(text) // 4)
        return len(text)

    @kfunc(module="serial", sites=6)
    def rt_serial_write(self, device: _Device, text: str) -> int:
        """serial.c:917 — forwards to the poll-mode transmitter."""
        self.k_assert(device is not None, "serial != RT_NULL",
                      "rt_serial_write")
        return self._serial_poll_tx(device, text)

    @kfunc(module="device", sites=8)
    def _rt_device_write(self, device: _Device, text: str) -> int:
        """device.c:396 — dispatch a write to the driver."""
        if device.dev_type == "serial":
            self.ctx.cov(1)
            return self.rt_serial_write(device, text)
        self.ctx.cov(2)
        self.ctx.cycles(len(text))
        return len(text)

    @kfunc(module="kernel", sites=4)
    def _kputs(self, text: str) -> None:
        """kservice.c:298."""
        if self.console is not None:
            self._rt_device_write(self.console, text)

    @kfunc(module="kernel", sites=4)
    def rt_kprintf(self, text: str) -> None:
        """kservice.c:349 — kernel console output."""
        self._kputs(text)

    # -- scheduler -----------------------------------------------------------------------

    @kfunc(module="sched", sites=10)
    def rt_schedule(self) -> None:
        """Pick the highest-priority ready thread (lower number wins)."""
        best: Optional[_Thread] = None
        for thread in self.threads:
            if thread.state != "ready":
                self.ctx.cov(1)
                continue
            if best is None or thread.priority < best.priority:
                self.ctx.cov(2)
                best = thread
        if best is None:
            self.ctx.cov(3)
            return
        if best is not self.current_thread:
            self.ctx.cov(4)
            self.ctx.cycles(12)
        self.current_thread = best
        best.run_count += 1

    @kfunc(module="sched", sites=6)
    def rt_tick_increase(self) -> None:
        self.tick += 1
        for thread in self.threads:
            if thread.state == "suspended" and thread.wake_tick and \
                    thread.wake_tick <= self.tick:
                self.ctx.cov(1)
                thread.state = "ready"
                thread.wake_tick = 0

    def idle_tick(self) -> None:
        self.rt_tick_increase()
        self.rt_schedule()

    # -- exception entry ---------------------------------------------------------------------

    @kfunc(module="kernel", sites=4)
    def common_exception(self, signal) -> None:
        """RT-Thread fatal-error entry point."""
        self._fatal_common(signal)

    # ======================= object API =======================

    @kapi(module="object", sites=10,
          args=[arg_int("otype", 0, 12), arg_str("name", 8)], ret="obj",
          doc="Initialise a kernel object into its class container.")
    def rt_object_init(self, otype: int, name: bytes) -> int:
        if not 1 <= otype <= 9:
            self.ctx.cov(1)
            return RT_EINVAL
        if len(self.handles) >= MAX_OBJECTS:
            self.ctx.cov(2)
            return RT_ERROR
        text = name.decode("latin1").rstrip("\x00")[:8]
        if not text:
            # Anonymous objects never enter a container.
            self.ctx.cov(5)
            return self._register(_RtObject(otype, "")).handle
        existing = self.containers.get(otype, {}).get(text)
        if existing is not None:
            stale = self.handles.get(existing)
            if stale is not None and not getattr(stale, "detached", False):
                self.ctx.cov(3)
                # Injected bug #8: re-initialising a live object trips the
                # container-membership assertion (log monitor, then hang).
                self.k_assert(False, "object != container_object",
                              "rt_object_init")
        obj = self._register(_RtObject(otype, text))
        self._container_put(otype, text, obj.handle)
        self.ctx.cov(4)
        return obj.handle

    @kapi(module="object", sites=6, args=[arg_res("obj", "obj")],
          doc="Detach an object from its container.")
    def rt_object_detach(self, obj: int) -> int:
        target = self._lookup(obj, "obj")
        if target is None:
            self.ctx.cov(1)
            return RT_EINVAL
        if target.detached:
            self.ctx.cov(2)
            return RT_ERROR
        target.detached = True
        self._container_del(target.otype, target.name)
        return RT_EOK

    @kapi(module="object", sites=8, args=[arg_res("obj", "obj")],
          doc="Class tag of an object.")
    def rt_object_get_type(self, obj: int) -> int:
        target = self._lookup(obj, "obj")
        if target is None:
            self.ctx.cov(1)
            return RT_EINVAL
        # Injected bug #5: the type field of a detached object is poisoned,
        # tripping the class-validity assertion (log monitor).
        self.k_assert(not target.detached,
                      "rt_object_get_type(object) < RT_Object_Class_Unknown",
                      "rt_object_get_type")
        self.ctx.cov(2)
        return target.otype

    @kapi(module="object", sites=8,
          args=[arg_str("name", 8), arg_int("otype", 1, 9)],
          doc="Find an object by name within a class container.")
    def rt_object_find(self, name: bytes, otype: int) -> int:
        text = name.decode("latin1").rstrip("\x00")[:8]
        handle = self.containers.get(otype, {}).get(text)
        if handle is None:
            self.ctx.cov(1)
            return 0
        self.ctx.cov(2)
        return handle

    # ======================= thread API =======================

    @kapi(module="thread", sites=10,
          args=[arg_str("name", 8), arg_int("stack_size", 64, 4096),
                arg_int("priority", 0, 40), arg_int("tick", 1, 32)],
          ret="thread", doc="Create a thread (not yet started).")
    def rt_thread_create(self, name: bytes, stack_size: int, priority: int,
                         tick: int) -> int:
        if priority > MAX_PRIORITY:
            self.ctx.cov(1)
            return RT_EINVAL
        stack = self.smem.malloc(stack_size)
        if stack == 0:
            self.ctx.cov(2)
            return RT_ERROR
        thread = _Thread(name.decode("latin1")[:8] or "t", stack, stack_size,
                         priority, tick)
        self._register(thread)
        self.threads.append(thread)
        self.ctx.cov(3)
        return thread.handle

    @kapi(module="thread", sites=6, args=[arg_res("thread", "thread")],
          doc="Start a created thread.")
    def rt_thread_startup(self, thread: int) -> int:
        target = self._lookup(thread, "thread")
        if target is None:
            self.ctx.cov(1)
            return RT_EINVAL
        if target.state != "init":
            self.ctx.cov(2)
            return RT_ERROR
        target.state = "ready"
        self.rt_schedule()
        return RT_EOK

    @kapi(module="thread", sites=6, args=[arg_int("ticks", 0, 100)],
          doc="Delay the current thread.")
    def rt_thread_delay(self, ticks: int) -> int:
        if ticks > 1000:
            self.ctx.cov(1)
            self.ctx.stall("rt_thread_delay parked the system")
        for _ in range(min(ticks, 64)):
            self.rt_tick_increase()
        self.rt_schedule()
        return RT_EOK

    @kapi(module="thread", sites=8, args=[arg_res("thread", "thread")],
          doc="Delete a thread and release its stack.")
    def rt_thread_delete(self, thread: int) -> int:
        target = self._lookup(thread, "thread")
        if target is None:
            self.ctx.cov(1)
            return RT_EINVAL
        if target.name == "main":
            self.ctx.cov(2)
            return RT_ERROR
        target.state = "deleted"
        self.threads.remove(target)
        self.smem.free(target.stack_addr)
        del self.handles[target.handle]
        if self.current_thread is target:
            self.ctx.cov(3)
            self.current_thread = None
            self.rt_schedule()
        return RT_EOK

    @kapi(module="thread", sites=4, doc="Yield the processor.")
    def rt_thread_yield(self) -> int:
        self.rt_schedule()
        return RT_EOK

    @kapi(module="thread", sites=8,
          args=[arg_res("thread", "thread"), arg_int("cmd", 0, 4),
                arg_int("arg", 0, 40)],
          doc="Thread control: 0=setprio 1=suspend 2=resume 3=info.")
    def rt_thread_control(self, thread: int, cmd: int, arg: int) -> int:
        target = self._lookup(thread, "thread")
        if target is None:
            self.ctx.cov(1)
            return RT_EINVAL
        if cmd == 0:
            if arg > MAX_PRIORITY:
                self.ctx.cov(2)
                return RT_EINVAL
            target.priority = arg
        elif cmd == 1:
            self.ctx.cov(3)
            target.state = "suspended"
        elif cmd == 2:
            if target.state == "suspended":
                self.ctx.cov(4)
                target.state = "ready"
        elif cmd == 3:
            return target.priority
        else:
            self.ctx.cov(5)
            return RT_EINVAL
        self.rt_schedule()
        return RT_EOK

    # ======================= heap API =======================

    @kfunc(module="heap", sites=4)
    def _heap_lock(self) -> None:
        """Take the allocator lock.

        Injected bug #9 manifests here: a double free leaks the lock
        (see :meth:`rt_free`), so the next heap operation recurses on it.
        """
        if self.heap_lock_depth > 0:
            self.ctx.cov(1)
            self.ctx.panic("recursive heap lock in _heap_lock",
                           "heap lock leaked by an earlier failed free")
        self.heap_lock_depth += 1

    @kfunc(module="heap", sites=2)
    def _heap_unlock(self) -> None:
        self.heap_lock_depth = max(self.heap_lock_depth - 1, 0)

    @kapi(module="heap", sites=8, args=[arg_int("size", 0, 8192)],
          ret="mem", doc="Allocate from the small-mem heap.")
    def rt_malloc(self, size: int) -> int:
        self._heap_lock()
        addr = self.smem.malloc(size)
        self._heap_unlock()
        if addr == 0:
            self.ctx.cov(1)
            return 0
        ref = self._register(_HeapRef(addr, size))
        return ref.handle

    @kapi(module="heap", sites=8, args=[arg_res("mem", "mem")],
          doc="Return an allocation to the heap.")
    def rt_free(self, mem: int) -> int:
        ref = self._lookup(mem, "mem")
        if ref is None:
            self.ctx.cov(1)
            return RT_EINVAL
        self._heap_lock()
        if ref.freed:
            self.ctx.cov(2)
            # Injected bug #9 (cause): early return on a double free
            # leaks the heap lock — the panic fires on the *next* heap
            # operation, inside _heap_lock().
            return RT_ERROR
        ref.freed = True
        self.smem.free(ref.addr)
        self._heap_unlock()
        return RT_EOK

    @kapi(module="heap", sites=10,
          args=[arg_res("mem", "mem"), arg_int("size", 0, 8192)],
          ret="mem", doc="Resize an allocation.")
    def rt_realloc(self, mem: int, size: int) -> int:
        ref = self._lookup(mem, "mem")
        if ref is None or ref.freed:
            self.ctx.cov(1)
            return 0
        if size == 0:
            self.ctx.cov(2)
            self.rt_free(mem)
            return 0
        self._heap_lock()
        if size > ref.size:
            self.ctx.cov(4)  # grow
        else:
            self.ctx.cov(5)  # shrink
        addr = self.smem.malloc(size)
        if addr == 0:
            self.ctx.cov(3)
            self._heap_unlock()
            return 0
        self.smem.free(ref.addr)
        ref.freed = True
        self._heap_unlock()
        new_ref = self._register(_HeapRef(addr, size))
        return new_ref.handle

    @kapi(module="heap", sites=4, doc="Print heap usage to the console.")
    def rt_memory_info(self) -> int:
        self.rt_kprintf(f"memory: used {self.smem.used_bytes} "
                        f"max {self.smem.max_used}")
        return self.smem.used_bytes

    @kapi(module="heap", sites=8, args=[arg_str("name", 32)],
          doc="Rename the small-mem heap (16-byte name field).")
    def rt_smem_setname(self, name: bytes) -> int:
        text = name.rstrip(b"\x00")
        # Injected bug #11: the copy is unbounded (strcpy into the 16-byte
        # name field); a long name smashes the guard word, which the
        # post-write validation turns into a panic.  Like strcpy, the
        # terminating NUL is written too.
        self.smem.raw_name_write(text + b"\x00")
        self.ctx.cov(1)
        if not self.smem.guard_intact():
            self.ctx.cov(2)
            self.ctx.panic("heap control block corrupt in rt_smem_setname",
                           f"name of {len(text)} bytes overran the name "
                           f"field into the guard word")
        return RT_EOK

    # ======================= memory pool API =======================

    @kapi(module="mempool", sites=8,
          args=[arg_str("name", 8), arg_int("block_count", 1, 32),
                arg_int("block_size", 8, 256)],
          ret="mp", doc="Create a fixed-block memory pool.")
    def rt_mp_create(self, name: bytes, block_count: int,
                     block_size: int) -> int:
        storage = self.smem.malloc(block_count * block_size)
        if storage == 0:
            self.ctx.cov(1)
            return 0
        pool = _MemPool(name.decode("latin1")[:8] or "mp", block_count,
                        block_size, storage)
        self._register(pool)
        self.ctx.cov(2)
        return pool.handle

    @kapi(module="mempool", sites=10,
          args=[arg_res("mp", "mp"), arg_int("timeout", 0, 50)],
          ret="mpblock", doc="Allocate one block from a pool.")
    def rt_mp_alloc(self, mp: int, timeout: int) -> int:
        pool = self._lookup(mp, "mp")
        if pool is None:
            self.ctx.cov(1)
            return 0
        # Injected bug #7: the deleted-pool check is missing; the control
        # block was freed by rt_mp_delete and this dereference faults.
        if pool.deleted:
            self.ctx.cov(2)
            self.ctx.panic("use-after-free in rt_mp_alloc",
                           f"pool {pool.name!r} control block was freed "
                           f"by rt_mp_delete")
        if not pool.free_blocks:
            self.ctx.cov(3)
            if timeout > 1000:
                self.ctx.cov(4)
                self.ctx.stall("rt_mp_alloc blocked forever on empty pool")
            return 0
        index = pool.free_blocks.pop()
        if not pool.free_blocks and pool.block_count >= 8:
            self.ctx.cov(5)  # a large pool fully drained
        block = self._register(_MpBlock(pool, index))
        self.ctx.ram.write(pool.storage_addr + index * pool.block_size,
                           b"\xAB")
        return block.handle

    @kapi(module="mempool", sites=8, args=[arg_res("block", "mpblock")],
          doc="Return a block to its pool.")
    def rt_mp_free(self, block: int) -> int:
        blk = self._lookup(block, "mpblock")
        if blk is None:
            self.ctx.cov(1)
            return RT_EINVAL
        if blk.freed or blk.pool.deleted:
            self.ctx.cov(2)
            return RT_ERROR
        blk.freed = True
        blk.pool.free_blocks.append(blk.index)
        return RT_EOK

    @kapi(module="mempool", sites=6, args=[arg_res("mp", "mp")],
          doc="Delete a memory pool.")
    def rt_mp_delete(self, mp: int) -> int:
        pool = self._lookup(mp, "mp")
        if pool is None:
            self.ctx.cov(1)
            return RT_EINVAL
        if pool.deleted:
            self.ctx.cov(2)
            return RT_ERROR
        pool.deleted = True  # handle stays resolvable: the stale pointer
        self.smem.free(pool.storage_addr)
        return RT_EOK

    # ======================= IPC: semaphore / mutex =======================

    @kapi(module="ipc", sites=6,
          args=[arg_str("name", 8), arg_int("value", 0, 16),
                arg_int("flag", 0, 1)],
          ret="rtsem", doc="Create a semaphore.")
    def rt_sem_create(self, name: bytes, value: int, flag: int) -> int:
        sem = _Semaphore(name.decode("latin1")[:8] or "sem", value, flag)
        self._register(sem)
        return sem.handle

    @kapi(module="ipc", sites=8,
          args=[arg_res("sem", "rtsem"), arg_int("timeout", 0, 50)],
          doc="Take a semaphore.")
    def rt_sem_take(self, sem: int, timeout: int) -> int:
        target = self._lookup(sem, "sem")
        if target is None:
            self.ctx.cov(1)
            return RT_EINVAL
        if target.value == 0:
            self.ctx.cov(2)
            if timeout > 1000:
                self.ctx.cov(3)
                self.ctx.stall("rt_sem_take blocked forever")
            return RT_ETIMEOUT
        target.value -= 1
        return RT_EOK

    @kapi(module="ipc", sites=5, args=[arg_res("sem", "rtsem")],
          doc="Release a semaphore.")
    def rt_sem_release(self, sem: int) -> int:
        target = self._lookup(sem, "sem")
        if target is None:
            self.ctx.cov(1)
            return RT_EINVAL
        target.value += 1
        self.rt_schedule()
        return RT_EOK

    @kapi(module="ipc", sites=5, args=[arg_res("sem", "rtsem")],
          doc="Delete a semaphore.")
    def rt_sem_delete(self, sem: int) -> int:
        target = self._lookup(sem, "sem")
        if target is None:
            self.ctx.cov(1)
            return RT_EINVAL
        del self.handles[target.handle]
        return RT_EOK

    @kapi(module="ipc", sites=5, args=[arg_str("name", 8)], ret="rtmutex",
          doc="Create a mutex.")
    def rt_mutex_create(self, name: bytes) -> int:
        mutex = _Mutex(name.decode("latin1")[:8] or "mtx")
        self._register(mutex)
        return mutex.handle

    @kapi(module="ipc", sites=8,
          args=[arg_res("mutex", "rtmutex"), arg_int("timeout", 0, 50)],
          doc="Take a mutex (recursive for the holder).")
    def rt_mutex_take(self, mutex: int, timeout: int) -> int:
        target = self._lookup(mutex, "mutex")
        if target is None:
            self.ctx.cov(1)
            return RT_EINVAL
        me = self.current_thread.handle if self.current_thread else 0
        if target.holder in (0, me):
            self.ctx.cov(2)
            target.holder = me
            target.hold_count += 1
            if target.hold_count >= 3:
                self.ctx.cov(4)  # deep recursive hold
            return RT_EOK
        if timeout > 1000:
            self.ctx.cov(3)
            self.ctx.stall("rt_mutex_take blocked forever")
        return RT_ETIMEOUT

    @kapi(module="ipc", sites=6, args=[arg_res("mutex", "rtmutex")],
          doc="Release a mutex.")
    def rt_mutex_release(self, mutex: int) -> int:
        target = self._lookup(mutex, "mutex")
        if target is None:
            self.ctx.cov(1)
            return RT_EINVAL
        me = self.current_thread.handle if self.current_thread else 0
        if target.holder != me:
            self.ctx.cov(2)
            return RT_ERROR
        target.hold_count -= 1
        if target.hold_count <= 0:
            target.holder = 0
            target.hold_count = 0
        return RT_EOK

    # ======================= IPC: event =======================

    @kapi(module="ipc", sites=5,
          args=[arg_str("name", 8), arg_int("flag", 0, 3)], ret="rtevent",
          doc="Create an event set.")
    def rt_event_create(self, name: bytes, flag: int) -> int:
        event = _Event(name.decode("latin1")[:8] or "evt", flag)
        self._register(event)
        return event.handle

    @kapi(module="ipc", sites=8,
          args=[arg_res("event", "rtevent"), arg_int("set", 0, 0xFFFFFF)],
          doc="Send (OR in) event bits.")
    def rt_event_send(self, event: int, event_set: int) -> int:
        target = self._lookup(event, "event")
        if target is None:
            self.ctx.cov(1)
            return RT_EINVAL
        # Injected bug #10: no liveness check — a deleted event's control
        # block has been freed; the waiter-list walk dereferences garbage.
        if target.deleted:
            self.ctx.cov(2)
            self.ctx.panic("illegal control block in rt_event_send",
                           f"event {target.name!r} was deleted; waiter "
                           f"list pointer is dangling")
        if event_set == 0:
            self.ctx.cov(3)
            return RT_EINVAL
        if bin(target.set & event_set).count("1") >= 2:
            self.ctx.cov(4)  # re-sending bits that are already pending
        target.set |= event_set & 0xFFFFFF
        self.rt_schedule()
        return RT_EOK

    @kapi(module="ipc", sites=10,
          args=[arg_res("event", "rtevent"), arg_int("set", 1, 0xFFFFFF),
                arg_int("option", 1, 7), arg_int("timeout", 0, 50)],
          doc="Receive event bits (AND/OR, optional CLEAR).")
    def rt_event_recv(self, event: int, event_set: int, option: int,
                      timeout: int) -> int:
        target = self._lookup(event, "event")
        if target is None or target.deleted:
            self.ctx.cov(1)
            return RT_EINVAL
        if not option & (EVENT_AND | EVENT_OR):
            self.ctx.cov(2)
            return RT_EINVAL
        if option & EVENT_AND:
            satisfied = (target.set & event_set) == event_set
        else:
            satisfied = (target.set & event_set) != 0
        if not satisfied:
            self.ctx.cov(3)
            if timeout > 1000:
                self.ctx.cov(4)
                self.ctx.stall("rt_event_recv blocked forever")
            return RT_ETIMEOUT
        received = target.set & event_set
        if option & EVENT_CLEAR:
            self.ctx.cov(5)
            target.set &= ~event_set
        return received

    @kapi(module="ipc", sites=5, args=[arg_res("event", "rtevent")],
          doc="Delete an event set.")
    def rt_event_delete(self, event: int) -> int:
        target = self._lookup(event, "event")
        if target is None or target.deleted:
            self.ctx.cov(1)
            return RT_EINVAL
        target.deleted = True  # control block freed; handle stays (bug #10)
        return RT_EOK

    # ======================= IPC: mailbox / message queue =======================

    @kapi(module="ipc", sites=6,
          args=[arg_str("name", 8), arg_int("size", 1, 16)], ret="rtmb",
          doc="Create a mailbox of machine words.")
    def rt_mb_create(self, name: bytes, size: int) -> int:
        mailbox = _Mailbox(name.decode("latin1")[:8] or "mb", size)
        self._register(mailbox)
        return mailbox.handle

    @kapi(module="ipc", sites=7,
          args=[arg_res("mb", "rtmb"), arg_int("value", 0, 1 << 31)],
          doc="Post a word to a mailbox.")
    def rt_mb_send(self, mb: int, value: int) -> int:
        target = self._lookup(mb, "mb")
        if target is None:
            self.ctx.cov(1)
            return RT_EINVAL
        if len(target.msgs) >= target.size:
            self.ctx.cov(2)
            return RT_EFULL
        target.msgs.append(value)
        return RT_EOK

    @kapi(module="ipc", sites=7,
          args=[arg_res("mb", "rtmb"), arg_int("timeout", 0, 50)],
          doc="Receive a word from a mailbox.")
    def rt_mb_recv(self, mb: int, timeout: int) -> int:
        target = self._lookup(mb, "mb")
        if target is None:
            self.ctx.cov(1)
            return RT_EINVAL
        if not target.msgs:
            self.ctx.cov(2)
            if timeout > 1000:
                self.ctx.cov(3)
                self.ctx.stall("rt_mb_recv blocked forever")
            return RT_ETIMEOUT
        return target.msgs.pop(0) & 0x7FFFFFFF

    @kapi(module="ipc", sites=5, args=[arg_res("mb", "rtmb")],
          doc="Delete a mailbox.")
    def rt_mb_delete(self, mb: int) -> int:
        target = self._lookup(mb, "mb")
        if target is None:
            self.ctx.cov(1)
            return RT_EINVAL
        del self.handles[target.handle]
        return RT_EOK

    @kapi(module="ipc", sites=8,
          args=[arg_str("name", 8), arg_int("msg_size", 4, 64),
                arg_int("max_msgs", 1, 16)],
          ret="rtmq", doc="Create a message queue.")
    def rt_mq_create(self, name: bytes, msg_size: int, max_msgs: int) -> int:
        storage = self.smem.malloc(msg_size * max_msgs)
        if storage == 0:
            self.ctx.cov(1)
            return 0
        queue = _MsgQueue(name.decode("latin1")[:8] or "mq", msg_size,
                          max_msgs, storage)
        self._register(queue)
        return queue.handle

    @kapi(module="ipc", sites=8,
          args=[arg_res("mq", "rtmq"), arg_buf("data", 64)],
          doc="Send a message.")
    def rt_mq_send(self, mq: int, data: bytes) -> int:
        target = self._lookup(mq, "mq")
        if target is None:
            self.ctx.cov(1)
            return RT_EINVAL
        if target.count >= target.max_msgs:
            self.ctx.cov(2)
            return RT_EFULL
        payload = data[:target.msg_size].ljust(target.msg_size, b"\x00")
        self.ctx.ram.write(target.storage_addr + target.head * target.msg_size,
                           payload)
        target.head = (target.head + 1) % target.max_msgs
        target.count += 1
        if target.count == target.max_msgs and target.msg_size >= 32:
            self.ctx.cov(4)  # wide queue filled completely
        return RT_EOK

    @kapi(module="ipc", sites=8,
          args=[arg_res("mq", "rtmq"), arg_int("timeout", 0, 50)],
          doc="Receive a message.")
    def rt_mq_recv(self, mq: int, timeout: int) -> int:
        target = self._lookup(mq, "mq")
        if target is None:
            self.ctx.cov(1)
            return RT_EINVAL
        if target.count == 0:
            self.ctx.cov(2)
            if timeout > 1000:
                self.ctx.cov(3)
                self.ctx.stall("rt_mq_recv blocked forever")
            return RT_ETIMEOUT
        self.ctx.ram.read(target.storage_addr + target.tail * target.msg_size,
                          target.msg_size)
        target.tail = (target.tail + 1) % target.max_msgs
        target.count -= 1
        return RT_EOK

    @kapi(module="ipc", sites=5, args=[arg_res("mq", "rtmq")],
          doc="Delete a message queue.")
    def rt_mq_delete(self, mq: int) -> int:
        target = self._lookup(mq, "mq")
        if target is None:
            self.ctx.cov(1)
            return RT_EINVAL
        self.smem.free(target.storage_addr)
        del self.handles[target.handle]
        return RT_EOK

    # ======================= service registry (bug #6) =======================

    @kfunc(module="service", sites=4)
    def rt_list_isempty(self) -> int:
        """kservice list probe — panics on a corrupted ring (bug #6)."""
        if self.service_list_corrupt:
            self.ctx.cov(1)
            self.ctx.panic("list corruption in rt_list_isempty",
                           "service list node unlinked twice; prev pointer "
                           "dangles")
        return 1 if self.service_list.is_empty() else 0

    @kapi(module="service", sites=6, args=[arg_int("slot", 0, 9)],
          doc="Register a system service slot.")
    def rt_service_register(self, slot: int) -> int:
        if not 0 <= slot < len(self.service_slots):
            self.ctx.cov(1)
            return RT_EINVAL
        service = self.service_slots[slot]
        if service.registered:
            self.ctx.cov(2)
            return RT_ERROR
        self.service_list.push_back(service.node)
        service.registered = True
        return RT_EOK

    @kapi(module="service", sites=8, args=[arg_int("slot", 0, 9)],
          doc="Unregister a system service slot.")
    def rt_service_unregister(self, slot: int) -> int:
        if not 0 <= slot < len(self.service_slots):
            self.ctx.cov(1)
            return RT_EINVAL
        service = self.service_slots[slot]
        # Injected bug #6 (cause): the registered check is missing, so a
        # double unregister splices a free node out of nothing and leaves
        # the ring inconsistent.  The panic fires later, in
        # rt_list_isempty(), when the walk trips on the damage.
        if not service.registered:
            self.ctx.cov(2)
            self.service_list_corrupt = True
        service.node.unlink()
        service.registered = False
        return RT_EOK

    @kapi(module="service", sites=6, doc="Poll registered services.")
    def rt_service_poll(self) -> int:
        if self.rt_list_isempty():
            self.ctx.cov(1)
            return 0
        count = 0
        for _node in self.service_list:
            self.ctx.cov(2)
            self.ctx.cycles(8)
            count += 1
        return count

    # ======================= device API =======================

    @kapi(module="device", sites=6,
          args=[arg_str("name", 8, candidates=("uart0", "uart1", "spi0"))],
          ret="device", doc="Find a registered device by name.")
    def rt_device_find(self, name: bytes) -> int:
        text = name.decode("latin1").rstrip("\x00")[:8]
        handle = self.containers.get(OT_DEVICE, {}).get(text)
        if handle is None:
            self.ctx.cov(1)
            return 0
        return handle

    @kapi(module="device", sites=6,
          args=[arg_res("device", "device"), arg_int("oflag", 0, 3)],
          doc="Open a device.")
    def rt_device_open(self, device: int, oflag: int) -> int:
        target = self._lookup(device, "device")
        if target is None or not target.registered:
            self.ctx.cov(1)
            return RT_EINVAL
        target.open_count += 1
        return RT_EOK

    @kapi(module="device", sites=6, args=[arg_res("device", "device")],
          doc="Close a device.")
    def rt_device_close(self, device: int) -> int:
        target = self._lookup(device, "device")
        if target is None:
            self.ctx.cov(1)
            return RT_EINVAL
        if target.open_count == 0:
            self.ctx.cov(2)
            return RT_ERROR
        target.open_count -= 1
        return RT_EOK

    @kapi(module="device", sites=7,
          args=[arg_res("device", "device"), arg_buf("data", 128)],
          doc="Write bytes to a device.")
    def rt_device_write(self, device: int, data: bytes) -> int:
        target = self._lookup(device, "device")
        if target is None:
            self.ctx.cov(1)
            return RT_EINVAL
        return self._rt_device_write(target,
                                     data.decode("latin1", "replace"))

    @kapi(module="device", sites=6,
          args=[arg_res("device", "device"), arg_int("length", 1, 128)],
          doc="Read bytes from a device.")
    def rt_device_read(self, device: int, length: int) -> int:
        target = self._lookup(device, "device")
        if target is None or not target.registered:
            self.ctx.cov(1)
            return RT_EINVAL
        self.ctx.cycles(length)
        return 0  # nothing buffered on the virtual wire

    @kapi(module="device", sites=6, args=[arg_res("device", "device")],
          doc="Unregister a device (its ops table is freed).")
    def rt_device_unregister(self, device: int) -> int:
        target = self._lookup(device, "device")
        if target is None or not target.registered:
            self.ctx.cov(1)
            return RT_EINVAL
        target.registered = False
        target.ops_valid = False  # the stale pointer behind bug #12
        self._container_del(OT_DEVICE, target.name)
        return RT_EOK

    # ======================= SAL sockets (Figure 6) =======================

    @kfunc(module="net", sites=8)
    def sal_socket(self, domain: int, sock_type: int, protocol: int) -> int:
        """sal_socket.c:1059 — the socket-abstraction-layer entry."""
        if domain not in (2, 10):
            self.ctx.cov(1)
            # Unusual-but-tolerated domains get logged: the console write
            # that Figure 6 shows blowing up on a stale serial device.
            self.rt_kprintf(f"[sal] socket domain 0x{domain:x} "
                            f"falls back to AF_INET")
        if sock_type not in (1, 2, 3):
            self.ctx.cov(2)
            return RT_EINVAL
        if protocol not in (0, 6, 17):
            self.ctx.cov(3)
            return RT_EINVAL
        self.rt_kprintf("[sal] create socket")
        sock = self._register(_RtObject(OT_DEVICE, "sock"))
        self.ctx.cov(4)
        return sock.handle

    @kapi(module="net", sites=6,
          args=[arg_int("domain", 0, 0xFFFF), arg_int("type", 0, 8),
                arg_int("protocol", 0, 32)],
          ret="sock", doc="net_sockets.c:244 — BSD socket().")
    def socket(self, domain: int, sock_type: int, protocol: int) -> int:
        result = self.sal_socket(domain, sock_type, protocol)
        if result < 0:
            self.ctx.cov(1)
            return RT_ERROR
        return result

    @kapi(module="net", sites=6,
          args=[arg_res("sock", "sock"), arg_int("port", 0, 65535)],
          doc="Bind a socket to a local port.")
    def bind(self, sock: int, port: int) -> int:
        target = self._lookup(sock, "obj")
        if target is None or target.name != "sock":
            self.ctx.cov(1)
            return RT_EINVAL
        if port == 0:
            self.ctx.cov(2)
            return RT_EINVAL
        return RT_EOK

    @kapi(module="net", sites=5, args=[arg_res("sock", "sock")],
          doc="Close a socket.")
    def closesocket(self, sock: int) -> int:
        target = self._lookup(sock, "obj")
        if target is None or target.name != "sock":
            self.ctx.cov(1)
            return RT_EINVAL
        del self.handles[target.handle]
        return RT_EOK

    # ======================= pseudo syscalls =======================

    @kapi(module="pseudo", sites=8, pseudo=True,
          args=[arg_int("domain", 0, 0xFFFF), arg_int("type", 0, 8),
                arg_int("protocol", 0, 32), arg_int("port", 0, 65535)],
          ret="sock",
          doc="Create a socket and bind it (the Figure 6 reproducer).")
    def syz_create_bind_socket(self, domain: int, sock_type: int,
                               protocol: int, port: int) -> int:
        sock = self.socket(domain, sock_type, protocol)
        if sock < 0:
            self.ctx.cov(1)
            return RT_ERROR
        if port:
            self.ctx.cov(2)
            self.bind(sock, port)
        return sock

    @kapi(module="pseudo", sites=10, pseudo=True,
          args=[arg_int("n", 1, 8), arg_int("kind", 0, 3)],
          doc="A burst of IPC traffic across fresh objects.")
    def syz_ipc_storm(self, n: int, kind: int) -> int:
        n = max(0, min(n, 24))
        done = 0
        if kind == 0:
            sem = self.rt_sem_create(b"storm", 1, 0)
            for _ in range(n):
                if self.rt_sem_take(sem, 0) == RT_EOK:
                    self.ctx.cov(1)
                    self.rt_sem_release(sem)
                    done += 1
            self.rt_sem_delete(sem)
        elif kind == 1:
            event = self.rt_event_create(b"storm", 0)
            for i in range(n):
                if self.rt_event_send(event, 1 << (i % 24)) == RT_EOK:
                    self.ctx.cov(2)
                    done += 1
            self.rt_event_recv(event, (1 << n) - 1 or 1, EVENT_OR, 0)
            self.rt_event_delete(event)
        elif kind == 2:
            mailbox = self.rt_mb_create(b"storm", max(n, 1))
            for i in range(n):
                if self.rt_mb_send(mailbox, i * 3) == RT_EOK:
                    self.ctx.cov(3)
                    done += 1
            while self.rt_mb_recv(mailbox, 0) >= 0:
                pass
            self.rt_mb_delete(mailbox)
        else:
            queue = self.rt_mq_create(b"storm", 8, max(n, 1))
            if queue > 0:
                for i in range(n):
                    if self.rt_mq_send(queue, bytes([i & 0xFF]) * 8) == RT_EOK:
                        self.ctx.cov(4)
                        done += 1
                while self.rt_mq_recv(queue, 0) == RT_EOK:
                    pass
                self.rt_mq_delete(queue)
        return done

    @kapi(module="pseudo", sites=8, pseudo=True,
          args=[arg_int("n", 1, 5), arg_int("prio", 0, 31),
                arg_int("ticks", 0, 16)],
          doc="Thread create/start/delay/delete lifecycle burst.")
    def syz_thread_lifecycle(self, n: int, prio: int, ticks: int) -> int:
        created = []
        for i in range(n):
            handle = self.rt_thread_create(b"burst", 256, (prio + i) % 32, 4)
            if handle > 0:
                self.ctx.cov(1)
                self.rt_thread_startup(handle)
                created.append(handle)
        self.rt_thread_delay(ticks)
        for handle in created:
            self.rt_thread_delete(handle)
        return len(created)
