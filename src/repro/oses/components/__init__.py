"""Optional application components linkable into any kernel.

These are the application-level fuzz targets of §5.4.2 (Table 4, Figure
8): an HTTP server and a JSON codec, the two modules GDBFuzz/SHIFT are
compared on.  They attach to whichever kernel the build config names —
the paper runs them on FreeRTOS on an ESP32/STM32.
"""

from typing import Dict, Type

from repro.oses.common.kernel import KernelComponent


def component_registry() -> Dict[str, Type[KernelComponent]]:
    """name -> component class registry (lazy to avoid import cycles)."""
    from repro.oses.components.json_codec import JsonCodec
    from repro.oses.components.http_server import HttpServer

    return {
        JsonCodec.NAME: JsonCodec,
        HttpServer.NAME: HttpServer,
    }
