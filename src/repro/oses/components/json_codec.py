"""A cJSON-flavoured JSON codec component.

A from-scratch recursive-descent parser and encoder over raw bytes —
the classic embedded JSON library shape: bounded nesting, no floats
beyond simple decimals, handle-based document management.  This is one of
the two modules instrumented for the Table 4 comparison.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

from repro.oses.common.api import arg_buf, arg_int, arg_res, kapi
from repro.oses.common.kernel import KernelComponent

MAX_DEPTH = 8
MAX_STRING = 256

JSON_NULL = 0
JSON_BOOL = 1
JSON_NUMBER = 2
JSON_STRING = 3
JSON_ARRAY = 4
JSON_OBJECT = 5

JsonValue = Union[None, bool, int, str, list, dict]


class _ParseError(Exception):
    """Internal: malformed input (maps to an error return, not a crash)."""


class JsonCodec(KernelComponent):
    """Handle-based JSON parse/encode APIs."""

    NAME = "json"

    def __init__(self, kernel):
        super().__init__(kernel)
        self.docs: Dict[int, JsonValue] = {}
        self._next_doc = 1
        self.parse_errors = 0

    def on_boot(self) -> None:
        self.ctx.kprintf("json codec ready (cJSON-compatible subset)")

    # -- internals -----------------------------------------------------------

    def _store(self, value: JsonValue) -> int:
        handle = self._next_doc
        self._next_doc += 1
        self.docs[handle] = value
        return handle

    def _parse_value(self, data: bytes, pos: int,
                     depth: int) -> Tuple[JsonValue, int]:
        if depth > MAX_DEPTH:
            self.ctx.cov(1)
            raise _ParseError("nesting too deep")
        pos = self._skip_ws(data, pos)
        if pos >= len(data):
            raise _ParseError("unexpected end of input")
        char = data[pos:pos + 1]
        if char == b"{":
            self.ctx.cov(2)
            return self._parse_object(data, pos, depth)
        if char == b"[":
            self.ctx.cov(3)
            return self._parse_array(data, pos, depth)
        if char == b'"':
            self.ctx.cov(4)
            text, pos = self._parse_string(data, pos)
            return text, pos
        if data.startswith(b"true", pos):
            self.ctx.cov(5)
            return True, pos + 4
        if data.startswith(b"false", pos):
            self.ctx.cov(5)
            return False, pos + 5
        if data.startswith(b"null", pos):
            self.ctx.cov(6)
            return None, pos + 4
        if (b"0" <= char <= b"9") or char == b"-":
            self.ctx.cov(7)
            return self._parse_number(data, pos)
        raise _ParseError(f"unexpected byte at {pos}")

    @staticmethod
    def _skip_ws(data: bytes, pos: int) -> int:
        while pos < len(data) and data[pos] in b" \t\r\n":
            pos += 1
        return pos

    def _parse_string(self, data: bytes, pos: int) -> Tuple[str, int]:
        pos += 1  # opening quote
        out: List[str] = []
        while pos < len(data):
            byte = data[pos]
            if byte == 0x22:  # closing quote
                return "".join(out), pos + 1
            if byte == 0x5C:  # backslash escape
                self.ctx.cov(8)
                if pos + 1 >= len(data):
                    raise _ParseError("dangling escape")
                esc = data[pos + 1]
                mapping = {0x6E: "\n", 0x74: "\t", 0x72: "\r",
                           0x22: '"', 0x5C: "\\", 0x2F: "/"}
                if esc == 0x75:  # \uXXXX
                    self.ctx.cov(33)
                    if pos + 6 > len(data):
                        raise _ParseError("short unicode escape")
                    try:
                        out.append(chr(int(data[pos + 2:pos + 6], 16)))
                    except ValueError:
                        raise _ParseError("bad unicode escape") from None
                    pos += 6
                    continue
                if esc not in mapping:
                    raise _ParseError("unknown escape")
                out.append(mapping[esc])
                pos += 2
                continue
            if byte < 0x20:
                raise _ParseError("control byte in string")
            if len(out) >= MAX_STRING:
                self.ctx.cov(9)
                raise _ParseError("string too long")
            out.append(chr(byte))
            pos += 1
        raise _ParseError("unterminated string")

    def _parse_number(self, data: bytes, pos: int) -> Tuple[int, int]:
        start = pos
        if pos < len(data) and data[pos] == 0x2D:
            self.ctx.cov(34)
            pos += 1
        digits = 0
        while pos < len(data) and 0x30 <= data[pos] <= 0x39:
            pos += 1
            digits += 1
        if digits == 0:
            raise _ParseError("bare minus")
        if digits > 18:
            raise _ParseError("number too long")
        if digits > 9:
            self.ctx.cov(35)
        return int(data[start:pos]), pos

    def _parse_array(self, data: bytes, pos: int,
                     depth: int) -> Tuple[list, int]:
        pos += 1
        items: list = []
        pos = self._skip_ws(data, pos)
        if pos < len(data) and data[pos] == 0x5D:  # empty array
            return items, pos + 1
        while True:
            value, pos = self._parse_value(data, pos, depth + 1)
            items.append(value)
            pos = self._skip_ws(data, pos)
            if pos >= len(data):
                raise _ParseError("unterminated array")
            if data[pos] == 0x2C:
                pos += 1
                continue
            if data[pos] == 0x5D:
                return items, pos + 1
            raise _ParseError("expected , or ] in array")

    def _parse_object(self, data: bytes, pos: int,
                      depth: int) -> Tuple[dict, int]:
        pos += 1
        obj: dict = {}
        pos = self._skip_ws(data, pos)
        if pos < len(data) and data[pos] == 0x7D:  # empty object
            return obj, pos + 1
        while True:
            pos = self._skip_ws(data, pos)
            if pos >= len(data) or data[pos] != 0x22:
                raise _ParseError("object key must be a string")
            key, pos = self._parse_string(data, pos)
            pos = self._skip_ws(data, pos)
            if pos >= len(data) or data[pos] != 0x3A:
                raise _ParseError("missing colon")
            value, pos = self._parse_value(data, pos + 1, depth + 1)
            if key in obj:
                self.ctx.cov(10)
            obj[key] = value
            pos = self._skip_ws(data, pos)
            if pos >= len(data):
                raise _ParseError("unterminated object")
            if data[pos] == 0x2C:
                pos += 1
                continue
            if data[pos] == 0x7D:
                return obj, pos + 1
            raise _ParseError("expected , or } in object")

    def _encode(self, value: JsonValue, depth: int, pretty: bool) -> str:
        if depth > MAX_DEPTH:
            self.ctx.cov(11)
            return "null"
        if value is None:
            return "null"
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, int):
            return str(value)
        if isinstance(value, str):
            escaped = value.replace("\\", "\\\\").replace('"', '\\"')
            return f'"{escaped}"'
        pad = "  " * (depth + 1) if pretty else ""
        nl = "\n" if pretty else ""
        if isinstance(value, list):
            inner = f",{nl}".join(
                pad + self._encode(v, depth + 1, pretty) for v in value)
            return f"[{nl}{inner}{nl}{'  ' * depth if pretty else ''}]"
        inner = f",{nl}".join(
            f'{pad}"{k}":{self._encode(v, depth + 1, pretty)}'
            for k, v in value.items())
        return f"{{{nl}{inner}{nl}{'  ' * depth if pretty else ''}}}"

    @staticmethod
    def _depth_of(value: JsonValue) -> int:
        if isinstance(value, list):
            return 1 + max((JsonCodec._depth_of(v) for v in value), default=0)
        if isinstance(value, dict):
            return 1 + max((JsonCodec._depth_of(v) for v in value.values()),
                           default=0)
        return 0

    # -- APIs -----------------------------------------------------------------

    @kapi(module="json", sites=44,
          args=[arg_buf("data", 512, fmt="json")], ret="jdoc",
          doc="Parse a JSON document; returns a handle or 0 on error.")
    def json_parse(self, data: bytes) -> int:
        try:
            value, pos = self._parse_value(data, 0, 0)
        except _ParseError:
            self.ctx.cov(12)
            self.parse_errors += 1
            return 0
        pos = self._skip_ws(data, pos)
        if pos != len(data):
            self.ctx.cov(13)
            self.parse_errors += 1
            return 0  # trailing garbage
        # Shape-classification sites: root type, nesting depth, sizes.
        kinds = (type(None), bool, int, str, list, dict)
        for index, kind in enumerate(kinds):
            if isinstance(value, kind):
                self.ctx.cov(16 + index)  # 16..21: per root type
                break
        depth = self._depth_of(value)
        self.ctx.cov(22 + min(depth, 7))  # 22..29: per depth class
        if isinstance(value, (list, dict)):
            self.ctx.cov(30 if len(value) == 0 else
                         31 if len(value) < 4 else 32)
        return self._store(value)

    @kapi(module="json", sites=5, args=[arg_res("doc", "jdoc")],
          doc="Release a parsed document.")
    def json_delete(self, doc: int) -> int:
        if doc not in self.docs:
            self.ctx.cov(1)
            return -1
        del self.docs[doc]
        return 0

    @kapi(module="json", sites=8, args=[arg_res("doc", "jdoc")],
          doc="Type tag of a document's root value.")
    def json_get_type(self, doc: int) -> int:
        value = self.docs.get(doc)
        if doc not in self.docs:
            self.ctx.cov(1)
            return -1
        if value is None:
            return JSON_NULL
        if isinstance(value, bool):
            self.ctx.cov(2)
            return JSON_BOOL
        if isinstance(value, int):
            return JSON_NUMBER
        if isinstance(value, str):
            self.ctx.cov(3)
            return JSON_STRING
        if isinstance(value, list):
            self.ctx.cov(4)
            return JSON_ARRAY
        return JSON_OBJECT

    @kapi(module="json", sites=6, args=[arg_res("doc", "jdoc")],
          doc="Number of children of an array/object root.")
    def json_size(self, doc: int) -> int:
        value = self.docs.get(doc)
        if doc not in self.docs:
            self.ctx.cov(1)
            return -1
        if isinstance(value, (list, dict)):
            self.ctx.cov(2)
            return len(value)
        return 0

    @kapi(module="json", sites=8,
          args=[arg_res("doc", "jdoc"), arg_int("pretty", 0, 1)],
          doc="Encode a document; returns the encoded length or -1.")
    def json_encode(self, doc: int, pretty: int) -> int:
        if doc not in self.docs:
            self.ctx.cov(1)
            return -1
        text = self._encode(self.docs[doc], 0, bool(pretty))
        self.ctx.cycles(len(text) // 2)
        if len(text) > 4096:
            self.ctx.cov(2)
            return -2  # output buffer overflow (reported, not fatal)
        return len(text)

    @kapi(module="json", sites=8,
          args=[arg_int("depth", 0, 10), arg_int("width", 0, 8)],
          ret="jdoc", doc="Build a synthetic nested document.")
    def json_create_object(self, depth: int, width: int) -> int:
        if depth > MAX_DEPTH:
            self.ctx.cov(1)
            return 0
        budget = [256]
        fanout = max(min(width, 6), 1)

        def build(level: int) -> JsonValue:
            if level <= 0 or budget[0] <= 0:
                return level
            budget[0] -= fanout
            return {f"k{i}": build(level - 1) for i in range(fanout)}
        value = build(min(depth, MAX_DEPTH))
        return self._store(value)

    @kapi(module="json", sites=8,
          args=[arg_res("a", "jdoc"), arg_res("b", "jdoc")], ret="jdoc",
          doc="Merge two object documents (b's keys win).")
    def json_merge(self, a: int, b: int) -> int:
        left, right = self.docs.get(a), self.docs.get(b)
        if a not in self.docs or b not in self.docs:
            self.ctx.cov(1)
            return 0
        if not isinstance(left, dict) or not isinstance(right, dict):
            self.ctx.cov(2)
            return 0
        merged = dict(left)
        merged.update(right)
        return self._store(merged)

    @kapi(module="json", sites=10, pseudo=True,
          args=[arg_int("depth", 0, 8), arg_int("width", 1, 6)],
          doc="Round-trip: build, encode, re-parse and compare.")
    def syz_json_roundtrip(self, depth: int, width: int) -> int:
        doc = self.json_create_object(depth, width)
        if not doc:
            self.ctx.cov(1)
            return -1
        text = self._encode(self.docs[doc], 0, False).encode()
        reparsed = self.json_parse(text)
        if not reparsed:
            self.ctx.cov(2)
            return -2
        same = self.docs[doc] == self.docs[reparsed]
        self.json_delete(doc)
        self.json_delete(reparsed)
        if not same:
            self.ctx.cov(3)
            self.ctx.kprintf("json roundtrip mismatch")
            return -3
        return 0
