"""A small embedded HTTP/1.1 server component.

The second Table 4 fuzz target.  Requests arrive as raw byte buffers
through ``http_request_feed`` — the same entry point byte-buffer fuzzers
(GDBFuzz/SHIFT) hammer — and flow through a branch-rich parser: request
line, header loop with continuation and size limits, content-length body
handling, routing, method checks and keep-alive accounting.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.oses.common.api import arg_buf, arg_int, kapi
from repro.oses.common.kernel import KernelComponent

MAX_REQUEST_LINE = 256
MAX_HEADERS = 16
MAX_HEADER_LINE = 128
MAX_BODY = 1024

METHODS = (b"GET", b"HEAD", b"POST", b"PUT", b"DELETE")
ROUTES = (b"/", b"/index.html", b"/status", b"/api/led", b"/api/echo",
          b"/api/config")


class HttpServer(KernelComponent):
    """Stateful HTTP request processor."""

    NAME = "http"

    def __init__(self, kernel):
        super().__init__(kernel)
        self.requests_served = 0
        self.errors = 0
        self.keep_alive_sessions = 0
        self.led_state = 0
        self.config_kv: Dict[bytes, bytes] = {}

    def on_boot(self) -> None:
        self.ctx.kprintf("http server listening (virtual port 80)")

    # -- parsing helpers --------------------------------------------------------

    def _parse_request_line(self, line: bytes) -> Tuple[int, bytes, bytes]:
        """Returns (status, method, path); status 0 means OK."""
        if len(line) > MAX_REQUEST_LINE:
            self.ctx.cov(1)
            return 414, b"", b""
        parts = line.split(b" ")
        if len(parts) != 3:
            self.ctx.cov(2)
            return 400, b"", b""
        method, path, version = parts
        if method not in METHODS:
            self.ctx.cov(3)
            return 405, b"", b""
        if not version.startswith(b"HTTP/1."):
            self.ctx.cov(4)
            return 505, b"", b""
        if not path.startswith(b"/"):
            self.ctx.cov(5)
            return 400, b"", b""
        self.ctx.cov(16 + METHODS.index(method))  # 16..20: per method
        return 0, method, path

    def _parse_headers(self, lines: List[bytes]) -> Tuple[int, Dict[bytes, bytes]]:
        headers: Dict[bytes, bytes] = {}
        for line in lines:
            if len(line) > MAX_HEADER_LINE:
                self.ctx.cov(6)
                return 431, {}
            if b":" not in line:
                self.ctx.cov(7)
                return 400, {}
            name, _, value = line.partition(b":")
            name = name.strip().lower()
            if not name or any(c in b" \t" for c in name):
                self.ctx.cov(8)
                return 400, {}
            if len(headers) >= MAX_HEADERS:
                self.ctx.cov(9)
                return 431, {}
            known = (b"host", b"content-length", b"connection", b"expect",
                     b"user-agent", b"accept")
            if name in known:
                self.ctx.cov(21 + known.index(name))  # 21..26: per header
            headers[name] = value.strip()
        return 0, headers

    def _route(self, method: bytes, path: bytes, headers: Dict[bytes, bytes],
               body: bytes) -> int:
        if b"?" in path:
            self.ctx.cov(36)
        path = path.split(b"?")[0]
        if path not in ROUTES:
            self.ctx.cov(10)
            return 404
        self.ctx.cov(27 + ROUTES.index(path))  # 27..32: per route
        if path in (b"/", b"/index.html"):
            if method not in (b"GET", b"HEAD"):
                self.ctx.cov(11)
                return 405
            return 200
        if path == b"/status":
            return 200
        if path == b"/api/led":
            if method != b"POST":
                return 405
            if body.strip() == b"on":
                self.ctx.cov(12)
                self.led_state = 1
            elif body.strip() == b"off":
                self.led_state = 0
            else:
                self.ctx.cov(13)
                return 422
            return 200
        if path == b"/api/echo":
            if method != b"POST":
                return 405
            self.ctx.cycles(len(body))
            return 200 if body else 204
        # /api/config : key=value pairs
        if method == b"POST":
            for pair in body.split(b"&"):
                if b"=" not in pair:
                    self.ctx.cov(14)
                    return 400
                key, _, value = pair.partition(b"=")
                if len(self.config_kv) >= 8 and key not in self.config_kv:
                    return 507
                self.config_kv[key] = value
            return 201
        return 200

    # -- APIs --------------------------------------------------------------------

    @kapi(module="http", sites=44,
          args=[arg_buf("data", 768, fmt="http_request")],
          doc="Feed one raw request; returns the HTTP status code served.")
    def http_request_feed(self, data: bytes) -> int:
        status = self._process(data)
        if 200 <= status < 300:
            self.ctx.cov(33)
        elif 400 <= status < 500:
            self.ctx.cov(34)
        elif status >= 500:
            self.ctx.cov(35)
        if status >= 400:
            self.errors += 1
        else:
            self.requests_served += 1
        return status

    def _process(self, data: bytes) -> int:
        if not data:
            return 400
        head, sep, body = data.partition(b"\r\n\r\n")
        if not sep:
            # Tolerate bare-LF clients, a classic embedded-server quirk.
            head, sep, body = data.partition(b"\n\n")
            if not sep:
                self.ctx.cov(15)
                head, body = data, b""
        lines = head.replace(b"\r\n", b"\n").split(b"\n")
        status, method, path = self._parse_request_line(lines[0])
        if status:
            return status
        status, headers = self._parse_headers([l for l in lines[1:] if l])
        if status:
            return status
        if b"content-length" in headers:
            try:
                length = int(headers[b"content-length"])
            except ValueError:
                return 400
            if length < 0 or length > MAX_BODY:
                return 413
            if len(body) < length:
                return 400  # truncated body
            body = body[:length]
        if body:
            self.ctx.cov(37)
        if headers.get(b"connection", b"").lower() == b"keep-alive":
            self.ctx.cov(38)
            self.keep_alive_sessions += 1
        if headers.get(b"expect", b"") == b"100-continue":
            self.ctx.cov(39)
            self.ctx.cycles(10)
        return self._route(method, path, headers, body)

    @kapi(module="http", sites=4, doc="Requests served since boot.")
    def http_stats(self) -> int:
        return self.requests_served

    @kapi(module="http", sites=4, doc="Reset all server state.")
    def http_reset(self) -> int:
        self.requests_served = 0
        self.errors = 0
        self.keep_alive_sessions = 0
        self.led_state = 0
        self.config_kv.clear()
        return 0

    @kapi(module="http", sites=10, pseudo=True,
          args=[arg_int("n", 1, 8), arg_int("kind", 0, 5)],
          doc="Drive a canned client session of n requests.")
    def syz_http_session(self, n: int, kind: int) -> int:
        requests = [
            b"GET / HTTP/1.1\r\nhost: dev\r\n\r\n",
            b"GET /status HTTP/1.1\r\nconnection: keep-alive\r\n\r\n",
            b"POST /api/led HTTP/1.1\r\ncontent-length: 2\r\n\r\non",
            b"POST /api/echo HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello",
            b"POST /api/config HTTP/1.1\r\ncontent-length: 7\r\n\r\nled=off",
            b"DELETE /api/config HTTP/1.1\r\n\r\n",
        ]
        good = 0
        for i in range(n):
            status = self.http_request_feed(requests[(kind + i) % len(requests)])
            if status < 400:
                self.ctx.cov(1)
                good += 1
        return good
