"""FreeRTOS-flavoured kernel: tasks with tick-driven priority scheduling,
queues (and the semaphores/mutexes built on them), event groups, software
timers, stream buffers, and a heap_4-style first-fit coalescing allocator.
"""

from repro.oses.freertos.kernel import FreeRtosKernel
from repro.oses.freertos.heap import Heap4

__all__ = ["FreeRtosKernel", "Heap4"]
