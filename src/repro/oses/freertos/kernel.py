"""The FreeRTOS-flavoured kernel.

Naming and semantics follow FreeRTOS: ``xTaskCreate`` with tick-driven
priority scheduling, queues as the primitive under semaphores and
mutexes, event groups, software timers and stream buffers, all allocating
from a heap_4 instance that lives in simulated RAM.

Injected bug (Table 2):

* **#13** ``load_partitions()`` — a malformed read of the on-flash
  partition table makes the loader "repair" a bogus entry by writing a
  marker through a garbage address, corrupting the firmware image, then
  panicking.  This is the bug that makes reboot insufficient and forces
  EOF's reflash-based state restoration.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.oses.common.api import (
    arg_buf,
    arg_int,
    arg_res,
    arg_str,
    kapi,
    kfunc,
)
from repro.oses.common.kernel import EmbeddedKernel
from repro.oses.common.ladders import FlashStorageLadder
from repro.oses.common.shell import ShellInterpreter
from repro.oses.freertos.heap import Heap4

pdPASS = 1
pdFAIL = 0
errQUEUE_FULL = 0
errQUEUE_EMPTY = 0
MAX_PRIORITY = 7
MIN_STACK = 64
BLOCK_FOREVER = 0xFFFF
TICK_SLICE_CYCLES = 15


class _Tcb:
    """Task control block."""

    KIND = "task"

    def __init__(self, handle: int, name: str, stack_addr: int,
                 stack_depth: int, priority: int, profile: int):
        self.handle = handle
        self.name = name
        self.stack_addr = stack_addr
        self.stack_depth = stack_depth
        self.priority = priority
        self.base_priority = priority
        self.profile = profile
        self.state = "ready"        # ready | delayed | suspended | deleted
        self.wake_tick = 0
        self.run_count = 0


class _Queue:
    """Queue control block; item storage lives in kernel RAM."""

    KIND = "queue"

    def __init__(self, handle: int, length: int, item_size: int,
                 storage_addr: int):
        self.handle = handle
        self.length = length
        self.item_size = item_size
        self.storage_addr = storage_addr
        self.count = 0
        self.read_idx = 0
        self.write_idx = 0
        self.is_semaphore = False
        self.is_mutex = False
        self.mutex_holder: Optional[int] = None
        self.recursion = 0


class _EventGroup:
    KIND = "egroup"

    def __init__(self, handle: int):
        self.handle = handle
        self.bits = 0


class _Timer:
    KIND = "timer"

    def __init__(self, handle: int, period: int, autoreload: bool,
                 cb_profile: int):
        self.handle = handle
        self.period = period
        self.autoreload = autoreload
        self.cb_profile = cb_profile
        self.expiry = 0
        self.active = False
        self.fire_count = 0


class _StreamBuffer:
    KIND = "sbuf"

    def __init__(self, handle: int, addr: int, size: int, trigger: int):
        self.handle = handle
        self.addr = addr
        self.size = size
        self.trigger = trigger
        self.head = 0
        self.tail = 0
        self.stored = 0


class _HeapRef:
    KIND = "mem"

    def __init__(self, handle: int, addr: int, size: int):
        self.handle = handle
        self.addr = addr
        self.size = size
        self.freed = False


class FreeRtosKernel(FlashStorageLadder, ShellInterpreter, EmbeddedKernel):
    """FreeRTOS v10-flavoured kernel."""

    NAME = "freertos"
    VERSION = "v10.5-repro"
    BOOT_BANNER = "FreeRTOS kernel booting (heap_4, preemptive, 8 prios)"
    EXCEPTION_SYMBOL = "panic_handler"
    SHELL_PROMPT = "cli"
    ASSERT_LOG_FORMAT = "configASSERT failed: ({expr}) in {loc}"
    PANIC_LOG_FORMAT = "FreeRTOS PANIC: {cause} ({detail})"

    def __init__(self, ctx, config=None):
        super().__init__(ctx, config)
        self.heap: Optional[Heap4] = None
        self.handles: Dict[int, object] = {}
        self._next_handle = 1
        self.tick_count = 0
        self.current_task: Optional[_Tcb] = None
        self.tasks: List[_Tcb] = []
        self.timers: List[_Timer] = []
        self.sys_event_group: Optional[_EventGroup] = None

    # -- boot -----------------------------------------------------------------

    def boot_os(self) -> None:
        layout = self.ctx.layout
        self.heap = Heap4(self.ctx.ram, layout.kernel_heap_base,
                          layout.kernel_heap_size)
        idle = self._new_task("IDLE", 128, 0, 0)
        if idle is None:
            self.ctx.panic("boot", "cannot allocate idle task")
        self.current_task = idle
        self.sys_event_group = self._register(_EventGroup(0))
        self.ctx.kprintf("heap_4 initialised, idle task running")

    # -- handle plumbing ----------------------------------------------------------

    def _register(self, obj):
        handle = self._next_handle
        self._next_handle += 1
        obj.handle = handle
        self.handles[handle] = obj
        return obj

    def _lookup(self, handle: int, kind: str):
        obj = self.handles.get(handle)
        if obj is None or obj.KIND != kind:
            return None
        return obj

    # -- scheduler core --------------------------------------------------------------

    def _new_task(self, name: str, stack_depth: int, priority: int,
                  profile: int) -> Optional[_Tcb]:
        stack_addr = self.heap.malloc(stack_depth)
        if stack_addr == 0:
            return None
        tcb = _Tcb(0, name, stack_addr, stack_depth, priority, profile)
        self._register(tcb)
        self.tasks.append(tcb)
        # Stamp a stack canary at the far end.
        self.ctx.ram.write_u32(stack_addr, 0xA5A5A5A5)
        return tcb

    @kfunc(module="sched", sites=10)
    def vTaskSwitchContext(self) -> None:
        """Pick the highest-priority ready task and give it a slice."""
        best: Optional[_Tcb] = None
        for tcb in self.tasks:
            if tcb.state != "ready":
                self.ctx.cov(1)
                continue
            if best is None or tcb.priority > best.priority:
                self.ctx.cov(2)
                best = tcb
        if best is None:
            self.ctx.cov(3)
            return
        if best is not self.current_task:
            self.ctx.cov(4)
            self.ctx.cycles(TICK_SLICE_CYCLES)  # context-switch cost
        self.current_task = best
        best.run_count += 1
        self._run_task_slice(best)

    def _run_task_slice(self, tcb: _Tcb) -> None:
        if tcb.profile == 1:
            self.ctx.cov(5)
            self.ctx.cycles(30)
        elif tcb.profile == 2:
            self.ctx.cov(6)
            # Touch the stack; verify the canary survived.
            self.ctx.ram.write_u32(tcb.stack_addr + 8, self.tick_count)
            if self.ctx.ram.read_u32(tcb.stack_addr) != 0xA5A5A5A5:
                self.ctx.cov(7)
                self.ctx.kprintf(f"stack corruption in task {tcb.name}")
        elif tcb.profile == 3:
            self.ctx.cov(8)
            if self.sys_event_group is not None:
                self.sys_event_group.bits |= 1 << (tcb.handle % 24)

    @kfunc(module="sched", sites=8)
    def xTaskIncrementTick(self) -> None:
        """One tick: wake delayed tasks, expire timers."""
        self.tick_count += 1
        for tcb in self.tasks:
            if tcb.state == "delayed" and tcb.wake_tick <= self.tick_count:
                self.ctx.cov(1)
                tcb.state = "ready"
        for timer in list(self.timers):
            if timer.active and timer.expiry <= self.tick_count:
                self.ctx.cov(2)
                self._fire_timer(timer)

    def _fire_timer(self, timer: _Timer) -> None:
        timer.fire_count += 1
        if timer.cb_profile == 1 and self.sys_event_group is not None:
            self.ctx.cov(3)
            self.sys_event_group.bits |= 0x100
        elif timer.cb_profile == 2:
            self.ctx.cov(4)
            self.ctx.cycles(20)
        if timer.autoreload:
            self.ctx.cov(5)
            timer.expiry = self.tick_count + timer.period
        else:
            timer.active = False

    def idle_tick(self) -> None:
        self.xTaskIncrementTick()
        self.vTaskSwitchContext()

    # -- exception entry (the symbol EOF breaks on) -------------------------------------

    @kfunc(module="kernel", sites=4)
    def panic_handler(self, signal) -> None:
        """FreeRTOS fatal-error entry point."""
        self._fatal_common(signal)

    # ======================= task API =======================

    @kapi(module="task", sites=12,
          args=[arg_str("name", 12), arg_int("stack_depth", 32, 4096),
                arg_int("priority", 0, 9), arg_int("profile", 0, 3)],
          ret="task", doc="Create a task; returns its handle.")
    def xTaskCreate(self, name: bytes, stack_depth: int, priority: int,
                    profile: int) -> int:
        if stack_depth < MIN_STACK:
            self.ctx.cov(1)
            return pdFAIL
        if priority > MAX_PRIORITY:
            self.ctx.cov(2)
            priority = MAX_PRIORITY  # FreeRTOS silently clamps
        tcb = self._new_task(name.decode("latin1")[:12] or "tsk",
                             stack_depth, priority, profile % 4)
        if tcb is None:
            self.ctx.cov(3)
            return pdFAIL
        self.ctx.cov(4)
        self.vTaskSwitchContext()
        return tcb.handle

    @kapi(module="task", sites=8, args=[arg_res("task", "task")],
          doc="Delete a task and release its stack.")
    def vTaskDelete(self, task: int) -> int:
        tcb = self._lookup(task, "task")
        if tcb is None:
            self.ctx.cov(1)
            return pdFAIL
        if tcb.name == "IDLE":
            self.ctx.cov(2)
            return pdFAIL  # the idle task may not be deleted
        tcb.state = "deleted"
        self.tasks.remove(tcb)
        self.heap.free(tcb.stack_addr)
        del self.handles[tcb.handle]
        if self.current_task is tcb:
            self.ctx.cov(3)
            self.current_task = None
            self.vTaskSwitchContext()
        return pdPASS

    @kapi(module="task", sites=6, args=[arg_int("ticks", 0, 100)],
          doc="Block the calling task for a number of ticks.")
    def vTaskDelay(self, ticks: int) -> int:
        if ticks <= 0:
            self.ctx.cov(1)
            self.vTaskSwitchContext()
            return pdPASS
        if ticks > 1000:
            self.ctx.cov(2)
            # An absurd delay parks the system: a degraded state, not a bug.
            self.ctx.stall("vTaskDelay parked the only runnable context")
        for _ in range(min(ticks, 64)):
            self.xTaskIncrementTick()
        self.vTaskSwitchContext()
        return pdPASS

    @kapi(module="task", sites=6,
          args=[arg_res("task", "task"), arg_int("priority", 0, 9)],
          doc="Change a task's priority.")
    def vTaskPrioritySet(self, task: int, priority: int) -> int:
        tcb = self._lookup(task, "task")
        if tcb is None:
            self.ctx.cov(1)
            return pdFAIL
        tcb.priority = min(priority, MAX_PRIORITY)
        self.ctx.cov(2)
        self.vTaskSwitchContext()
        return pdPASS

    @kapi(module="task", sites=4, args=[arg_res("task", "task")],
          doc="Read a task's priority.")
    def uxTaskPriorityGet(self, task: int) -> int:
        tcb = self._lookup(task, "task")
        if tcb is None:
            self.ctx.cov(1)
            return -1
        return tcb.priority

    @kapi(module="task", sites=5, args=[arg_res("task", "task")],
          doc="Suspend a task.")
    def vTaskSuspend(self, task: int) -> int:
        tcb = self._lookup(task, "task")
        if tcb is None:
            self.ctx.cov(1)
            return pdFAIL
        if tcb.name == "IDLE":
            self.ctx.cov(2)
            return pdFAIL
        tcb.state = "suspended"
        self.vTaskSwitchContext()
        return pdPASS

    @kapi(module="task", sites=5, args=[arg_res("task", "task")],
          doc="Resume a suspended task.")
    def vTaskResume(self, task: int) -> int:
        tcb = self._lookup(task, "task")
        if tcb is None:
            self.ctx.cov(1)
            return pdFAIL
        if tcb.state == "suspended":
            self.ctx.cov(2)
            tcb.state = "ready"
            self.vTaskSwitchContext()
        return pdPASS

    @kapi(module="task", sites=3, doc="Number of live tasks.")
    def uxTaskGetNumberOfTasks(self) -> int:
        return len(self.tasks)

    @kapi(module="task", sites=4, doc="Current tick count.")
    def xTaskGetTickCount(self) -> int:
        return self.tick_count

    @kapi(module="task", sites=6, doc="Print the task table to the console.")
    def vTaskList(self) -> int:
        for tcb in self.tasks:
            self.ctx.cov(1)
            self.ctx.kprintf(
                f"  {tcb.name:<12} {tcb.state:<9} prio={tcb.priority} "
                f"stack={tcb.stack_depth}")
        return pdPASS

    # ======================= queue API =======================

    @kapi(module="ipc", sites=8,
          args=[arg_int("length", 0, 128), arg_int("item_size", 0, 256)],
          ret="queue", doc="Create a queue.")
    def xQueueCreate(self, length: int, item_size: int) -> int:
        if length <= 0 or item_size <= 0:
            self.ctx.cov(1)
            return 0
        storage = self.heap.malloc(length * item_size)
        if storage == 0:
            self.ctx.cov(2)
            return 0
        queue = self._register(_Queue(0, length, item_size, storage))
        self.ctx.cov(3)
        return queue.handle

    @kapi(module="ipc", sites=6, args=[arg_res("queue", "queue")],
          doc="Delete a queue and release its storage.")
    def vQueueDelete(self, queue: int) -> int:
        q = self._lookup(queue, "queue")
        if q is None:
            self.ctx.cov(1)
            return pdFAIL
        self.heap.free(q.storage_addr)
        del self.handles[q.handle]
        return pdPASS

    @kapi(module="ipc", sites=10,
          args=[arg_res("queue", "queue"), arg_buf("data", 256),
                arg_int("ticks", 0, 50)],
          doc="Send an item to the back of a queue.")
    def xQueueSend(self, queue: int, data: bytes, ticks: int) -> int:
        q = self._lookup(queue, "queue")
        if q is None:
            self.ctx.cov(1)
            return pdFAIL
        if q.count >= q.length:
            self.ctx.cov(2)
            if ticks > 1000:
                self.ctx.cov(3)
                self.ctx.stall("xQueueSend blocked forever on a full queue")
            return errQUEUE_FULL
        payload = data[:q.item_size].ljust(q.item_size, b"\x00")
        slot = q.storage_addr + q.write_idx * q.item_size
        self.ctx.ram.write(slot, payload)
        q.write_idx = (q.write_idx + 1) % q.length
        q.count += 1
        self.ctx.cov(4)
        if q.count == q.length and q.length >= 8:
            self.ctx.cov(5)  # a long queue filled to the brim
            if q.item_size >= 64:
                self.ctx.cov(6)  # ... with large items (copy-path stress)
        self.vTaskSwitchContext()
        return pdPASS

    @kapi(module="ipc", sites=10,
          args=[arg_res("queue", "queue"), arg_int("ticks", 0, 50)],
          doc="Receive the item at the front of a queue.")
    def xQueueReceive(self, queue: int, ticks: int) -> int:
        q = self._lookup(queue, "queue")
        if q is None:
            self.ctx.cov(1)
            return pdFAIL
        if q.count == 0:
            self.ctx.cov(2)
            if ticks > 1000:
                self.ctx.cov(3)
                self.ctx.stall("xQueueReceive blocked forever on empty queue")
            return errQUEUE_EMPTY
        slot = q.storage_addr + q.read_idx * q.item_size
        self.ctx.ram.read(slot, q.item_size)
        q.read_idx = (q.read_idx + 1) % q.length
        q.count -= 1
        self.ctx.cov(4)
        return pdPASS

    @kapi(module="ipc", sites=6, args=[arg_res("queue", "queue")],
          doc="Peek the front item without removing it.")
    def xQueuePeek(self, queue: int) -> int:
        q = self._lookup(queue, "queue")
        if q is None:
            self.ctx.cov(1)
            return pdFAIL
        if q.count == 0:
            self.ctx.cov(2)
            return errQUEUE_EMPTY
        self.ctx.ram.read(q.storage_addr + q.read_idx * q.item_size,
                          q.item_size)
        return pdPASS

    @kapi(module="ipc", sites=4, args=[arg_res("queue", "queue")],
          doc="Number of items waiting in a queue.")
    def uxQueueMessagesWaiting(self, queue: int) -> int:
        q = self._lookup(queue, "queue")
        if q is None:
            self.ctx.cov(1)
            return -1
        return q.count

    # ======================= semaphore API =======================

    def _make_semaphore(self, length: int, initial: int,
                        mutex: bool) -> int:
        storage = self.heap.malloc(max(length, 1))
        if storage == 0:
            return 0
        q = self._register(_Queue(0, length, 1, storage))
        q.is_semaphore = True
        q.is_mutex = mutex
        q.count = initial
        return q.handle

    @kapi(module="ipc", sites=5, ret="sem",
          doc="Create a binary semaphore (initially empty).")
    def xSemaphoreCreateBinary(self) -> int:
        return self._make_semaphore(1, 0, mutex=False)

    @kapi(module="ipc", sites=6,
          args=[arg_int("max_count", 1, 64), arg_int("initial", 0, 64)],
          ret="sem", doc="Create a counting semaphore.")
    def xSemaphoreCreateCounting(self, max_count: int, initial: int) -> int:
        if initial > max_count:
            self.ctx.cov(1)
            return 0
        return self._make_semaphore(max_count, initial, mutex=False)

    @kapi(module="ipc", sites=5, ret="sem",
          doc="Create a mutex (initially available).")
    def xSemaphoreCreateMutex(self) -> int:
        return self._make_semaphore(1, 1, mutex=True)

    @kapi(module="ipc", sites=10,
          args=[arg_res("sem", "sem"), arg_int("ticks", 0, 50)],
          doc="Take a semaphore or lock a mutex.")
    def xSemaphoreTake(self, sem: int, ticks: int) -> int:
        q = self._lookup(sem, "queue")
        if q is None or not q.is_semaphore:
            self.ctx.cov(1)
            return pdFAIL
        if q.count == 0:
            self.ctx.cov(2)
            if q.is_mutex and q.mutex_holder == (
                    self.current_task.handle if self.current_task else 0):
                self.ctx.cov(3)
                q.recursion += 1  # recursive take by the holder
                if q.recursion >= 3:
                    self.ctx.cov(6)  # deep recursion path
                return pdPASS
            if ticks > 1000:
                self.ctx.cov(4)
                self.ctx.stall("xSemaphoreTake blocked forever")
            return pdFAIL
        q.count -= 1
        if q.is_mutex:
            self.ctx.cov(5)
            q.mutex_holder = (self.current_task.handle
                              if self.current_task else 0)
        return pdPASS

    @kapi(module="ipc", sites=8, args=[arg_res("sem", "sem")],
          doc="Give a semaphore or unlock a mutex.")
    def xSemaphoreGive(self, sem: int) -> int:
        q = self._lookup(sem, "queue")
        if q is None or not q.is_semaphore:
            self.ctx.cov(1)
            return pdFAIL
        if q.is_mutex and q.recursion > 0:
            self.ctx.cov(2)
            q.recursion -= 1
            return pdPASS
        if q.count >= q.length:
            self.ctx.cov(3)
            return pdFAIL  # giving a full semaphore
        q.count += 1
        if q.is_mutex:
            self.ctx.cov(4)
            q.mutex_holder = None
        self.vTaskSwitchContext()
        return pdPASS

    @kapi(module="ipc", sites=4, args=[arg_res("sem", "sem")],
          doc="Delete a semaphore.")
    def vSemaphoreDelete(self, sem: int) -> int:
        return self.vQueueDelete(sem)

    # ======================= event group API =======================

    @kapi(module="event", sites=4, ret="egroup", doc="Create an event group.")
    def xEventGroupCreate(self) -> int:
        return self._register(_EventGroup(0)).handle

    @kapi(module="event", sites=6,
          args=[arg_res("egroup", "egroup"), arg_int("bits", 0, 0xFFFFFF)],
          doc="Set bits in an event group.")
    def xEventGroupSetBits(self, egroup: int, bits: int) -> int:
        eg = self._lookup(egroup, "egroup")
        if eg is None:
            self.ctx.cov(1)
            return 0
        eg.bits |= bits & 0xFFFFFF
        self.ctx.cov(2)
        return eg.bits

    @kapi(module="event", sites=5,
          args=[arg_res("egroup", "egroup"), arg_int("bits", 0, 0xFFFFFF)],
          doc="Clear bits in an event group.")
    def xEventGroupClearBits(self, egroup: int, bits: int) -> int:
        eg = self._lookup(egroup, "egroup")
        if eg is None:
            self.ctx.cov(1)
            return 0
        old = eg.bits
        eg.bits &= ~bits
        return old

    @kapi(module="event", sites=10,
          args=[arg_res("egroup", "egroup"), arg_int("bits", 1, 0xFFFFFF),
                arg_int("clear_on_exit", 0, 1), arg_int("wait_all", 0, 1),
                arg_int("ticks", 0, 50)],
          doc="Wait for bits in an event group.")
    def xEventGroupWaitBits(self, egroup: int, bits: int, clear_on_exit: int,
                            wait_all: int, ticks: int) -> int:
        eg = self._lookup(egroup, "egroup")
        if eg is None:
            self.ctx.cov(1)
            return 0
        satisfied = ((eg.bits & bits) == bits if wait_all
                     else (eg.bits & bits) != 0)
        if not satisfied:
            self.ctx.cov(2)
            if ticks > 1000:
                self.ctx.cov(3)
                self.ctx.stall("xEventGroupWaitBits blocked forever")
            for _ in range(min(ticks, 16)):
                self.xTaskIncrementTick()
            satisfied = ((eg.bits & bits) == bits if wait_all
                         else (eg.bits & bits) != 0)
        result = eg.bits
        if satisfied and wait_all and bin(bits).count("1") >= 4:
            self.ctx.cov(5)  # wide AND-wait actually satisfied
        if satisfied and clear_on_exit:
            self.ctx.cov(4)
            eg.bits &= ~bits
        return result

    @kapi(module="event", sites=4, args=[arg_res("egroup", "egroup")],
          doc="Delete an event group.")
    def vEventGroupDelete(self, egroup: int) -> int:
        eg = self._lookup(egroup, "egroup")
        if eg is None:
            self.ctx.cov(1)
            return pdFAIL
        del self.handles[eg.handle]
        return pdPASS

    # ======================= timer API =======================

    @kapi(module="timer", sites=6,
          args=[arg_int("period", 0, 200), arg_int("autoreload", 0, 1),
                arg_int("cb_profile", 0, 2)],
          ret="timer", doc="Create a software timer.")
    def xTimerCreate(self, period: int, autoreload: int,
                     cb_profile: int) -> int:
        if period <= 0:
            self.ctx.cov(1)
            return 0
        timer = _Timer(0, period, bool(autoreload), cb_profile)
        self._register(timer)
        self.timers.append(timer)
        return timer.handle

    @kapi(module="timer", sites=5, args=[arg_res("timer", "timer")],
          doc="Start (arm) a timer.")
    def xTimerStart(self, timer: int) -> int:
        t = self._lookup(timer, "timer")
        if t is None:
            self.ctx.cov(1)
            return pdFAIL
        t.active = True
        t.expiry = self.tick_count + t.period
        return pdPASS

    @kapi(module="timer", sites=5, args=[arg_res("timer", "timer")],
          doc="Stop a timer.")
    def xTimerStop(self, timer: int) -> int:
        t = self._lookup(timer, "timer")
        if t is None:
            self.ctx.cov(1)
            return pdFAIL
        t.active = False
        return pdPASS

    @kapi(module="timer", sites=6,
          args=[arg_res("timer", "timer"), arg_int("period", 1, 200)],
          doc="Change a timer's period.")
    def xTimerChangePeriod(self, timer: int, period: int) -> int:
        t = self._lookup(timer, "timer")
        if t is None:
            self.ctx.cov(1)
            return pdFAIL
        t.period = max(period, 1)
        if t.active:
            self.ctx.cov(2)
            t.expiry = self.tick_count + t.period
        return pdPASS

    @kapi(module="timer", sites=5, args=[arg_res("timer", "timer")],
          doc="Delete a timer.")
    def xTimerDelete(self, timer: int) -> int:
        t = self._lookup(timer, "timer")
        if t is None:
            self.ctx.cov(1)
            return pdFAIL
        self.timers.remove(t)
        del self.handles[t.handle]
        return pdPASS

    # ======================= stream buffer API =======================

    @kapi(module="stream", sites=6,
          args=[arg_int("size", 16, 1024), arg_int("trigger", 1, 64)],
          ret="sbuf", doc="Create a stream buffer.")
    def xStreamBufferCreate(self, size: int, trigger: int) -> int:
        if trigger > size:
            self.ctx.cov(1)
            return 0
        addr = self.heap.malloc(size)
        if addr == 0:
            self.ctx.cov(2)
            return 0
        sbuf = self._register(_StreamBuffer(0, addr, size, trigger))
        return sbuf.handle

    @kapi(module="stream", sites=8,
          args=[arg_res("sbuf", "sbuf"), arg_buf("data", 512)],
          doc="Write bytes into a stream buffer.")
    def xStreamBufferSend(self, sbuf: int, data: bytes) -> int:
        sb = self._lookup(sbuf, "sbuf")
        if sb is None:
            self.ctx.cov(1)
            return 0
        room = sb.size - sb.stored
        chunk = data[:room]
        for byte in chunk:
            self.ctx.ram.write(sb.addr + sb.head, bytes([byte]))
            sb.head = (sb.head + 1) % sb.size
        sb.stored += len(chunk)
        if chunk and sb.head <= sb.tail and sb.stored:
            self.ctx.cov(4)  # write wrapped around the ring
        if len(chunk) < len(data):
            self.ctx.cov(2)
        if sb.stored >= sb.trigger:
            self.ctx.cov(3)
            self.vTaskSwitchContext()
        return len(chunk)

    @kapi(module="stream", sites=7,
          args=[arg_res("sbuf", "sbuf"), arg_int("maxlen", 1, 512)],
          doc="Read up to maxlen bytes from a stream buffer.")
    def xStreamBufferReceive(self, sbuf: int, maxlen: int) -> int:
        sb = self._lookup(sbuf, "sbuf")
        if sb is None:
            self.ctx.cov(1)
            return 0
        take = min(maxlen, sb.stored)
        if take == 0:
            self.ctx.cov(2)
            return 0
        for _ in range(take):
            self.ctx.ram.read(sb.addr + sb.tail, 1)
            sb.tail = (sb.tail + 1) % sb.size
        sb.stored -= take
        return take

    @kapi(module="stream", sites=4, args=[arg_res("sbuf", "sbuf")],
          doc="Delete a stream buffer.")
    def vStreamBufferDelete(self, sbuf: int) -> int:
        sb = self._lookup(sbuf, "sbuf")
        if sb is None:
            self.ctx.cov(1)
            return pdFAIL
        self.heap.free(sb.addr)
        del self.handles[sb.handle]
        return pdPASS

    # ======================= heap API =======================

    @kapi(module="heap", sites=5, args=[arg_int("size", 0, 8192)],
          ret="mem", doc="Allocate from the FreeRTOS heap.")
    def pvPortMalloc(self, size: int) -> int:
        addr = self.heap.malloc(size)
        if addr == 0:
            self.ctx.cov(1)
            return 0
        ref = self._register(_HeapRef(0, addr, size))
        return ref.handle

    @kapi(module="heap", sites=6, args=[arg_res("mem", "mem")],
          doc="Return an allocation to the heap.")
    def vPortFree(self, mem: int) -> int:
        ref = self._lookup(mem, "mem")
        if ref is None:
            self.ctx.cov(1)
            return pdFAIL
        if ref.freed:
            self.ctx.cov(2)
            return pdFAIL
        ref.freed = True
        self.heap.free(ref.addr)
        return pdPASS

    @kapi(module="heap", sites=3, doc="Bytes currently free in the heap.")
    def xPortGetFreeHeapSize(self) -> int:
        return self.heap.free_bytes

    # ======================= partition loader (bug #13) =======================

    @kapi(module="kernel", sites=12,
          args=[arg_int("offset", 0, 4096), arg_int("max_entries", 1, 16)],
          doc="(Re)load the on-flash partition table, ESP-IDF style.")
    def load_partitions(self, offset: int, max_entries: int) -> int:
        appfs_base = self.config.get("appfs_flash_addr", 0)
        appfs_size = self.config.get("appfs_flash_size", 0)
        if appfs_base == 0 or appfs_size == 0:
            self.ctx.cov(1)
            return pdFAIL
        loaded = 0
        for i in range(max_entries):
            entry_off = offset + i * 16
            if entry_off + 16 > appfs_size:
                self.ctx.cov(2)
                break
            raw = self.ctx.flash.read(appfs_base + entry_off, 16)
            magic = int.from_bytes(raw[0:2], "little")
            ptype = raw[2]
            addr = int.from_bytes(raw[4:8], "little")
            if magic == 0x50AA:
                self.ctx.cov(3)
                loaded += 1
                continue
            if magic == 0xFFFF:
                self.ctx.cov(4)
                break  # erased flash: end of table
            # --- Injected bug #13 ------------------------------------------
            # A stale "backup" entry (type 0x7F, left at a misaligned spot
            # by an old flasher) is only reachable through a misaligned
            # offset.  The loader "repairs" it by stamping a marker at its
            # recorded address — flash garbage — so the marker lands inside
            # the kernel partition, corrupting the image, and then panics.
            if offset % 16 != 0 and ptype == 0x7F:
                self.ctx.cov(5)
                kernel_addr = self.config.get("kernel_flash_addr", 0)
                victim = kernel_addr + (addr % 512)
                self.ctx.flash_raw_write(victim, b"\xde\xad\xbe\xef")
                self.ctx.panic("partition table corrupt",
                               f"bad entry type=0x{ptype:02x} "
                               f"at offset {entry_off}")
            self.ctx.cov(6)
        self.ctx.cov(7)
        return loaded

    # ======================= pseudo syscalls =======================

    @kapi(module="pseudo", sites=10, pseudo=True,
          args=[arg_int("n_tasks", 1, 6), arg_int("prio_spread", 0, 7),
                arg_int("delay", 0, 20)],
          doc="Create a burst of tasks at spread priorities and let them run.")
    def syz_task_storm(self, n_tasks: int, prio_spread: int,
                       delay: int) -> int:
        created = []
        for i in range(n_tasks):
            handle = self.xTaskCreate(b"storm", 128 + 32 * i,
                                      (i * max(prio_spread, 1)) % 8, i % 4)
            if handle:
                self.ctx.cov(1)
                created.append(handle)
        self.vTaskDelay(delay)
        for handle in created:
            self.vTaskDelete(handle)
        return len(created)

    @kapi(module="pseudo", sites=10, pseudo=True,
          args=[arg_int("qlen", 1, 16), arg_int("rounds", 1, 32)],
          doc="Producer/consumer round-trips through a fresh queue.")
    def syz_queue_pipeline(self, qlen: int, rounds: int) -> int:
        queue = self.xQueueCreate(qlen, 8)
        if not queue:
            self.ctx.cov(1)
            return pdFAIL
        done = 0
        for i in range(rounds):
            if self.xQueueSend(queue, bytes([i & 0xFF]) * 8, 0) == pdPASS:
                self.ctx.cov(2)
                done += 1
            if i % 3 == 2:
                self.ctx.cov(3)
                self.xQueueReceive(queue, 0)
        while self.xQueueReceive(queue, 0) == pdPASS:
            self.ctx.cov(4)
        self.vQueueDelete(queue)
        return done

    @kapi(module="pseudo", sites=8, pseudo=True,
          args=[arg_int("n", 1, 4), arg_int("period", 1, 10)],
          doc="A cascade of auto-reloading timers driven for a while.")
    def syz_timer_cascade(self, n: int, period: int) -> int:
        handles = []
        for i in range(n):
            handle = self.xTimerCreate(period + i, 1, (i % 2) + 1)
            if handle:
                self.ctx.cov(1)
                self.xTimerStart(handle)
                handles.append(handle)
        self.vTaskDelay(period * 3)
        fired = 0
        for handle in handles:
            t = self._lookup(handle, "timer")
            if t is not None and t.fire_count > 0:
                self.ctx.cov(2)
                fired += 1
            self.xTimerDelete(handle)
        return fired

    @kapi(module="pseudo", sites=6, pseudo=True,
          args=[arg_int("offset", 0, 256), arg_int("entries", 1, 16)],
          doc="Reload partitions with a caller-chosen window.")
    def syz_partition_reload(self, offset: int, entries: int) -> int:
        return self.load_partitions(offset, entries)
