"""heap_4: FreeRTOS's first-fit allocator with coalescing free blocks.

The heap lives in a window of *simulated RAM bytes*; block headers are
stored in that RAM, not in Python objects, so corruption by buggy kernel
code produces the same downstream failures as on a real MCU (garbage
sizes, broken free lists, bus faults).

Block header layout (8 bytes, little-endian)::

    u32 next_free    offset of the next free block (0 = end of list)
    u32 size         block size in bytes incl. header; MSB set = allocated
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.hw.memory import Ram

HEADER_SIZE = 8
ALLOC_BIT = 0x8000_0000
SIZE_MASK = 0x7FFF_FFFF
ALIGNMENT = 8


class Heap4:
    """A heap_4-style allocator over ``ram[base, base+size)``.

    Offsets used in headers are relative to ``base``; offset 0 is the
    null sentinel, so the first usable block starts at ``ALIGNMENT``.
    """

    def __init__(self, ram: Ram, base: int, size: int):
        if size < 4 * HEADER_SIZE:
            raise ValueError("heap window too small")
        self.ram = ram
        self.base = base
        self.size = size & ~(ALIGNMENT - 1)
        self.free_bytes = 0
        self.min_ever_free = 0
        self.alloc_count = 0
        self.free_count = 0
        self._init_free_list()

    # -- raw header access -----------------------------------------------------

    def _read_header(self, off: int) -> Tuple[int, int]:
        addr = self.base + off
        next_free = self.ram.read_u32(addr)
        size = self.ram.read_u32(addr + 4)
        return next_free, size

    def _write_header(self, off: int, next_free: int, size: int) -> None:
        addr = self.base + off
        self.ram.write_u32(addr, next_free)
        self.ram.write_u32(addr + 4, size)

    def _init_free_list(self) -> None:
        # Offset 0 holds the list head pseudo-block; the single initial
        # free block spans the rest of the window.
        first = ALIGNMENT
        span = self.size - first
        self._write_header(0, first, 0)
        self._write_header(first, 0, span)
        self.free_bytes = span
        self.min_ever_free = span

    # -- public API ----------------------------------------------------------------

    def malloc(self, want: int) -> int:
        """Allocate ``want`` bytes; returns the payload's absolute RAM
        address, or 0 on failure (exactly like ``pvPortMalloc``)."""
        if want <= 0:
            return 0
        need = HEADER_SIZE + ((want + ALIGNMENT - 1) & ~(ALIGNMENT - 1))
        if need > SIZE_MASK:
            return 0
        prev_off = 0
        cur_off, _ = self._read_header(0)
        while cur_off:
            nxt, size = self._read_header(cur_off)
            if size & ALLOC_BIT:
                # Free-list corruption: an allocated block on the free
                # list means someone scribbled on a header.
                return 0
            if size >= need:
                remainder = size - need
                if remainder >= HEADER_SIZE + ALIGNMENT:
                    # Split: tail remains free.
                    tail_off = cur_off + need
                    self._write_header(tail_off, nxt, remainder)
                    self._link_after(prev_off, tail_off)
                    size = need
                else:
                    self._link_after(prev_off, nxt)
                self._write_header(cur_off, 0, size | ALLOC_BIT)
                self.free_bytes -= size
                self.min_ever_free = min(self.min_ever_free, self.free_bytes)
                self.alloc_count += 1
                return self.base + cur_off + HEADER_SIZE
            prev_off = cur_off
            cur_off = nxt
        return 0

    def _link_after(self, prev_off: int, target_off: int) -> None:
        nxt, size = self._read_header(prev_off)
        self._write_header(prev_off, target_off, size)

    def free(self, payload_addr: int) -> bool:
        """Release an allocation; returns False on an obviously bad pointer
        (returning rather than crashing mirrors configASSERT-less builds).
        """
        if payload_addr == 0:
            return False
        off = payload_addr - self.base - HEADER_SIZE
        if off < ALIGNMENT or off >= self.size or off % ALIGNMENT != 0:
            return False
        _, size = self._read_header(off)
        if not size & ALLOC_BIT:
            return False  # double free or wild pointer
        size &= SIZE_MASK
        if size < HEADER_SIZE or off + size > self.size:
            return False  # header corrupted
        self.free_bytes += size
        self.free_count += 1
        self._insert_free_block(off, size)
        return True

    def _insert_free_block(self, off: int, size: int) -> None:
        # Keep the free list address-ordered and coalesce both neighbours.
        prev_off = 0
        cur_off, _ = self._read_header(0)
        while cur_off and cur_off < off:
            prev_off = cur_off
            cur_off, _ = self._read_header(cur_off)

        merged_into_prev = False
        if prev_off:
            _, prev_size = self._read_header(prev_off)
            if prev_off + (prev_size & SIZE_MASK) == off:
                size += prev_size & SIZE_MASK
                off = prev_off
                merged_into_prev = True

        if cur_off and off + size == cur_off:
            cur_nxt, cur_size = self._read_header(cur_off)
            size += cur_size & SIZE_MASK
            cur_off = cur_nxt

        self._write_header(off, cur_off, size)
        if not merged_into_prev:
            self._link_after(prev_off, off)

    # -- introspection (tests / stats) -----------------------------------------------

    def free_list(self) -> List[Tuple[int, int]]:
        """(offset, size) of every free block, in list order."""
        blocks = []
        off, _ = self._read_header(0)
        hops = 0
        while off and hops < 1_000_000:
            nxt, size = self._read_header(off)
            blocks.append((off, size & SIZE_MASK))
            off = nxt
            hops += 1
        return blocks

    def check_invariants(self) -> Optional[str]:
        """Return None if healthy, else a description of the violation."""
        seen_end = 0
        total_free = 0
        for off, size in self.free_list():
            if off < ALIGNMENT or off + size > self.size:
                return f"free block out of window: off={off} size={size}"
            if off < seen_end:
                return f"free list not address ordered at off={off}"
            seen_end = off + size
            total_free += size
        if total_free != self.free_bytes:
            return (f"free byte accounting mismatch: "
                    f"list={total_free} counter={self.free_bytes}")
        return None
