"""Ground truth for the 19 injected bugs (Table 2).

Each entry records the paper's row (target OS, subsystem scope, bug type,
triggering operation, detecting monitor) and a minimal reproducer — the
API sequence a fuzzer must in effect discover.  ``("ref", i)`` marks a
handle produced by call *i* of the same program.

The reproducers double as regression tests (every bug must remain
triggerable) and as the matching oracle for the Table 2 benchmark
(a fuzzing campaign's crash signatures are attributed to rows by the
``match`` fragment appearing in the crash cause or backtrace).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

KP = "Kernel Panic"
KA = "Kernel Assertion"


@dataclass(frozen=True)
class InjectedBug:
    """One Table 2 row."""

    number: int
    os_name: str
    scope: str
    bug_type: str
    operation: str          # the paper's "Operations" column
    monitor: str            # which monitor detects it: "exception" | "log"
    match: str              # substring identifying the crash
    reproducer: Tuple[Tuple[str, Tuple], ...]
    confirmed: bool = False


BUG_TABLE: List[InjectedBug] = [
    InjectedBug(
        number=1, os_name="zephyr", scope="Heap", bug_type=KP,
        operation="sys_heap_stress()", monitor="exception",
        match="sys_heap corruption",
        reproducer=(("sys_heap_stress", (24, 3)),)),
    InjectedBug(
        number=2, os_name="zephyr", scope="Kernel", bug_type=KP,
        operation="z_impl_k_msgq_get()", monitor="exception",
        match="z_impl_k_msgq_get", confirmed=True,
        reproducer=(("k_msgq_init", (4, 8)),
                    ("k_msgq_cleanup", (("ref", 0),)),
                    ("k_msgq_get", (("ref", 0), 0)))),
    InjectedBug(
        number=3, os_name="zephyr", scope="JSON", bug_type=KP,
        operation="json_obj_encode()", monitor="exception",
        match="json_obj_encode", confirmed=True,
        reproducer=(("json_mkdeep", (8, 1)),
                    ("json_obj_encode", (("ref", 0),)))),
    InjectedBug(
        number=4, os_name="zephyr", scope="KHeap", bug_type=KP,
        operation="k_heap_init()", monitor="exception",
        match="k_heap_init", confirmed=True,
        reproducer=(("k_heap_init", (10,)),)),
    InjectedBug(
        number=5, os_name="rt-thread", scope="Kernel", bug_type=KA,
        operation="rt_object_get_type()", monitor="log",
        match="rt_object_get_type",
        reproducer=(("rt_object_init", (2, b"obj5")),
                    ("rt_object_detach", (("ref", 0),)),
                    ("rt_object_get_type", (("ref", 0),)))),
    InjectedBug(
        number=6, os_name="rt-thread", scope="RTService", bug_type=KP,
        operation="rt_list_isempty()", monitor="exception",
        match="rt_list_isempty",
        reproducer=(("rt_service_unregister", (0,)),
                    ("rt_service_poll", ()))),
    InjectedBug(
        number=7, os_name="rt-thread", scope="Memory", bug_type=KP,
        operation="rt_mp_alloc()", monitor="exception",
        match="rt_mp_alloc",
        reproducer=(("rt_mp_create", (b"pool", 4, 16)),
                    ("rt_mp_delete", (("ref", 0),)),
                    ("rt_mp_alloc", (("ref", 0), 0)))),
    InjectedBug(
        number=8, os_name="rt-thread", scope="Kernel", bug_type=KA,
        operation="rt_object_init()", monitor="log",
        match="rt_object_init",
        reproducer=(("rt_object_init", (3, b"dup")),
                    ("rt_object_init", (3, b"dup")))),
    InjectedBug(
        number=9, os_name="rt-thread", scope="Heap", bug_type=KP,
        operation="_heap_lock()", monitor="exception",
        match="_heap_lock",
        reproducer=(("rt_malloc", (32,)),
                    ("rt_free", (("ref", 0),)),
                    ("rt_free", (("ref", 0),)),
                    ("rt_malloc", (8,)))),
    InjectedBug(
        number=10, os_name="rt-thread", scope="IPC", bug_type=KP,
        operation="rt_event_send()", monitor="exception",
        match="rt_event_send",
        reproducer=(("rt_event_create", (b"evt", 0)),
                    ("rt_event_delete", (("ref", 0),)),
                    ("rt_event_send", (("ref", 0), 1)))),
    InjectedBug(
        number=11, os_name="rt-thread", scope="Memory", bug_type=KP,
        operation="rt_smem_setname()", monitor="exception",
        match="rt_smem_setname", confirmed=True,
        reproducer=(("rt_smem_setname", (b"a" * 24,)),)),
    InjectedBug(
        number=12, os_name="rt-thread", scope="Serial", bug_type=KP,
        operation="rt_serial_write()", monitor="exception",
        match="_serial_poll_tx",
        reproducer=(("rt_device_find", (b"uart0",)),
                    ("rt_device_unregister", (("ref", 0),)),
                    ("syz_create_bind_socket", (0xBC78, 1, 0, 0x101)))),
    InjectedBug(
        number=13, os_name="freertos", scope="Kernel", bug_type=KP,
        operation="load_partitions()", monitor="exception",
        match="partition table corrupt",
        reproducer=(("load_partitions", (56, 2)),)),
    InjectedBug(
        number=14, os_name="nuttx", scope="Kernel", bug_type=KP,
        operation="setenv()", monitor="exception",
        match="setenv", confirmed=True,
        reproducer=(("setenv", (b"A" * 30, b"v", 1)),)),
    InjectedBug(
        number=15, os_name="nuttx", scope="Libc", bug_type=KP,
        operation="gettimeofday()", monitor="exception",
        match="gettimeofday",
        reproducer=(("gettimeofday", (0x1FF,)),)),
    InjectedBug(
        number=16, os_name="nuttx", scope="MQueue", bug_type=KP,
        operation="nxmq_timedsend()", monitor="exception",
        match="nxmq_timedsend",
        reproducer=(("mq_open", (b"/mq16", 4, 16)),
                    ("mq_close", (("ref", 0),)),
                    ("mq_timedsend", (("ref", 0), b"msg", 1, 0)))),
    InjectedBug(
        number=17, os_name="nuttx", scope="Semaphore", bug_type=KA,
        operation="nxsem_trywait()", monitor="log",
        match="nxsem_trywait",
        reproducer=(("sem_init", (1,)),
                    ("sem_destroy", (("ref", 0),)),
                    ("sem_trywait", (("ref", 0),)))),
    InjectedBug(
        number=18, os_name="nuttx", scope="Timer", bug_type=KP,
        operation="timer_create()", monitor="exception",
        match="timer_create",
        reproducer=(("timer_create", (7, 2)),)),
    InjectedBug(
        number=19, os_name="nuttx", scope="Libc", bug_type=KP,
        operation="clock_getres()", monitor="exception",
        match="clock_getres",
        reproducer=(("clock_getres", (12, 12)),)),
]


def bugs_for(os_name: str) -> List[InjectedBug]:
    """Table 2 rows of one OS."""
    return [bug for bug in BUG_TABLE if bug.os_name == os_name]


def match_crashes(os_name: str, crash_texts: Sequence[str]) -> List[int]:
    """Attribute observed crash texts to Table 2 rows (bug numbers)."""
    found = []
    for bug in bugs_for(os_name):
        if any(bug.match in text for text in crash_texts):
            found.append(bug.number)
    return found
