"""The kernel's view of the hardware (HAL context).

Kernel code never touches the :class:`~repro.hw.board.Board` directly;
everything goes through this context, which:

* maintains machine stack frames (program counter, backtraces),
* fires coverage sites into the SanCov tracer,
* prints to the UART,
* raises/records panics, assertion failures and stalls,
* writes the crash-info block the host's exception monitor reads.

This is the layer that makes the kernels "run on" the virtual MCU.
"""

from __future__ import annotations

import contextlib
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    ExecutionStall,
    KernelAssertion,
    KernelPanic,
    TargetSignal,
)
from repro.hw.board import Board
from repro.hw.machine import StackFrame
from repro.instrument.sancov import SancovTracer
from repro.instrument.sites import SiteInfo

CRASH_MAGIC = 0xDEAD_C0DE

# Crash cause codes written into the crash-info block.
CAUSE_PANIC = 1
CAUSE_BUS_FAULT = 2
CAUSE_ASSERT = 3

KPRINTF_CYCLES = 25


class KernelContext:
    """Hardware-abstraction context handed to a kernel at boot."""

    def __init__(self, board: Board, addresses: Dict[str, int],
                 tracer: SancovTracer, layout) -> None:
        self.board = board
        self.machine = board.machine
        self.uart = board.uart
        self.ram = board.ram
        self.flash = board.flash
        self.addresses = addresses
        self.tracer = tracer
        self.layout = layout
        self.bp_hits: List[int] = []
        self.panic_info: Optional[Tuple[str, str]] = None
        self._site_stack: List[Optional[SiteInfo]] = []
        self._modules: Dict[str, str] = {}

    # -- frames / coverage -------------------------------------------------

    @contextlib.contextmanager
    def frame(self, symbol: str, module: str):
        """Enter an instrumented function.

        On a :class:`TargetSignal` the machine frames are *not* popped, so
        the debug probe can unwind the exact crash stack (Figure 6).
        """
        address = self.addresses.get(symbol, 0)
        self.machine.push_frame(
            StackFrame(symbol=symbol, address=address, module=module))
        info = self.tracer.site_table.for_symbol(symbol)
        self._site_stack.append(info)
        if info is not None and self.tracer.module_enabled(module):
            self.machine.tick(self.tracer.hit(info.base))
        if address and self.machine.breakpoint_at(address):
            self.bp_hits.append(address)
        try:
            yield
        except TargetSignal:
            self._site_stack.pop()
            raise
        else:
            self._site_stack.pop()
            self.machine.pop_frame()

    def cov(self, sub_site: int) -> None:
        """Fire sub-site ``sub_site`` of the current function.

        Besides the SanCov callback, this checks *basic-block
        breakpoints*: a debugger can break on any block's address
        (``function address + 4 * block index``), which is how
        GDBFuzz-style tools obtain coverage without instrumentation.
        """
        info = self._site_stack[-1] if self._site_stack else None
        if info is None:
            return
        if self.tracer.module_enabled(info.module):
            self.machine.tick(self.tracer.hit(info.site(sub_site)))
        if self.machine.breakpoint_count():
            block_addr = self.addresses.get(info.symbol, 0) + 4 * sub_site
            if block_addr and self.machine.breakpoint_at(block_addr):
                self.bp_hits.append(block_addr)

    def drop_frames_to(self, depth: int) -> None:
        """Unwind machine frames down to ``depth`` (agent cleanup after a
        handled, non-fatal signal)."""
        while self.machine.stack_depth() > depth:
            self.machine.pop_frame()
        del self._site_stack[depth:]

    # -- console --------------------------------------------------------------

    def kprintf(self, line: str) -> None:
        """Kernel printf: one line to the UART (host-captured, §4.3.1)."""
        self.machine.tick(KPRINTF_CYCLES + len(line) // 4)
        self.uart.putline(line)

    # -- time -------------------------------------------------------------------

    def cycles(self, n: int) -> None:
        """Burn ``n`` cycles (models real work; negative = no work)."""
        if n > 0:
            self.machine.tick(n)

    def now(self) -> int:
        """Current cycle count (the kernel's tick source)."""
        return self.machine.cycles

    # -- failure paths -------------------------------------------------------------

    def panic(self, cause: str, detail: str = "") -> "None":
        """Enter the kernel panic path; never returns normally."""
        self.panic_info = (cause, detail)
        raise KernelPanic(cause, detail)

    def assert_failed(self, expr: str, location: str) -> "None":
        """A kernel assertion failed; never returns normally.

        The assert text is printed over UART *before* the hang, which is
        why the paper's log monitor (not the exception monitor) is what
        catches assertion bugs.
        """
        raise KernelAssertion(expr, location)

    def stall(self, reason: str) -> "None":
        """Enter an unbounded polling loop; never returns normally."""
        raise ExecutionStall(reason)

    def record_crash(self, cause_code: int, text: str) -> None:
        """Write the crash-info block the exception monitor reads."""
        base = self.layout.crash_addr
        data = text.encode("utf-8", "replace")[: self.layout.crash_size - 12]
        self.ram.write_u32(base, CRASH_MAGIC)
        self.ram.write_u32(base + 4, cause_code)
        self.ram.write_u32(base + 8, len(data))
        self.ram.write(base + 12, data)

    # -- raw hardware (for faithful bug effects) ----------------------------------

    def flash_raw_write(self, address: int, data: bytes) -> None:
        """Scribble directly on flash, bypassing erase rules.

        This is how a buggy kernel damages its own image (the condition
        that makes reboot insufficient and reflashing necessary, §4.4.2).
        """
        self.flash.write(address, data)
