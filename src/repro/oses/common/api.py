"""API metadata and instrumentation decorators.

Every kernel-internal function is marked ``@kfunc`` so the firmware
builder can give it a symbol, a code size and a coverage-site block.
Functions callable from the execution agent are additionally marked
``@kapi`` with a machine-readable description of their arguments; that
description is the stand-in for the headers / unit tests / API reference
text the paper feeds to the LLM when synthesising Syzlang specifications
(§4.5), and it is what :mod:`repro.spec.llmgen` consumes.
"""

from __future__ import annotations

import functools
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

_ORDER = itertools.count()

DEFAULT_SITES = 8


@dataclass(frozen=True)
class KFuncMeta:
    """Build-time metadata of one kernel function."""

    name: str
    module: str
    sites: int
    order: int
    code_size: int = 0  # 0 = let the builder derive a size


@dataclass(frozen=True)
class ArgDef:
    """One argument of a fuzzer-callable API.

    ``kind`` is one of:

    * ``"int"``   — integer in ``[lo, hi]``
    * ``"flags"`` — bitwise OR of named flag values
    * ``"buf"``   — byte buffer of length <= ``maxlen``
    * ``"str"``   — NUL-free byte string of length <= ``maxlen``
    * ``"res"``   — handle produced earlier by an API returning ``res``
    * ``"const"`` — a fixed value the caller must pass verbatim
    """

    name: str
    kind: str
    lo: int = 0
    hi: int = 0
    flags: Tuple[Tuple[str, int], ...] = ()
    res: Optional[str] = None
    maxlen: int = 0
    value: int = 0
    doc: str = ""
    # For "str" args: well-known values (device names, paths) the docs
    # mention; spec generation surfaces them as string constants.
    candidates: Tuple[str, ...] = ()
    # For "buf" args: the wire format the API expects ("http_request",
    # "json", ...), as documented in headers/tests.  The spec carries it
    # so API-aware generation can emit well-formed payloads.
    fmt: str = ""


def arg_int(name: str, lo: int, hi: int, doc: str = "") -> ArgDef:
    """An integer argument constrained to ``[lo, hi]``."""
    if lo > hi:
        raise ValueError(f"arg {name!r}: empty range [{lo}, {hi}]")
    return ArgDef(name=name, kind="int", lo=lo, hi=hi, doc=doc)


def arg_flags(name: str, flags: Sequence[Tuple[str, int]],
              doc: str = "") -> ArgDef:
    """A flags argument: bitwise OR of the named values."""
    if not flags:
        raise ValueError(f"arg {name!r}: flags set may not be empty")
    return ArgDef(name=name, kind="flags", flags=tuple(flags), doc=doc)


def arg_buf(name: str, maxlen: int, doc: str = "",
            fmt: str = "") -> ArgDef:
    """A byte-buffer argument of bounded length; ``fmt`` names the wire
    format the API documents ("http_request", "json")."""
    return ArgDef(name=name, kind="buf", maxlen=maxlen, doc=doc, fmt=fmt)


def arg_str(name: str, maxlen: int, doc: str = "",
            candidates: Sequence[str] = ()) -> ArgDef:
    """A printable byte-string argument of bounded length; ``candidates``
    lists documented well-known values (device names, env keys, ...)."""
    return ArgDef(name=name, kind="str", maxlen=maxlen, doc=doc,
                  candidates=tuple(candidates))


def arg_res(name: str, res: str, doc: str = "") -> ArgDef:
    """A resource handle produced by an API whose ``ret`` is ``res``."""
    return ArgDef(name=name, kind="res", res=res, doc=doc)


def arg_const(name: str, value: int, doc: str = "") -> ArgDef:
    """A constant the caller must pass as-is."""
    return ArgDef(name=name, kind="const", value=value, doc=doc)


@dataclass(frozen=True)
class ApiDef:
    """A fuzzer-callable API: the unit the spec generator describes."""

    name: str
    module: str
    args: Tuple[ArgDef, ...] = ()
    ret: Optional[str] = None    # resource type produced, if any
    doc: str = ""
    pseudo: bool = False         # Syzkaller-style pseudo syscall (syz_*)


def kfunc(module: str = "kernel", sites: int = DEFAULT_SITES,
          code_size: int = 0) -> Callable:
    """Mark a kernel method as an instrumented function.

    The wrapper enters a machine stack frame (moving the PC, charging
    cycles, firing the entry coverage site and checking breakpoints)
    around the Python body.  Objects using it must expose ``self.ctx``
    (a :class:`repro.oses.common.context.KernelContext`).
    """

    def decorate(fn: Callable) -> Callable:
        meta = KFuncMeta(name=fn.__name__, module=module, sites=sites,
                         order=next(_ORDER), code_size=code_size)

        @functools.wraps(fn)
        def wrapper(self, *args, **kwargs):
            with self.ctx.frame(meta.name, meta.module):
                return fn(self, *args, **kwargs)

        wrapper.__kfunc__ = meta
        wrapper.__kfunc_raw__ = fn
        return wrapper

    return decorate


def kapi(module: str = "kernel", sites: int = DEFAULT_SITES,
         args: Sequence[ArgDef] = (), ret: Optional[str] = None,
         doc: str = "", pseudo: bool = False,
         code_size: int = 0) -> Callable:
    """Mark a kernel method as a fuzzer-callable API (implies ``kfunc``)."""

    def decorate(fn: Callable) -> Callable:
        wrapped = kfunc(module=module, sites=sites, code_size=code_size)(fn)
        wrapped.__kapi__ = ApiDef(name=fn.__name__, module=module,
                                  args=tuple(args), ret=ret, doc=doc,
                                  pseudo=pseudo)
        if doc and not wrapped.__doc__:
            wrapped.__doc__ = doc
        return wrapped

    return decorate


def collect_kfuncs(cls: Type) -> List[KFuncMeta]:
    """All ``@kfunc`` metadata on a class, in definition order."""
    metas: Dict[str, KFuncMeta] = {}
    for klass in reversed(cls.__mro__):
        for name, attr in vars(klass).items():
            meta = getattr(attr, "__kfunc__", None)
            if meta is not None:
                metas[name] = meta
    return sorted(metas.values(), key=lambda m: m.order)


def collect_apis(cls: Type) -> List[ApiDef]:
    """All ``@kapi`` metadata on a class, in definition order."""
    apis: Dict[str, Tuple[int, ApiDef]] = {}
    for klass in reversed(cls.__mro__):
        for name, attr in vars(klass).items():
            api = getattr(attr, "__kapi__", None)
            if api is not None:
                apis[name] = (attr.__kfunc__.order, api)
    return [api for _, api in sorted(apis.values(), key=lambda t: t[0])]
