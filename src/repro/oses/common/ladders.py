"""Driver-style protocol ladders.

Real kernels are full of *staged* interfaces: a storage driver must be
probed, unlocked with the right key, mounted on a valid slot and only
then written; a CAN controller must be initialised at a legal baud rate,
given a filter, and started before frames flow.  Each stage guards the
next behind both ordering and argument constraints, which makes the deep
stages essentially unreachable for independent random sampling — they are
exactly the paths coverage-guided retention climbs one rung at a time
(the dynamics behind Figure 7's long slow tail).

Each kernel mixes in one such subsystem; the mixins keep their state on
the kernel instance lazily so they compose with any ``__init__``.
"""

from __future__ import annotations

from repro.oses.common.api import arg_buf, arg_int, kapi


def _state(kernel, attr: str, default):
    if not hasattr(kernel, attr):
        setattr(kernel, attr, default)
    return getattr(kernel, attr)


class FlashStorageLadder:
    """An external-flash storage driver (FreeRTOS flavour).

    probe -> unlock(key) -> mount(slot) -> write*/read* -> sync -> unmount
    """

    def _ladder_reset(self) -> None:
        """Driver session teardown (agent re-init between test cases)."""
        self._st_stage = 0
        self._st_written = 0

    @kapi(module="storage", sites=6, doc="Probe the external flash chip.")
    def storage_probe(self) -> int:
        _state(self, "_st_stage", 0)
        if self._st_stage >= 1:
            self.ctx.cov(1)
            return 0  # already probed
        self._st_stage = 1
        self.ctx.cov(2)
        return 1

    @kapi(module="storage", sites=8, args=[arg_int("key", 0, 255)],
          doc="Unlock write access; the chip accepts its OTP keys only.")
    def storage_unlock(self, key: int) -> int:
        _state(self, "_st_stage", 0)
        if self._st_stage < 1:
            self.ctx.cov(1)
            return -1
        if key not in (0x5A, 0xA5, 0x3C):
            self.ctx.cov(2)
            return -2
        self.ctx.cov(3 + (0x5A, 0xA5, 0x3C).index(key))  # 3..5: per key
        self._st_stage = 2
        return 0

    @kapi(module="storage", sites=8, args=[arg_int("slot", 0, 15)],
          doc="Mount one of the first three wear-levelled slots.")
    def storage_mount(self, slot: int) -> int:
        _state(self, "_st_stage", 0)
        if self._st_stage < 2:
            self.ctx.cov(1)
            return -1
        if not 0 <= slot < 3:
            self.ctx.cov(2)
            return -2
        self._st_stage = 3
        self._st_slot = slot
        self._st_written = 0
        self.ctx.cov(3 + slot)  # 3..5: per slot
        return 0

    @kapi(module="storage", sites=10, args=[arg_buf("data", 128)],
          doc="Append a record to the mounted slot.")
    def storage_write(self, data: bytes) -> int:
        _state(self, "_st_stage", 0)
        if self._st_stage < 3:
            self.ctx.cov(1)
            return -1
        if not data:
            self.ctx.cov(2)
            return -2
        self._st_written = _state(self, "_st_written", 0) + len(data)
        self.ctx.cov(3)
        if data[0] == 0x42:
            self.ctx.cov(4)  # record type B gets a header rewrite
        if self._st_written > 256:
            self.ctx.cov(5)  # spilled into a second page
        if self._st_written > 1024:
            self.ctx.cov(6)  # triggered wear-levelling
        return len(data)

    @kapi(module="storage", sites=6, doc="Flush pending pages.")
    def storage_sync(self) -> int:
        _state(self, "_st_stage", 0)
        if self._st_stage < 3:
            self.ctx.cov(1)
            return -1
        if _state(self, "_st_written", 0) == 0:
            self.ctx.cov(2)
            return 0
        self.ctx.cov(3)
        self.ctx.cycles(40)
        self._st_stage = 4
        return self._st_written

    @kapi(module="storage", sites=6, doc="Unmount; requires a clean sync.")
    def storage_unmount(self) -> int:
        _state(self, "_st_stage", 0)
        if self._st_stage < 3:
            self.ctx.cov(1)
            return -1
        if self._st_stage == 4:
            self.ctx.cov(2)  # clean unmount after sync
        else:
            self.ctx.cov(3)  # dirty unmount: replay journal
            self.ctx.cycles(60)
        self._st_stage = 1
        return 0


class CanBusLadder:
    """A CAN controller (RT-Thread flavour).

    init(baud) -> filter(id) -> start -> send/recv -> stop
    """

    def _ladder_reset(self) -> None:
        """Driver session teardown (agent re-init between test cases)."""
        self._can_stage = 0
        self._can_tx = 0

    @kapi(module="can", sites=8, args=[arg_int("baud_kbps", 0, 1000)],
          doc="Initialise the controller at a standard baud rate.")
    def can_init(self, baud_kbps: int) -> int:
        if baud_kbps not in (125, 250, 500, 1000):
            self.ctx.cov(1)
            return -1
        _state(self, "_can_stage", 0)
        self._can_stage = 1
        self._can_baud = baud_kbps
        self.ctx.cov(2 + (125, 250, 500, 1000).index(baud_kbps))  # 2..5
        return 0

    @kapi(module="can", sites=8,
          args=[arg_int("can_id", 0, 0x7FF), arg_int("mask", 0, 0x7FF)],
          doc="Install an acceptance filter.")
    def can_filter(self, can_id: int, mask: int) -> int:
        if _state(self, "_can_stage", 0) < 1:
            self.ctx.cov(1)
            return -1
        if can_id > 0x7FF or mask > 0x7FF:
            self.ctx.cov(2)
            return -2
        self._can_id = can_id
        self._can_mask = mask
        self._can_stage = 2
        self.ctx.cov(3)
        if mask == 0x7FF:
            self.ctx.cov(4)  # exact-match filter
        return 0

    @kapi(module="can", sites=6, doc="Start the controller.")
    def can_start(self) -> int:
        if _state(self, "_can_stage", 0) < 2:
            self.ctx.cov(1)
            return -1
        self._can_stage = 3
        self._can_tx = 0
        self.ctx.cov(2)
        return 0

    @kapi(module="can", sites=10,
          args=[arg_int("can_id", 0, 0x7FF), arg_buf("frame", 8)],
          doc="Transmit a frame (must pass the installed filter).")
    def can_send(self, can_id: int, frame: bytes) -> int:
        if _state(self, "_can_stage", 0) < 3:
            self.ctx.cov(1)
            return -1
        if len(frame) > 8:
            self.ctx.cov(2)
            return -2
        accepted = (can_id & self._can_mask) == (self._can_id & self._can_mask)
        if not accepted:
            self.ctx.cov(3)
            return -3
        self._can_tx = _state(self, "_can_tx", 0) + 1
        self.ctx.cov(4)
        self.ctx.cov(5 + min(len(frame), 4))  # 5..9: per DLC class
        return len(frame)

    @kapi(module="can", sites=6, doc="Read controller statistics.")
    def can_stats(self) -> int:
        if _state(self, "_can_stage", 0) < 1:
            self.ctx.cov(1)
            return -1
        tx = _state(self, "_can_tx", 0)
        if tx >= 8:
            self.ctx.cov(2)  # a sustained burst went out
        return tx

    @kapi(module="can", sites=5, doc="Stop the controller.")
    def can_stop(self) -> int:
        if _state(self, "_can_stage", 0) < 3:
            self.ctx.cov(1)
            return -1
        self._can_stage = 1
        self.ctx.cov(2)
        return 0


class SensorLadder:
    """A sensor driver (Zephyr flavour).

    open -> attr_set -> trigger_set -> fetch -> channel_get
    """

    def _ladder_reset(self) -> None:
        """Driver session teardown (agent re-init between test cases)."""
        self._sen_stage = 0
        self._sen_attrs = {}
        self._sen_samples = 0

    @kapi(module="sensor", sites=5, doc="Power up the sensor.")
    def sensor_open(self) -> int:
        _state(self, "_sen_stage", 0)
        self._sen_stage = 1
        self._sen_attrs = {}
        self.ctx.cov(1)
        return 0

    @kapi(module="sensor", sites=10,
          args=[arg_int("attr", 0, 15), arg_int("value", 0, 255)],
          doc="Configure an attribute (sampling rate, range, ...).")
    def sensor_attr_set(self, attr: int, value: int) -> int:
        if _state(self, "_sen_stage", 0) < 1:
            self.ctx.cov(1)
            return -1
        if not 0 <= attr <= 7:
            self.ctx.cov(2)
            return -2
        limits = (4, 8, 2, 16, 3, 255, 255, 255)
        if value >= limits[attr]:
            self.ctx.cov(3)
            return -3
        self._sen_attrs[attr] = value
        self.ctx.cov(4 + min(attr, 5))  # 4..9: per attribute
        if len(self._sen_attrs) >= 3:
            self._sen_stage = 2
        return 0

    @kapi(module="sensor", sites=6, args=[arg_int("trigger", 0, 7)],
          doc="Arm a trigger; needs three configured attributes first.")
    def sensor_trigger_set(self, trigger: int) -> int:
        if _state(self, "_sen_stage", 0) < 2:
            self.ctx.cov(1)
            return -1
        if trigger not in (0, 1, 4):
            self.ctx.cov(2)
            return -2
        self._sen_trigger = trigger
        self._sen_stage = 3
        self.ctx.cov(3 + (0, 1, 4).index(trigger))  # 3..5
        return 0

    @kapi(module="sensor", sites=6, doc="Fetch a sample into the driver.")
    def sensor_sample_fetch(self) -> int:
        if _state(self, "_sen_stage", 0) < 3:
            self.ctx.cov(1)
            return -1
        self._sen_samples = _state(self, "_sen_samples", 0) + 1
        self.ctx.cov(2)
        if self._sen_samples >= 5:
            self.ctx.cov(3)  # FIFO watermark reached
        return self._sen_samples

    @kapi(module="sensor", sites=8, args=[arg_int("channel", 0, 15)],
          doc="Read a channel of the last fetched sample.")
    def sensor_channel_get(self, channel: int) -> int:
        if _state(self, "_sen_samples", 0) < 1:
            self.ctx.cov(1)
            return -1
        if not 0 <= channel <= 5:
            self.ctx.cov(2)
            return -2
        self.ctx.cov(3 + channel % 5)  # 3..7: per channel
        return (self._sen_samples * 37 + channel) & 0x7FFF


class MtdLadder:
    """A raw MTD flash character driver (NuttX flavour).

    open -> erase(sector) -> write -> verify -> close
    """

    def _ladder_reset(self) -> None:
        """Driver session teardown (agent re-init between test cases)."""
        self._mtd_stage = 0
        self._mtd_erased = set()
        self._mtd_written = {}

    @kapi(module="mtd", sites=5, doc="Open the MTD character device.")
    def mtd_open(self) -> int:
        _state(self, "_mtd_stage", 0)
        self._mtd_stage = 1
        self._mtd_erased = set()
        self._mtd_written = {}
        self.ctx.cov(1)
        return 0

    @kapi(module="mtd", sites=7, args=[arg_int("sector", 0, 31)],
          doc="Erase one of eight sectors.")
    def mtd_erase(self, sector: int) -> int:
        if _state(self, "_mtd_stage", 0) < 1:
            self.ctx.cov(1)
            return -1
        if sector >= 8:
            self.ctx.cov(2)
            return -2
        self._mtd_erased.add(sector)
        self._mtd_written.pop(sector, None)
        self.ctx.cov(3)
        if len(self._mtd_erased) >= 4:
            self.ctx.cov(4)  # bulk-erase pattern
        return 0

    @kapi(module="mtd", sites=8,
          args=[arg_int("sector", 0, 31), arg_buf("data", 64)],
          doc="Program an erased sector.")
    def mtd_write(self, sector: int, data: bytes) -> int:
        if _state(self, "_mtd_stage", 0) < 1:
            self.ctx.cov(1)
            return -1
        if sector not in _state(self, "_mtd_erased", set()):
            self.ctx.cov(2)
            return -2  # program-before-erase rejected
        self._mtd_written[sector] = bytes(data)
        self._mtd_erased.discard(sector)
        self.ctx.cov(3)
        if len(data) >= 48:
            self.ctx.cov(4)  # near-full page program
        return len(data)

    @kapi(module="mtd", sites=7, args=[arg_int("sector", 0, 31)],
          doc="Verify a programmed sector.")
    def mtd_verify(self, sector: int) -> int:
        written = _state(self, "_mtd_written", {})
        if sector not in written:
            self.ctx.cov(1)
            return -1
        self.ctx.cov(2)
        if len(written) >= 3:
            self.ctx.cov(3)  # multi-sector transaction verified
        return len(written[sector])

    @kapi(module="mtd", sites=5, doc="Close the device.")
    def mtd_close(self) -> int:
        if _state(self, "_mtd_stage", 0) < 1:
            self.ctx.cov(1)
            return -1
        if _state(self, "_mtd_written", {}):
            self.ctx.cov(2)  # close with committed data
        self._mtd_stage = 0
        return 0
