"""Base classes for kernels and attachable components."""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import BusFault, KernelAssertion, KernelPanic, TargetSignal
from repro.oses.common.api import ApiDef, collect_apis, collect_kfuncs
from repro.oses.common.context import (
    CAUSE_ASSERT,
    CAUSE_BUS_FAULT,
    CAUSE_PANIC,
    KernelContext,
)


class KernelComponent:
    """An optional module linked into the image (JSON codec, HTTP server).

    Components carry their own ``@kfunc``/``@kapi`` functions; their APIs
    are appended to the kernel's API table at boot, and their coverage
    sites live under their own module tag so instrumentation can be
    confined to them (Table 4's setup).
    """

    NAME = "component"
    #: Extra dispatch-entry method names for the static reachability
    #: analysis (repro.analysis.reach) — functions invoked through
    #: registered callbacks or tables the AST walk cannot see.
    ANALYSIS_ROOTS: Tuple[str, ...] = ()

    def __init__(self, kernel: "EmbeddedKernel"):
        self.kernel = kernel

    @property
    def ctx(self) -> KernelContext:
        """The owning kernel's HAL context."""
        return self.kernel.ctx

    def on_boot(self) -> None:
        """Called once during kernel boot."""

    def k_assert(self, cond: bool, expr: str, location: str) -> None:
        """Delegate assertion handling to the kernel's style."""
        self.kernel.k_assert(cond, expr, location)


class EmbeddedKernel:
    """Common machinery of the five embedded OS implementations.

    Subclasses provide:

    * ``NAME`` / ``VERSION`` / ``BOOT_BANNER``
    * ``EXCEPTION_SYMBOL`` — the name of their fatal-error entry point
      (a ``@kfunc`` method), where the host's exception monitor places a
      breakpoint (§4.5.2);
    * ``ASSERT_LOG_FORMAT`` — the line printed on assertion failure (the
      log monitor's food);
    * ``boot_os()`` — subsystem initialization;
    * ``@kapi`` methods — the fuzzable API surface.
    """

    NAME = "generic"
    VERSION = "0.0"
    BOOT_BANNER = "generic embedded os"
    EXCEPTION_SYMBOL = "panic_handler"
    ASSERT_LOG_FORMAT = "ASSERT failed: {expr} at {loc}"
    PANIC_LOG_FORMAT = "KERNEL PANIC: {cause} ({detail})"
    #: Extra dispatch-entry method names for the static reachability
    #: analysis (repro.analysis.reach) — see KernelComponent.
    ANALYSIS_ROOTS: Tuple[str, ...] = ()

    def __init__(self, ctx: KernelContext, config: Optional[dict] = None):
        self.ctx = ctx
        self.config = dict(config or {})
        self.components: List[KernelComponent] = []
        self._api_table: List[Tuple[ApiDef, Callable]] = []
        self._collect_own_apis()

    # -- API table -------------------------------------------------------------

    def _collect_own_apis(self) -> None:
        for api in collect_apis(type(self)):
            handler = getattr(self, api.name)
            self._api_table.append((api, handler))

    def attach_component(self, component: KernelComponent) -> None:
        """Link a component's APIs into the kernel's dispatch table."""
        self.components.append(component)
        for api in collect_apis(type(component)):
            handler = getattr(component, api.name)
            self._api_table.append((api, handler))

    def api_table(self) -> List[ApiDef]:
        """Full fuzzable API surface (kernel + attached components)."""
        return [api for api, _ in self._api_table]

    def api_index(self, name: str) -> int:
        """Index of API ``name`` in the dispatch table."""
        for i, (api, _) in enumerate(self._api_table):
            if api.name == name:
                return i
        raise KeyError(name)

    def invoke(self, api_id: int, args: Sequence) -> int:
        """Dispatch one deserialized call (used by the execution agent).

        The agent hands over raw wire values (ints and byte strings); the
        dispatcher coerces them to what each parameter expects, the way a
        C ABI would reinterpret the registers/stack slots.
        """
        if not 0 <= api_id < len(self._api_table):
            return -38  # ENOSYS-flavoured
        api, handler = self._api_table[api_id]
        if len(args) != len(api.args):
            return -22  # EINVAL: arity mismatch
        coerced = []
        for arg_def, value in zip(api.args, args):
            if arg_def.kind in ("buf", "str"):
                if isinstance(value, bytes):
                    coerced.append(value)
                else:
                    coerced.append(
                        (int(value) & ((1 << 64) - 1)).to_bytes(8, "little"))
            else:
                if isinstance(value, bytes):
                    value = int.from_bytes(value[:8].ljust(8, b"\x00"),
                                           "little")
                value = int(value)
                if arg_def.kind == "int":
                    # Wildly out-of-range values behave like "very large"
                    # on the target (loops run long, blocking waits park
                    # forever); bound them so long still terminates while
                    # the reject/clamp/stall branches stay reachable.
                    value = max(arg_def.lo - 16,
                                min(value, arg_def.hi + 2048))
                coerced.append(value)
        result = handler(*coerced)
        return 0 if result is None else int(result)

    # -- boot ----------------------------------------------------------------------

    def boot(self) -> None:
        """Bring the OS up: banner, subsystems, config-selected components."""
        from repro.oses.components import component_registry

        self.ctx.kprintf(self.BOOT_BANNER)
        self.boot_os()
        registry = component_registry()
        for name in self.config.get("components", ()):
            comp_cls = registry.get(name)
            if comp_cls is None:
                continue
            component = comp_cls(self)
            self.attach_component(component)
            component.on_boot()
        self.ctx.kprintf(f"{self.NAME} {self.VERSION} ready")

    def boot_os(self) -> None:
        """Subsystem initialization (subclass hook)."""

    def idle_tick(self) -> None:
        """Housekeeping run between test-case calls (timers, scheduler)."""

    def on_testcase_start(self) -> None:
        """Agent hook at the start of each test case.

        The execution agent re-runs the target's initialization logic
        before every input (§4.6); stateful driver sessions (protocol
        ladders) are torn down here, so staged interfaces must be walked
        within a single test case.
        """
        for hook_name in ("_ladder_reset", "_shell_reset"):
            hook = getattr(self, hook_name, None)
            if hook is not None:
                hook()

    # -- failure handling -----------------------------------------------------------

    def k_assert(self, cond: bool, expr: str, location: str) -> None:
        """Kernel assertion: print the OS's assert line, then hang."""
        if cond:
            return
        self.ctx.kprintf(self.ASSERT_LOG_FORMAT.format(expr=expr, loc=location))
        self.ctx.record_crash(CAUSE_ASSERT, f"{expr} @ {location}")
        self.ctx.assert_failed(expr, location)

    def handle_fatal(self, signal: TargetSignal) -> None:
        """Route a fatal signal into the OS-specific exception entry point.

        The agent calls this *after* the signal unwound the Python stack;
        the machine's crash frames are still frozen, so the handler frame
        stacks on top of them exactly like a real exception entry.
        """
        handler = getattr(self, self.EXCEPTION_SYMBOL)
        handler(signal)

    def _fatal_common(self, signal: TargetSignal) -> None:
        """Shared body of every OS's exception entry point."""
        if isinstance(signal, KernelPanic):
            cause, detail = signal.cause, signal.detail
            code = CAUSE_PANIC
        elif isinstance(signal, BusFault):
            cause, detail = "hard fault", str(signal)
            code = CAUSE_BUS_FAULT
        elif isinstance(signal, KernelAssertion):
            cause, detail = "assertion", signal.expr
            code = CAUSE_ASSERT
        else:
            cause, detail = "fatal", str(signal)
            code = CAUSE_PANIC
        self.ctx.kprintf(self.PANIC_LOG_FORMAT.format(cause=cause,
                                                      detail=detail))
        self.ctx.record_crash(code, f"{cause}: {detail}")

    # -- shared helpers ---------------------------------------------------------------

    @classmethod
    def declared_kfuncs(cls):
        """All instrumentable functions of this kernel class."""
        return collect_kfuncs(cls)

    @classmethod
    def declared_apis(cls):
        """All fuzzable APIs declared directly on this kernel class."""
        return collect_apis(cls)
