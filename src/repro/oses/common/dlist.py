"""Intrusive circular doubly-linked list, the workhorse container of small
kernels (RT-Thread's ``rt_list_t``, FreeRTOS's ``xLIST``, Zephyr's
``sys_dlist``).  Implemented the embedded way — explicit node splicing —
so that list-corruption bugs behave like their C counterparts.
"""

from __future__ import annotations

from typing import Iterator, Optional


class DListNode:
    """A list node; embed one per object per list membership."""

    __slots__ = ("next", "prev", "owner")

    def __init__(self, owner=None):
        self.next: "DListNode" = self
        self.prev: "DListNode" = self
        self.owner = owner

    def is_linked(self) -> bool:
        """Is this node currently spliced into some list?"""
        return self.next is not self

    def unlink(self) -> None:
        """Remove from whatever list contains the node (no-op if free)."""
        self.next.prev = self.prev
        self.prev.next = self.next
        self.next = self
        self.prev = self


class DList:
    """A circular list with a sentinel head node."""

    def __init__(self) -> None:
        self.head = DListNode()

    def is_empty(self) -> bool:
        """True if no nodes are linked."""
        return self.head.next is self.head

    def insert_after(self, where: DListNode, node: DListNode) -> None:
        """Splice ``node`` right after ``where``."""
        node.next = where.next
        node.prev = where
        where.next.prev = node
        where.next = node

    def insert_before(self, where: DListNode, node: DListNode) -> None:
        """Splice ``node`` right before ``where``."""
        self.insert_after(where.prev, node)

    def push_front(self, node: DListNode) -> None:
        """Insert at the head."""
        self.insert_after(self.head, node)

    def push_back(self, node: DListNode) -> None:
        """Insert at the tail."""
        self.insert_before(self.head, node)

    def pop_front(self) -> Optional[DListNode]:
        """Remove and return the first node, or None when empty."""
        if self.is_empty():
            return None
        node = self.head.next
        node.unlink()
        return node

    def remove(self, node: DListNode) -> None:
        """Remove ``node``; it must currently be in *this* list (unchecked,
        as in C — removing from the wrong list corrupts both)."""
        node.unlink()

    def __len__(self) -> int:
        count = 0
        node = self.head.next
        while node is not self.head:
            count += 1
            node = node.next
        return count

    def __iter__(self) -> Iterator[DListNode]:
        node = self.head.next
        while node is not self.head:
            nxt = node.next  # allow unlinking during iteration
            yield node
            node = nxt

    def check_consistency(self) -> bool:
        """Verify next/prev symmetry around the whole ring (test hook)."""
        node = self.head
        while True:
            if node.next.prev is not node or node.prev.next is not node:
                return False
            node = node.next
            if node is self.head:
                return True
