"""An embedded command shell (FinSH / NSH / Zephyr-shell flavour).

Every kernel in our catalog ships a little console interpreter in real
life; it is also the classic deep-parse surface: commands are only
reachable through exact tokens, sub-commands through more tokens, and
argument handling branches on value shapes.  Discovery is therefore
*compositional* — a fuzzer that retains "``set`` parsed" can extend it to
"``set key``" and then "``set key value``", while independent random
sampling has to get the whole line right at once.

The interpreter supports quoting, ``;``-chained commands, decimal/hex
argument parsing, an environment store, a tiny virtual file table and a
handful of device toggles.  All state lives per shell *session*, which is
reopened by the agent between test cases.
"""

from __future__ import annotations

from typing import Dict, List

from repro.oses.common.api import arg_str, kapi

MAX_LINE = 96
MAX_TOKENS = 8
MAX_ENV = 8

VIRTUAL_FILES = {
    "boot.cfg": b"console=uart0 loglevel=3",
    "version": b"repro-build",
    "motd": b"welcome to the repro shell",
}


class ShellInterpreter:
    """Console interpreter mixin (state is reset per test case by the
    agent's re-init hook, like every other driver session)."""

    SHELL_PROMPT = "sh"

    # -- session state ------------------------------------------------------

    def _shell_state(self) -> dict:
        if not hasattr(self, "_sh"):
            self._sh = {"env": {}, "led": 0, "loglevel": 3, "ifup": False,
                        "history": 0}
        return self._sh

    def _shell_reset(self) -> None:
        if hasattr(self, "_sh"):
            del self._sh

    # -- tokenizer --------------------------------------------------------------

    def _shell_tokenize(self, line: str) -> List[str]:
        tokens: List[str] = []
        current: List[str] = []
        in_quote = False
        for char in line:
            if char == '"':
                self.ctx.cov(1)
                in_quote = not in_quote
                continue
            if char in " \t" and not in_quote:
                if current:
                    tokens.append("".join(current))
                    current = []
                continue
            current.append(char)
        if current:
            tokens.append("".join(current))
        if in_quote:
            self.ctx.cov(2)
            raise ValueError("unterminated quote")
        if len(tokens) > MAX_TOKENS:
            self.ctx.cov(3)
            raise ValueError("too many tokens")
        return tokens

    @staticmethod
    def _shell_int(token: str) -> int:
        if token.startswith("0x") or token.startswith("0X"):
            return int(token, 16)
        return int(token)

    # -- command handlers (each returns an int status) -----------------------------

    def _sh_help(self, args: List[str]) -> int:
        self.ctx.cov(10)
        if args:
            self.ctx.cov(11)  # help <command>
            return 0 if args[0] in self._SHELL_COMMANDS else -1
        self.ctx.kprintf(f"{self.SHELL_PROMPT}: "
                         f"{len(self._SHELL_COMMANDS)} commands")
        return 0

    def _sh_echo(self, args: List[str]) -> int:
        self.ctx.cov(12)
        text = " ".join(args)
        if len(text) > 32:
            self.ctx.cov(13)
        self.ctx.kprintf(text)
        return len(text)

    def _sh_set(self, args: List[str]) -> int:
        state = self._shell_state()
        if len(args) < 1:
            self.ctx.cov(14)
            return -1
        if len(args) == 1:
            self.ctx.cov(15)  # query form: set KEY
            return 0 if args[0] in state["env"] else -1
        key, value = args[0], args[1]
        if not key or len(key) > 16:
            self.ctx.cov(16)
            return -1
        if key in state["env"]:
            self.ctx.cov(17)  # overwrite
        elif len(state["env"]) >= MAX_ENV:
            self.ctx.cov(18)
            return -2
        state["env"][key] = value
        if value.isdigit():
            self.ctx.cov(19)  # numeric values get range validation
            if int(value) > 1000:
                self.ctx.cov(20)
        return 0

    def _sh_unset(self, args: List[str]) -> int:
        state = self._shell_state()
        if not args:
            self.ctx.cov(21)
            return -1
        if args[0] in state["env"]:
            self.ctx.cov(22)
            del state["env"][args[0]]
            return 0
        return -1

    def _sh_env(self, args: List[str]) -> int:
        state = self._shell_state()
        self.ctx.cov(23)
        if len(state["env"]) >= 4:
            self.ctx.cov(24)  # a populated environment
        return len(state["env"])

    def _sh_led(self, args: List[str]) -> int:
        state = self._shell_state()
        if not args:
            self.ctx.cov(25)
            return state["led"]
        if args[0] == "on":
            self.ctx.cov(26)
            state["led"] = 1
        elif args[0] == "off":
            self.ctx.cov(27)
            state["led"] = 0
        elif args[0] == "toggle":
            self.ctx.cov(28)
            state["led"] ^= 1
        else:
            self.ctx.cov(29)
            return -1
        return state["led"]

    def _sh_log(self, args: List[str]) -> int:
        state = self._shell_state()
        if not args:
            return state["loglevel"]
        try:
            level = self._shell_int(args[0])
        except ValueError:
            self.ctx.cov(30)
            return -1
        if not 0 <= level <= 5:
            self.ctx.cov(31)
            return -2
        self.ctx.cov(32 + level)  # 32..37: per log level
        state["loglevel"] = level
        return level

    def _sh_cat(self, args: List[str]) -> int:
        if not args:
            self.ctx.cov(38)
            return -1
        payload = VIRTUAL_FILES.get(args[0])
        if payload is None:
            self.ctx.cov(39)
            return -2
        self.ctx.cov(40 + sorted(VIRTUAL_FILES).index(args[0]))  # 40..42
        self.ctx.kprintf(payload.decode("latin1"))
        return len(payload)

    def _sh_hexdump(self, args: List[str]) -> int:
        if len(args) < 2:
            self.ctx.cov(43)
            return -1
        try:
            offset = self._shell_int(args[0])
            length = self._shell_int(args[1])
        except ValueError:
            self.ctx.cov(44)
            return -2
        if not 0 <= length <= 64:
            self.ctx.cov(45)
            return -3
        base = self.ctx.layout.kernel_heap_base
        if offset < 0 or offset + length > self.ctx.layout.kernel_heap_size:
            self.ctx.cov(46)
            return -4
        self.ctx.ram.read(base + offset, max(length, 1))
        self.ctx.cov(47)
        self.ctx.cycles(length)
        return length

    def _sh_ifconfig(self, args: List[str]) -> int:
        state = self._shell_state()
        if not args:
            return 1 if state["ifup"] else 0
        if args[0] == "up":
            self.ctx.cov(48)
            if state["ifup"]:
                self.ctx.cov(49)  # already up
            state["ifup"] = True
        elif args[0] == "down":
            self.ctx.cov(50)
            state["ifup"] = False
        else:
            return -1
        return 0

    def _sh_ps(self, args: List[str]) -> int:
        self.ctx.cov(51)
        self.ctx.cycles(30)
        return 0

    def _sh_free(self, args: List[str]) -> int:
        self.ctx.cov(52)
        return 0

    def _sh_config(self, args: List[str]) -> int:
        """``config <net|can|log> <get|set|reset> [param] [value]``."""
        state = self._shell_state()
        if not args:
            self.ctx.cov(53)
            return -1
        domains = {"net": ("mtu", "dhcp", "mac"),
                   "can": ("baud", "mode"),
                   "log": ("sink", "color")}
        if args[0] not in domains:
            self.ctx.cov(54)
            return -2
        dom_index = sorted(domains).index(args[0])
        if len(args) < 2:
            return -1
        store = state.setdefault("cfg", {})
        if args[1] == "get":
            self.ctx.cov(55)
            if len(args) < 3 or args[2] not in domains[args[0]]:
                return -3
            return 1 if (args[0], args[2]) in store else 0
        if args[1] == "reset":
            self.ctx.cov(56)
            removed = [k for k in store if k[0] == args[0]]
            for key in removed:
                del store[key]
            if removed:
                self.ctx.cov(57)
            return len(removed)
        if args[1] == "set":
            if len(args) < 4:
                self.ctx.cov(58)
                return -4
            if args[2] not in domains[args[0]]:
                return -5
            self.ctx.cov(59 + dom_index)  # 59..61: per domain set
            store[(args[0], args[2])] = args[3]
            if len(store) >= 4:
                self.ctx.cov(62)  # a well-populated configuration
            return 0
        return -6

    def _sh_test(self, args: List[str]) -> int:
        """``test <heap|sched|ipc|all>`` — run a named self-test."""
        suites = ("heap", "sched", "ipc", "timer")
        if not args:
            self.ctx.cov(63)
            return -1
        if args[0] == "all":
            self.ctx.cov(64)
            self.ctx.cycles(120)
            return len(suites)
        if args[0] not in suites:
            return -2
        self.ctx.cov(65)
        self.ctx.cycles(40)
        state = self._shell_state()
        ran = state.setdefault("tests_run", set())
        ran.add(args[0])
        if len(ran) >= 3:
            self.ctx.cov(66)  # most suites exercised in one session
        return 1

    def _shell_expand(self, token: str) -> str:
        """``$NAME`` expands from the session environment."""
        if not token.startswith("$") or len(token) < 2:
            return token
        self.ctx.cov(67)
        value = self._shell_state()["env"].get(token[1:])
        if value is None:
            return ""
        self.ctx.cov(68)  # a successful expansion: set must come first
        return value

    @property
    def _SHELL_COMMANDS(self) -> Dict[str, object]:
        return {
            "help": self._sh_help, "echo": self._sh_echo,
            "set": self._sh_set, "unset": self._sh_unset,
            "env": self._sh_env, "led": self._sh_led,
            "log": self._sh_log, "cat": self._sh_cat,
            "hexdump": self._sh_hexdump, "ifconfig": self._sh_ifconfig,
            "ps": self._sh_ps, "free": self._sh_free,
            "config": self._sh_config, "test": self._sh_test,
        }

    # -- entry point -------------------------------------------------------------------

    @kapi(module="shell", sites=72,
          args=[arg_str("line", MAX_LINE,
                        candidates=("help", "ps", "free", "env"))],
          doc="Execute one console line (';'-chained commands supported).")
    def shell_execute(self, line: bytes) -> int:
        text = line.decode("latin1", "replace").rstrip("\x00")
        if len(text) > MAX_LINE:
            self.ctx.cov(4)
            return -1
        state = self._shell_state()
        state["history"] += 1
        if state["history"] >= 4:
            self.ctx.cov(5)  # busy session
        status = 0
        segments = text.split(";")
        if len(segments) > 1:
            self.ctx.cov(6)  # chained commands
        for segment in segments[:4]:
            segment = segment.strip()
            if not segment:
                self.ctx.cov(7)
                continue
            try:
                tokens = self._shell_tokenize(segment)
            except ValueError:
                status = -1
                continue
            if not tokens:
                continue
            handler = self._SHELL_COMMANDS.get(tokens[0])
            if handler is None:
                self.ctx.cov(8)
                self.ctx.kprintf(f"{self.SHELL_PROMPT}: {tokens[0]}: "
                                 f"command not found")
                status = -1
                continue
            self.ctx.cov(9)
            expanded = [self._shell_expand(token) for token in tokens[1:]]
            status = handler(expanded)
        return status
