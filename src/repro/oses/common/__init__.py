"""Building blocks shared by all kernel implementations."""

from repro.oses.common.api import (
    ApiDef,
    ArgDef,
    KFuncMeta,
    arg_buf,
    arg_const,
    arg_flags,
    arg_int,
    arg_res,
    arg_str,
    kapi,
    kfunc,
    collect_kfuncs,
    collect_apis,
)
from repro.oses.common.context import KernelContext
from repro.oses.common.kernel import EmbeddedKernel, KernelComponent
from repro.oses.common.dlist import DList, DListNode

__all__ = [
    "ApiDef",
    "ArgDef",
    "KFuncMeta",
    "arg_buf",
    "arg_const",
    "arg_flags",
    "arg_int",
    "arg_res",
    "arg_str",
    "kapi",
    "kfunc",
    "collect_kfuncs",
    "collect_apis",
    "KernelContext",
    "EmbeddedKernel",
    "KernelComponent",
    "DList",
    "DListNode",
]
