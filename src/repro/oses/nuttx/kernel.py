"""The NuttX-flavoured kernel.

A POSIX-shaped surface: ``task_create``/``task_delete``, POSIX message
queues (``mq_open`` family over an internal ``nxmq`` layer), counting
semaphores (``sem_*`` over ``nxsem``), POSIX timers, the process
environment (``setenv``/``getenv``), and clock/time libc shims — all on a
granule allocator.

Injected bugs (Table 2):

* **#14** ``setenv()``          unbounded name copy overflows the env block (confirmed upstream)
* **#15** ``gettimeofday()``    a timezone pointer at a page boundary crosses into an unmapped page
* **#16** ``nxmq_timedsend()``  send through a closed descriptor dereferences the freed mq
* **#17** ``nxsem_trywait()``   trywait on a destroyed semaphore trips the init assertion (log monitor)
* **#18** ``timer_create()``    unsupported clock + SIGEV_THREAD dereferences a NULL callback
* **#19** ``clock_getres()``    out-of-range clock id indexes past the resolution table
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.oses.common.api import (
    arg_buf,
    arg_int,
    arg_res,
    arg_str,
    kapi,
    kfunc,
)
from repro.oses.common.kernel import EmbeddedKernel
from repro.oses.common.ladders import MtdLadder
from repro.oses.common.shell import ShellInterpreter
from repro.oses.nuttx.gran import GranAllocator

OK = 0
ERROR = -1
EINVAL = -22
ENOMEM = -12
EAGAIN = -11
ENOENT = -2
EEXIST = -17

CLOCK_REALTIME = 0
CLOCK_MONOTONIC = 1
SIGEV_NONE = 0
SIGEV_SIGNAL = 1
SIGEV_THREAD = 2

ENV_NAME_MAX = 24
ENV_BLOCK_SLOTS = 16


class _Task:
    KIND = "pid"

    def __init__(self, name: str, priority: int, stack_addr: int,
                 stack_size: int):
        self.handle = 0
        self.name = name
        self.priority = priority
        self.stack_addr = stack_addr
        self.stack_size = stack_size
        self.state = "ready"


class _Mq:
    KIND = "mqd"

    def __init__(self, name: str, maxmsg: int, msgsize: int, buf_addr: int):
        self.handle = 0
        self.name = name
        self.maxmsg = maxmsg
        self.msgsize = msgsize
        self.buf_addr = buf_addr
        self.msgs: List[int] = []   # priorities, payload lives in RAM
        self.closed = False         # descriptor freed; handle dangles (#16)
        self.unlinked = False


class _NxSem:
    KIND = "nxsem"

    def __init__(self, value: int):
        self.handle = 0
        self.value = value
        self.destroyed = False      # control block freed (#17 food)


class _PTimer:
    KIND = "ptimer"

    def __init__(self, clockid: int, notify: int):
        self.handle = 0
        self.clockid = clockid
        self.notify = notify
        self.value = 0
        self.interval = 0
        self.armed = False
        self.expirations = 0


class NuttxKernel(MtdLadder, ShellInterpreter, EmbeddedKernel):
    """NuttX 12-flavoured kernel."""

    NAME = "nuttx"
    VERSION = "12.5-repro"
    BOOT_BANNER = "NuttShell (NSH) NuttX-12.5 (repro build)"
    EXCEPTION_SYMBOL = "up_assert"
    SHELL_PROMPT = "nsh>"
    ASSERT_LOG_FORMAT = "_assert: Assertion failed {expr}: {loc}"
    PANIC_LOG_FORMAT = "up_assert: Fatal {cause} ({detail})"

    def __init__(self, ctx, config=None):
        super().__init__(ctx, config)
        self.gran: Optional[GranAllocator] = None
        self.handles: Dict[int, object] = {}
        self._next_handle = 1
        self.tasks: List[_Task] = []
        self.env: Dict[str, str] = {}
        self.mq_names: Dict[str, int] = {}
        self.clock_ticks = 0
        self.realtime_offset = 1_700_000_000
        self.timers: List[_PTimer] = []

    # -- boot -----------------------------------------------------------------

    def boot_os(self) -> None:
        layout = self.ctx.layout
        self.gran = GranAllocator(self.ctx.ram, layout.kernel_heap_base,
                                  layout.kernel_heap_size)
        init_stack = self.gran.alloc(1024)
        init = _Task("init", 100, init_stack, 1024)
        self._register(init)
        self.tasks.append(init)
        self.env["PATH"] = "/bin"
        self.ctx.kprintf("gran allocator up; init task spawned")

    def _register(self, obj):
        handle = self._next_handle
        self._next_handle += 1
        obj.handle = handle
        self.handles[handle] = obj
        return obj

    def _lookup(self, handle: int, kind: str):
        obj = self.handles.get(handle)
        if obj is None or obj.KIND != kind:
            return None
        return obj

    def idle_tick(self) -> None:
        self.clock_ticks += 1
        for timer in self.timers:
            if timer.armed and timer.value <= self.clock_ticks:
                timer.expirations += 1
                if timer.interval:
                    timer.value = self.clock_ticks + timer.interval
                else:
                    timer.armed = False

    # -- exception entry -------------------------------------------------------------

    @kfunc(module="kernel", sites=4)
    def up_assert(self, signal) -> None:
        """NuttX fatal-error entry point."""
        self._fatal_common(signal)

    # ======================= tasks =======================

    @kapi(module="task", sites=8,
          args=[arg_str("name", 12), arg_int("priority", 1, 255),
                arg_int("stack_size", 256, 4096)],
          ret="pid", doc="Create a task.")
    def task_create(self, name: bytes, priority: int, stack_size: int) -> int:
        stack = self.gran.alloc(stack_size)
        if stack == 0:
            self.ctx.cov(1)
            return ENOMEM
        task = _Task(name.decode("latin1")[:12] or "task", priority, stack,
                     stack_size)
        self._register(task)
        self.tasks.append(task)
        self.ctx.cov(2)
        return task.handle

    @kapi(module="task", sites=7, args=[arg_res("pid", "pid")],
          doc="Delete a task.")
    def task_delete(self, pid: int) -> int:
        task = self._lookup(pid, "pid")
        if task is None:
            self.ctx.cov(1)
            return EINVAL
        if task.name == "init":
            self.ctx.cov(2)
            return EINVAL
        self.tasks.remove(task)
        self.gran.free(task.stack_addr, task.stack_size)
        del self.handles[task.handle]
        return OK

    @kapi(module="task", sites=6,
          args=[arg_res("pid", "pid"), arg_int("priority", 1, 255)],
          doc="Change a task's priority.")
    def sched_setpriority(self, pid: int, priority: int) -> int:
        task = self._lookup(pid, "pid")
        if task is None:
            self.ctx.cov(1)
            return EINVAL
        task.priority = priority
        return OK

    @kapi(module="task", sites=3, doc="Yield the processor.")
    def sched_yield(self) -> int:
        self.ctx.cycles(8)
        return OK

    @kapi(module="task", sites=5, args=[arg_int("usec", 0, 100000)],
          doc="Sleep for microseconds.")
    def usleep(self, usec: int) -> int:
        if usec > 100_000:
            self.ctx.cov(1)
            self.ctx.stall("usleep parked the init task")
        self.ctx.cycles(min(usec // 100, 500))
        # Time passes while we sleep: armed timers expire.
        for _ in range(min(usec // 10_000, 64)):
            self.idle_tick()
        return OK

    # ======================= environment (bug #14) =======================

    @kapi(module="env", sites=10,
          args=[arg_str("name", 40, candidates=("PATH", "HOME", "TZ")),
                arg_str("value", 32), arg_int("overwrite", 0, 1)],
          doc="Set an environment variable.")
    def setenv(self, name: bytes, value: bytes, overwrite: int) -> int:
        key = name.decode("latin1").rstrip("\x00")
        if not key or "=" in key:
            self.ctx.cov(1)
            return EINVAL
        # Injected bug #14 (confirmed upstream): the name is copied into a
        # fixed 24-byte slot of the env block with no bounds check.
        if len(key) > ENV_NAME_MAX:
            self.ctx.cov(2)
            self.ctx.panic("env block overflow in setenv",
                           f"name of {len(key)} bytes smashed the adjacent "
                           f"slot ({ENV_NAME_MAX}-byte field)")
        if key in self.env and not overwrite:
            self.ctx.cov(3)
            return OK
        if key in self.env and len(value) > len(self.env[key].encode()):
            self.ctx.cov(6)  # grow-in-place relocation path
        if key not in self.env and len(self.env) >= ENV_BLOCK_SLOTS:
            self.ctx.cov(4)
            return ENOMEM
        self.env[key] = value.decode("latin1").rstrip("\x00")
        self.ctx.cov(5)
        return OK

    @kapi(module="env", sites=6,
          args=[arg_str("name", 24, candidates=("PATH", "HOME", "TZ"))],
          doc="Look up an environment variable; returns its length or -1.")
    def getenv(self, name: bytes) -> int:
        key = name.decode("latin1").rstrip("\x00")
        if key not in self.env:
            self.ctx.cov(1)
            return ERROR
        return len(self.env[key])

    @kapi(module="env", sites=5,
          args=[arg_str("name", 24, candidates=("PATH", "HOME", "TZ"))],
          doc="Remove an environment variable.")
    def unsetenv(self, name: bytes) -> int:
        key = name.decode("latin1").rstrip("\x00")
        if key in self.env:
            self.ctx.cov(1)
            del self.env[key]
        return OK

    @kapi(module="env", sites=3, doc="Clear the whole environment.")
    def clearenv(self) -> int:
        self.env.clear()
        return OK

    # ======================= POSIX mqueue (bug #16) =======================

    @kapi(module="mq", sites=10,
          args=[arg_str("name", 12, candidates=("/dev/mq0", "/mq1")),
                arg_int("maxmsg", 1, 16), arg_int("msgsize", 4, 64)],
          ret="mqd", doc="Open (create) a POSIX message queue.")
    def mq_open(self, name: bytes, maxmsg: int, msgsize: int) -> int:
        key = name.decode("latin1").rstrip("\x00") or "/mq"
        existing = self.mq_names.get(key)
        if existing is not None:
            queue = self._lookup(existing, "mqd")
            if queue is not None and not queue.closed:
                self.ctx.cov(1)
                return existing
        buf = self.gran.alloc(maxmsg * msgsize)
        if buf == 0:
            self.ctx.cov(2)
            return ENOMEM
        queue = _Mq(key, maxmsg, msgsize, buf)
        self._register(queue)
        self.mq_names[key] = queue.handle
        self.ctx.cov(3)
        return queue.handle

    @kapi(module="mq", sites=5, args=[arg_res("mqd", "mqd")],
          doc="Close a message-queue descriptor.")
    def mq_close(self, mqd: int) -> int:
        queue = self._lookup(mqd, "mqd")
        if queue is None or queue.closed:
            self.ctx.cov(1)
            return EINVAL
        queue.closed = True  # descriptor freed; handle dangles (bug #16)
        self.gran.free(queue.buf_addr, queue.maxmsg * queue.msgsize)
        return OK

    @kfunc(module="mq", sites=8)
    def nxmq_timedsend(self, queue: _Mq, data: bytes, prio: int,
                       timeout: int) -> int:
        """The internal send path under ``mq_timedsend``.

        Injected bug #16: no closed-descriptor check — the message copy
        lands in the freed ring buffer.
        """
        if queue.closed:
            self.ctx.cov(1)
            self.ctx.panic("freed descriptor in nxmq_timedsend",
                           f"mq {queue.name!r} was closed; msgq ring "
                           f"buffer is dangling")
        if len(queue.msgs) >= queue.maxmsg:
            self.ctx.cov(2)
            if timeout > 1000:
                self.ctx.cov(3)
                self.ctx.stall("nxmq_timedsend blocked forever")
            return EAGAIN
        payload = data[:queue.msgsize].ljust(queue.msgsize, b"\x00")
        slot = len(queue.msgs)
        self.ctx.ram.write(queue.buf_addr + slot * queue.msgsize, payload)
        if queue.msgs and prio > queue.msgs[0]:
            self.ctx.cov(4)  # priority insertion at the head
        queue.msgs.append(prio)
        queue.msgs.sort(reverse=True)
        return OK

    @kapi(module="mq", sites=6,
          args=[arg_res("mqd", "mqd"), arg_buf("data", 64),
                arg_int("prio", 0, 31), arg_int("timeout", 0, 50)],
          doc="Send with a timeout.")
    def mq_timedsend(self, mqd: int, data: bytes, prio: int,
                     timeout: int) -> int:
        queue = self._lookup(mqd, "mqd")
        if queue is None:
            self.ctx.cov(1)
            return EINVAL
        return self.nxmq_timedsend(queue, data, prio, timeout)

    @kapi(module="mq", sites=8,
          args=[arg_res("mqd", "mqd"), arg_int("timeout", 0, 50)],
          doc="Receive with a timeout; returns the message priority.")
    def mq_timedreceive(self, mqd: int, timeout: int) -> int:
        queue = self._lookup(mqd, "mqd")
        if queue is None or queue.closed:
            self.ctx.cov(1)
            return EINVAL
        if not queue.msgs:
            self.ctx.cov(2)
            if timeout > 1000:
                self.ctx.cov(3)
                self.ctx.stall("mq_timedreceive blocked forever")
            return EAGAIN
        prio = queue.msgs.pop(0)
        self.ctx.ram.read(queue.buf_addr, queue.msgsize)
        return prio

    @kapi(module="mq", sites=5,
          args=[arg_str("name", 12, candidates=("/dev/mq0", "/mq1"))],
          doc="Unlink a queue name.")
    def mq_unlink(self, name: bytes) -> int:
        key = name.decode("latin1").rstrip("\x00")
        handle = self.mq_names.pop(key, None)
        if handle is None:
            self.ctx.cov(1)
            return ENOENT
        queue = self._lookup(handle, "mqd")
        if queue is not None:
            queue.unlinked = True
        return OK

    # ======================= semaphores (bug #17) =======================

    @kapi(module="sem", sites=5, args=[arg_int("value", 0, 16)],
          ret="nxsem", doc="Initialise a counting semaphore.")
    def sem_init(self, value: int) -> int:
        sem = _NxSem(value)
        self._register(sem)
        return sem.handle

    @kapi(module="sem", sites=7,
          args=[arg_res("sem", "nxsem"), arg_int("timeout", 0, 50)],
          doc="Wait on a semaphore.")
    def sem_wait(self, sem: int, timeout: int) -> int:
        target = self._lookup(sem, "nxsem")
        if target is None or target.destroyed:
            self.ctx.cov(1)
            return EINVAL
        if target.value == 0:
            self.ctx.cov(2)
            if timeout > 1000:
                self.ctx.cov(3)
                self.ctx.stall("sem_wait blocked forever")
            return EAGAIN
        target.value -= 1
        return OK

    @kfunc(module="sem", sites=6)
    def nxsem_trywait(self, sem: "_NxSem") -> int:
        """Internal trywait.

        Injected bug #17: on a destroyed semaphore the control block is
        poisoned; the init-state assertion fires (log monitor).
        """
        self.k_assert(not sem.destroyed,
                      "sem->semcount initialized", "nxsem_trywait")
        if sem.value == 0:
            self.ctx.cov(1)
            return EAGAIN
        sem.value -= 1
        self.ctx.cov(2)
        return OK

    @kapi(module="sem", sites=5, args=[arg_res("sem", "nxsem")],
          doc="Non-blocking wait.")
    def sem_trywait(self, sem: int) -> int:
        target = self._lookup(sem, "nxsem")
        if target is None:
            self.ctx.cov(1)
            return EINVAL
        return self.nxsem_trywait(target)

    @kapi(module="sem", sites=5, args=[arg_res("sem", "nxsem")],
          doc="Post a semaphore.")
    def sem_post(self, sem: int) -> int:
        target = self._lookup(sem, "nxsem")
        if target is None or target.destroyed:
            self.ctx.cov(1)
            return EINVAL
        target.value += 1
        if target.value >= 8:
            self.ctx.cov(2)  # heavily over-posted semaphore
        return OK

    @kapi(module="sem", sites=5, args=[arg_res("sem", "nxsem")],
          doc="Destroy a semaphore.")
    def sem_destroy(self, sem: int) -> int:
        target = self._lookup(sem, "nxsem")
        if target is None or target.destroyed:
            self.ctx.cov(1)
            return EINVAL
        target.destroyed = True  # block freed; handle dangles (bug #17)
        return OK

    # ======================= clock / time libc (bugs #15, #19) =======================

    @kapi(module="libc", sites=6, args=[arg_int("clockid", 0, 16)],
          doc="Read a clock; returns seconds.")
    def clock_gettime(self, clockid: int) -> int:
        if clockid == CLOCK_REALTIME:
            self.ctx.cov(1)
            return self.realtime_offset + self.clock_ticks // 100
        if clockid == CLOCK_MONOTONIC:
            self.ctx.cov(2)
            return self.clock_ticks // 100
        self.ctx.cov(3)
        return EINVAL

    @kapi(module="libc", sites=8,
          args=[arg_int("clockid", 0, 16), arg_int("res_ptr", 0, 0xFFFF)],
          doc="Resolution of a clock, written through res_ptr.")
    def clock_getres(self, clockid: int, res_ptr: int) -> int:
        # Injected bug #19: the resolution table has 12 entries but the
        # id is range-checked against the *configured* max (16), so ids
        # 12..16 index past the table; with an unluckily aligned out
        # pointer the wild read faults.
        if clockid >= 12 and res_ptr % 8 == 4:
            self.ctx.cov(1)
            self.ctx.panic("wild read in clock_getres",
                           f"clockid {clockid} indexed past the "
                           f"12-entry resolution table")
        if clockid > 16:
            self.ctx.cov(2)
            return EINVAL
        self.ctx.cov(3)
        return 100  # 10ms tick, in ns/100000
    @kapi(module="libc", sites=8,
          args=[arg_int("clockid", 0, 3), arg_int("sec", 0, 1 << 31)],
          doc="Set a clock.")
    def clock_settime(self, clockid: int, sec: int) -> int:
        if clockid != CLOCK_REALTIME:
            self.ctx.cov(1)
            return EINVAL
        self.realtime_offset = sec
        self.ctx.cov(2)
        return OK

    @kapi(module="libc", sites=8, args=[arg_int("tz_ptr", 0, 0xFFFF)],
          doc="Time of day; tz_ptr is the (obsolete) timezone out-pointer.")
    def gettimeofday(self, tz_ptr: int) -> int:
        # Injected bug #15: a non-NULL tz pointer is dereferenced without
        # validation; one that lands at the last bytes of a page makes the
        # 8-byte struct write cross into the unmapped guard page.
        if tz_ptr != 0 and tz_ptr % 256 == 0xFF:
            self.ctx.cov(1)
            self.ctx.panic("page fault in gettimeofday",
                           f"timezone struct write at 0x{tz_ptr:04x} "
                           f"crossed a page boundary")
        if tz_ptr != 0:
            self.ctx.cov(2)
            self.ctx.cycles(4)
        return self.realtime_offset + self.clock_ticks // 100

    # ======================= POSIX timers (bug #18) =======================

    @kapi(module="timer", sites=10,
          args=[arg_int("clockid", 0, 8), arg_int("notify", 0, 3)],
          ret="ptimer", doc="Create a POSIX timer.")
    def timer_create(self, clockid: int, notify: int) -> int:
        if notify > SIGEV_THREAD:
            self.ctx.cov(1)
            return EINVAL
        # Injected bug #18: the unsupported-boot-clock path allocates no
        # callback context, but SIGEV_THREAD immediately dereferences it.
        if clockid == 7 and notify == SIGEV_THREAD:
            self.ctx.cov(2)
            self.ctx.panic("NULL callback in timer_create",
                           "CLOCK_BOOTTIME with SIGEV_THREAD left the "
                           "notification callback unset")
        if clockid not in (CLOCK_REALTIME, CLOCK_MONOTONIC):
            self.ctx.cov(3)
            return EINVAL
        timer = _PTimer(clockid, notify)
        self._register(timer)
        self.timers.append(timer)
        self.ctx.cov(4)
        return timer.handle

    @kapi(module="timer", sites=7,
          args=[arg_res("timer", "ptimer"), arg_int("value", 0, 200),
                arg_int("interval", 0, 100)],
          doc="Arm a timer.")
    def timer_settime(self, timer: int, value: int, interval: int) -> int:
        target = self._lookup(timer, "ptimer")
        if target is None:
            self.ctx.cov(1)
            return EINVAL
        if value == 0 and interval == 0:
            self.ctx.cov(2)
            target.armed = False
            return OK
        if target.armed:
            self.ctx.cov(3)  # re-arm while running
        target.value = self.clock_ticks + value
        target.interval = interval
        target.armed = True
        return OK

    @kapi(module="timer", sites=5, args=[arg_res("timer", "ptimer")],
          doc="Expirations so far.")
    def timer_gettime(self, timer: int) -> int:
        target = self._lookup(timer, "ptimer")
        if target is None:
            self.ctx.cov(1)
            return EINVAL
        return target.expirations

    @kapi(module="timer", sites=5, args=[arg_res("timer", "ptimer")],
          doc="Delete a timer.")
    def timer_delete(self, timer: int) -> int:
        target = self._lookup(timer, "ptimer")
        if target is None:
            self.ctx.cov(1)
            return EINVAL
        self.timers.remove(target)
        del self.handles[target.handle]
        return OK

    # ======================= pseudo syscalls =======================

    @kapi(module="pseudo", sites=8, pseudo=True,
          args=[arg_str("name", 20, candidates=("LOGNAME", "SHELL")),
                arg_int("rounds", 1, 8)],
          doc="setenv/getenv/unsetenv round-trips.")
    def syz_env_roundtrip(self, name: bytes, rounds: int) -> int:
        done = 0
        for i in range(rounds):
            if self.setenv(name, f"v{i}".encode(), 1) == OK:
                self.ctx.cov(1)
                done += 1
            self.getenv(name)
        self.unsetenv(name)
        return done

    @kapi(module="pseudo", sites=10, pseudo=True,
          args=[arg_int("maxmsg", 1, 8), arg_int("rounds", 1, 16)],
          doc="mqueue producer/consumer through a fresh queue.")
    def syz_mq_pipeline(self, maxmsg: int, rounds: int) -> int:
        mqd = self.mq_open(b"/pipe", maxmsg, 16)
        if mqd <= 0:
            self.ctx.cov(1)
            return ERROR
        done = 0
        for i in range(rounds):
            if self.mq_timedsend(mqd, bytes([i & 0xFF]) * 16, i % 32, 0) == OK:
                self.ctx.cov(2)
                done += 1
            if i % 2:
                self.ctx.cov(3)
                self.mq_timedreceive(mqd, 0)
        self.mq_close(mqd)
        self.mq_unlink(b"/pipe")
        return done

    @kapi(module="pseudo", sites=8, pseudo=True,
          args=[arg_int("n", 1, 4), arg_int("period", 1, 20)],
          doc="A burst of armed POSIX timers driven for a while.")
    def syz_timer_burst(self, n: int, period: int) -> int:
        handles = []
        for _ in range(n):
            handle = self.timer_create(CLOCK_MONOTONIC, SIGEV_SIGNAL)
            if handle > 0:
                self.ctx.cov(1)
                self.timer_settime(handle, period, period)
                handles.append(handle)
        self.usleep(period * 20_000)
        fired = 0
        for handle in handles:
            if self.timer_gettime(handle) > 0:
                self.ctx.cov(2)
                fired += 1
            self.timer_delete(handle)
        return fired
