"""NuttX's granule allocator (``mm_gran``): bitmap-tracked fixed granules.

A fourth allocator design: the window is divided into fixed-size granules
and a bitmap (itself stored in simulated RAM at the start of the window)
tracks which granules are in use.  Allocation is first-fit over runs of
clear bits; there are no per-block headers, so the *caller* must remember
allocation sizes (as NuttX's gran API requires).
"""

from __future__ import annotations

from typing import Optional

from repro.hw.memory import Ram

GRANULE = 32


class GranAllocator:
    """Bitmap granule allocator over ``ram[base, base+size)``."""

    def __init__(self, ram: Ram, base: int, size: int):
        if size < 16 * GRANULE:
            raise ValueError("gran window too small")
        self.ram = ram
        self.base = base
        total_gran = size // GRANULE
        # Reserve leading granules for the bitmap itself (1 bit each).
        bitmap_bytes = (total_gran + 7) // 8
        reserve = (bitmap_bytes + GRANULE - 1) // GRANULE
        self.bitmap_addr = base
        self.first_gran = reserve
        self.ngranules = total_gran
        self.heap_start = base + reserve * GRANULE
        self.alloc_count = 0
        self.free_count = 0
        self.ram.write(self.bitmap_addr, bytes(bitmap_bytes))
        # Mark the bitmap's own granules used.
        for g in range(reserve):
            self._set_bit(g, True)

    # -- bitmap ---------------------------------------------------------------

    def _get_bit(self, gran: int) -> bool:
        byte = self.ram.read(self.bitmap_addr + gran // 8, 1)[0]
        return bool(byte & (1 << (gran % 8)))

    def _set_bit(self, gran: int, used: bool) -> None:
        addr = self.bitmap_addr + gran // 8
        byte = self.ram.read(addr, 1)[0]
        mask = 1 << (gran % 8)
        byte = (byte | mask) if used else (byte & ~mask)
        self.ram.write(addr, bytes([byte]))

    # -- API --------------------------------------------------------------------

    def alloc(self, size: int) -> int:
        """Allocate a run of granules; returns an absolute address or 0."""
        if size <= 0:
            return 0
        need = (size + GRANULE - 1) // GRANULE
        run = 0
        start = 0
        for gran in range(self.first_gran, self.ngranules):
            if self._get_bit(gran):
                run = 0
                continue
            if run == 0:
                start = gran
            run += 1
            if run == need:
                for g in range(start, start + need):
                    self._set_bit(g, True)
                self.alloc_count += 1
                return self.base + start * GRANULE
        return 0

    def free(self, address: int, size: int) -> bool:
        """Release a previously allocated run (caller supplies the size)."""
        if size <= 0:
            return False
        gran = (address - self.base) // GRANULE
        need = (size + GRANULE - 1) // GRANULE
        if gran < self.first_gran or gran + need > self.ngranules:
            return False
        if (address - self.base) % GRANULE != 0:
            return False
        for g in range(gran, gran + need):
            if not self._get_bit(g):
                return False  # double free / wild free
        for g in range(gran, gran + need):
            self._set_bit(g, False)
        self.free_count += 1
        return True

    def used_granules(self) -> int:
        """Number of granules currently marked used (incl. the bitmap)."""
        return sum(1 for g in range(self.ngranules) if self._get_bit(g))

    def check_invariants(self) -> Optional[str]:
        """The bitmap granules must always be marked used."""
        for g in range(self.first_gran):
            if not self._get_bit(g):
                return f"bitmap granule {g} was freed"
        return None
