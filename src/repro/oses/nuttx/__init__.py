"""NuttX-flavoured kernel: POSIX-style surface (tasks, mqueues,
semaphores, POSIX timers, environment variables, clock/time libc shims)
over a granule (bitmap) allocator.
"""

from repro.oses.nuttx.kernel import NuttxKernel
from repro.oses.nuttx.gran import GranAllocator

__all__ = ["NuttxKernel", "GranAllocator"]
