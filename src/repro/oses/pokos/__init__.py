"""PoKOS: a minimal POK-style partitioned kernel (ARINC-653 flavour),
the target of the paper's Gustave comparison (Table 3, last row)."""

from repro.oses.pokos.kernel import PokKernel

__all__ = ["PokKernel"]
