"""The PoKOS kernel: time/space partitions, sampling/queueing ports,
intra-partition buffers and blackboards, and a static cyclic scheduler —
the essential ARINC-653 shapes of POK.

No Table 2 bug lives here: the paper uses PoKOS only for the Gustave
coverage comparison (Table 3).  The error-management API still exists so
health-monitor paths are coverable.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.oses.common.api import arg_buf, arg_int, arg_res, kapi, kfunc
from repro.oses.common.kernel import EmbeddedKernel

POK_OK = 0
POK_EINVAL = -1
POK_EFULL = -2
POK_EEMPTY = -3
POK_EMODE = -4

MODE_IDLE = 0
MODE_COLD_START = 1
MODE_WARM_START = 2
MODE_NORMAL = 3

DIR_SOURCE = 0
DIR_DESTINATION = 1

MAX_PARTITIONS = 8


class _Partition:
    KIND = "part"

    def __init__(self, slots: int):
        self.handle = 0
        self.slots = slots
        self.mode = MODE_COLD_START
        self.threads: List[int] = []
        self.error_count = 0


class _PokThread:
    KIND = "pokthread"

    def __init__(self, partition: "_Partition", period: int):
        self.handle = 0
        self.partition = partition
        self.period = period
        self.activations = 0


class _Port:
    KIND = "port"

    def __init__(self, size: int, direction: int, storage_addr: int):
        self.handle = 0
        self.size = size
        self.direction = direction
        self.storage_addr = storage_addr
        self.queue: List[int] = []  # message lengths; payload in RAM


class _Buffer:
    KIND = "pokbuf"

    def __init__(self, depth: int, msg_size: int):
        self.handle = 0
        self.depth = depth
        self.msg_size = msg_size
        self.msgs: List[bytes] = []


class _Blackboard:
    KIND = "board"

    def __init__(self):
        self.handle = 0
        self.value: Optional[bytes] = None
        self.display_count = 0


class PokKernel(EmbeddedKernel):
    """POK-flavoured partitioned kernel."""

    NAME = "pokos"
    VERSION = "b2e1cc3-repro"
    BOOT_BANNER = "POK kernel initialising partitions"
    EXCEPTION_SYMBOL = "pok_fatal_error"
    ASSERT_LOG_FORMAT = "POK assert: {expr} ({loc})"
    PANIC_LOG_FORMAT = "POK FATAL: {cause} ({detail})"

    def __init__(self, ctx, config=None):
        super().__init__(ctx, config)
        self.handles: Dict[int, object] = {}
        self._next_handle = 1
        self.partitions: List[_Partition] = []
        self.major_frame = 0
        self.current_slot = 0
        self.heap_cursor = 0

    def boot_os(self) -> None:
        root = _Partition(slots=2)
        root.mode = MODE_NORMAL
        self._register(root)
        self.partitions.append(root)
        self.ctx.kprintf("partition P0 up in NORMAL mode")

    def _register(self, obj):
        handle = self._next_handle
        self._next_handle += 1
        obj.handle = handle
        self.handles[handle] = obj
        return obj

    def _lookup(self, handle: int, kind: str):
        obj = self.handles.get(handle)
        if obj is None or obj.KIND != kind:
            return None
        return obj

    def _alloc(self, size: int) -> int:
        layout = self.ctx.layout
        aligned = (size + 7) & ~7
        if self.heap_cursor + aligned > layout.kernel_heap_size:
            return 0
        addr = layout.kernel_heap_base + self.heap_cursor
        self.heap_cursor += aligned
        return addr

    @kfunc(module="sched", sites=8)
    def pok_sched(self) -> None:
        """Cyclic scheduler: rotate the major frame across partitions."""
        if not self.partitions:
            self.ctx.cov(1)
            return
        self.current_slot = (self.current_slot + 1) % sum(
            p.slots for p in self.partitions)
        self.major_frame += 1
        for partition in self.partitions:
            if partition.mode == MODE_NORMAL:
                self.ctx.cov(2)
                for handle in partition.threads:
                    thread = self._lookup(handle, "pokthread")
                    if thread and self.major_frame % thread.period == 0:
                        self.ctx.cov(3)
                        thread.activations += 1

    def idle_tick(self) -> None:
        self.pok_sched()

    @kfunc(module="kernel", sites=4)
    def pok_fatal_error(self, signal) -> None:
        """POK fatal-error entry point."""
        self._fatal_common(signal)

    # ======================= partitions =======================

    @kapi(module="part", sites=6, args=[arg_int("slots", 1, 4)], ret="part",
          doc="Declare a partition with scheduling slots.")
    def pok_partition_create(self, slots: int) -> int:
        if len(self.partitions) >= MAX_PARTITIONS:
            self.ctx.cov(1)
            return POK_EINVAL
        partition = _Partition(slots)
        self._register(partition)
        self.partitions.append(partition)
        return partition.handle

    @kapi(module="part", sites=8,
          args=[arg_res("part", "part"), arg_int("mode", 0, 3)],
          doc="Transition a partition's mode.")
    def pok_partition_set_mode(self, part: int, mode: int) -> int:
        partition = self._lookup(part, "part")
        if partition is None:
            self.ctx.cov(1)
            return POK_EINVAL
        if mode == MODE_NORMAL and partition.mode == MODE_IDLE:
            self.ctx.cov(2)
            return POK_EMODE  # IDLE -> NORMAL is not a legal transition
        partition.mode = mode
        self.ctx.cov(3)
        return POK_OK

    @kapi(module="part", sites=7,
          args=[arg_res("part", "part"), arg_int("period", 1, 16)],
          ret="pokthread", doc="Create a periodic thread in a partition.")
    def pok_thread_create(self, part: int, period: int) -> int:
        partition = self._lookup(part, "part")
        if partition is None:
            self.ctx.cov(1)
            return POK_EINVAL
        if partition.mode != MODE_NORMAL and partition.mode != MODE_COLD_START:
            self.ctx.cov(2)
            return POK_EMODE
        if period <= 0:
            self.ctx.cov(4)
            return POK_EINVAL
        thread = _PokThread(partition, period)
        self._register(thread)
        partition.threads.append(thread.handle)
        return thread.handle

    # ======================= ports =======================

    @kapi(module="port", sites=8,
          args=[arg_int("size", 8, 256), arg_int("direction", 0, 1)],
          ret="port", doc="Create an inter-partition queueing port.")
    def pok_port_create(self, size: int, direction: int) -> int:
        if size < 8:
            self.ctx.cov(4)
            return POK_EINVAL
        storage = self._alloc(size * 4)
        if storage == 0:
            self.ctx.cov(1)
            return POK_EINVAL
        port = _Port(size, direction, storage)
        self._register(port)
        return port.handle

    @kapi(module="port", sites=8,
          args=[arg_res("port", "port"), arg_buf("data", 256)],
          doc="Send through a source port.")
    def pok_port_send(self, port: int, data: bytes) -> int:
        target = self._lookup(port, "port")
        if target is None:
            self.ctx.cov(1)
            return POK_EINVAL
        if target.direction != DIR_SOURCE:
            self.ctx.cov(2)
            return POK_EMODE
        if len(target.queue) >= 4:
            self.ctx.cov(3)
            return POK_EFULL
        chunk = data[:target.size]
        self.ctx.ram.write(target.storage_addr
                           + len(target.queue) * target.size,
                           chunk.ljust(target.size, b"\x00"))
        target.queue.append(len(chunk))
        return POK_OK

    @kapi(module="port", sites=7, args=[arg_res("port", "port")],
          doc="Receive from a destination port (loopback wiring).")
    def pok_port_receive(self, port: int) -> int:
        target = self._lookup(port, "port")
        if target is None:
            self.ctx.cov(1)
            return POK_EINVAL
        if not target.queue:
            self.ctx.cov(2)
            return POK_EEMPTY
        length = target.queue.pop(0)
        self.ctx.ram.read(target.storage_addr, target.size)
        return length

    # ======================= buffers / blackboards =======================

    @kapi(module="ipc", sites=6,
          args=[arg_int("depth", 1, 8), arg_int("msg_size", 4, 64)],
          ret="pokbuf", doc="Create an intra-partition buffer.")
    def pok_buffer_create(self, depth: int, msg_size: int) -> int:
        buffer = _Buffer(depth, msg_size)
        self._register(buffer)
        return buffer.handle

    @kapi(module="ipc", sites=7,
          args=[arg_res("buffer", "pokbuf"), arg_buf("data", 64)],
          doc="Post into a buffer.")
    def pok_buffer_send(self, buffer: int, data: bytes) -> int:
        target = self._lookup(buffer, "pokbuf")
        if target is None:
            self.ctx.cov(1)
            return POK_EINVAL
        if len(target.msgs) >= target.depth:
            self.ctx.cov(2)
            return POK_EFULL
        target.msgs.append(data[:target.msg_size])
        return POK_OK

    @kapi(module="ipc", sites=7, args=[arg_res("buffer", "pokbuf")],
          doc="Take from a buffer; returns the message length.")
    def pok_buffer_receive(self, buffer: int) -> int:
        target = self._lookup(buffer, "pokbuf")
        if target is None:
            self.ctx.cov(1)
            return POK_EINVAL
        if not target.msgs:
            self.ctx.cov(2)
            return POK_EEMPTY
        return len(target.msgs.pop(0))

    @kapi(module="ipc", sites=4, ret="board", doc="Create a blackboard.")
    def pok_blackboard_create(self) -> int:
        board = _Blackboard()
        self._register(board)
        return board.handle

    @kapi(module="ipc", sites=6,
          args=[arg_res("board", "board"), arg_buf("data", 64)],
          doc="Display (overwrite) the blackboard message.")
    def pok_blackboard_display(self, board: int, data: bytes) -> int:
        target = self._lookup(board, "board")
        if target is None:
            self.ctx.cov(1)
            return POK_EINVAL
        if target.value is not None:
            self.ctx.cov(2)  # overwrite of an undisplayed message
        target.value = data[:64]
        target.display_count += 1
        return POK_OK

    @kapi(module="ipc", sites=6, args=[arg_res("board", "board")],
          doc="Read the blackboard; returns the message length or empty.")
    def pok_blackboard_read(self, board: int) -> int:
        target = self._lookup(board, "board")
        if target is None:
            self.ctx.cov(1)
            return POK_EINVAL
        if target.value is None:
            self.ctx.cov(2)
            return POK_EEMPTY
        return len(target.value)

    # ======================= health monitor =======================

    @kapi(module="hm", sites=8,
          args=[arg_res("part", "part"), arg_int("code", 0, 8)],
          doc="Raise a partition error into the health monitor.")
    def pok_error_raise(self, part: int, code: int) -> int:
        partition = self._lookup(part, "part")
        if partition is None:
            self.ctx.cov(1)
            return POK_EINVAL
        partition.error_count += 1
        if partition.error_count >= 3:
            self.ctx.cov(3)  # repeated HM escalation
        if code >= 6:
            self.ctx.cov(2)
            partition.mode = MODE_IDLE  # HM shuts the partition down
            self.ctx.kprintf(f"HM: partition P{part} stopped (code {code})")
        return POK_OK

    # ======================= pseudo syscalls =======================

    @kapi(module="pseudo", sites=8, pseudo=True,
          args=[arg_int("n", 1, 6), arg_int("size", 8, 64)],
          doc="Port round-trip traffic.")
    def syz_port_pipeline(self, n: int, size: int) -> int:
        port = self.pok_port_create(size, DIR_SOURCE)
        if port <= 0:
            self.ctx.cov(1)
            return POK_EINVAL
        done = 0
        for i in range(n):
            if self.pok_port_send(port, bytes([i & 0xFF]) * size) == POK_OK:
                self.ctx.cov(2)
                done += 1
            if i % 2:
                target = self._lookup(port, "port")
                if target is not None and target.queue:
                    self.ctx.cov(3)
                    target.queue.pop(0)
        return done

    @kapi(module="pseudo", sites=8, pseudo=True,
          args=[arg_int("slots", 1, 4), arg_int("threads", 1, 4),
                arg_int("frames", 1, 32)],
          doc="Spin up a partition with threads and run the cyclic schedule.")
    def syz_partition_cycle(self, slots: int, threads: int,
                            frames: int) -> int:
        part = self.pok_partition_create(slots)
        if part <= 0:
            self.ctx.cov(1)
            return POK_EINVAL
        self.pok_partition_set_mode(part, MODE_NORMAL)
        for i in range(threads):
            self.pok_thread_create(part, (i % 4) + 1)
        for _ in range(min(frames, 32)):
            self.pok_sched()
        partition = self._lookup(part, "part")
        total = sum(self._lookup(h, "pokthread").activations
                    for h in partition.threads
                    if self._lookup(h, "pokthread"))
        self.ctx.cov(2)
        return total
