"""The embedded operating systems under test.

Five kernels are implemented from scratch, sharing only low-level building
blocks, so that — as in the paper — the *same* fuzzer must cope with
genuinely different API surfaces, schedulers, allocators and error
handling:

* :mod:`repro.oses.freertos`  — tasks/queues/semaphores/event groups, heap_4
* :mod:`repro.oses.rtthread`  — object model, small-mem heap, mempools, device/serial, SAL sockets
* :mod:`repro.oses.zephyr`    — k_threads, sys_heap/k_heap, msgq, workqueue, JSON library
* :mod:`repro.oses.nuttx`     — POSIX-flavoured: mqueue, semaphores, timers, env, clock
* :mod:`repro.oses.pokos`     — a minimal partitioned OS (Gustave comparison)

``OS_REGISTRY`` maps an OS name to its kernel class; the firmware loader
uses it to instantiate whatever the flash image says it contains.
"""

from typing import Dict, Type

from repro.oses.common.kernel import EmbeddedKernel


def os_registry() -> Dict[str, Type[EmbeddedKernel]]:
    """Return the name -> kernel-class registry (imported lazily so the
    kernels stay independent of each other)."""
    from repro.oses.freertos.kernel import FreeRtosKernel
    from repro.oses.rtthread.kernel import RtThreadKernel
    from repro.oses.zephyr.kernel import ZephyrKernel
    from repro.oses.nuttx.kernel import NuttxKernel
    from repro.oses.pokos.kernel import PokKernel

    return {
        FreeRtosKernel.NAME: FreeRtosKernel,
        RtThreadKernel.NAME: RtThreadKernel,
        ZephyrKernel.NAME: ZephyrKernel,
        NuttxKernel.NAME: NuttxKernel,
        PokKernel.NAME: PokKernel,
    }


def os_names():
    """Sorted names of all supported embedded OSes."""
    return sorted(os_registry())
