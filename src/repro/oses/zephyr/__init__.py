"""Zephyr-flavoured kernel: k_threads with preemptive scheduling and a
work queue, the chunk/bucket ``sys_heap`` allocator plus ``k_heap``
instances carved from it, message queues, semaphores, mutexes, timers,
and Zephyr's own JSON library (descriptor-based encode/decode).
"""

from repro.oses.zephyr.kernel import ZephyrKernel
from repro.oses.zephyr.sysheap import SysHeap

__all__ = ["ZephyrKernel", "SysHeap"]
