"""The Zephyr-flavoured kernel.

Fully preemptive k_threads, a system work queue, the chunk/bucket
``sys_heap`` plus carve-out ``k_heap`` instances, message queues,
semaphores, mutexes, k_timers, and Zephyr's descriptor-style JSON
library.

Injected bugs (Table 2):

* **#1** ``sys_heap_stress()``     a split/merge path in the stress helper
  smashes a free-chunk canary; validation panics.
* **#2** ``z_impl_k_msgq_get()``   get from a cleaned-up message queue
  dereferences its freed ring buffer.
* **#3** ``json_obj_encode()``     unbounded recursion over a deep
  document overflows the kernel stack.
* **#4** ``k_heap_init()``         a tiny-but-nonzero size underflows the
  first-chunk computation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.oses.common.api import (
    arg_buf,
    arg_int,
    arg_res,
    kapi,
    kfunc,
)
from repro.oses.common.kernel import EmbeddedKernel
from repro.oses.common.ladders import SensorLadder
from repro.oses.common.shell import ShellInterpreter
from repro.oses.zephyr.sysheap import MIN_CHUNK, SysHeap

K_OK = 0
K_EINVAL = -22
K_ENOMEM = -12
K_EAGAIN = -11
K_ENOMSG = -42

MAX_PRIO = 15
JSON_MAX_ENCODE_DEPTH = 6

# Sentinel distinct from every legal JSON value (None is legal).
_JSON_BAD = object()

JsonValue = Union[None, bool, int, str, list, dict]


class _KThread:
    KIND = "kthread"

    def __init__(self, stack_addr: int, stack_size: int, priority: int):
        self.handle = 0
        self.stack_addr = stack_addr
        self.stack_size = stack_size
        self.priority = priority
        self.state = "ready"     # ready | sleeping | suspended | dead
        self.wake_at = 0
        self.run_count = 0


class _KHeap:
    KIND = "kheap"

    def __init__(self, addr: int, size: int):
        self.handle = 0
        self.addr = addr
        self.size = size
        self.cursor = 0           # bump allocator inside the carve-out
        self.live = 0


class _KHeapRef:
    KIND = "kmem"

    def __init__(self, heap: "_KHeap", addr: int, size: int):
        self.handle = 0
        self.heap = heap
        self.addr = addr
        self.size = size
        self.freed = False


class _SysMem:
    KIND = "sysmem"

    def __init__(self, addr: int, size: int):
        self.handle = 0
        self.addr = addr
        self.size = size
        self.freed = False


class _MsgQ:
    KIND = "msgq"

    def __init__(self, max_msgs: int, msg_size: int, buf_addr: int):
        self.handle = 0
        self.max_msgs = max_msgs
        self.msg_size = msg_size
        self.buf_addr = buf_addr
        self.count = 0
        self.head = 0
        self.tail = 0
        self.cleaned = False      # buffer freed; handle dangling (bug #2)


class _KSem:
    KIND = "ksem"

    def __init__(self, count: int, limit: int):
        self.handle = 0
        self.count = count
        self.limit = limit


class _KMutex:
    KIND = "kmutex"

    def __init__(self):
        self.handle = 0
        self.owner = 0
        self.lock_count = 0


class _KTimer:
    KIND = "ktimer"

    def __init__(self, period: int):
        self.handle = 0
        self.period = period
        self.expiry = 0
        self.running = False
        self.expire_count = 0


class _Work:
    KIND = "work"

    def __init__(self, profile: int):
        self.handle = 0
        self.profile = profile
        self.pending = False
        self.run_count = 0


class _JDoc:
    KIND = "jzdoc"

    def __init__(self, value: JsonValue):
        self.handle = 0
        self.value = value


class ZephyrKernel(SensorLadder, ShellInterpreter, EmbeddedKernel):
    """Zephyr v3-flavoured kernel."""

    NAME = "zephyr"
    VERSION = "v3.6-repro"
    BOOT_BANNER = "*** Booting Zephyr OS build (repro) ***"
    EXCEPTION_SYMBOL = "z_fatal_error"
    SHELL_PROMPT = "uart:~$"
    ASSERT_LOG_FORMAT = "ASSERTION FAIL [{expr}] @ {loc}"
    PANIC_LOG_FORMAT = ">>> ZEPHYR FATAL ERROR: {cause} ({detail})"

    def __init__(self, ctx, config=None):
        super().__init__(ctx, config)
        self.sys_heap: Optional[SysHeap] = None
        self.handles: Dict[int, object] = {}
        self._next_handle = 1
        self.uptime_ticks = 0
        self.threads: List[_KThread] = []
        self.current: Optional[_KThread] = None
        self.timers: List[_KTimer] = []
        self.work_queue: List[_Work] = []

    # -- boot ----------------------------------------------------------------

    def boot_os(self) -> None:
        layout = self.ctx.layout
        self.sys_heap = SysHeap(self.ctx.ram, layout.kernel_heap_base,
                                layout.kernel_heap_size)
        main_stack = self.sys_heap.alloc(1024)
        main = _KThread(main_stack, 1024, 0)
        self._register(main)
        self.threads.append(main)
        self.current = main
        self.ctx.kprintf("sys_heap up; main thread at priority 0")

    def _register(self, obj):
        handle = self._next_handle
        self._next_handle += 1
        obj.handle = handle
        self.handles[handle] = obj
        return obj

    def _lookup(self, handle: int, kind: str):
        obj = self.handles.get(handle)
        if obj is None or obj.KIND != kind:
            return None
        return obj

    # -- scheduler / work queue -----------------------------------------------------

    @kfunc(module="sched", sites=10)
    def z_swap(self) -> None:
        """Pick the highest-priority runnable thread (lower wins)."""
        best: Optional[_KThread] = None
        for thread in self.threads:
            if thread.state != "ready":
                self.ctx.cov(1)
                continue
            if best is None or thread.priority < best.priority:
                self.ctx.cov(2)
                best = thread
        if best is None:
            self.ctx.cov(3)
            return
        if best is not self.current:
            self.ctx.cov(4)
            self.ctx.cycles(10)
        self.current = best
        best.run_count += 1

    @kfunc(module="sched", sites=8)
    def z_tick(self) -> None:
        self.uptime_ticks += 1
        for thread in self.threads:
            if thread.state == "sleeping" and thread.wake_at <= self.uptime_ticks:
                self.ctx.cov(1)
                thread.state = "ready"
        for timer in self.timers:
            if timer.running and timer.expiry <= self.uptime_ticks:
                self.ctx.cov(2)
                timer.expire_count += 1
                timer.expiry = self.uptime_ticks + timer.period

    @kfunc(module="workq", sites=8)
    def z_work_run_pending(self) -> int:
        """Drain the system work queue (one pass)."""
        ran = 0
        for work in self.work_queue:
            if not work.pending:
                continue
            self.ctx.cov(1)
            work.pending = False
            work.run_count += 1
            if work.profile == 1:
                self.ctx.cov(2)
                self.ctx.cycles(25)
            elif work.profile == 2:
                self.ctx.cov(3)
                self.z_swap()
            ran += 1
        return ran

    def idle_tick(self) -> None:
        self.z_tick()
        self.z_work_run_pending()
        self.z_swap()

    # -- exception entry -----------------------------------------------------------------

    @kfunc(module="kernel", sites=4)
    def z_fatal_error(self, signal) -> None:
        """Zephyr fatal-error entry point."""
        self._fatal_common(signal)

    # ======================= threads =======================

    @kapi(module="thread", sites=10,
          args=[arg_int("stack_size", 128, 4096), arg_int("priority", 0, 20),
                arg_int("delay", 0, 50)],
          ret="kthread", doc="Create and (optionally delayed) start a thread.")
    def k_thread_create(self, stack_size: int, priority: int,
                        delay: int) -> int:
        if priority > MAX_PRIO:
            self.ctx.cov(1)
            return K_EINVAL
        stack = self.sys_heap.alloc(stack_size)
        if stack == 0:
            self.ctx.cov(2)
            return K_ENOMEM
        thread = _KThread(stack, stack_size, priority)
        if delay > 0:
            self.ctx.cov(3)
            thread.state = "sleeping"
            thread.wake_at = self.uptime_ticks + delay
        self._register(thread)
        self.threads.append(thread)
        self.z_swap()
        return thread.handle

    @kapi(module="thread", sites=7, args=[arg_res("thread", "kthread")],
          doc="Abort a thread and reclaim its stack.")
    def k_thread_abort(self, thread: int) -> int:
        target = self._lookup(thread, "kthread")
        if target is None:
            self.ctx.cov(1)
            return K_EINVAL
        if target is self.threads[0]:
            self.ctx.cov(2)
            return K_EINVAL  # aborting main is refused
        target.state = "dead"
        self.threads.remove(target)
        self.sys_heap.free(target.stack_addr)
        del self.handles[target.handle]
        if self.current is target:
            self.ctx.cov(3)
            self.current = None
            self.z_swap()
        return K_OK

    @kapi(module="thread", sites=5, args=[arg_res("thread", "kthread")],
          doc="Suspend a thread.")
    def k_thread_suspend(self, thread: int) -> int:
        target = self._lookup(thread, "kthread")
        if target is None:
            self.ctx.cov(1)
            return K_EINVAL
        target.state = "suspended"
        self.z_swap()
        return K_OK

    @kapi(module="thread", sites=5, args=[arg_res("thread", "kthread")],
          doc="Resume a suspended thread.")
    def k_thread_resume(self, thread: int) -> int:
        target = self._lookup(thread, "kthread")
        if target is None:
            self.ctx.cov(1)
            return K_EINVAL
        if target.state == "suspended":
            self.ctx.cov(2)
            target.state = "ready"
            self.z_swap()
        return K_OK

    @kapi(module="thread", sites=6,
          args=[arg_res("thread", "kthread"), arg_int("priority", 0, 20)],
          doc="Change a thread's priority.")
    def k_thread_priority_set(self, thread: int, priority: int) -> int:
        target = self._lookup(thread, "kthread")
        if target is None:
            self.ctx.cov(1)
            return K_EINVAL
        if priority > MAX_PRIO:
            self.ctx.cov(2)
            return K_EINVAL
        target.priority = priority
        self.z_swap()
        return K_OK

    @kapi(module="thread", sites=6, args=[arg_int("ms", 0, 100)],
          doc="Sleep the current thread.")
    def k_sleep(self, ms: int) -> int:
        if ms > 1000:
            self.ctx.cov(1)
            self.ctx.stall("k_sleep parked the only runnable thread")
        for _ in range(min(ms, 64)):
            self.z_tick()
        self.z_swap()
        return K_OK

    @kapi(module="thread", sites=3, doc="Yield to an equal-priority thread.")
    def k_yield(self) -> int:
        self.z_swap()
        return K_OK

    @kapi(module="thread", sites=3, doc="Uptime in ticks.")
    def k_uptime_get(self) -> int:
        return self.uptime_ticks

    # ======================= sys_heap =======================

    @kapi(module="heap", sites=6, args=[arg_int("size", 0, 8192)],
          ret="sysmem", doc="Allocate from the system heap.")
    def sys_heap_alloc(self, size: int) -> int:
        addr = self.sys_heap.alloc(size)
        if addr == 0:
            self.ctx.cov(1)
            return 0
        ref = self._register(_SysMem(addr, size))
        return ref.handle

    @kapi(module="heap", sites=6, args=[arg_res("mem", "sysmem")],
          doc="Free a system-heap allocation.")
    def sys_heap_free(self, mem: int) -> int:
        ref = self._lookup(mem, "sysmem")
        if ref is None:
            self.ctx.cov(1)
            return K_EINVAL
        if ref.freed:
            self.ctx.cov(2)
            return K_EINVAL
        ref.freed = True
        self.sys_heap.free(ref.addr)
        return K_OK

    @kapi(module="heap", sites=12,
          args=[arg_int("ops", 1, 64), arg_int("seed", 0, 1023)],
          doc="Heap self-test: a deterministic alloc/free storm.")
    def sys_heap_stress(self, ops: int, seed: int) -> int:
        """Stress helper mirroring Zephyr's ``sys_heap_stress()``.

        Injected bug #1: with enough operations and an unlucky seed the
        storm takes a split-then-merge path that writes one word past a
        shrunken chunk, smashing the next free chunk's canary.  The
        post-storm validation catches it and panics.
        """
        live: List[int] = []
        state = seed or 1
        for i in range(ops):
            state = (state * 1103515245 + 12345) & 0x7FFFFFFF
            if state & 1 and live:
                self.ctx.cov(1)
                self.sys_heap.free(live.pop())
            else:
                size = MIN_CHUNK + (state >> 8) % 240
                addr = self.sys_heap.alloc(size)
                if addr:
                    self.ctx.cov(2)
                    live.append(addr)
                else:
                    self.ctx.cov(3)
        if ops >= 24 and seed % 7 == 3:
            self.ctx.cov(4)
            self.sys_heap.corrupt_for_stress(seed % 5)
        for addr in live:
            self.sys_heap.free(addr)
        defect = self.sys_heap.validate()
        if defect is not None:
            self.ctx.cov(5)
            self.ctx.panic("sys_heap corruption in sys_heap_stress", defect)
        return ops

    # ======================= k_heap =======================

    @kapi(module="kheap", sites=8, args=[arg_int("size", 0, 4096)],
          ret="kheap", doc="Initialise a k_heap carve-out.")
    def k_heap_init(self, size: int) -> int:
        if size < MIN_CHUNK // 2:
            self.ctx.cov(1)
            return K_EINVAL  # rejected: rounds to zero granules
        # Injected bug #4: sizes that pass the (wrong) half-chunk check
        # but are smaller than a whole chunk header underflow the
        # first-chunk size computation (size - sizeof(chunk) wraps).
        if size < MIN_CHUNK:
            self.ctx.cov(2)
            self.ctx.panic("chunk0 underflow in k_heap_init",
                           f"requested {size} bytes < {MIN_CHUNK}-byte "
                           f"chunk header; first chunk size wrapped")
        addr = self.sys_heap.alloc(size)
        if addr == 0:
            self.ctx.cov(3)
            return K_ENOMEM
        heap = _KHeap(addr, size)
        self._register(heap)
        return heap.handle

    @kapi(module="kheap", sites=8,
          args=[arg_res("heap", "kheap"), arg_int("size", 1, 1024),
                arg_int("timeout", 0, 50)],
          ret="kmem", doc="Allocate from a k_heap.")
    def k_heap_alloc(self, heap: int, size: int, timeout: int) -> int:
        target = self._lookup(heap, "kheap")
        if target is None:
            self.ctx.cov(1)
            return 0
        aligned = (size + 7) & ~7
        if target.cursor + aligned > target.size:
            self.ctx.cov(2)
            if timeout > 1000:
                self.ctx.cov(3)
                self.ctx.stall("k_heap_alloc blocked forever")
            return 0
        addr = target.addr + target.cursor
        target.cursor += aligned
        target.live += 1
        if target.live >= 4 and target.size - target.cursor < 64:
            self.ctx.cov(4)  # carve-out nearly exhausted under load
        ref = self._register(_KHeapRef(target, addr, aligned))
        return ref.handle

    @kapi(module="kheap", sites=6, args=[arg_res("mem", "kmem")],
          doc="Free a k_heap allocation.")
    def k_heap_free(self, mem: int) -> int:
        ref = self._lookup(mem, "kmem")
        if ref is None or ref.freed:
            self.ctx.cov(1)
            return K_EINVAL
        ref.freed = True
        ref.heap.live -= 1
        if ref.heap.live == 0:
            self.ctx.cov(2)
            ref.heap.cursor = 0  # whole carve-out reclaimed
        return K_OK

    # ======================= message queues =======================

    @kapi(module="msgq", sites=8,
          args=[arg_int("max_msgs", 1, 32), arg_int("msg_size", 4, 64)],
          ret="msgq", doc="Initialise a message queue.")
    def k_msgq_init(self, max_msgs: int, msg_size: int) -> int:
        buf = self.sys_heap.alloc(max_msgs * msg_size)
        if buf == 0:
            self.ctx.cov(1)
            return K_ENOMEM
        queue = _MsgQ(max_msgs, msg_size, buf)
        self._register(queue)
        return queue.handle

    @kapi(module="msgq", sites=8,
          args=[arg_res("msgq", "msgq"), arg_buf("data", 64),
                arg_int("timeout", 0, 50)],
          doc="Put a message.")
    def k_msgq_put(self, msgq: int, data: bytes, timeout: int) -> int:
        queue = self._lookup(msgq, "msgq")
        if queue is None or queue.cleaned:
            self.ctx.cov(1)
            return K_EINVAL
        if queue.count >= queue.max_msgs:
            self.ctx.cov(2)
            if timeout > 1000:
                self.ctx.cov(3)
                self.ctx.stall("k_msgq_put blocked forever on a full queue")
            return K_EAGAIN
        payload = data[:queue.msg_size].ljust(queue.msg_size, b"\x00")
        self.ctx.ram.write(queue.buf_addr + queue.head * queue.msg_size,
                           payload)
        queue.head = (queue.head + 1) % queue.max_msgs
        queue.count += 1
        if queue.count == queue.max_msgs and queue.max_msgs >= 8:
            self.ctx.cov(4)  # large ring filled completely
        return K_OK

    @kfunc(module="msgq", sites=8)
    def z_impl_k_msgq_get(self, queue: _MsgQ, timeout: int) -> int:
        """The syscall implementation behind ``k_msgq_get``.

        Injected bug #2: no liveness check against a cleaned-up queue —
        the ring buffer was freed by ``k_msgq_cleanup`` and this read
        dereferences it.
        """
        if queue.cleaned:
            self.ctx.cov(1)
            self.ctx.panic("dangling ring buffer in z_impl_k_msgq_get",
                           "queue buffer was freed by k_msgq_cleanup")
        if queue.count == 0:
            self.ctx.cov(2)
            if timeout > 1000:
                self.ctx.cov(3)
                self.ctx.stall("k_msgq_get blocked forever on empty queue")
            return K_ENOMSG
        self.ctx.ram.read(queue.buf_addr + queue.tail * queue.msg_size,
                          queue.msg_size)
        queue.tail = (queue.tail + 1) % queue.max_msgs
        queue.count -= 1
        return K_OK

    @kapi(module="msgq", sites=5,
          args=[arg_res("msgq", "msgq"), arg_int("timeout", 0, 50)],
          doc="Get a message.")
    def k_msgq_get(self, msgq: int, timeout: int) -> int:
        queue = self._lookup(msgq, "msgq")
        if queue is None:
            self.ctx.cov(1)
            return K_EINVAL
        return self.z_impl_k_msgq_get(queue, timeout)

    @kapi(module="msgq", sites=5, args=[arg_res("msgq", "msgq")],
          doc="Discard all queued messages.")
    def k_msgq_purge(self, msgq: int) -> int:
        queue = self._lookup(msgq, "msgq")
        if queue is None or queue.cleaned:
            self.ctx.cov(1)
            return K_EINVAL
        queue.count = 0
        queue.head = 0
        queue.tail = 0
        return K_OK

    @kapi(module="msgq", sites=5, args=[arg_res("msgq", "msgq")],
          doc="Release the queue's ring buffer.")
    def k_msgq_cleanup(self, msgq: int) -> int:
        queue = self._lookup(msgq, "msgq")
        if queue is None or queue.cleaned:
            self.ctx.cov(1)
            return K_EINVAL
        queue.cleaned = True  # buffer freed; handle dangles (bug #2 food)
        self.sys_heap.free(queue.buf_addr)
        return K_OK

    # ======================= semaphores / mutexes =======================

    @kapi(module="ipc", sites=6,
          args=[arg_int("initial", 0, 16), arg_int("limit", 1, 16)],
          ret="ksem", doc="Initialise a semaphore.")
    def k_sem_init(self, initial: int, limit: int) -> int:
        if initial > limit:
            self.ctx.cov(1)
            return K_EINVAL
        sem = _KSem(initial, limit)
        self._register(sem)
        return sem.handle

    @kapi(module="ipc", sites=8,
          args=[arg_res("sem", "ksem"), arg_int("timeout", 0, 50)],
          doc="Take a semaphore.")
    def k_sem_take(self, sem: int, timeout: int) -> int:
        target = self._lookup(sem, "ksem")
        if target is None:
            self.ctx.cov(1)
            return K_EINVAL
        if target.count == 0:
            self.ctx.cov(2)
            if timeout > 1000:
                self.ctx.cov(3)
                self.ctx.stall("k_sem_take blocked forever")
            return K_EAGAIN
        target.count -= 1
        return K_OK

    @kapi(module="ipc", sites=6, args=[arg_res("sem", "ksem")],
          doc="Give a semaphore.")
    def k_sem_give(self, sem: int) -> int:
        target = self._lookup(sem, "ksem")
        if target is None:
            self.ctx.cov(1)
            return K_EINVAL
        if target.count < target.limit:
            self.ctx.cov(2)
            target.count += 1
        self.z_swap()
        return K_OK

    @kapi(module="ipc", sites=4, ret="kmutex", doc="Initialise a mutex.")
    def k_mutex_init(self) -> int:
        mutex = _KMutex()
        self._register(mutex)
        return mutex.handle

    @kapi(module="ipc", sites=8,
          args=[arg_res("mutex", "kmutex"), arg_int("timeout", 0, 50)],
          doc="Lock a mutex (recursive).")
    def k_mutex_lock(self, mutex: int, timeout: int) -> int:
        target = self._lookup(mutex, "kmutex")
        if target is None:
            self.ctx.cov(1)
            return K_EINVAL
        me = self.current.handle if self.current else 0
        if target.owner in (0, me):
            self.ctx.cov(2)
            target.owner = me
            target.lock_count += 1
            return K_OK
        if timeout > 1000:
            self.ctx.cov(3)
            self.ctx.stall("k_mutex_lock blocked forever")
        return K_EAGAIN

    @kapi(module="ipc", sites=6, args=[arg_res("mutex", "kmutex")],
          doc="Unlock a mutex.")
    def k_mutex_unlock(self, mutex: int) -> int:
        target = self._lookup(mutex, "kmutex")
        if target is None:
            self.ctx.cov(1)
            return K_EINVAL
        me = self.current.handle if self.current else 0
        if target.owner != me:
            self.ctx.cov(2)
            return K_EINVAL
        target.lock_count -= 1
        if target.lock_count <= 0:
            target.owner = 0
            target.lock_count = 0
        return K_OK

    # ======================= timers / work =======================

    @kapi(module="timer", sites=5, args=[arg_int("period", 1, 100)],
          ret="ktimer", doc="Initialise a periodic timer.")
    def k_timer_init(self, period: int) -> int:
        if period <= 0:
            self.ctx.cov(2)
            return K_EINVAL
        timer = _KTimer(period)
        self._register(timer)
        self.timers.append(timer)
        return timer.handle

    @kapi(module="timer", sites=5, args=[arg_res("timer", "ktimer")],
          doc="Start a timer.")
    def k_timer_start(self, timer: int) -> int:
        target = self._lookup(timer, "ktimer")
        if target is None:
            self.ctx.cov(1)
            return K_EINVAL
        target.running = True
        target.expiry = self.uptime_ticks + target.period
        return K_OK

    @kapi(module="timer", sites=5, args=[arg_res("timer", "ktimer")],
          doc="Stop a timer.")
    def k_timer_stop(self, timer: int) -> int:
        target = self._lookup(timer, "ktimer")
        if target is None:
            self.ctx.cov(1)
            return K_EINVAL
        target.running = False
        return K_OK

    @kapi(module="timer", sites=5, args=[arg_res("timer", "ktimer")],
          doc="Expirations since start.")
    def k_timer_status_get(self, timer: int) -> int:
        target = self._lookup(timer, "ktimer")
        if target is None:
            self.ctx.cov(1)
            return K_EINVAL
        return target.expire_count

    @kapi(module="workq", sites=5, args=[arg_int("profile", 0, 2)],
          ret="work", doc="Initialise a work item.")
    def k_work_init(self, profile: int) -> int:
        work = _Work(profile)
        self._register(work)
        self.work_queue.append(work)
        return work.handle

    @kapi(module="workq", sites=6, args=[arg_res("work", "work")],
          doc="Submit a work item to the system queue.")
    def k_work_submit(self, work: int) -> int:
        target = self._lookup(work, "work")
        if target is None:
            self.ctx.cov(1)
            return K_EINVAL
        if target.pending:
            self.ctx.cov(2)
            return 0  # already queued
        target.pending = True
        if sum(1 for w in self.work_queue if w.pending) >= 4:
            self.ctx.cov(3)  # work queue backlog
        return 1

    @kapi(module="workq", sites=4, doc="Run all pending work now.")
    def k_work_queue_drain(self) -> int:
        return self.z_work_run_pending()

    # ======================= JSON library =======================

    @kapi(module="json", sites=10,
          args=[arg_buf("data", 512, fmt="json")], ret="jzdoc",
          doc="Parse a JSON buffer against the descriptor set.")
    def json_obj_parse(self, data: bytes) -> int:
        value = self._json_parse_value(data)
        if value is _JSON_BAD:
            self.ctx.cov(1)
            return K_EINVAL
        doc = self._register(_JDoc(value))
        return doc.handle

    @kapi(module="json", sites=8,
          args=[arg_int("depth", 0, 12), arg_int("width", 1, 4)],
          ret="jzdoc", doc="Build a synthetic nested document.")
    def json_mkdeep(self, depth: int, width: int) -> int:
        # The builder works from a bounded arena, so the node count is
        # capped even for wide*deep requests (width**depth would not fit
        # in RAM anyway); depth is what matters for the encoder.
        budget = [512]
        fanout = max(min(width, 4), 1)

        def build(level: int) -> JsonValue:
            if level <= 0 or budget[0] <= 0:
                return 0
            budget[0] -= fanout
            return {f"f{i}": build(level - 1) for i in range(fanout)}
        doc = self._register(_JDoc(build(min(depth, 12))))
        self.ctx.cov(1)
        return doc.handle

    @kapi(module="json", sites=10, args=[arg_res("doc", "jzdoc")],
          doc="Encode a document (descriptor-driven).")
    def json_obj_encode(self, doc: int) -> int:
        target = self._lookup(doc, "jzdoc")
        if target is None:
            self.ctx.cov(1)
            return K_EINVAL
        length = self._json_encode(target.value, 0)
        self.ctx.cov(2)
        return length

    def _json_encode(self, value: JsonValue, depth: int) -> int:
        # Injected bug #3: no depth guard — each level eats kernel stack;
        # past the limit the encoder runs off the end of it.
        if depth > JSON_MAX_ENCODE_DEPTH:
            self.ctx.panic("stack overflow in json_obj_encode",
                           f"encode recursion reached depth {depth} with a "
                           f"{512}-byte kernel stack remaining")
        if isinstance(value, dict):
            return 2 + sum(len(k) + 3 + self._json_encode(v, depth + 1)
                           for k, v in value.items())
        if isinstance(value, list):
            return 2 + sum(self._json_encode(v, depth + 1) for v in value)
        if isinstance(value, bool) or value is None:
            return 5
        if isinstance(value, str):
            return len(value) + 2
        return len(str(value))

    @kapi(module="json", sites=8,
          args=[arg_res("a", "jzdoc"), arg_res("b", "jzdoc")], ret="jzdoc",
          doc="Nest document b under a new key of a copy of a.")
    def json_obj_nest(self, a: int, b: int) -> int:
        left = self._lookup(a, "jzdoc")
        right = self._lookup(b, "jzdoc")
        if left is None or right is None:
            self.ctx.cov(1)
            return K_EINVAL
        if not isinstance(left.value, dict):
            self.ctx.cov(2)
            return K_EINVAL
        merged = dict(left.value)
        merged["nested"] = right.value
        doc = self._register(_JDoc(merged))
        return doc.handle

    @kapi(module="json", sites=4, args=[arg_res("doc", "jzdoc")],
          doc="Release a document.")
    def json_free(self, doc: int) -> int:
        target = self._lookup(doc, "jzdoc")
        if target is None:
            self.ctx.cov(1)
            return K_EINVAL
        del self.handles[target.handle]
        return K_OK

    def _json_parse_value(self, data: bytes):
        text = data.decode("utf-8", "replace").strip()
        if not text:
            return _JSON_BAD
        try:
            import json as _json
            value = _json.loads(text)
        except ValueError:
            return _JSON_BAD
        if not isinstance(value, (dict, list, str, int, bool, type(None))):
            return _JSON_BAD
        return value

    # ======================= pseudo syscalls =======================

    @kapi(module="pseudo", sites=8, pseudo=True,
          args=[arg_int("n", 1, 8), arg_int("profile", 0, 2)],
          doc="Flood the work queue and drain it.")
    def syz_workq_flood(self, n: int, profile: int) -> int:
        items = []
        for _ in range(n):
            handle = self.k_work_init(profile)
            if handle > 0:
                self.ctx.cov(1)
                self.k_work_submit(handle)
                items.append(handle)
        return self.k_work_queue_drain()

    @kapi(module="pseudo", sites=10, pseudo=True,
          args=[arg_int("max_msgs", 1, 8), arg_int("rounds", 1, 16)],
          doc="Message-queue producer/consumer round-trips.")
    def syz_msgq_pipeline(self, max_msgs: int, rounds: int) -> int:
        queue = self.k_msgq_init(max_msgs, 8)
        if queue <= 0:
            self.ctx.cov(1)
            return K_ENOMEM
        done = 0
        for i in range(rounds):
            if self.k_msgq_put(queue, bytes([i & 0xFF]) * 8, 0) == K_OK:
                self.ctx.cov(2)
                done += 1
            if i % 2:
                self.ctx.cov(3)
                self.k_msgq_get(queue, 0)
        self.k_msgq_purge(queue)
        self.k_msgq_cleanup(queue)
        return done

    @kapi(module="pseudo", sites=8, pseudo=True,
          args=[arg_int("n", 1, 16), arg_int("size", 8, 512)],
          doc="Alloc/free churn against the system heap.")
    def syz_heap_churn(self, n: int, size: int) -> int:
        handles = []
        for i in range(n):
            handle = self.sys_heap_alloc(size + i * 8)
            if handle > 0:
                self.ctx.cov(1)
                handles.append(handle)
        for handle in handles[::2]:
            self.sys_heap_free(handle)
        for handle in handles[1::2]:
            self.ctx.cov(2)
            self.sys_heap_free(handle)
        return len(handles)
