"""Zephyr's ``sys_heap``: chunk-based allocator with size-class buckets.

A third allocator design, distinct from FreeRTOS heap_4 (address-ordered
free list) and RT-Thread small-mem (boundary-tag chain): free chunks are
threaded onto power-of-two *bucket* lists, allocation pops the smallest
bucket that fits and splits the remainder back into a bucket.

Chunk header (8 bytes)::

    u32 size_and_flag   chunk size in bytes incl. header; MSB = used
    u32 bucket_next     offset of next free chunk in the same bucket

A one-word canary (0xC0FFEE00 | bucket) sits at the end of every *free*
chunk; ``validate`` checks it, which is how stress-induced corruption
(injected bug #1) turns into a detectable panic condition.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.hw.memory import Ram

HEADER = 8
USED_BIT = 0x8000_0000
SIZE_MASK = 0x7FFF_FFFF
N_BUCKETS = 8
MIN_CHUNK = 16
CANARY_BASE = 0xC0FFEE00


def bucket_of(size: int) -> int:
    """Size class of a chunk: floor(log2(size/MIN_CHUNK)), clamped."""
    bucket = 0
    span = MIN_CHUNK
    while span * 2 <= size and bucket < N_BUCKETS - 1:
        span *= 2
        bucket += 1
    return bucket


class SysHeap:
    """A sys_heap over ``ram[base, base+size)``.

    Bucket heads live in Python (they would be in the heap's static
    struct); chunk headers and canaries live in simulated RAM.
    """

    def __init__(self, ram: Ram, base: int, size: int):
        if size < MIN_CHUNK * 4:
            raise ValueError("sys_heap window too small")
        self.ram = ram
        self.base = base
        self.size = size & ~7
        self.buckets: List[int] = [0] * N_BUCKETS  # 0 = empty
        self.allocated = 0
        self.alloc_count = 0
        self.free_count = 0
        first = 8  # offset 0 reserved as the null sentinel
        span = self.size - first
        self._write_chunk(first, span, used=False, nxt=0)
        self._bucket_push(first, span)

    # -- raw chunk access -------------------------------------------------------

    def _write_chunk(self, off: int, size: int, used: bool, nxt: int) -> None:
        word = (size & SIZE_MASK) | (USED_BIT if used else 0)
        self.ram.write_u32(self.base + off, word)
        self.ram.write_u32(self.base + off + 4, nxt)
        if not used and size >= MIN_CHUNK:
            bucket = bucket_of(size)
            self.ram.write_u32(self.base + off + size - 4,
                               CANARY_BASE | bucket)

    def _read_chunk(self, off: int) -> Tuple[int, bool, int]:
        word = self.ram.read_u32(self.base + off)
        nxt = self.ram.read_u32(self.base + off + 4)
        return word & SIZE_MASK, bool(word & USED_BIT), nxt

    def _canary_ok(self, off: int, size: int) -> bool:
        if size < MIN_CHUNK:
            return True
        value = self.ram.read_u32(self.base + off + size - 4)
        return (value & 0xFFFFFF00) == CANARY_BASE

    # -- buckets --------------------------------------------------------------------

    def _bucket_push(self, off: int, size: int) -> None:
        bucket = bucket_of(size)
        _, used, _ = self._read_chunk(off)
        self._write_chunk(off, size, used=False, nxt=self.buckets[bucket])
        self.buckets[bucket] = off

    def _bucket_pop(self, bucket: int) -> Optional[int]:
        off = self.buckets[bucket]
        if off == 0:
            return None
        _, _, nxt = self._read_chunk(off)
        self.buckets[bucket] = nxt
        return off

    # -- public API --------------------------------------------------------------------

    def alloc(self, want: int) -> int:
        """Allocate; returns an absolute payload address or 0."""
        if want <= 0:
            return 0
        need = max((want + HEADER + 7) & ~7, MIN_CHUNK)
        for bucket in range(bucket_of(need), N_BUCKETS):
            off = self.buckets[bucket]
            prev = 0
            while off:
                size, used, nxt = self._read_chunk(off)
                if used or size == 0:
                    break  # corrupted bucket chain
                if size >= need:
                    # Unlink from the bucket.
                    if prev:
                        p_size, p_used, _ = self._read_chunk(prev)
                        self._write_chunk(prev, p_size, p_used, nxt)
                    else:
                        self.buckets[bucket] = nxt
                    remainder = size - need
                    if remainder >= MIN_CHUNK:
                        self._bucket_push(off + need, remainder)
                        size = need
                    self._write_chunk(off, size, used=True, nxt=0)
                    self.allocated += size
                    self.alloc_count += 1
                    return self.base + off + HEADER
                prev = off
                off = nxt
        return 0

    def free(self, payload_addr: int) -> bool:
        """Release an allocation; False on a bad pointer."""
        off = payload_addr - self.base - HEADER
        if off < 8 or off >= self.size:
            return False
        size, used, _ = self._read_chunk(off)
        if not used or size < MIN_CHUNK or off + size > self.size:
            return False
        self.allocated -= size
        self.free_count += 1
        self._bucket_push(off, size)
        return True

    def validate(self) -> Optional[str]:
        """Walk every bucket; returns a defect description or None."""
        for bucket, head in enumerate(self.buckets):
            off = head
            hops = 0
            while off:
                if off < 8 or off >= self.size:
                    return f"bucket {bucket}: chunk offset {off} out of range"
                size, used, nxt = self._read_chunk(off)
                if used:
                    return f"bucket {bucket}: used chunk on free list"
                if size < MIN_CHUNK or off + size > self.size:
                    return f"bucket {bucket}: bad chunk size {size}"
                if not self._canary_ok(off, size):
                    return f"bucket {bucket}: canary smashed at {off}"
                off = nxt
                hops += 1
                if hops > 100_000:
                    return f"bucket {bucket}: cyclic free list"
        return None

    def corrupt_for_stress(self, victim_bucket: int) -> None:
        """Deliberately smash the canary of a free chunk (bug #1 hook)."""
        off = self.buckets[victim_bucket % N_BUCKETS]
        if off:
            size, _, _ = self._read_chunk(off)
            if size >= MIN_CHUNK:
                self.ram.write_u32(self.base + off + size - 4, 0xBADBADBA)
