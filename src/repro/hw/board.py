"""The development board: CPU + flash + RAM + UART + debug port wiring.

A board is *dumb hardware*.  What runs on it is determined entirely by the
bytes in flash: at power-on the board invokes its ROM bootloader, which
asks a pluggable *firmware loader* (installed by :mod:`repro.firmware`) to
validate the flash image and construct the target runtime (kernel +
execution agent).  If validation fails, the board parks at the reset
vector and stops servicing run-control requests — the condition that
trips watchdog #1 in Algorithm 1.
"""

from __future__ import annotations

import copy
from typing import Callable, List, Optional, Tuple

from repro.errors import DebugLinkTimeout
from repro.hw.machine import HaltEvent, HaltReason, Machine
from repro.hw.memory import AddressSpace, Flash, Ram
from repro.hw.uart import Uart


class TargetRuntime:
    """Interface the booted firmware must implement.

    ``step()`` runs the target until the next halt event — the virtual
    equivalent of letting the core free-run after ``-exec-continue``.
    """

    def step(self) -> HaltEvent:
        """Run until the next halt event."""
        raise NotImplementedError


# A firmware loader inspects the board's flash and, if it holds a valid
# image, returns the runtime to execute; returning None means boot failure.
FirmwareLoader = Callable[["Board"], Optional[TargetRuntime]]


class Board:
    """A microcontroller board with a hardware debug interface."""

    def __init__(self, name: str, arch: str, machine: Machine, flash: Flash,
                 ram: Ram, uart: Optional[Uart] = None,
                 endianness: str = "little"):
        self.name = name
        self.arch = arch
        self.machine = machine
        self.flash = flash
        self.ram = ram
        self.uart = uart or Uart()
        self.endianness = endianness
        self.memory = AddressSpace([flash, ram])
        self.runtime: Optional[TargetRuntime] = None
        self.boot_failed = False
        self.link_lost = False  # hard-fault induced probe loss (fault injection)
        # Optional fault-injection hooks (repro.chaos.ChaosLink); consulted
        # at boot so "reboot sometimes fails" chaos lives with the hardware.
        self.chaos = None
        self._loader: Optional[FirmwareLoader] = None
        self._boot_count = 0

    # -- firmware hookup ------------------------------------------------------

    def set_firmware_loader(self, loader: FirmwareLoader) -> None:
        """Install the loader the ROM bootloader will call at power-on."""
        self._loader = loader

    @property
    def boot_count(self) -> int:
        """How many successful boots have happened since construction."""
        return self._boot_count

    # -- power / reset ----------------------------------------------------------

    def power_on(self) -> None:
        """Apply power and run the ROM bootloader.

        A full power cycle also clears a latched probe loss: the debug
        access port comes back with the rails.
        """
        self.machine.power_on()
        self.ram.power_cycle()
        self.uart.power_cycle()
        self.link_lost = False
        self._boot()

    def power_off(self) -> None:
        """Cut power; flash retains contents."""
        self.machine.power_off()
        self.runtime = None

    def reset(self) -> None:
        """Warm reset (debug-probe ``monitor reset``): reboot from flash."""
        if not self.machine.powered:
            self.power_on()
            return
        self.machine.reset()
        self.ram.power_cycle()
        self.link_lost = False
        self._boot()

    def _boot(self) -> None:
        self.runtime = None
        self.boot_failed = False
        self.machine.tick(200)  # ROM bootloader cost
        if self._loader is None:
            self.boot_failed = True
            return
        runtime = self._loader(self)
        if runtime is None:
            self.boot_failed = True
            self.machine.wedge("boot failure: invalid image")
            return
        if self.chaos is not None and self.chaos.boot_should_fail():
            # Injected brownout: the image is fine but this boot attempt
            # parks at the reset vector anyway.
            self.boot_failed = True
            self.machine.wedge("chaos: injected boot failure")
            return
        self.runtime = runtime
        self._boot_count += 1

    # -- runtime-image snapshot (repro.fuzz.snapshot) ----------------------------

    def _snapshot_pins(self) -> dict:
        """Deepcopy memo pinning the live hardware into a runtime copy.

        The runtime object graph (kernel, agent, tracer, contexts) must
        be copied so a later restore rewinds it, but everything it
        references *below* the firmware boundary — the board itself, the
        machine, the memories, the UART — is the one physical device and
        must stay shared, or the restored runtime would execute against
        phantom hardware.
        """
        pins = (self, self.machine, self.flash, self.ram, self.uart,
                self.memory)
        return {id(obj): obj for obj in pins}

    def capture_runtime_image(self):
        """Deep-copy the booted runtime with the hardware pinned."""
        if self.runtime is None:
            raise RuntimeError(f"{self.name}: no runtime to capture")
        return copy.deepcopy(self.runtime, self._snapshot_pins())

    def restore_runtime_image(self, image) -> None:
        """Install a fresh copy of a captured runtime.

        The template itself is never installed — each restore gets its
        own deepcopy, so one snapshot serves arbitrarily many restores.
        """
        self.runtime = copy.deepcopy(image, self._snapshot_pins())
        self.boot_failed = False

    # -- run control (used by the debug port) -----------------------------------

    def responsive(self) -> bool:
        """Can the debug probe still talk to the core?"""
        return self.machine.powered and not self.boot_failed and not self.link_lost

    def resume(self) -> HaltEvent:
        """Free-run until the next halt event.

        Raises :class:`DebugLinkTimeout` when the target cannot service
        run control at all (failed boot, lost link, no power) — the
        paper's "connection timeout".
        """
        if not self.responsive():
            raise DebugLinkTimeout(f"{self.name}: target not responsive")
        if self.machine.wedged:
            # The core spins without making progress: resume "succeeds"
            # but the PC never moves (watchdog #2 territory).
            self.machine.tick(1000)
            return HaltEvent(reason=HaltReason.STALL, pc=self.machine.pc,
                             detail=self.machine.wedge_detail)
        if self.runtime is None:
            raise DebugLinkTimeout(f"{self.name}: no runtime")
        return self.runtime.step()

    def read_pc(self) -> int:
        """Sample the program counter (register read over the probe)."""
        if not self.machine.powered or self.link_lost:
            raise DebugLinkTimeout(f"{self.name}: cannot read PC")
        return self.machine.pc

    # -- host-visible UART capture -----------------------------------------------

    def uart_read(self, cursor: int) -> Tuple[List[str], int]:
        """Drain UART lines newer than ``cursor``."""
        return self.uart.read_from(cursor)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Board {self.name} ({self.arch})>"
