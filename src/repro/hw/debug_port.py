"""Raw debug-port primitives (the JTAG/SWD stand-in).

Everything the host learns about or does to the target flows through this
class: memory access, run control, breakpoints, flash programming, reset.
It deliberately mirrors the operations OpenOCD exposes over a real probe,
including the distinction the paper's restoration path depends on —
*flash and reset keep working even when run control has died*, because
they only need the debug access port, not a live core.

Fault injection no longer lives here: chaos hooks moved up to the
transaction boundary (:class:`repro.link.DebugPortTransport`), so every
backend gets fault coverage from one place.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import DebugLinkTimeout
from repro.hw.board import Board
from repro.hw.machine import HaltEvent


class DebugPort:
    """Debug access to one board."""

    def __init__(self, board: Board):
        from repro.hw.boards import BOARD_CATALOG
        spec = BOARD_CATALOG.get(board.name)
        self.probe_latency_cycles = (spec.probe_latency_cycles
                                     if spec else 1200)
        self.board = board
        self._connected = False
        self.op_count = 0

    # -- session -----------------------------------------------------------

    def connect(self) -> None:
        """Attach the probe; requires the board to be powered."""
        if not self.board.machine.powered:
            raise DebugLinkTimeout(
                f"{self.board.name}: board not powered, probe sees no target")
        self._connected = True

    def disconnect(self) -> None:
        """Detach the probe."""
        self._connected = False

    @property
    def connected(self) -> bool:
        """Is a probe session open?"""
        return self._connected

    def _require_session(self) -> None:
        if not self._connected:
            raise DebugLinkTimeout(f"{self.board.name}: probe not connected")
        self.op_count += 1

    def _require_core(self) -> None:
        self._require_session()
        if self.board.link_lost:
            raise DebugLinkTimeout(f"{self.board.name}: core access lost")

    # -- memory access (works via the access port) ----------------------------

    def read_mem(self, address: int, length: int) -> bytes:
        """Read target memory."""
        self._require_core()
        return self.board.memory.read(address, length)

    def write_mem(self, address: int, data: bytes) -> None:
        """Write target memory (RAM, or raw flash bytes)."""
        self._require_core()
        self.board.memory.write(address, data)

    def read_u32(self, address: int) -> int:
        """Read one little-endian word."""
        self._require_core()
        return self.board.memory.read_u32(address)

    def write_u32(self, address: int, value: int) -> None:
        """Write one little-endian word."""
        self._require_core()
        self.board.memory.write_u32(address, value)

    # -- run control (needs a live core) ----------------------------------------

    def resume(self) -> HaltEvent:
        """``-exec-continue``: run until the next halt event.

        Each round-trip costs probe latency: the core sits halted while
        the host digests the previous stop and the probe clocks the
        resume out — milliseconds on real SWD/JTAG, which is why
        on-hardware fuzzers live and die by their stop count.
        """
        self._require_session()
        self.board.machine.tick(self.probe_latency_cycles)
        return self.board.resume()

    def read_pc(self) -> int:
        """Sample the program counter."""
        self._require_session()
        return self.board.read_pc()

    def set_breakpoint(self, address: int, label: str = "") -> None:
        """Arm a hardware breakpoint."""
        self._require_core()
        self.board.machine.set_breakpoint(address, label)

    def clear_breakpoint(self, address: int) -> None:
        """Disarm a hardware breakpoint."""
        self._require_core()
        self.board.machine.clear_breakpoint(address)

    def clear_all_breakpoints(self) -> None:
        """Disarm every hardware breakpoint."""
        self._require_core()
        self.board.machine.clear_all_breakpoints()

    def backtrace(self):
        """Read the target call stack (symbolized frames)."""
        self._require_core()
        return self.board.machine.backtrace()

    # -- flash / reset (keep working when the core is dead) -----------------------

    def flash_erase(self, address: int, length: int) -> None:
        """Erase the sectors overlapping the range."""
        self._require_session()
        self.board.flash.erase_range(address, length)

    def flash_program(self, address: int, data: bytes) -> None:
        """Program bytes into (previously erased) flash."""
        self._require_session()
        self.board.flash.program(address, data)

    def flash_read(self, address: int, length: int) -> bytes:
        """Read back flash contents (verify step)."""
        self._require_session()
        return self.board.flash.read(address, length)

    def reset(self) -> None:
        """``monitor reset``: warm-reset the board and reboot from flash."""
        self._require_session()
        self.board.reset()

    # -- UART capture --------------------------------------------------------------

    def uart_read(self, cursor: int) -> Tuple[List[str], int]:
        """Drain captured UART lines newer than ``cursor``."""
        self._require_session()
        return self.board.uart_read(cursor)
