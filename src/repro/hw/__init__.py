"""Virtual hardware substrate.

This package simulates the *hardware surface area* that EOF actually
depends on: byte-addressable flash and RAM, a CPU with a program counter,
cycle counter and hardware breakpoints, a UART, and a raw debug port
(JTAG/SWD stand-in).  Everything the host fuzzer observes about a target
goes through :class:`repro.hw.debug_port.DebugPort`.
"""

from repro.hw.memory import MemoryRegion, Ram, Flash, AddressSpace
from repro.hw.uart import Uart
from repro.hw.machine import Machine, HaltReason, HaltEvent, StackFrame
from repro.hw.board import Board
from repro.hw.debug_port import DebugPort
from repro.hw.boards import BoardSpec, BOARD_CATALOG, make_board, board_names

__all__ = [
    "MemoryRegion",
    "Ram",
    "Flash",
    "AddressSpace",
    "Uart",
    "Machine",
    "HaltReason",
    "HaltEvent",
    "StackFrame",
    "Board",
    "DebugPort",
    "BoardSpec",
    "BOARD_CATALOG",
    "make_board",
    "board_names",
]
