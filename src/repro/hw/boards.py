"""Board catalog.

Mirrors the hardware diversity the paper leans on (Figure 1, Table 1):
ARM Cortex-M boards (STM32 family), an Xtensa/RISC-V ESP32, a RISC-V
HiFive, and a generic ``qemu-virt`` machine.  The catalog also records
which boards have a usable emulator — STM32H745 famously does not, which
is exactly why emulator-bound tools (Tardis) cannot test it (§1, §2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.hw.board import Board
from repro.hw.machine import Machine
from repro.hw.memory import Flash, Ram


@dataclass(frozen=True)
class BoardSpec:
    """Static description of a board model."""

    name: str
    arch: str                     # "arm", "riscv", "xtensa", ...
    debug_interface: str          # "swd" or "jtag"
    flash_base: int
    flash_size: int
    flash_sector: int
    ram_base: int
    ram_size: int
    hw_breakpoints: int
    cycles_per_call: int
    has_emulator: bool            # can QEMU-style tools (Tardis/Gustave) run it?
    # Target cycles burned per debug-probe round-trip (-exec-continue,
    # halt report, host turnaround).  Real SWD/JTAG probes cost
    # milliseconds per stop; an emulator's gdbstub is much cheaper.
    probe_latency_cycles: int = 1200
    endianness: str = "little"


BOARD_CATALOG: Dict[str, BoardSpec] = {
    "stm32f407": BoardSpec(
        name="stm32f407", arch="arm", debug_interface="swd",
        flash_base=0x0800_0000, flash_size=1024 * 1024, flash_sector=4096,
        ram_base=0x2000_0000, ram_size=192 * 1024,
        hw_breakpoints=6, cycles_per_call=40, has_emulator=True),
    "stm32h745": BoardSpec(
        # Industrial-control dual-core part with no peripheral-accurate
        # emulator — the paper's canonical "hardware only" target.
        name="stm32h745", arch="arm", debug_interface="swd",
        flash_base=0x0800_0000, flash_size=2 * 1024 * 1024, flash_sector=8192,
        ram_base=0x2400_0000, ram_size=512 * 1024,
        hw_breakpoints=8, cycles_per_call=32, has_emulator=False),
    "esp32": BoardSpec(
        name="esp32", arch="xtensa", debug_interface="jtag",
        flash_base=0x0040_0000, flash_size=4 * 1024 * 1024, flash_sector=4096,
        ram_base=0x3FFB_0000, ram_size=320 * 1024,
        hw_breakpoints=2, cycles_per_call=48, has_emulator=True),
    "esp32c3": BoardSpec(
        name="esp32c3", arch="riscv", debug_interface="jtag",
        flash_base=0x0000_0000, flash_size=4 * 1024 * 1024, flash_sector=4096,
        ram_base=0x3FC8_0000, ram_size=384 * 1024,
        hw_breakpoints=4, cycles_per_call=44, has_emulator=True),
    "hifive1": BoardSpec(
        name="hifive1", arch="riscv", debug_interface="jtag",
        flash_base=0x2000_0000, flash_size=4 * 1024 * 1024, flash_sector=4096,
        ram_base=0x8000_0000, ram_size=64 * 1024,
        hw_breakpoints=4, cycles_per_call=52, has_emulator=True),
    "qemu-virt": BoardSpec(
        # A purely emulated machine: this is where emulator-only tools
        # (Tardis, Gustave) live; it has no physical debug port quirks.
        name="qemu-virt", arch="arm", debug_interface="jtag",
        flash_base=0x0000_0000, flash_size=8 * 1024 * 1024, flash_sector=4096,
        ram_base=0x4000_0000, ram_size=1024 * 1024,
        hw_breakpoints=32, cycles_per_call=24, has_emulator=True,
        probe_latency_cycles=300),
}


def board_names() -> List[str]:
    """Names of every board model in the catalog."""
    return sorted(BOARD_CATALOG)


def make_board(spec_name: str) -> Board:
    """Instantiate a fresh powered-off board from the catalog."""
    try:
        spec = BOARD_CATALOG[spec_name]
    except KeyError:
        raise KeyError(f"unknown board {spec_name!r}; "
                       f"known: {', '.join(board_names())}") from None
    # The debug unit accepts more breakpoints than the silicon has
    # hardware comparators: OpenOCD transparently falls back to (slower)
    # flash-patched software breakpoints.  Tools that insist on *hardware*
    # breakpoints (GDBFuzz's rotating-coverage trick) self-limit to
    # ``spec.hw_breakpoints``.
    machine = Machine(hw_breakpoint_slots=max(spec.hw_breakpoints, 12),
                      cycles_per_call=spec.cycles_per_call)
    flash = Flash("flash", spec.flash_base, spec.flash_size, spec.flash_sector)
    ram = Ram("ram", spec.ram_base, spec.ram_size)
    board = Board(spec.name, spec.arch, machine, flash, ram,
                  endianness=spec.endianness)
    return board
