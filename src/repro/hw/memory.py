"""Byte-addressable memory regions: RAM, NOR flash, and an address space.

The fidelity that matters for the paper is:

* the host can read and write arbitrary byte ranges over the debug port
  (test-case injection, coverage drain, crash-context extraction);
* flash has *erase-before-program* semantics, so "reflash the image" is a
  real multi-step operation (sector erase + program) and a half-finished
  or corrupted flash genuinely fails checksum validation at boot;
* out-of-range accesses by target code raise a :class:`BusFault`, the
  substrate's hard-fault analog.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.errors import BusFault, FlashError

ERASED_BYTE = 0xFF


class MemoryRegion:
    """A contiguous, byte-addressable memory region.

    Addresses passed to :meth:`read` / :meth:`write` are *absolute* bus
    addresses; the region checks that the full access falls inside
    ``[base, base + size)``.
    """

    def __init__(self, name: str, base: int, size: int):
        if size <= 0:
            raise ValueError(f"region {name!r} must have positive size")
        if base < 0:
            raise ValueError(f"region {name!r} must have non-negative base")
        self.name = name
        self.base = base
        self.size = size
        self._data = bytearray(size)

    @property
    def end(self) -> int:
        """One past the last valid address."""
        return self.base + self.size

    def contains(self, address: int, length: int = 1) -> bool:
        """Return True if ``[address, address+length)`` is inside the region."""
        return length >= 0 and self.base <= address and address + length <= self.end

    def _check(self, address: int, length: int, kind: str) -> int:
        if length < 0:
            raise BusFault(address, kind=f"negative-length {kind}")
        if not self.contains(address, max(length, 1)):
            raise BusFault(address, kind=kind)
        return address - self.base

    def read(self, address: int, length: int) -> bytes:
        """Read ``length`` bytes starting at absolute ``address``."""
        offset = self._check(address, length, "read")
        return bytes(self._data[offset:offset + length])

    def write(self, address: int, data: bytes) -> None:
        """Write ``data`` at absolute ``address``."""
        offset = self._check(address, len(data), "write")
        self._data[offset:offset + len(data)] = data

    def read_u32(self, address: int) -> int:
        """Read a little-endian 32-bit word."""
        return int.from_bytes(self.read(address, 4), "little")

    def write_u32(self, address: int, value: int) -> None:
        """Write a little-endian 32-bit word."""
        self.write(address, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    def fill(self, value: int) -> None:
        """Set every byte of the region to ``value``."""
        for i in range(self.size):
            self._data[i] = value & 0xFF

    def snapshot(self) -> bytes:
        """Return a copy of the full region contents."""
        return bytes(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} {self.name} "
                f"0x{self.base:08x}..0x{self.end:08x}>")


class Ram(MemoryRegion):
    """Volatile RAM: contents are lost on power cycle."""

    def power_cycle(self) -> None:
        """Clear contents, as a reset/power cycle would."""
        self._data = bytearray(self.size)


class Flash(MemoryRegion):
    """NOR-style flash with erase-before-program semantics.

    * An *erase* sets a whole sector to ``0xFF``.
    * A *program* may only flip bits from 1 to 0; programming a byte that
      is not erased (and whose new value sets any bit) raises
      :class:`FlashError`, like a real flash controller reporting a
      verify failure.
    * Contents survive power cycles.
    """

    def __init__(self, name: str, base: int, size: int, sector_size: int = 4096):
        super().__init__(name, base, size)
        if sector_size <= 0 or size % sector_size != 0:
            raise ValueError("flash size must be a multiple of sector_size")
        self.sector_size = sector_size
        self._data = bytearray([ERASED_BYTE]) * size

    @property
    def sector_count(self) -> int:
        """Number of erase sectors."""
        return self.size // self.sector_size

    def sector_of(self, address: int) -> int:
        """Return the sector index containing absolute ``address``."""
        self._check(address, 1, "sector lookup")
        return (address - self.base) // self.sector_size

    def erase_sector(self, sector: int) -> None:
        """Erase one sector (set every byte to 0xFF)."""
        if not 0 <= sector < self.sector_count:
            raise FlashError(f"no such sector: {sector}")
        start = sector * self.sector_size
        self._data[start:start + self.sector_size] = (
            bytes([ERASED_BYTE]) * self.sector_size)

    def erase_range(self, address: int, length: int) -> None:
        """Erase every sector overlapping ``[address, address+length)``."""
        if length <= 0:
            return
        first = self.sector_of(address)
        last = self.sector_of(address + length - 1)
        for sector in range(first, last + 1):
            self.erase_sector(sector)

    def program(self, address: int, data: bytes) -> None:
        """Program ``data`` at ``address``; target bytes must be erased
        (or the write must only clear bits).
        """
        offset = self._check(address, len(data), "program")
        for i, new in enumerate(data):
            old = self._data[offset + i]
            if new & ~old:
                raise FlashError(
                    f"program without erase at 0x{address + i:08x} "
                    f"(old=0x{old:02x} new=0x{new:02x})")
            self._data[offset + i] = old & new

    def write(self, address: int, data: bytes) -> None:
        """Raw write bypassing erase rules.

        Used to model in-system corruption (a buggy kernel scribbling on
        its own image) and by the debug probe's raw memory access.  Host
        flash tools should use :meth:`erase_range` + :meth:`program`.
        """
        super().write(address, data)

    def is_erased(self, address: int, length: int) -> bool:
        """Return True if the whole range currently reads as 0xFF."""
        return all(b == ERASED_BYTE for b in self.read(address, length))


class AddressSpace:
    """Dispatches absolute addresses to the region that contains them."""

    def __init__(self, regions: Optional[Iterable[MemoryRegion]] = None):
        self._regions: List[MemoryRegion] = []
        for region in regions or []:
            self.add_region(region)

    @property
    def regions(self) -> List[MemoryRegion]:
        """Mapped regions, in mapping order."""
        return list(self._regions)

    def add_region(self, region: MemoryRegion) -> None:
        """Map a region; overlapping mappings are rejected."""
        for existing in self._regions:
            if region.base < existing.end and existing.base < region.end:
                raise ValueError(
                    f"region {region.name!r} overlaps {existing.name!r}")
        self._regions.append(region)

    def region_for(self, address: int, length: int = 1) -> MemoryRegion:
        """Return the region containing the access, or raise BusFault."""
        for region in self._regions:
            if region.contains(address, length):
                return region
        raise BusFault(address)

    def read(self, address: int, length: int) -> bytes:
        """Read bytes; the whole range must fall within one region."""
        if length == 0:
            return b""
        return self.region_for(address, length).read(address, length)

    def write(self, address: int, data: bytes) -> None:
        """Write bytes; the whole range must fall within one region."""
        if not data:
            return
        self.region_for(address, len(data)).write(address, data)

    def read_u32(self, address: int) -> int:
        """Read a little-endian 32-bit word."""
        return self.region_for(address, 4).read_u32(address)

    def write_u32(self, address: int, value: int) -> None:
        """Write a little-endian 32-bit word."""
        self.region_for(address, 4).write_u32(address, value)
