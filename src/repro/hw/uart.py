"""UART model.

The target kernel prints log lines here; the host (via OpenOCD's UART
capture, §4.3.1) drains them and feeds the log monitor.  Lines are kept in
an ordered buffer with a monotonically increasing cursor so multiple host
readers can consume independently.
"""

from __future__ import annotations

from typing import List


class Uart:
    """A transmit-only serial port with host-side capture.

    Target side calls :meth:`putline` / :meth:`putc`; host side calls
    :meth:`read_from` with its last cursor to receive only new lines.
    """

    def __init__(self, capacity_lines: int = 100_000):
        self._lines: List[str] = []
        self._partial: str = ""
        self._dropped = 0
        self._capacity = capacity_lines

    @property
    def total_lines(self) -> int:
        """Lines emitted since power-on (cursor space)."""
        return len(self._lines) + self._dropped

    def putc(self, char: str) -> None:
        """Transmit a single character; newline flushes the current line."""
        if char == "\n":
            self._commit(self._partial)
            self._partial = ""
        else:
            self._partial += char

    def putline(self, line: str) -> None:
        """Transmit a full line (newline implied)."""
        for piece in line.split("\n"):
            self._commit(self._partial + piece)
            self._partial = ""

    def _commit(self, line: str) -> None:
        if len(self._lines) >= self._capacity:
            # Model a bounded capture buffer: oldest lines fall off, which
            # is also why the paper notes UART logs "may vanish" (§3.2).
            self._lines.pop(0)
            self._dropped += 1
        self._lines.append(line)

    def read_from(self, cursor: int) -> "tuple[list[str], int]":
        """Return ``(new_lines, new_cursor)`` for a reader at ``cursor``."""
        start = max(cursor - self._dropped, 0)
        new = self._lines[start:]
        return list(new), self.total_lines

    def tail(self, count: int = 20) -> List[str]:
        """Return up to the last ``count`` lines (for crash reports)."""
        return list(self._lines[-count:])

    def power_cycle(self) -> None:
        """Reset the UART; capture history is lost, cursors keep meaning
        (old cursors simply see nothing new until lines reappear)."""
        self._dropped += len(self._lines)
        self._lines = []
        self._partial = ""
