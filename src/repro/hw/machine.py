"""The virtual CPU: program counter, cycle counter, breakpoints, frames.

The machine does not interpret an instruction set.  Instead, every kernel
and agent function in the firmware image has a synthetic address from the
image's symbol table; *entering* a function moves the program counter to
that address, costs cycles, and checks hardware breakpoints.  This gives
the host fuzzer exactly the observables the paper relies on:

* a PC it can sample over the debug link (watchdog #2 compares PCs),
* hardware breakpoints at agent sync points and exception handlers,
* a deterministic cycle clock standing in for wall time,
* a call stack it can symbolize into backtraces (Figure 6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class HaltReason(enum.Enum):
    """Why the target stopped after a resume."""

    BREAKPOINT = "breakpoint"      # hit a host-set hardware breakpoint
    EXCEPTION = "exception"        # stopped inside an exception/panic handler
    COV_FULL = "cov-full"          # coverage buffer full trap (_kcmp_buf_full)
    STALL = "stall"                # PC no longer advances (infinite loop)
    FAULT = "fault"                # unrecoverable hardware fault
    POWER_OFF = "power-off"        # board is not powered


@dataclass
class StackFrame:
    """One call-stack entry, symbolized at push time."""

    symbol: str
    address: int
    module: str = ""
    source: str = ""
    line: int = 0


@dataclass
class RegisterFile:
    """A point-in-time copy of the CPU's execution state.

    This is what a debug probe reads out of the core register bank for
    snapshot-based restoration: the PC, the call stack (our stand-in for
    SP/LR plus the stacked frames) and the wedge latch.  The cycle
    counter is deliberately absent — virtual time is monotone and a
    restore must not rewind the clock — and breakpoints live in the
    debug unit, which a restore never touches.
    """

    pc: int
    frames: List[StackFrame] = field(default_factory=list)
    wedged: bool = False
    wedge_detail: str = ""


@dataclass
class HaltEvent:
    """The result of running the target until it stops.

    ``bp_hits`` batches ordinary (non-sync, non-exception) breakpoint
    addresses crossed during the run: the virtual probe auto-resumes
    through them and reports them at the next stop, which is how tools
    like GDBFuzz consume their coverage breakpoints efficiently.
    """

    reason: HaltReason
    pc: int
    symbol: str = ""
    detail: str = ""
    backtrace: List[StackFrame] = field(default_factory=list)
    bp_hits: List[int] = field(default_factory=list)


class BreakpointLimitError(Exception):
    """All hardware breakpoint slots are in use."""


class Machine:
    """CPU state shared by the board, the agent and the kernel HAL.

    ``hw_breakpoint_slots`` models the scarce hardware comparators real
    MCUs have (Cortex-M FPB typically has 4-8).  EOF needs only a handful;
    GDBFuzz's coverage strategy is *built around* this scarcity.
    """

    RESET_VECTOR = 0x0000_0000

    def __init__(self, hw_breakpoint_slots: int = 6, cycles_per_call: int = 40):
        self.hw_breakpoint_slots = hw_breakpoint_slots
        self.cycles_per_call = cycles_per_call
        self.pc: int = self.RESET_VECTOR
        self.cycles: int = 0
        self.powered: bool = False
        self.wedged: bool = False
        self.wedge_detail: str = ""
        self._breakpoints: Dict[int, str] = {}
        self._frames: List[StackFrame] = []

    # -- power / reset ------------------------------------------------------

    def power_on(self) -> None:
        """Apply power; PC parks at the reset vector."""
        self.powered = True
        self.reset()

    def power_off(self) -> None:
        """Cut power."""
        self.powered = False

    def reset(self) -> None:
        """Warm reset: clear execution state; breakpoints survive (they
        live in the debug unit, as on real silicon with a connected probe).
        """
        self.pc = self.RESET_VECTOR
        self.wedged = False
        self.wedge_detail = ""
        self._frames = []

    # -- register-file snapshot (repro.fuzz.snapshot) ------------------------

    def capture_registers(self) -> RegisterFile:
        """Read the core's execution state out through the debug unit."""
        return RegisterFile(pc=self.pc, frames=list(self._frames),
                            wedged=self.wedged,
                            wedge_detail=self.wedge_detail)

    def restore_registers(self, registers: RegisterFile) -> None:
        """Write a captured register file back into the core.

        Cycles and breakpoints are untouched: time never rewinds, and
        breakpoint comparators live in the debug unit, not the core.
        """
        self.pc = registers.pc
        self._frames = list(registers.frames)
        self.wedged = registers.wedged
        self.wedge_detail = registers.wedge_detail

    # -- time ---------------------------------------------------------------

    def tick(self, cycles: int) -> None:
        """Advance the cycle counter."""
        if cycles < 0:
            raise ValueError("cannot tick backwards")
        self.cycles += cycles

    # -- breakpoints ---------------------------------------------------------

    @property
    def breakpoints(self) -> Dict[int, str]:
        """Currently armed breakpoints: address -> label."""
        return dict(self._breakpoints)

    def set_breakpoint(self, address: int, label: str = "") -> None:
        """Arm a hardware breakpoint; raises when all slots are used."""
        if address in self._breakpoints:
            self._breakpoints[address] = label or self._breakpoints[address]
            return
        if len(self._breakpoints) >= self.hw_breakpoint_slots:
            raise BreakpointLimitError(
                f"all {self.hw_breakpoint_slots} hardware breakpoints in use")
        self._breakpoints[address] = label

    def clear_breakpoint(self, address: int) -> None:
        """Disarm a breakpoint; clearing an unset address is a no-op."""
        self._breakpoints.pop(address, None)

    def clear_all_breakpoints(self) -> None:
        """Disarm every breakpoint."""
        self._breakpoints.clear()

    def breakpoint_at(self, address: int) -> bool:
        """Is a breakpoint armed at ``address``?"""
        return address in self._breakpoints

    def breakpoint_count(self) -> int:
        """Number of armed breakpoints (cheap hot-path check)."""
        return len(self._breakpoints)

    # -- call frames ----------------------------------------------------------

    def push_frame(self, frame: StackFrame) -> None:
        """Enter a function: move PC, charge cycles, record the frame."""
        self.pc = frame.address
        self.tick(self.cycles_per_call)
        self._frames.append(frame)

    def pop_frame(self) -> Optional[StackFrame]:
        """Leave the current function; PC returns to the caller."""
        if not self._frames:
            return None
        frame = self._frames.pop()
        if self._frames:
            self.pc = self._frames[-1].address
        return frame

    def backtrace(self) -> List[StackFrame]:
        """Innermost-first copy of the call stack (Figure 6 ordering)."""
        return list(reversed(self._frames))

    def stack_depth(self) -> int:
        """Current call depth."""
        return len(self._frames)

    # -- wedging ---------------------------------------------------------------

    def wedge(self, detail: str) -> None:
        """Park the CPU: the PC will never advance again until reset.

        Models both a tight polling loop and a dead exception handler;
        either way, resume-after-resume the PC stays put, which is what
        the PC-stall watchdog keys on.
        """
        self.wedged = True
        self.wedge_detail = detail
