"""The campaign store: content-addressed, crash-safe state on disk.

One :class:`CampaignStore` owns a *state directory*::

    state_dir/
      journal.eofj      append-only WAL (repro.db.journal frames)
      checkpoint.eofc   one whole-state snapshot (repro.db.checkpoint)
      corrupt/          quarantined bytes that failed verification

Everything a campaign learns — corpus entries keyed by content hash,
deduplicated crash signatures, the merged coverage frontier, the
per-epoch series — flows through the journal; every ``checkpoint_every``
epochs the journal is compacted into the checkpoint file.

Transaction model
-----------------
The unit of durability is the **epoch barrier**.  At each barrier the
orchestrator calls :meth:`record_epoch`, which appends the epoch's new
seed records (``S``) and crash records (``X``), then the epoch-commit
record (``E``), then fsyncs once.  The ``E`` record is the commit
point: on load, seed/crash records are buffered and only applied when
their commit arrives, so a kill mid-epoch loses at most the epoch in
flight — exactly the "resume from the last *completed* epoch" contract.

Salvage policy
--------------
Loading never raises on corrupt bytes.  An unreadable checkpoint is
moved into ``corrupt/`` and the journal replays from its start; corrupt
journal spans are quarantined to ``corrupt/`` and the scan resyncs on
the next frame magic; a torn tail (kill mid-append) is dropped
silently; records past the last commit are discarded.  The loader
reports all of it via the ``db.salvaged`` / ``db.quarantined`` metrics
and the :meth:`salvage_summary` dict, and the journal is rewritten
clean on open so damage never compounds.

The only errors the store *raises* are caller mistakes: starting a
fresh campaign on top of existing state without ``resume``
(:class:`~repro.errors.StoreError`), or resuming with options that do
not replay the persisted campaign
(:class:`~repro.errors.StoreConfigError`).
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Set

from repro.db.checkpoint import read_checkpoint, write_checkpoint
from repro.db.io import atomic_write_bytes
from repro.db.journal import JournalRecord, JournalWriter, encode_record, read_journal
from repro.errors import StoreConfigError, StoreError
from repro.fuzz.corpus import CorpusEntry, entry_from_record
from repro.obs import NULL_OBS, Observability

__all__ = ["CampaignStore", "STORE_SCHEMA_MAJOR", "JOURNAL_FILE",
           "CHECKPOINT_FILE", "CORRUPT_DIR"]

JOURNAL_FILE = "journal.eofj"
CHECKPOINT_FILE = "checkpoint.eofc"
CORRUPT_DIR = "corrupt"

#: Major version stamped into checkpoints; bumped when the snapshot
#: layout changes incompatibly.  A checkpoint with a different major is
#: quarantined, not guessed at.
STORE_SCHEMA_MAJOR = 1

#: Journal record types.  ``C`` is reserved by the checkpoint file.
REC_META = "M"     # campaign config, written once at store creation
REC_SEED = "S"     # one corpus entry (program bytes + footprint + origin)
REC_CRASH = "X"    # one campaign-unique crash signature
REC_EPOCH = "E"    # epoch commit: frontier delta + series row


class CampaignStore:
    """Durable mirror of one campaign's shared state."""

    #: Concurrency contract (EOF401/EOF405): the store is
    #: single-threaded *by design* — it is driven from the CLI and the
    #: orchestrator's epoch barrier only, never from a worker or a
    #: signal handler.  ``@main`` makes the analyzer enforce exactly
    #: that, instead of paying for a lock nothing contends on.
    GUARDED_BY = {
        "config": "@main",
        "epoch": "@main",
        "edges": "@main",
        "entries": "@main",
        "crashes": "@main",
        "series": "@main",
        "tallies": "@main",
        "salvaged_records": "@main",
        "quarantined_spans": "@main",
        "quarantined_bytes": "@main",
        "torn_tail_bytes": "@main",
        "dropped_uncommitted": "@main",
        "resumed_from_epoch": "@main",
        "_digests": "@main",
        "_writer": "@main",
        "_last_checkpoint_epoch": "@main",
        "_epoch_records": "@main",
    }

    def __init__(self, root: str, obs: Optional[Observability] = None,
                 durable: bool = True, checkpoint_every: int = 4):
        self.root = str(root)
        self.obs = obs or NULL_OBS
        self.durable = durable
        if checkpoint_every < 1:
            raise StoreError("checkpoint_every must be >= 1")
        self.checkpoint_every = checkpoint_every

        # Mirror state (what load() reconstructs and record_epoch extends).
        self.config: Optional[Dict[str, object]] = None
        self.epoch = 0                       # last *committed* epoch
        self.edges: Set[int] = set()
        self.entries: List[Dict[str, object]] = []
        self.crashes: Dict[str, Dict[str, object]] = {}
        self.series: List[Dict[str, object]] = []
        self.tallies: Dict[str, int] = {}

        # Salvage accounting for the most recent load.
        self.salvaged_records = 0
        self.quarantined_spans = 0
        self.quarantined_bytes = 0
        self.torn_tail_bytes = 0
        self.dropped_uncommitted = 0
        self.resumed_from_epoch = 0

        self._digests: Set[str] = set()
        self._writer: Optional[JournalWriter] = None
        self._last_checkpoint_epoch = 0
        self._epoch_records = 0              # journal E records since compaction

    # -- paths ---------------------------------------------------------------

    @property
    def journal_path(self) -> str:
        return os.path.join(self.root, JOURNAL_FILE)

    @property
    def checkpoint_path(self) -> str:
        return os.path.join(self.root, CHECKPOINT_FILE)

    @property
    def corrupt_dir(self) -> str:
        return os.path.join(self.root, CORRUPT_DIR)

    # -- opening -------------------------------------------------------------

    @classmethod
    def read(cls, root: str, obs: Optional[Observability] = None
             ) -> "CampaignStore":
        """Load a state directory without going live (no journal writer,
        no config check) — the warm-start and inspection path.  Salvage
        still applies: corrupt bytes are quarantined on the way in."""
        store = cls(root, obs=obs)
        store._load()
        return store

    def open(self, config: Dict[str, object], resume: bool = False
             ) -> "CampaignStore":
        """Load persisted state (salvaging what verifies) and go live.

        ``config`` is the campaign's full option set; it is persisted on
        first open and compared on every later one.  Without ``resume``
        the directory must hold no completed work; with it, a matching
        config resumes from the last committed epoch (an *empty*
        directory resumes from epoch 0, i.e. a fresh start — a campaign
        killed before its first barrier has nothing to replay).
        """
        os.makedirs(self.root, exist_ok=True)
        tail = self._load()
        if self.config is not None:
            mismatch = sorted(
                key for key in set(self.config) | set(config)
                if self.config.get(key) != config.get(key))
            if mismatch:
                raise StoreConfigError(
                    "cannot resume: persisted campaign differs in "
                    + ", ".join(mismatch))
        has_state = bool(self.epoch or self.entries or self.crashes)
        if has_state and not resume:
            raise StoreError(
                f"{self.root} already holds a campaign through epoch "
                f"{self.epoch}; pass resume (or use a fresh directory)")
        self.resumed_from_epoch = self.epoch if resume else 0
        self.config = dict(config)
        self._open_writer(tail)
        if self.obs.enabled:
            self.obs.emit("db.open", epoch=self.epoch,
                          entries=len(self.entries),
                          crashes=len(self.crashes),
                          edges=len(self.edges),
                          salvaged=self.salvaged_records,
                          quarantined=self.quarantined_spans,
                          torn_tail_bytes=self.torn_tail_bytes,
                          dropped_uncommitted=self.dropped_uncommitted,
                          resume=resume)
            self.obs.counter("db.salvaged").inc(self.salvaged_records)
            if self.quarantined_spans:
                self.obs.counter("db.quarantined").inc(
                    self.quarantined_spans)
                self.obs.counter("db.quarantined.bytes").inc(
                    self.quarantined_bytes)
            if self.dropped_uncommitted:
                self.obs.counter("db.uncommitted").inc(
                    self.dropped_uncommitted)
        return self

    def _load(self) -> List[JournalRecord]:
        """Reconstruct mirror state; returns the post-checkpoint record
        tail (in journal order) that the compacted journal must keep."""
        snapshot = read_checkpoint(self.checkpoint_path)
        if snapshot is None:
            self._quarantine_file(self.checkpoint_path, "checkpoint")
        elif int(snapshot.get("v", 0)) != STORE_SCHEMA_MAJOR:
            self._quarantine_file(self.checkpoint_path, "checkpoint")
            snapshot = None
        if snapshot is not None:
            self._install_snapshot(snapshot)
        scan = read_journal(self.journal_path)
        self.salvaged_records = scan.salvaged
        self.torn_tail_bytes = scan.torn_tail_bytes
        if scan.corrupt_spans:
            self._quarantine_spans(scan.corrupt_spans)

        # Apply the journal on top of the checkpoint.  Seed and crash
        # records buffer until their epoch commit; an epoch already
        # folded into the checkpoint is skipped (its records are
        # already in the snapshot).
        tail: List[JournalRecord] = []
        pending: List[JournalRecord] = []
        for record in scan.records:
            if record.rtype == REC_META:
                if self.config is None:
                    self.config = dict(record.payload)
                continue
            if record.rtype in (REC_SEED, REC_CRASH):
                pending.append(record)
                continue
            if record.rtype != REC_EPOCH:
                continue  # unknown type from a newer minor: ignore
            epoch = int(record.payload.get("epoch", 0))
            if epoch <= self.epoch:
                pending.clear()
                continue
            for buffered in pending:
                self._apply(buffered)
                tail.append(buffered)
            pending.clear()
            self._apply(record)
            tail.append(record)
        self.dropped_uncommitted = len(pending)
        return tail

    def _install_snapshot(self, snapshot: Dict[str, object]) -> None:
        self.config = dict(snapshot.get("config") or {}) or None
        self.epoch = int(snapshot.get("epoch", 0))
        self.edges = {int(edge) for edge in snapshot.get("edges", ())}
        self.entries = [dict(rec) for rec in snapshot.get("entries", ())]
        self.crashes = {str(rec.get("signature", "")): dict(rec)
                        for rec in snapshot.get("crashes", ())}
        self.series = [dict(row) for row in snapshot.get("series", ())]
        self.tallies = {str(k): int(v) for k, v in
                        dict(snapshot.get("tallies") or {}).items()}
        self._digests = {str(rec.get("digest", "")) for rec in self.entries}
        self._last_checkpoint_epoch = self.epoch

    def _apply(self, record: JournalRecord) -> None:
        payload = record.payload
        if record.rtype == REC_SEED:
            digest = str(payload.get("digest", ""))
            if digest and digest not in self._digests:
                self._digests.add(digest)
                self.entries.append(dict(payload))
        elif record.rtype == REC_CRASH:
            signature = str(payload.get("signature", ""))
            if signature and signature not in self.crashes:
                self.crashes[signature] = dict(payload)
        elif record.rtype == REC_EPOCH:
            self.epoch = int(payload.get("epoch", self.epoch))
            self.edges.update(int(e) for e in payload.get("edges_new", ()))
            row = {k: payload[k] for k in payload if k != "edges_new"}
            self.series.append(row)
            for key in ("shared_total", "imported_total"):
                if key in payload:
                    self.tallies[key] = int(payload[key])

    def _open_writer(self, tail: List[JournalRecord]) -> None:
        """Start appending; rewrite the journal first when the on-disk
        bytes differ from the clean form (salvage, torn tail, dropped
        uncommitted records, or epochs already folded into the
        checkpoint) so damage never accumulates across restarts."""
        clean = encode_record(REC_META, self.config or {})
        clean += b"".join(encode_record(r.rtype, r.payload) for r in tail)
        existing = b""
        try:
            with open(self.journal_path, "rb") as fh:
                existing = fh.read()
        except FileNotFoundError:
            pass
        if existing != clean:
            atomic_write_bytes(self.journal_path, clean,
                               durable=self.durable)
        self._epoch_records = sum(
            1 for r in tail if r.rtype == REC_EPOCH)
        self._writer = JournalWriter(self.journal_path,
                                     durable=self.durable)

    # -- quarantine ----------------------------------------------------------

    def _quarantine_target(self, label: str, suffix: str) -> str:
        os.makedirs(self.corrupt_dir, exist_ok=True)
        ordinal = sum(1 for name in os.listdir(self.corrupt_dir)
                      if name.startswith(label + "-"))
        return os.path.join(self.corrupt_dir,
                            f"{label}-{ordinal:03d}{suffix}")

    def _quarantine_file(self, path: str, label: str) -> None:
        """Move an unreadable file into ``corrupt/`` (missing = no-op)."""
        if not os.path.exists(path):
            return
        target = self._quarantine_target(label, ".quarantined")
        os.replace(path, target)
        self.quarantined_spans += 1
        self.quarantined_bytes += os.path.getsize(target)
        if self.obs.enabled:
            self.obs.emit("db.quarantined", source=label, path=target)

    def _quarantine_spans(self, spans: List[bytes]) -> None:
        blob = b"".join(spans)
        target = self._quarantine_target("journal", ".bin")
        atomic_write_bytes(target, blob, durable=self.durable)
        count = len(spans)
        self.quarantined_spans += count
        self.quarantined_bytes += len(blob)
        if self.obs.enabled:
            self.obs.emit("db.quarantined", source="journal",
                          spans=count, path=target)

    # -- recording -----------------------------------------------------------

    def record_epoch(self, epoch: int, target_cycles: int, state,
                     row: Dict[str, object]) -> None:
        """Journal one completed epoch barrier (the commit unit).

        ``state`` is the campaign's live shared state (duck-typed
        :class:`repro.farm.state.CampaignState`); ``row`` is the
        barrier's summary row (the time-series schema).  Appends the
        epoch's new seeds and crashes, then the commit record, then
        fsyncs once; auto-checkpoints every ``checkpoint_every`` epochs.
        """
        if self._writer is None:
            raise StoreError("store is not open")
        from repro.fuzz.corpus import entry_to_record
        records_before = self._writer.records_written
        bytes_before = self._writer.bytes_written
        for entry in state.corpus.entries:
            if entry.digest in self._digests:
                continue
            record = entry_to_record(entry)
            if record is None:
                continue  # unserializable hostile program: skip whole
            origin = state.provenance.get(entry.digest)
            if origin is not None:
                record["worker"] = origin.worker
                record["origin_epoch"] = origin.epoch
            self._digests.add(entry.digest)
            self.entries.append(record)
            self._writer.append(REC_SEED, record)
        for signature, triaged in state.crashes.items():
            mirror = self.crashes.get(signature)
            if mirror is None:
                record = {
                    "signature": signature,
                    "first_worker": triaged.first_worker,
                    "first_epoch": triaged.first_epoch,
                    "count": triaged.count,
                    "workers": sorted(triaged.workers),
                    "report": triaged.report.to_dict(),
                }
                self.crashes[signature] = record
                self._writer.append(REC_CRASH, record)
            else:
                # Counts keep moving after first sight; refresh the
                # mirror so the next checkpoint persists them.
                mirror["count"] = triaged.count
                mirror["workers"] = sorted(triaged.workers)
        commit: Dict[str, object] = {
            "epoch": epoch,
            "cycles": target_cycles,
            "edges_new": sorted(set(state.edges) - self.edges),
            "shared_total": state.seeds_shared,
            "imported_total": state.seeds_imported,
        }
        for key, value in row.items():
            commit.setdefault(key, value)
        self._writer.append(REC_EPOCH, commit)
        self._writer.sync()
        self._apply(JournalRecord(REC_EPOCH, commit))
        self._epoch_records += 1
        if self.obs.enabled:
            self.obs.counter("db.journal.records").inc(
                self._writer.records_written - records_before)
            self.obs.counter("db.journal.bytes").inc(
                self._writer.bytes_written - bytes_before)
        if epoch - self._last_checkpoint_epoch >= self.checkpoint_every:
            self.checkpoint()

    # -- checkpointing -------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """The complete JSON-friendly state (the checkpoint payload)."""
        return {
            "v": STORE_SCHEMA_MAJOR,
            "config": dict(self.config or {}),
            "epoch": self.epoch,
            "edges": sorted(self.edges),
            "entries": list(self.entries),
            "crashes": [self.crashes[sig] for sig in self.crashes],
            "series": list(self.series),
            "tallies": dict(self.tallies),
        }

    def checkpoint(self) -> None:
        """Write the snapshot atomically, then compact the journal."""
        if self._writer is not None:
            self._writer.sync()
        write_checkpoint(self.checkpoint_path, self.snapshot(),
                         durable=self.durable)
        self._last_checkpoint_epoch = self.epoch
        # Compact: everything journaled so far is in the checkpoint, so
        # the journal restarts at just the meta record.  A kill between
        # the two atomic replaces leaves checkpoint+old-journal, which
        # the loader handles by skipping already-folded epochs.
        if self._writer is not None:
            self._writer.close()
            atomic_write_bytes(self.journal_path,
                               encode_record(REC_META, self.config or {}),
                               durable=self.durable)
            self._writer = JournalWriter(self.journal_path,
                                         durable=self.durable)
            self._epoch_records = 0
        if self.obs.enabled:
            self.obs.counter("db.checkpoints").inc()
            self.obs.emit("db.checkpoint", epoch=self.epoch,
                          entries=len(self.entries),
                          crashes=len(self.crashes),
                          edges=len(self.edges))

    def close(self, final_checkpoint: bool = True) -> None:
        """Flush everything; optionally fold the journal one last time."""
        if self._writer is None:
            return
        if final_checkpoint:
            self.checkpoint()
        self._writer.close()
        self._writer = None

    # -- reading back --------------------------------------------------------

    def corpus_entries(self) -> List[CorpusEntry]:
        """Decode every persisted seed; malformed records quarantine."""
        out: List[CorpusEntry] = []
        bad: List[Dict[str, object]] = []
        for record in self.entries:
            try:
                out.append(entry_from_record(record))
            except Exception:
                bad.append(record)
        if bad:
            target = self._quarantine_target("entries", ".bin")
            atomic_write_bytes(
                target,
                b"".join(encode_record(REC_SEED, rec) for rec in bad),
                durable=self.durable)
            self.quarantined_spans += len(bad)
            if self.obs.enabled:
                self.obs.counter("db.quarantined").inc(len(bad))
                self.obs.emit("db.quarantined", source="entries",
                              spans=len(bad), path=target)
        return out

    def crash_signatures(self) -> List[str]:
        """Persisted campaign-unique signatures, first-seen order."""
        return list(self.crashes)

    def verify(self, edges: Iterable[int], crash_signatures: Iterable[str],
               digests: Iterable[str]) -> Dict[str, object]:
        """Compare live state against the mirror at a resume barrier.

        Returns an empty dict on a perfect match; otherwise a summary
        of what diverged (the caller decides whether to merge the
        persisted findings in or fail loudly).  The corpus check is a
        superset test: the store never evicts, the live pool may.
        """
        live_edges = set(int(e) for e in edges)
        live_sigs = set(crash_signatures)
        live_digests = set(digests)
        mismatch: Dict[str, object] = {}
        if live_edges != self.edges:
            mismatch["edges"] = {"live": len(live_edges),
                                 "stored": len(self.edges)}
        if live_sigs != set(self.crashes):
            mismatch["crashes"] = {"live": len(live_sigs),
                                   "stored": len(self.crashes)}
        missing = live_digests - self._digests
        # Unserializable programs legitimately never persist; only
        # count digests the store *should* have had.
        if missing:
            mismatch["corpus"] = {"missing": len(missing)}
        return mismatch

    def salvage_summary(self) -> Dict[str, int]:
        """What the last load kept, dropped and lost (CLI/CI surface)."""
        return {
            "salvaged_records": self.salvaged_records,
            "quarantined_spans": self.quarantined_spans,
            "quarantined_bytes": self.quarantined_bytes,
            "torn_tail_bytes": self.torn_tail_bytes,
            "dropped_uncommitted": self.dropped_uncommitted,
            "resumed_from_epoch": self.resumed_from_epoch,
        }
