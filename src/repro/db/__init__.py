"""``repro.db``: crash-safe persistence for campaign state.

Four layers, each usable on its own:

* :mod:`repro.db.io` — the atomic-write primitives (temp file + fsync +
  rename) every persistent artifact in the tree goes through,
* :mod:`repro.db.journal` — CRC-framed append-only records with a
  salvaging reader that never raises on corrupt input,
* :mod:`repro.db.checkpoint` — whole-state snapshots as one atomically
  replaced frame,
* :mod:`repro.db.store` — the :class:`CampaignStore` tying them into a
  journal + checkpoint pair under one state directory, with quarantine
  for anything that fails verification.
"""

from repro.db.checkpoint import (  # noqa: F401 (re-exported surface)
    CHECKPOINT_RECORD,
    read_checkpoint,
    write_checkpoint,
)
from repro.db.io import (  # noqa: F401
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    fsync_directory,
)
from repro.db.journal import (  # noqa: F401
    JOURNAL_SCHEMA_MAJOR,
    JournalRecord,
    JournalScan,
    JournalWriter,
    decode_record,
    encode_record,
    read_journal,
    scan_journal,
)
from repro.db.store import (  # noqa: F401
    CHECKPOINT_FILE,
    CORRUPT_DIR,
    JOURNAL_FILE,
    STORE_SCHEMA_MAJOR,
    CampaignStore,
)
