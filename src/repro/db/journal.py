"""Append-only journal with per-record CRC framing and salvage.

The campaign store's write-ahead log.  Every record is a self-delimiting
binary frame::

    u16  magic     0x4A45 ("EJ", little-endian on the wire)
    u8   version   JOURNAL_SCHEMA_MAJOR
    u8   type      one ASCII letter naming the record kind
    u32  length    payload byte count
    u32  crc       CRC-32 of version | type | length | payload
    ...  payload   canonical JSON (UTF-8, sorted keys, tight separators)

Appends go through one buffered file handle; :meth:`JournalWriter.sync`
flushes and fsyncs, which callers invoke once per transaction (epoch
barrier), not per record.

Reading is built for hostile files.  :func:`scan_journal` walks the
frames and *salvages everything that verifies*:

* a **torn tail** (kill mid-append) truncates the scan cleanly,
* a record whose CRC or JSON fails is **quarantined** — its bytes are
  handed back so the store can preserve them under ``corrupt/`` — and
  the scan resynchronises on the next frame magic,
* nothing in this module ever raises on corrupt input; the salvage
  report says exactly what was kept, dropped and lost.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["JOURNAL_SCHEMA_MAJOR", "JournalRecord", "JournalScan",
           "JournalWriter", "encode_record", "decode_record",
           "scan_journal", "read_journal"]

#: Major version stamped into every frame; a reader that sees a frame
#: with an unknown major quarantines that frame (it cannot know the
#: payload's meaning) and keeps scanning.
JOURNAL_SCHEMA_MAJOR = 1

MAGIC = 0x4A45  # "EJ"
_HEADER = struct.Struct("<HBBII")  # magic, version, type, length, crc
HEADER_SIZE = _HEADER.size

#: Upper bound on one payload; a "length" beyond this is framing
#: corruption, not a huge record.
MAX_PAYLOAD = 64 * 1024 * 1024


@dataclass(frozen=True)
class JournalRecord:
    """One decoded journal record."""

    rtype: str
    payload: Dict[str, object]


@dataclass
class JournalScan:
    """What a journal read salvaged (and what it could not)."""

    records: List[JournalRecord] = field(default_factory=list)
    salvaged: int = 0            # records that verified end-to-end
    quarantined: int = 0         # corrupt spans dropped mid-file
    quarantined_bytes: int = 0
    torn_tail_bytes: int = 0     # incomplete final frame (kill mid-append)
    corrupt_spans: List[bytes] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when every byte of the journal verified."""
        return not self.quarantined and not self.torn_tail_bytes


def _payload_bytes(payload: Dict[str, object]) -> bytes:
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def _crc(version: int, rtype: int, body: bytes) -> int:
    head = struct.pack("<BBI", version, rtype, len(body))
    return zlib.crc32(body, zlib.crc32(head)) & 0xFFFFFFFF


def encode_record(rtype: str, payload: Dict[str, object]) -> bytes:
    """Frame one record (the checkpoint file reuses this encoding)."""
    if len(rtype) != 1:
        raise ValueError(f"record type must be one character: {rtype!r}")
    body = _payload_bytes(payload)
    if len(body) > MAX_PAYLOAD:
        raise ValueError(f"record payload too large: {len(body)} bytes")
    type_code = ord(rtype)
    crc = _crc(JOURNAL_SCHEMA_MAJOR, type_code, body)
    return _HEADER.pack(MAGIC, JOURNAL_SCHEMA_MAJOR, type_code,
                        len(body), crc) + body


def decode_record(raw: bytes) -> Optional[JournalRecord]:
    """Decode exactly one frame; None unless every check passes."""
    record, consumed, _ = _try_decode_at(raw, 0)
    if record is None or consumed != len(raw):
        return None
    return record


def _try_decode_at(data: bytes, offset: int
                   ) -> Tuple[Optional[JournalRecord], int, bool]:
    """Attempt one frame at ``offset``.

    Returns ``(record, bytes_consumed, torn)``: a verified record and
    its frame size; ``(None, 0, True)`` when the remaining bytes are a
    plausible-but-incomplete frame (torn tail); ``(None, 0, False)``
    when the bytes at ``offset`` are not a valid frame at all.
    """
    remaining = len(data) - offset
    if remaining < HEADER_SIZE:
        # Too short even for a header: torn tail if it still looks like
        # the start of a frame, garbage otherwise.
        if remaining >= 2 and \
                struct.unpack_from("<H", data, offset)[0] == MAGIC:
            return None, 0, True
        return None, 0, False
    magic, version, type_code, length, crc = _HEADER.unpack_from(
        data, offset)
    if magic != MAGIC:
        return None, 0, False
    if version != JOURNAL_SCHEMA_MAJOR or length > MAX_PAYLOAD:
        return None, 0, False
    end = offset + HEADER_SIZE + length
    if end > len(data):
        # Frame extends past EOF: a kill mid-append.  (A corrupt length
        # field can also land here; either way the tail is unusable and
        # the CRC would have caught the corruption.)
        return None, 0, True
    body = bytes(data[offset + HEADER_SIZE:end])
    if _crc(version, type_code, body) != crc:
        return None, 0, False
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None, 0, False
    if not isinstance(payload, dict):
        return None, 0, False
    return (JournalRecord(rtype=chr(type_code), payload=payload),
            HEADER_SIZE + length, False)


def _next_magic(data: bytes, start: int) -> int:
    """Offset of the next possible frame start at/after ``start``."""
    magic_bytes = struct.pack("<H", MAGIC)
    index = data.find(magic_bytes, start)
    return index if index >= 0 else len(data)


def scan_journal(data: bytes) -> JournalScan:
    """Salvage every verifiable record from raw journal bytes.

    Corrupt spans (bad magic, failed CRC, undecodable payload) are
    collected for quarantine and the scan resynchronises on the next
    frame magic; an incomplete final frame is reported as a torn tail.
    Never raises.
    """
    scan = JournalScan()
    offset = 0
    bad_start: Optional[int] = None
    size = len(data)
    while offset < size:
        record, consumed, torn = _try_decode_at(data, offset)
        if record is not None:
            if bad_start is not None:
                _quarantine(scan, data, bad_start, offset)
                bad_start = None
            scan.records.append(record)
            scan.salvaged += 1
            offset += consumed
            continue
        if torn and bad_start is None:
            # Plausible frame running past EOF: the classic torn tail.
            scan.torn_tail_bytes = size - offset
            return scan
        # Not a frame here: remember where the bad span began and hop
        # to the next candidate magic.
        if bad_start is None:
            bad_start = offset
        offset = _next_magic(data, offset + 1)
    if bad_start is not None:
        _quarantine(scan, data, bad_start, size)
    return scan


def _quarantine(scan: JournalScan, data: bytes, start: int,
                end: int) -> None:
    span = bytes(data[start:end])
    scan.corrupt_spans.append(span)
    scan.quarantined += 1
    scan.quarantined_bytes += len(span)


def read_journal(path: str) -> JournalScan:
    """Read and salvage a journal file (missing file = empty scan)."""
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except FileNotFoundError:
        return JournalScan()
    return scan_journal(data)


class JournalWriter:
    """Buffered appender; one fsync per :meth:`sync`, not per record."""

    def __init__(self, path: str, durable: bool = True):
        self.path = str(path)
        self.durable = durable
        self._fh = open(self.path, "ab")
        self.records_written = 0
        self.bytes_written = 0

    def append(self, rtype: str, payload: Dict[str, object]) -> int:
        """Buffer one framed record; returns its frame size in bytes."""
        frame = encode_record(rtype, payload)
        self._fh.write(frame)
        self.records_written += 1
        self.bytes_written += len(frame)
        return len(frame)

    def sync(self) -> None:
        """Flush buffered frames and (when durable) fsync the file."""
        self._fh.flush()
        if self.durable:
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        """Sync and close (idempotent)."""
        if not self._fh.closed:
            self.sync()
            self._fh.close()
