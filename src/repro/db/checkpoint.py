"""Checkpoint files: one whole-state frame, atomically replaced.

A checkpoint is the journal's compaction: the complete campaign
snapshot serialized as a single CRC-framed record (the same wire format
as :mod:`repro.db.journal`, record type ``C``) and written via
write-to-temp + fsync + atomic rename.  At any instant the checkpoint
file on disk is therefore either the complete previous snapshot or the
complete new one; a kill mid-checkpoint costs nothing but the compaction.

Reading mirrors the journal's salvage policy: :func:`read_checkpoint`
returns ``None`` for a missing, truncated or corrupt file instead of
raising — the store falls back to replaying the journal from the start
and quarantines the unreadable bytes.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.db.io import atomic_write_bytes
from repro.db.journal import decode_record, encode_record

__all__ = ["CHECKPOINT_RECORD", "write_checkpoint", "read_checkpoint"]

#: Record type of the single frame a checkpoint file holds.
CHECKPOINT_RECORD = "C"


def write_checkpoint(path: str, snapshot: Dict[str, object],
                     durable: bool = True) -> str:
    """Atomically replace ``path`` with a framed snapshot."""
    return atomic_write_bytes(
        path, encode_record(CHECKPOINT_RECORD, snapshot),
        durable=durable)


def read_checkpoint(path: str) -> Optional[Dict[str, object]]:
    """Load a checkpoint snapshot; ``None`` unless it fully verifies.

    Missing file, torn frame, CRC mismatch, wrong record type — all
    read as ``None``; the caller decides whether the bytes (if any)
    are worth quarantining.
    """
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
    except FileNotFoundError:
        return None
    record = decode_record(raw)
    if record is None or record.rtype != CHECKPOINT_RECORD:
        return None
    return record.payload
