"""Crash-safe file primitives: write-to-temp + fsync + atomic rename.

Every persistent artifact the stack leaves on disk — checkpoint files,
``metrics.json``, ``profile.json``, flight dumps, rendered reports —
goes through these helpers, so a kill at any instant leaves either the
complete previous version or the complete new version of a file, never
a torn half-write.  The recipe is the classic one:

1. write the full payload to a temporary file *in the destination
   directory* (same filesystem, so the rename is atomic),
2. flush and ``fsync`` the temp file (data durable before the rename),
3. ``os.replace`` onto the destination (atomic on POSIX and Windows),
4. best-effort ``fsync`` of the directory so the rename itself is
   durable across power loss.

The ``EOF307`` lint rule (``repro.analysis.lint``) enforces that
persistent-artifact writes inside ``src/repro`` use these helpers
instead of bare ``open(..., "w")`` — append-streamed journals
(``events.jsonl``, ``timeseries.jsonl``, the campaign journal) are the
deliberate exception, with torn-tail-tolerant loaders on the read side.
"""

from __future__ import annotations

import json
import os
import tempfile

__all__ = ["atomic_write_bytes", "atomic_write_text",
           "atomic_write_json", "fsync_directory"]


def fsync_directory(path: str) -> None:
    """Best-effort directory fsync (makes a rename durable).

    Some filesystems/platforms refuse to open directories; losing the
    directory sync there degrades durability, not correctness, so the
    failure is swallowed.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str, data: bytes,
                       durable: bool = True) -> str:
    """Atomically replace ``path`` with ``data``; returns ``path``.

    ``durable=False`` skips the fsyncs (for tests and throwaway
    renders); the rename is still atomic either way.
    """
    path = str(path)
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix="." + os.path.basename(path) + ".")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            if durable:
                os.fsync(fh.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    if durable:
        fsync_directory(directory)
    return path


def atomic_write_text(path: str, text: str,
                      durable: bool = True,
                      ensure_newline: bool = False) -> str:
    """Atomically replace ``path`` with UTF-8 ``text``.

    ``ensure_newline`` appends a trailing newline when the payload lacks
    one (artifact files are newline-terminated by convention).
    """
    if ensure_newline and text and not text.endswith("\n"):
        text += "\n"
    return atomic_write_bytes(path, text.encode("utf-8"),
                              durable=durable)


def atomic_write_json(path: str, payload: object, indent: int = 2,
                      durable: bool = True) -> str:
    """Atomically replace ``path`` with a JSON rendering of ``payload``."""
    text = json.dumps(payload, indent=indent, default=str) + "\n"
    return atomic_write_bytes(path, text.encode("utf-8"),
                              durable=durable)
