"""ROM boot path: validate flash, reconstruct the kernel + agent.

This is the code the board runs at power-on.  It only trusts what is in
flash: a corrupted image (damaged by a buggy kernel or by fault
injection) fails CRC validation and the board refuses to boot — the
condition EOF's connection-timeout watchdog detects and its reflash-based
restoration repairs.
"""

from __future__ import annotations

from typing import Optional

from repro.agent.executor import AgentRuntime
from repro.errors import ImageError
from repro.firmware.image import validate_flash
from repro.hw.board import Board, TargetRuntime
from repro.instrument.sancov import SancovTracer
from repro.instrument.sites import SiteInfo, SiteTable
from repro.oses import os_registry
from repro.oses.common.context import KernelContext


def _load(board: Board) -> Optional[TargetRuntime]:
    try:
        meta = validate_flash(board.flash)
    except ImageError:
        return None
    registry = os_registry()
    kernel_cls = registry.get(meta.os_name)
    if kernel_cls is None:
        return None

    site_table = SiteTable()
    for symbol, (base, count) in sorted(meta.site_blocks.items(),
                                        key=lambda kv: kv[1][0]):
        module = meta.symbol_modules.get(symbol, "kernel")
        site_table.add(SiteInfo(symbol=symbol, module=module, base=base,
                                count=count))

    tracer = SancovTracer(
        ram=board.ram,
        buf_addr=meta.ram_layout.cov_buf_addr,
        buf_size=meta.ram_layout.cov_buf_size,
        gen_addr=getattr(meta.ram_layout, "cov_gen_addr", 0),
        site_table=site_table,
        enabled_modules=(set(meta.instrument_modules)
                         if meta.instrument_modules is not None else None),
        enabled=meta.instrument_enabled,
    )
    tracer.clear()

    ctx = KernelContext(board=board, addresses=meta.addresses, tracer=tracer,
                        layout=meta.ram_layout)
    kernel = kernel_cls(ctx, meta.config)

    # Guard against image/binary drift: the API order baked into the image
    # must match what this kernel + component set actually exposes.
    runtime = AgentRuntime(board=board, kernel=kernel, layout=meta.ram_layout,
                           addresses=meta.addresses)
    if not runtime.boot():
        return None
    actual_order = [api.name for api in kernel.api_table()]
    if actual_order != meta.api_order:
        return None
    return runtime


def install_firmware_loader(board: Board) -> None:
    """Wire the ROM boot path into a board."""
    board.set_firmware_loader(_load)
