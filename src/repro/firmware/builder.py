"""The firmware "toolchain": symbols, sizes, instrumentation, packing.

``build_firmware`` is the analog of compiling and linking a target OS:

* collects every ``@kfunc`` of the kernel class and requested components,
* assigns each a synthetic address and a deterministic code size,
* allocates SanCov site blocks (only modules being instrumented pay the
  code-size tax — this is what §5.5.1's memory overhead measures),
* lays out flash partitions (boot / kernel / appfs) with CRCs,
* embeds the metadata blob the ROM loader needs to reconstruct the
  kernel at boot, and
* reports the KConfig text whose partition table Algorithm 1 consumes.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import BuildError
from repro.firmware.image import Partition, pack_header, \
    write_partitions_to_flash
from repro.firmware.layout import BuildConfig, PartitionSpec, RamLayout
from repro.hw.board import Board
from repro.hw.boards import BOARD_CATALOG, BoardSpec
from repro.instrument.sites import SiteAllocator, SiteTable
from repro.oses.common.api import ApiDef, KFuncMeta, collect_apis, collect_kfuncs

BOOT_BLOB_SIZE = 8 * 1024
APPFS_SIZE = 4 * 1024
PER_SITE_BYTES = 8
INSTR_RUNTIME_BYTES = 512
TEXT_VADDR_SHIFT = 0x1000

# Agent functions linked into every image (module "agent"; the agent is
# deliberately uninstrumented — it must not pollute coverage, §4.3.2).
AGENT_FUNCS: Tuple[Tuple[str, int], ...] = (
    ("executor_main", 160),
    ("read_prog", 224),
    ("execute_one", 288),
    ("handle_exception", 128),
    ("_kcmp_buf_full", 64),
)


@dataclass(frozen=True)
class Symbol:
    """A linked function: name, synthetic address, size, home module."""

    name: str
    address: int
    size: int
    module: str


@dataclass
class BuildInfo:
    """Host-side build artifacts (the ELF + map file, morally)."""

    config: BuildConfig
    board_spec: BoardSpec
    partitions: List[Partition]
    partition_specs: List[PartitionSpec]
    symbols: Dict[str, Symbol]
    site_table: SiteTable
    ram_layout: RamLayout
    api_defs: List[ApiDef]
    api_order: List[str]
    kconfig_text: str
    image_total_bytes: int

    def address_of(self, symbol: str) -> int:
        """Resolve a symbol to its address (the host's symbol file)."""
        return self.symbols[symbol].address

    def partition_map(self) -> Dict[str, Tuple[bytes, int]]:
        """``name -> (payload bytes, flash offset)`` for restoration."""
        return {part.name: (part.payload, part.offset)
                for part in self.partitions}


def _stable_bytes(tag: str, length: int) -> bytes:
    """Deterministic pseudo-random filler (stands in for machine code)."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        out += zlib.crc32(f"{tag}:{counter}".encode()).to_bytes(4, "little")
        counter += 1
    # Keep 0xFF out of the filler so it never looks like erased flash.
    return bytes(b if b != 0xFF else 0x7D for b in out[:length])


def _base_code_size(name: str) -> int:
    return 48 + (zlib.crc32(name.encode()) % 160 & ~3)


def _build_appfs() -> bytes:
    """The application/filesystem partition: a small on-flash partition
    table with three valid entries, an erased terminator — and one stale
    backup entry (type 0x7F) at a misaligned offset, the food of bug #13.
    """
    blob = bytearray((i * 37 + 11) & 0xFF for i in range(APPFS_SIZE))
    for i in range(APPFS_SIZE):
        if blob[i] in (0xFF, 0x7F):
            blob[i] = 0x7C
    entries = [
        (0x50AA, 0x01, 0x00, 0x00010000, 0x00020000),
        (0x50AA, 0x01, 0x01, 0x00030000, 0x00010000),
        (0x50AA, 0x02, 0x00, 0x00040000, 0x00008000),
    ]
    for idx, (magic, ptype, sub, addr, size) in enumerate(entries):
        struct.pack_into("<HBBII", blob, idx * 16, magic, ptype, sub,
                         addr, size)
        struct.pack_into("<I", blob, idx * 16 + 12, 0x4C424C00 + idx)
    # Erased-looking terminator for aligned scans.
    blob[48] = 0xFF
    blob[49] = 0xFF
    # The stale backup entry: its type byte sits at absolute offset 58,
    # reachable only via misaligned reads (offset % 16 == 8).
    blob[58] = 0x7F
    return bytes(blob)


def _resolve_component_classes(names: Sequence[str]):
    from repro.oses.components import component_registry
    registry = component_registry()
    classes = []
    for name in names:
        if name not in registry:
            raise BuildError(f"unknown component {name!r}; "
                             f"known: {sorted(registry)}")
        classes.append(registry[name])
    return classes


def _make_ram_layout(spec: BoardSpec, config: BuildConfig) -> RamLayout:
    base = spec.ram_base
    status_addr = base + 0x40
    crash_addr = base + 0x80
    cov_addr = base + 0x200
    input_addr = (cov_addr + config.cov_buf_size + 15) & ~15
    heap_base = (input_addr + config.input_buf_size + 63) & ~63
    heap_size = config.kernel_heap_size
    if heap_base + heap_size > base + spec.ram_size:
        raise BuildError(
            f"RAM layout exceeds {spec.name}'s {spec.ram_size} bytes; "
            f"shrink the coverage buffer or heap")
    return RamLayout(
        status_addr=status_addr, status_size=64,
        crash_addr=crash_addr, crash_size=256,
        cov_buf_addr=cov_addr, cov_buf_size=config.cov_buf_size,
        input_buf_addr=input_addr, input_buf_size=config.input_buf_size,
        kernel_heap_base=heap_base, kernel_heap_size=heap_size,
        # Drain-generation word lives in the gap between the crash block
        # (crash_addr + 256) and the coverage buffer at base + 0x200.
        cov_gen_addr=crash_addr + 256,
    )


def build_firmware(config: BuildConfig) -> BuildInfo:
    """Compile-and-link a target OS into a flashable image."""
    from repro.oses import os_registry

    registry = os_registry()
    if config.os_name not in registry:
        raise BuildError(f"unknown OS {config.os_name!r}; "
                         f"known: {sorted(registry)}")
    kernel_cls = registry[config.os_name]
    component_classes = _resolve_component_classes(config.components)

    spec = BOARD_CATALOG.get(config.board)
    if spec is None:
        raise BuildError(f"unknown board {config.board!r}")

    # ---- collect functions (kernel, components, agent) ----------------------
    kfuncs: List[KFuncMeta] = list(collect_kfuncs(kernel_cls))
    for comp_cls in component_classes:
        kfuncs.extend(collect_kfuncs(comp_cls))
    names_seen: Dict[str, str] = {}
    for meta in kfuncs:
        if meta.name in names_seen:
            raise BuildError(f"duplicate symbol {meta.name!r} "
                             f"(modules {names_seen[meta.name]} and "
                             f"{meta.module})")
        names_seen[meta.name] = meta.module

    instr_modules = (set(config.instrument_modules)
                     if config.instrument_modules is not None else None)

    def instrumented(module: str) -> bool:
        if not config.instrument:
            return False
        return instr_modules is None or module in instr_modules

    # ---- sites + symbol layout -------------------------------------------------
    allocator = SiteAllocator()
    partitions_region_base = spec.flash_base
    # The master header owns the first flash sector outright; partitions
    # start at the next sector so reflashing one never clobbers another.
    boot_offset = spec.flash_sector
    kernel_offset = _align_up(boot_offset + BOOT_BLOB_SIZE,
                              spec.flash_sector)
    text_vaddr = partitions_region_base + kernel_offset + TEXT_VADDR_SHIFT

    symbols: Dict[str, Symbol] = {}
    text_bytes = 0
    cursor = text_vaddr
    for meta in kfuncs:
        size = meta.code_size or _base_code_size(meta.name)
        if instrumented(meta.module):
            allocator.allocate(meta.name, meta.module, meta.sites)
            size += PER_SITE_BYTES * meta.sites
        symbols[meta.name] = Symbol(name=meta.name, address=cursor,
                                    size=size, module=meta.module)
        cursor = _align_up(cursor + size, 16)
        text_bytes += size
    for name, size in AGENT_FUNCS:
        symbols[name] = Symbol(name=name, address=cursor, size=size,
                               module="agent")
        cursor = _align_up(cursor + size, 16)
        text_bytes += size
    if config.instrument:
        text_bytes += INSTR_RUNTIME_BYTES

    site_table: SiteTable = allocator.table

    # ---- API table order (must match what the kernel builds at boot) -----------
    api_defs: List[ApiDef] = list(collect_apis(kernel_cls))
    for comp_cls in component_classes:
        api_defs.extend(collect_apis(comp_cls))
    api_order = [api.name for api in api_defs]

    # ---- RAM layout + per-OS config --------------------------------------------
    ram_layout = _make_ram_layout(spec, config)
    # appfs lives in the last sectors of flash, so its address is known
    # before the (variable-size) kernel partition is packed.
    appfs_offset = (spec.flash_size - APPFS_SIZE) // spec.flash_sector \
        * spec.flash_sector

    kernel_config = dict(config.extra_config)
    kernel_config["components"] = list(config.components)
    kernel_config["appfs_flash_addr"] = spec.flash_base + appfs_offset
    kernel_config["appfs_flash_size"] = APPFS_SIZE
    kernel_config["kernel_flash_addr"] = spec.flash_base + kernel_offset + 4

    # ---- kernel partition payload ------------------------------------------------
    rodata_size = 40 * 1024 + (zlib.crc32(config.os_name.encode()) % (16 * 1024))
    meta_dict = {
        "os_name": config.os_name,
        "config": kernel_config,
        "addresses": {name: sym.address for name, sym in symbols.items()},
        "symbol_modules": {name: sym.module for name, sym in symbols.items()},
        "site_blocks": {info.symbol: [info.base, info.count]
                        for info in site_table.blocks()},
        "ram_layout": ram_layout.to_dict(),
        "instrument_enabled": bool(config.instrument),
        "instrument_modules": (sorted(instr_modules)
                               if instr_modules is not None else None),
        "api_order": api_order,
    }

    def pack_kernel(meta: dict) -> bytes:
        meta_blob = json.dumps(meta, sort_keys=True).encode("utf-8")
        text = _stable_bytes(f"text:{config.os_name}", text_bytes)
        rodata = _stable_bytes(f"rodata:{config.os_name}", rodata_size)
        return struct.pack("<I", len(meta_blob)) + meta_blob + text + rodata

    kernel_payload = pack_kernel(meta_dict)
    if kernel_offset + len(kernel_payload) > appfs_offset:
        raise BuildError(f"image does not fit in {spec.name}'s flash")

    partitions = [
        Partition(name="boot", offset=boot_offset,
                  payload=_stable_bytes("boot", BOOT_BLOB_SIZE)),
        Partition(name="kernel", offset=kernel_offset,
                  payload=kernel_payload),
        Partition(name="appfs", offset=appfs_offset, payload=_build_appfs()),
    ]
    partition_specs = [
        PartitionSpec(name=p.name, offset=p.offset,
                      size=_align_up(p.size, spec.flash_sector))
        for p in partitions
    ]
    header = pack_header(partitions)
    total = len(header) + sum(p.size for p in partitions)

    return BuildInfo(
        config=config,
        board_spec=spec,
        partitions=partitions,
        partition_specs=partition_specs,
        symbols=symbols,
        site_table=site_table,
        ram_layout=ram_layout,
        api_defs=api_defs,
        api_order=api_order,
        kconfig_text=config.kconfig_text(partition_specs),
        image_total_bytes=total,
    )


def flash_build(board: Board, build: BuildInfo) -> None:
    """Initial factory flash of a built image onto a board."""
    write_partitions_to_flash(board.flash, build.partitions)


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment
