"""Build configuration, RAM layout and the KConfig-style partition table.

``BuildConfig`` is the stand-in for a target's build configuration file.
Algorithm 1 extracts the partition map from exactly this artifact
(``PartitionMap <- GetPartitionTable(KConfig)``); we render it to a
KConfig-ish text form and parse it back, so the restoration path consumes
the same kind of input the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class PartitionSpec:
    """One flash partition: where a component of the image lives."""

    name: str
    offset: int   # relative to flash base
    size: int     # reserved size (sector-aligned)


@dataclass(frozen=True)
class RamLayout:
    """Where the agent/fuzzing data structures live in target RAM.

    The host learns these addresses from the build artifacts (the paper's
    "analyze the target embedded OS's memory layout", Figure 3 step ①).
    """

    status_addr: int
    status_size: int
    crash_addr: int
    crash_size: int
    cov_buf_addr: int
    cov_buf_size: int
    input_buf_addr: int
    input_buf_size: int
    kernel_heap_base: int
    kernel_heap_size: int
    # Coverage drain-generation word (0 = image without one; the host
    # then falls back to full drains).  Kept last with a default so
    # metadata written by older builds still loads.
    cov_gen_addr: int = 0

    def to_dict(self) -> Dict[str, int]:
        """JSON-friendly form (embedded in the kernel partition meta)."""
        return {
            "status_addr": self.status_addr,
            "status_size": self.status_size,
            "crash_addr": self.crash_addr,
            "crash_size": self.crash_size,
            "cov_buf_addr": self.cov_buf_addr,
            "cov_buf_size": self.cov_buf_size,
            "input_buf_addr": self.input_buf_addr,
            "input_buf_size": self.input_buf_size,
            "kernel_heap_base": self.kernel_heap_base,
            "kernel_heap_size": self.kernel_heap_size,
            "cov_gen_addr": self.cov_gen_addr,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "RamLayout":
        """Inverse of :meth:`to_dict`."""
        return cls(**{key: int(value) for key, value in data.items()})


@dataclass
class BuildConfig:
    """Everything needed to build a firmware image for one target."""

    os_name: str
    board: str = "stm32f407"
    instrument: bool = True
    # None = instrument every module; otherwise only the named modules
    # (Table 4 uses {"json", "http"}).
    instrument_modules: Optional[Tuple[str, ...]] = None
    components: Tuple[str, ...] = ()
    cov_buf_size: int = 16 * 1024
    input_buf_size: int = 8 * 1024
    kernel_heap_size: int = 64 * 1024
    extra_config: Dict[str, int] = field(default_factory=dict)

    def kconfig_text(self, partitions: List[PartitionSpec]) -> str:
        """Render the build configuration file (KConfig stand-in)."""
        lines = [
            f'CONFIG_OS="{self.os_name}"',
            f'CONFIG_BOARD="{self.board}"',
            f"CONFIG_INSTRUMENT={'y' if self.instrument else 'n'}",
            f"CONFIG_COV_BUF_SIZE={self.cov_buf_size}",
            f"CONFIG_HEAP_SIZE={self.kernel_heap_size}",
        ]
        if self.components:
            joined = ",".join(self.components)
            lines.append(f'CONFIG_COMPONENTS="{joined}"')
        for part in partitions:
            upper = part.name.upper()
            lines.append(f"CONFIG_PARTITION_{upper}_OFFSET=0x{part.offset:x}")
            lines.append(f"CONFIG_PARTITION_{upper}_SIZE=0x{part.size:x}")
        return "\n".join(lines) + "\n"


def parse_partition_table(kconfig_text: str) -> List[PartitionSpec]:
    """``GetPartitionTable(KConfig)``: recover partition specs from the
    build configuration text (Algorithm 1, line 13)."""
    offsets: Dict[str, int] = {}
    sizes: Dict[str, int] = {}
    for raw_line in kconfig_text.splitlines():
        line = raw_line.strip()
        if not line.startswith("CONFIG_PARTITION_"):
            continue
        key, _, value = line.partition("=")
        body = key[len("CONFIG_PARTITION_"):]
        if body.endswith("_OFFSET"):
            offsets[body[:-len("_OFFSET")].lower()] = int(value, 0)
        elif body.endswith("_SIZE"):
            sizes[body[:-len("_SIZE")].lower()] = int(value, 0)
    parts = []
    for name in offsets:
        if name in sizes:
            parts.append(PartitionSpec(name=name, offset=offsets[name],
                                       size=sizes[name]))
    parts.sort(key=lambda p: p.offset)
    return parts
