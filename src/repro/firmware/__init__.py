"""Firmware build, image format and boot loading.

The builder plays the role of the cross toolchain: it lays out every
kernel/agent function at a synthetic address (the symbol table), sizes the
code (instrumentation inflates it, §5.5.1), packs partitions with CRCs
into a flash image, and reports the partition table that Algorithm 1's
``GetPartitionTable(KConfig)`` extracts for state restoration.
"""

from repro.firmware.layout import (
    BuildConfig,
    PartitionSpec,
    RamLayout,
    parse_partition_table,
)
from repro.firmware.image import (
    Partition,
    ImageMeta,
    pack_header,
    validate_flash,
    write_partitions_to_flash,
)
from repro.firmware.builder import BuildInfo, Symbol, build_firmware
from repro.firmware.loader import install_firmware_loader

__all__ = [
    "BuildConfig",
    "PartitionSpec",
    "RamLayout",
    "parse_partition_table",
    "Partition",
    "ImageMeta",
    "pack_header",
    "validate_flash",
    "write_partitions_to_flash",
    "BuildInfo",
    "Symbol",
    "build_firmware",
    "install_firmware_loader",
]
