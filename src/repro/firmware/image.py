"""On-flash image format and boot-time validation.

Layout::

    flash_base + 0x000  master header
    flash_base + part.offset  each partition payload

Master header::

    8s   magic  b"EOFIMG1\\0"
    u32  partition count
    per partition: 8s name, u32 offset, u32 size(payload), u32 crc32(payload)
    u32  crc32 of everything above

The kernel partition payload starts with ``u32 meta_len`` followed by a
JSON metadata blob (OS name, config, symbol table, RAM layout, coverage
sites) and then synthetic ``.text`` bytes.  CRCs make corruption — by the
host's fault injection or by a buggy kernel scribbling on flash —
*detectable at boot*, which is what forces reflash-based restoration.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ImageError
from repro.firmware.layout import PartitionSpec, RamLayout
from repro.hw.memory import Flash

MAGIC = b"EOFIMG1\x00"
HEADER_RESERVED = 512  # space reserved for the master header at offset 0


@dataclass
class Partition:
    """A named payload at a flash offset (offset relative to flash base)."""

    name: str
    offset: int
    payload: bytes

    @property
    def size(self) -> int:
        """Payload size in bytes."""
        return len(self.payload)


def pack_header(partitions: List[Partition]) -> bytes:
    """Serialize the master header for a partition set."""
    body = MAGIC + struct.pack("<I", len(partitions))
    for part in partitions:
        name = part.name.encode("ascii")[:8].ljust(8, b"\x00")
        body += name
        body += struct.pack("<III", part.offset, part.size,
                            zlib.crc32(part.payload) & 0xFFFFFFFF)
    body += struct.pack("<I", zlib.crc32(body) & 0xFFFFFFFF)
    if len(body) > HEADER_RESERVED:
        raise ImageError("master header exceeds its reserved space")
    return body


def write_partitions_to_flash(flash: Flash, partitions: List[Partition]) -> None:
    """Full (re)flash: header + every partition, erase-then-program."""
    header = pack_header(partitions)
    flash.erase_range(flash.base, HEADER_RESERVED)
    flash.program(flash.base, header)
    for part in partitions:
        flash.erase_range(flash.base + part.offset, part.size)
        flash.program(flash.base + part.offset, part.payload)


@dataclass
class ImageMeta:
    """Everything the ROM loader learns from a *valid* flash image."""

    os_name: str
    config: dict
    addresses: Dict[str, int]
    symbol_modules: Dict[str, str]
    site_blocks: Dict[str, List[int]]   # symbol -> [base, count]
    ram_layout: RamLayout
    instrument_enabled: bool
    instrument_modules: "list[str] | None"
    api_order: List[str]
    partitions: List[PartitionSpec]


def _parse_header(flash: Flash) -> List[PartitionSpec]:
    raw = flash.read(flash.base, HEADER_RESERVED)
    if raw[:8] != MAGIC:
        raise ImageError("bad image magic")
    count = struct.unpack_from("<I", raw, 8)[0]
    if count > 16:
        raise ImageError("implausible partition count")
    entries = []
    off = 12
    for _ in range(count):
        name = raw[off:off + 8].rstrip(b"\x00").decode("ascii", "replace")
        part_off, size, crc = struct.unpack_from("<III", raw, off + 8)
        entries.append((name, part_off, size, crc))
        off += 20
    stored_crc = struct.unpack_from("<I", raw, off)[0]
    if zlib.crc32(raw[:off]) & 0xFFFFFFFF != stored_crc:
        raise ImageError("master header checksum mismatch")
    specs = []
    for name, part_off, size, crc in entries:
        payload = flash.read(flash.base + part_off, size)
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            raise ImageError(f"partition {name!r} checksum mismatch")
        specs.append(PartitionSpec(name=name, offset=part_off, size=size))
    return specs


def validate_flash(flash: Flash) -> ImageMeta:
    """Boot-time validation: parse + CRC-check the image, decode metadata.

    Raises :class:`ImageError` on any corruption — the virtual equivalent
    of the ROM bootloader refusing a damaged image.
    """
    specs = _parse_header(flash)
    kernel_spec = next((s for s in specs if s.name == "kernel"), None)
    if kernel_spec is None:
        raise ImageError("image has no kernel partition")
    payload = flash.read(flash.base + kernel_spec.offset, kernel_spec.size)
    if len(payload) < 4:
        raise ImageError("kernel partition truncated")
    meta_len = struct.unpack_from("<I", payload, 0)[0]
    if meta_len <= 0 or meta_len + 4 > len(payload):
        raise ImageError("kernel metadata length out of range")
    try:
        meta = json.loads(payload[4:4 + meta_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ImageError(f"kernel metadata undecodable: {exc}") from exc
    try:
        return ImageMeta(
            os_name=meta["os_name"],
            config=meta["config"],
            addresses={k: int(v) for k, v in meta["addresses"].items()},
            symbol_modules=meta["symbol_modules"],
            site_blocks={k: [int(v[0]), int(v[1])]
                         for k, v in meta["site_blocks"].items()},
            ram_layout=RamLayout.from_dict(meta["ram_layout"]),
            instrument_enabled=bool(meta["instrument_enabled"]),
            instrument_modules=meta["instrument_modules"],
            api_order=list(meta["api_order"]),
            partitions=specs,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ImageError(f"kernel metadata malformed: {exc}") from exc
