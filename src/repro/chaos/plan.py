"""Fault schedules: what goes wrong, how often, and *reproducibly*.

A :class:`FaultProfile` names per-fault-class rates (the knobs a chaos
campaign turns); a :class:`FaultPlan` binds a profile to a seed and draws
every injection decision from a **per-fault-class** :class:`FuzzRng`
stream.  Independent streams are the reproducibility contract: whether a
UART line gets garbled depends only on how many UART lines came before
it, never on how many link timeouts fired in between — so two runs with
the same seed and profile inject the identical fault sequence, and the
recovery ladder's event stream is byte-for-byte comparable across runs.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, fields
from typing import Dict

from repro.fuzz.rng import FuzzRng
from repro.obs import NULL_OBS

#: Every fault class a plan can draw; one RNG stream each.
FAULT_CLASSES = (
    "link_timeout",    # transient DebugLinkTimeout on a core-level op
    "read_bitflip",    # one flipped bit in a memory read's payload
    "uart_drop",       # a captured UART line never reaches the host
    "uart_garble",     # a captured UART line arrives damaged
    "flash_corrupt",   # bytes flip between the flash loader and the die
    "probe_drop",      # the probe loses core access until the next reset
    "boot_fail",       # a reboot parks at the reset vector (brownout)
)


@dataclass(frozen=True)
class FaultProfile:
    """Per-fault-class injection rates (0.0 = class disabled).

    Rates are per *opportunity*: per core-level debug op for link faults,
    per captured line for UART faults, per programmed region for flash
    faults, per boot attempt for boot faults.
    """

    name: str
    link_timeout_rate: float = 0.0
    read_bitflip_rate: float = 0.0
    uart_drop_rate: float = 0.0
    uart_garble_rate: float = 0.0
    flash_corrupt_rate: float = 0.0
    probe_drop_rate: float = 0.0
    boot_fail_rate: float = 0.0
    description: str = ""

    def rate_of(self, fault: str) -> float:
        """The configured rate for one fault class."""
        return getattr(self, fault + "_rate")

    def active_classes(self):
        """Fault classes with a nonzero rate."""
        return tuple(fault for fault in FAULT_CLASSES
                     if self.rate_of(fault) > 0.0)


#: The shipped chaos profiles (ISSUE 2 matrix + extremes).
PROFILES: Dict[str, FaultProfile] = {
    "none": FaultProfile(
        name="none",
        description="no injected faults (clean baseline)"),
    "link-flaky": FaultProfile(
        name="link-flaky",
        link_timeout_rate=0.02, read_bitflip_rate=0.005,
        uart_drop_rate=0.02, uart_garble_rate=0.02,
        description="marginal SWD wiring: transient timeouts, bit-flipped "
                    "reads, lossy UART capture"),
    "flash-corrupting": FaultProfile(
        name="flash-corrupting",
        flash_corrupt_rate=0.15,
        description="worn flash: programmed regions occasionally fail "
                    "verify readback"),
    "boot-flaky": FaultProfile(
        name="boot-flaky",
        boot_fail_rate=0.35,
        description="brownout-prone supply: reboots sometimes park at the "
                    "reset vector"),
    "probe-drop": FaultProfile(
        name="probe-drop",
        probe_drop_rate=0.005,
        description="probe loses core access mid-run (hard-fault induced "
                    "AP lockup) until the next reset"),
    "field": FaultProfile(
        name="field",
        link_timeout_rate=0.01, read_bitflip_rate=0.002,
        uart_drop_rate=0.01, uart_garble_rate=0.01,
        flash_corrupt_rate=0.05, probe_drop_rate=0.002,
        boot_fail_rate=0.1,
        description="everything at once, at field-deployment rates"),
    "dead-board": FaultProfile(
        name="dead-board",
        boot_fail_rate=1.0,
        description="every reboot fails: the ladder must exhaust and "
                    "quarantine, never fuzz a dead board"),
}


def get_profile(name: str) -> FaultProfile:
    """Look up a shipped profile by name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown chaos profile {name!r}; shipped profiles: "
            f"{', '.join(sorted(PROFILES))}") from None


def _stream_seed(seed: int, fault: str) -> int:
    """Stable per-class sub-seed (independent of dict/iteration order)."""
    return zlib.crc32(f"chaos:{seed}:{fault}".encode()) & 0x7FFF_FFFF


class FaultPlan:
    """One seeded, deterministic fault schedule.

    Hook code asks :meth:`should` before each injection opportunity; the
    answer comes from that fault class's own RNG stream.  Injected-fault
    counts are kept per class and surfaced through ``repro.obs`` as
    ``chaos.inject`` events and ``chaos.inject.<class>`` counters.
    """

    def __init__(self, profile: FaultProfile, seed: int = 0, obs=NULL_OBS):
        self.profile = profile
        self.seed = seed
        self.obs = obs
        self._rngs = {fault: FuzzRng(_stream_seed(seed, fault))
                      for fault in FAULT_CLASSES}
        self.injected = {fault: 0 for fault in FAULT_CLASSES}

    def should(self, fault: str) -> bool:
        """Draw one injection decision from the fault's own stream.

        A zero rate returns False without consuming a draw, so disabled
        classes cost nothing and never perturb other streams.
        """
        rate = self.profile.rate_of(fault)
        if rate <= 0.0:
            return False
        if not self._rngs[fault].chance(rate):
            return False
        self.injected[fault] += 1
        if self.obs.enabled:
            self.obs.counter(f"chaos.inject.{fault}").inc()
            self.obs.emit("chaos.inject", fault=fault,
                          count=self.injected[fault])
        return True

    # -- deterministic damage helpers (draw from the class's stream) -------

    def flip_bit(self, fault: str, data: bytes) -> bytes:
        """Return ``data`` with exactly one bit flipped."""
        if not data:
            return data
        rng = self._rngs[fault]
        index = rng.int_in(0, len(data) - 1)
        bit = rng.int_in(0, 7)
        out = bytearray(data)
        out[index] ^= 1 << bit
        return bytes(out)

    def flip_u32(self, fault: str, value: int) -> int:
        """Return ``value`` with one of its 32 bits flipped."""
        return value ^ (1 << self._rngs[fault].int_in(0, 31))

    def garble_text(self, fault: str, line: str) -> str:
        """Damage one character of a UART line (framing-error stand-in)."""
        if not line:
            return "�"
        rng = self._rngs[fault]
        index = rng.int_in(0, len(line) - 1)
        return line[:index] + "�" + line[index + 1:]

    def total_injected(self) -> int:
        """Faults injected so far, all classes."""
        return sum(self.injected.values())

    def snapshot(self) -> Dict[str, int]:
        """Per-class injected counts (JSON-friendly copy)."""
        return dict(self.injected)


# Keep the profile dataclass and the class tuple in lockstep.
assert all(f.name == "name" or f.name == "description"
           or f.name[:-len("_rate")] in FAULT_CLASSES
           for f in fields(FaultProfile))
