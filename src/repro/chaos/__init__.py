"""``repro.chaos``: deterministic fault injection for the debug stack.

The paper's recovery machinery (§4.4, Algorithm 1) only earns its keep
on *flaky* hardware — so this package makes the virtual hardware flaky,
reproducibly.  A :class:`FaultProfile` names per-fault-class rates
(transient link timeouts, bit-flipped reads, lossy UART capture, flash
corruption, probe drops, boot failures); a :class:`FaultPlan` schedules
them from independent seeded RNG streams; a :class:`ChaosLink` installs
the hooks into one board + debug port.  Same seed + same profile ⇒ the
identical fault sequence, which is what makes engine-under-chaos runs —
and their ``recovery.*`` event streams — exactly comparable.
"""

from repro.chaos.link import (  # noqa: F401 (re-exported surface)
    ChaosLink,
    install_chaos,
    uninstall_chaos,
)
from repro.chaos.plan import (  # noqa: F401
    FAULT_CLASSES,
    FaultPlan,
    FaultProfile,
    PROFILES,
    get_profile,
)
