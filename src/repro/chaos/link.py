"""The chaos hooks: wire a :class:`FaultPlan` into one debug stack.

A :class:`ChaosLink` sits at the transport boundary and is consulted by
:class:`repro.link.DebugPortTransport` (core-op timeouts, read
bit-flips, flash corruption, UART loss) and by
:class:`repro.hw.board.Board` (boot failure after reboot).  Because the
hooks live on the transport — the one choke point every backend shares —
batched and composite commands get the same per-primitive fault
opportunities their unbatched equivalents had.  Install and uninstall
are attribute flips — the clean path stays a single ``is None`` check
per operation, so chaos-off runs are unperturbed.

Faults are injected *below* the DDI layer on purpose: the GDB client,
the watchdogs, the restoration path and the engine all see exactly the
errors a real flaky board produces (``DebugLinkTimeout``, verify
mismatches, boot failures), not synthetic exceptions of their own.
"""

from __future__ import annotations

from typing import List

from repro.chaos.plan import FaultPlan
from repro.errors import DebugLinkTimeout
from repro.obs import NULL_OBS


class ChaosLink:
    """A fault plan bound to one board + debug port."""

    def __init__(self, plan: FaultPlan, board, obs=NULL_OBS):
        self.plan = plan
        self.board = board
        self.obs = obs

    # -- hooks called by DebugPort ------------------------------------------

    def on_core_op(self, op: str) -> None:
        """One core-level debug operation is about to run.

        May raise :class:`DebugLinkTimeout` — either a transient glitch
        (the retry rung's bread and butter) or a probe drop that latches
        ``board.link_lost`` until the next reset.
        """
        if self.plan.should("probe_drop"):
            self.board.link_lost = True
            raise DebugLinkTimeout(
                f"{self.board.name}: chaos: probe dropped during {op}")
        if self.plan.should("link_timeout"):
            raise DebugLinkTimeout(
                f"{self.board.name}: chaos: transient link timeout "
                f"during {op}")

    def filter_read(self, address: int, data: bytes) -> bytes:
        """Pass a memory read's payload through the bit-flip class."""
        if self.plan.should("read_bitflip"):
            return self.plan.flip_bit("read_bitflip", data)
        return data

    def filter_read_u32(self, address: int, value: int) -> int:
        """Word-read variant of :meth:`filter_read`."""
        if self.plan.should("read_bitflip"):
            return self.plan.flip_u32("read_bitflip", value)
        return value

    def filter_flash(self, address: int, data: bytes) -> bytes:
        """Corrupt bytes on their way into the flash array.

        The damage is *silent* here — it is the flash service's verify
        readback (and the reflash rung's bounded retries) that must
        catch it, exactly as on real worn flash.
        """
        if self.plan.should("flash_corrupt"):
            return self.plan.flip_bit("flash_corrupt", data)
        return data

    def filter_uart(self, lines: List[str]) -> List[str]:
        """Drop or garble captured UART lines."""
        profile = self.plan.profile
        if not lines or (profile.uart_drop_rate <= 0.0
                         and profile.uart_garble_rate <= 0.0):
            return lines
        out: List[str] = []
        for line in lines:
            if self.plan.should("uart_drop"):
                continue
            if self.plan.should("uart_garble"):
                line = self.plan.garble_text("uart_garble", line)
            out.append(line)
        return out

    # -- hook called by Board -----------------------------------------------

    def boot_should_fail(self) -> bool:
        """Should this (re)boot park at the reset vector?"""
        return self.plan.should("boot_fail")


def install_chaos(session, plan: FaultPlan, obs=NULL_OBS) -> ChaosLink:
    """Attach a fault plan to a live session's transport and board."""
    link = ChaosLink(plan, session.board, obs=obs)
    session.link.transport.chaos = link
    session.board.chaos = link
    return link


def uninstall_chaos(session) -> None:
    """Detach any installed chaos hooks (the clean path returns)."""
    session.link.transport.chaos = None
    session.board.chaos = None
