"""Exception hierarchy for the EOF reproduction.

Two distinct families live here and must not be confused:

* **Host-side errors** (:class:`ReproError` subclasses other than
  :class:`TargetSignal`) are ordinary Python errors raised by host
  components — the debug link, the spec parser, the firmware builder.

* **Target signals** (:class:`TargetSignal` subclasses) model events that
  happen *inside the simulated target*: kernel panics, failed assertions,
  bus faults, infinite polling loops.  They are raised by kernel code and
  are always caught by the execution agent / virtual machine, which turns
  them into halt events observable over the debug port.  They must never
  escape to host code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


# ---------------------------------------------------------------------------
# Host-side errors
# ---------------------------------------------------------------------------

class DebugLinkTimeout(ReproError):
    """The debug interface stopped responding (Algorithm 1, watchdog #1).

    Raised by the GDB client when the target can no longer service debug
    requests, e.g. after a failed boot or a hard wedge.  The liveness
    watchdog treats this as "system unresponsive".
    """


class DebugLinkError(ReproError):
    """A debug-port operation failed for a reason other than a timeout."""


class FlashError(ReproError):
    """Illegal flash operation (programming a non-erased byte, bad sector)."""


class ImageError(ReproError):
    """A firmware image is malformed or fails checksum validation."""


class BuildError(ReproError):
    """The firmware builder was given an inconsistent configuration."""


class SpecError(ReproError):
    """Base class for specification (Syzlang) errors."""


class SpecParseError(SpecError):
    """The Syzlang source text could not be parsed."""

    def __init__(self, message: str, line: int = 0):
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


class SpecTypeError(SpecError):
    """A parsed specification failed post-validation type checking.

    Carries the *complete* mismatch list as ``diagnostics`` (stable
    ``EOF11x`` codes, one entry per defect), so a spec author sees every
    problem in one round trip instead of fixing them one raise at a time.
    """

    def __init__(self, message: str, diagnostics=()):
        super().__init__(message)
        #: Tuple of :class:`repro.analysis.diagnostics.Diagnostic`.
        self.diagnostics = tuple(diagnostics)


class ProtocolError(ReproError):
    """A serialized test program violates the agent wire format."""


class RecoveryExhausted(ReproError):
    """Every rung of the recovery-escalation ladder failed.

    Raised by :class:`repro.fuzz.restore.RecoveryLadder` after bounded
    retries of retry → reboot → reflash+verify → full reattach all left
    the board dead.  The board is quarantined: the engine must stop
    loudly instead of executing programs on hardware that never came
    back (the failure mode Algorithm 1 exists to prevent).
    """

    def __init__(self, message: str, rungs=()):
        super().__init__(message)
        #: Rung names in the order they were attempted.
        self.rungs = tuple(rungs)


class StoreError(ReproError):
    """A campaign store (``repro.db``) cannot be used as requested.

    Raised only for *caller* mistakes — resuming into a directory that
    already holds a different campaign, pointing ``--resume`` at a
    directory with no state.  Corrupt on-disk bytes never raise: the
    loader salvages what verifies and quarantines the rest.
    """


class StoreConfigError(StoreError):
    """A resume was attempted with options that do not match the
    persisted campaign (seed / workers / sync interval / target).

    Replaying with different options cannot reproduce the interrupted
    campaign's state, so the store refuses rather than silently
    continuing a *different* campaign on top of the old journal.
    """


class UnsupportedTargetError(ReproError):
    """A fuzzer was pointed at a target/board it cannot drive.

    Raised e.g. when Tardis (emulator-only) is configured with a board that
    has no emulator support, mirroring the adaptability limits of Table 1.
    """


# ---------------------------------------------------------------------------
# Target-side signals (never escape the virtual machine)
# ---------------------------------------------------------------------------

class TargetSignal(ReproError):
    """Base class for events raised by simulated target code."""


class KernelPanic(TargetSignal):
    """The target kernel hit an unrecoverable error and called its panic
    entry point (``panic_handler`` / ``common_exception`` / ...).
    """

    def __init__(self, cause: str, detail: str = ""):
        super().__init__(f"{cause}: {detail}" if detail else cause)
        self.cause = cause
        self.detail = detail


class KernelAssertion(TargetSignal):
    """A kernel assertion failed.

    Per the paper, assertion failures surface through the *log monitor*:
    the kernel prints an assert line over UART and typically leaves the
    system hung (denial of service), rather than entering the exception
    handler.
    """

    def __init__(self, expr: str, location: str = ""):
        super().__init__(f"assertion '{expr}' failed at {location}")
        self.expr = expr
        self.location = location


class BusFault(TargetSignal):
    """An access outside any mapped memory region (hard fault)."""

    def __init__(self, address: int, kind: str = "access"):
        super().__init__(f"bus fault: illegal {kind} at 0x{address:08x}")
        self.address = address
        self.kind = kind


class ExecutionStall(TargetSignal):
    """Target code entered an unbounded polling loop.

    The machine converts this into a halt whose PC never advances, which
    is exactly the condition watchdog #2 of Algorithm 1 detects.
    """

    def __init__(self, reason: str = "infinite polling loop"):
        super().__init__(reason)
        self.reason = reason
