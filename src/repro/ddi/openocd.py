"""OpenOCD stand-in: probe session, flash service, reset, UART capture.

Mirrors the command set EOF actually uses over OpenOCD: connect to the
board's debug interface (JTAG/SWD), program flash (erase + program +
verify), ``monitor reset``, and capture the target's UART into a host
stream (the paper redirects UART to stdout for the log monitor).

This shim owns the link stack for its board: a raw
:class:`~repro.hw.debug_port.DebugPort`, the
:class:`~repro.link.DebugPortTransport` that frames and instruments
every exchange, and the :class:`~repro.link.DebugLink` client everything
above here talks to.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import DebugLinkError
from repro.hw.board import Board
from repro.hw.boards import BOARD_CATALOG
from repro.hw.debug_port import DebugPort
from repro.link import DebugLink, DebugPortTransport
from repro.obs import NULL_OBS


class OpenOcd:
    """One OpenOCD server bound to one board."""

    def __init__(self, board: Board, interface: Optional[str] = None,
                 obs=NULL_OBS):
        spec = BOARD_CATALOG.get(board.name)
        expected = spec.debug_interface if spec else "jtag"
        self.interface = interface or expected
        if spec and self.interface != spec.debug_interface:
            raise DebugLinkError(
                f"board {board.name} exposes {spec.debug_interface}, "
                f"config says {self.interface}")
        self.board = board
        self.port = DebugPort(board)
        self.transport = DebugPortTransport(self.port, obs=obs)
        self.link = DebugLink(self.transport, obs=obs)
        self.obs = obs
        self._uart_cursor = 0
        self.flash_ops = 0
        self.reset_ops = 0

    # -- session ------------------------------------------------------------

    def connect(self) -> None:
        """Open the probe session (board must be powered)."""
        self.port.connect()

    def close(self) -> None:
        """Close the probe session."""
        self.port.disconnect()

    @property
    def connected(self) -> bool:
        """Is the probe session open?"""
        return self.port.connected

    # -- flash service -----------------------------------------------------------

    def flash_write(self, address: int, data: bytes, verify: bool = True) -> None:
        """``flash write_image``: erase, program, optionally verify."""
        self.flash_ops += 1
        self.link.flash_write(address, data, verify=verify)

    # -- reset --------------------------------------------------------------------

    def reset_run(self) -> None:
        """``monitor reset run``: warm reset, let the target boot."""
        self.reset_ops += 1
        self.link.reset()

    # -- UART capture ----------------------------------------------------------------

    def drain_uart(self) -> List[str]:
        """New UART lines since the last drain (host-side log stream)."""
        lines, self._uart_cursor = self.link.uart_read(self._uart_cursor)
        return lines
